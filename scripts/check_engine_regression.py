#!/usr/bin/env python3
"""Guard against large engine-throughput regressions.

Compares the working-tree BENCH_engine.json (just refreshed by the CI
smoke runs) against the committed baseline (``git show
HEAD:BENCH_engine.json``) and fails only on *large* regressions:
per-driver ``extras.sim_cycles_per_second`` and per-phase
``items_per_second`` must stay above ``baseline / tolerance``.

The tolerance is deliberately generous (default 10x): CI smoke runs use
tiny sample counts on shared runners with different core counts than
the machine that produced the committed numbers, so only an
order-of-magnitude collapse — a serialized pool, an accidental
per-trial re-simulation of the shared warm-up prefix, cycle skipping
silently disabled — should trip it.

When the baseline also recorded a forked ``collect`` phase next to its
``collect_replay`` cross-check, the committed numbers themselves must
show the fork path >= --min-fork-speedup x the replay path: that ratio
is the reason the snapshot/fork machinery exists, and this keeps the
committed report honest. (The ratio is only asserted on the committed
baseline, not the smoke run — 3-sample smoke runs are too noisy.)

Drivers with a ``serve`` phase get a second, tighter guard: the serve
loop is the hot path the SoA scoreboard / ring-buffer layout was built
for, so its ``extras.sim_cycles_per_second`` is checked against
``baseline / --serve-tolerance`` (default 4x, stricter than the
generic guard) and must be *present* whenever the baseline recorded it
— an engine that silently stops reporting serve throughput would
otherwise retire the guard along with the number.

Span-tracing drivers (the leakage-attribution bench) get the same
presence treatment for their span bookkeeping: when the committed
baseline recorded ``extras.span_records_total > 0``, the smoke run
must too — a pipeline that silently stops stamping spans would retire
the attribution benchmark while leaving its entry green. The committed
baseline itself must also satisfy
``span_records_dropped <= span_records_total``.

Exit codes: 0 ok (including "no baseline yet"), 1 regression, 2 usage.
"""

import argparse
import json
import subprocess
import sys


def load_baseline(ref):
    """The committed report at *ref*, or None when it does not exist."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:BENCH_engine.json"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--current",
        default="BENCH_engine.json",
        help="report produced by the smoke runs (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the committed report (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="allowed slowdown factor before failing (default: %(default)s)",
    )
    parser.add_argument(
        "--serve-tolerance",
        type=float,
        default=4.0,
        help="allowed slowdown factor for serve-phase drivers' "
        "sim_cycles_per_second (default: %(default)s)",
    )
    parser.add_argument(
        "--min-fork-speedup",
        type=float,
        default=2.0,
        help="required committed collect/collect_replay throughput ratio "
        "(default: %(default)s)",
    )
    args = parser.parse_args()
    if args.tolerance <= 1.0 or args.serve_tolerance <= 1.0:
        print("--tolerance/--serve-tolerance must be > 1", file=sys.stderr)
        return 2

    try:
        with open(args.current, encoding="utf-8") as fh:
            current = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"cannot read {args.current}: {err}", file=sys.stderr)
        return 2

    baseline = load_baseline(args.baseline_ref)
    if baseline is None:
        print(
            f"no BENCH_engine.json at {args.baseline_ref}; "
            "nothing to compare against (first commit of the report)"
        )
        return 0

    failures = []

    def check(name, now, then, tolerance=None):
        floor = then / (tolerance or args.tolerance)
        verdict = "ok" if now >= floor else "REGRESSION"
        print(
            f"  {name}: {now:.1f}/s vs committed {then:.1f}/s "
            f"(floor {floor:.1f}/s) {verdict}"
        )
        if now < floor:
            failures.append(name)

    current_drivers = current.get("drivers", {})
    for driver, base_entry in sorted(baseline.get("drivers", {}).items()):
        cur_entry = current_drivers.get(driver)
        if cur_entry is None:
            # The smoke suite does not exercise every driver; absent
            # entries are untouched committed ones, not regressions.
            print(f"{driver}: not refreshed by this run, skipped")
            continue
        print(f"{driver}:")
        base_cps = base_entry.get("extras", {}).get("sim_cycles_per_second", 0)
        cur_cps = cur_entry.get("extras", {}).get("sim_cycles_per_second", 0)
        serves = "serve" in base_entry.get("phases", {})
        if base_cps > 0:
            check(f"{driver}.sim_cycles_per_second", cur_cps, base_cps)
        if serves and base_cps > 0:
            # The serve tick loop is the engine's hot path: guard its
            # simulated-cycle throughput with the tighter tolerance,
            # and refuse a smoke run that dropped the counter entirely.
            if cur_cps <= 0:
                print(
                    f"  {driver}: serve driver stopped reporting "
                    "sim_cycles_per_second REGRESSION"
                )
                failures.append(f"{driver}.serve_cps_missing")
            else:
                check(
                    f"{driver}.serve.sim_cycles_per_second",
                    cur_cps,
                    base_cps,
                    tolerance=args.serve_tolerance,
                )
        base_spans = int(
            base_entry.get("extras", {}).get("span_records_total", 0)
        )
        if base_spans > 0:
            # Span-tracing driver: the smoke run must still stamp spans
            # (zero means the collector wiring regressed), and the
            # committed bookkeeping must be internally consistent.
            cur_spans = int(
                cur_entry.get("extras", {}).get("span_records_total", 0)
            )
            if cur_spans <= 0:
                print(
                    f"  {driver}: span driver stopped reporting "
                    "span_records_total REGRESSION"
                )
                failures.append(f"{driver}.span_records_missing")
            else:
                print(f"  {driver}.span_records_total: {cur_spans} ok")
            base_drops = int(
                base_entry.get("extras", {}).get("span_records_dropped", 0)
            )
            if base_drops > base_spans:
                print(
                    f"  {driver}: committed span_records_dropped "
                    f"{base_drops} > span_records_total {base_spans} "
                    "REGRESSION"
                )
                failures.append(f"{driver}.span_drop_accounting")
        for phase, base_phase in sorted(base_entry.get("phases", {}).items()):
            cur_phase = cur_entry.get("phases", {}).get(phase)
            base_ips = base_phase.get("items_per_second", 0)
            if cur_phase is None or base_ips <= 0:
                continue
            check(
                f"{driver}.{phase}.items_per_second",
                cur_phase.get("items_per_second", 0),
                base_ips,
            )

    for driver, entry in sorted(baseline.get("drivers", {}).items()):
        phases = entry.get("phases", {})
        fork = phases.get("collect", {}).get("items_per_second", 0)
        replay = phases.get("collect_replay", {}).get("items_per_second", 0)
        if replay <= 0:
            continue
        ratio = fork / replay
        verdict = "ok" if ratio >= args.min_fork_speedup else "REGRESSION"
        print(
            f"{driver}: committed fork/replay collect ratio "
            f"{ratio:.2f}x (need >= {args.min_fork_speedup}x) {verdict}"
        )
        if ratio < args.min_fork_speedup:
            failures.append(f"{driver}.fork_speedup")

    if failures:
        print(
            "engine throughput regression: " + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("engine throughput within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
