/**
 * @file
 * Fig. 9: subwarp size distribution of RSS for num-subwarp = 4 under
 * the normal and skewed sizing schemes (1000 plaintexts = 1000 draws).
 */

#include <cstdio>

#include "rcoal/common/histogram.hpp"
#include "rcoal/core/partitioner.hpp"
#include "support/bench_support.hpp"

namespace {

rcoal::Histogram
sampleSizes(const rcoal::core::CoalescingPolicy &policy, unsigned draws)
{
    rcoal::core::SubwarpPartitioner partitioner(policy, 32);
    rcoal::Rng rng(2024);
    rcoal::Histogram hist;
    for (unsigned i = 0; i < draws; ++i) {
        for (unsigned size : partitioner.draw(rng).sizes())
            hist.add(size);
    }
    return hist;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned draws = bench::parseBenchArgs(argc, argv, 1000).samples;

    printBanner("Fig. 9: RSS subwarp-size distributions (M = 4, N = 32)");

    auto normal_policy =
        core::CoalescingPolicy::rss(4, false, core::RssSizing::Normal);
    normal_policy.normalSigma = 1.0;
    const Histogram normal = sampleSizes(normal_policy, draws);
    std::printf("Normal sizing (mean %.2f, stddev %.2f):\n%s\n",
                normal.mean(), normal.stddev(),
                normal.toAscii(40).c_str());

    const Histogram skewed =
        sampleSizes(core::CoalescingPolicy::rss(4), draws);
    std::printf("Skewed sizing (mean %.2f, stddev %.2f):\n%s\n",
                skewed.mean(), skewed.stddev(),
                skewed.toAscii(40).c_str());

    std::printf("Paper claims: normal sizing concentrates near N/M = 8 "
                "(performance and security similar to FSS); the skewed\n"
                "distribution makes every composition equally likely, so "
                "large subwarps (up to %lld) appear and recover "
                "coalescing\nopportunities while adding size randomness.\n",
                static_cast<long long>(skewed.maxValue()));
    return 0;
}
