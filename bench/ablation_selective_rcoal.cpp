/**
 * @file
 * Ablation: selective RCoal (Section VII future work) - randomize the
 * coalescing only for the vulnerable last-round lookups instead of the
 * entire kernel. The attack only exploits the last round, so security
 * should hold while the performance cost shrinks dramatically.
 */

#include <cstdio>

#include "support/bench_support.hpp"

namespace {

rcoal::bench::PolicyEvaluation
evaluateSelective(const rcoal::core::CoalescingPolicy &policy,
                  bool selective, std::uint32_t mask, unsigned samples)
{
    using namespace rcoal;
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 42;
    cfg.policy = policy;
    cfg.selectiveRCoal = selective;
    cfg.protectedTagMask = mask;
    const auto observations =
        bench::collectObservationsFor(cfg, samples, 32, 7);

    bench::PolicyEvaluation eval;
    eval.policy = policy;
    for (const auto &obs : observations) {
        eval.meanTotalTime += obs.totalTime;
        eval.meanTotalAccesses += static_cast<double>(obs.totalAccesses);
    }
    eval.meanTotalTime /= samples;
    eval.meanTotalAccesses /= samples;

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = policy;
    attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(cfg, bench::victimKey());
    eval.attackResult = attacker.attackKey(
        observations, reference.lastRoundKey(), &bench::benchPool());
    return eval;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples =
        bench::parseBenchArgsWarm(argc, argv).samples;
    constexpr std::uint32_t kLastRoundOnly =
        1u << static_cast<unsigned>(sim::AccessTag::LastRoundLookup);

    printBanner("Ablation: selective RCoal (protect last round only)");
    const auto baseline = evaluateSelective(
        core::CoalescingPolicy::baseline(), false, 0, samples);

    TablePrinter table({"policy", "scope", "time vs baseline",
                        "accesses vs baseline", "avg corr",
                        "bytes recovered"});
    for (const auto &policy :
         {core::CoalescingPolicy::fss(16, true),
          core::CoalescingPolicy::rss(8, true)}) {
        const auto full =
            evaluateSelective(policy, false, 0, samples);
        const auto selective =
            evaluateSelective(policy, true, kLastRoundOnly, samples);
        for (const auto *scope_eval : {&full, &selective}) {
            table.addRow(
                {policy.name(),
                 scope_eval == &full ? "whole kernel (paper)"
                                     : "last round only",
                 TablePrinter::num(scope_eval->meanTotalTime /
                                       baseline.meanTotalTime,
                                   2) +
                     "x",
                 TablePrinter::num(scope_eval->meanTotalAccesses /
                                       baseline.meanTotalAccesses,
                                   2) +
                     "x",
                 TablePrinter::num(scope_eval->avgCorrelation(), 3),
                 TablePrinter::num(
                     scope_eval->attackResult.bytesRecovered) +
                     "/16"});
        }
        table.addSeparator();
    }
    table.print();
    std::printf("\nReading: protecting only the tagged last-round "
                "lookups preserves the defense against the last-round "
                "correlation attack\nwhile rounds 1-9 keep full "
                "coalescing - the hardware/software co-design the paper "
                "sketches as future work. The residual\ncost is the "
                "last-round access inflation only.\n");
    bench::writeEngineReport();
    return 0;
}
