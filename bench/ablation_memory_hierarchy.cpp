/**
 * @file
 * Ablation: interaction with the bandwidth-saving features the paper
 * disabled (Section VII): L1/L2 caches and MSHR merging. With caches
 * enabled, T-table lookups mostly hit on chip, which both speeds up
 * encryption and flattens the DRAM-side timing channel.
 */

#include <chrono>
#include <cstdio>

#include "support/bench_support.hpp"

namespace {

rcoal::bench::PolicyEvaluation
evaluateWithHierarchy(const rcoal::core::CoalescingPolicy &policy,
                      bool l1, bool l2, bool mshr, unsigned samples)
{
    using namespace rcoal;
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 42;
    cfg.policy = policy;
    cfg.l1Enabled = l1;
    cfg.l2Enabled = l2;
    cfg.mshrEnabled = mshr;
    const auto t_collect = std::chrono::steady_clock::now();
    const auto observations =
        attack::EncryptionService::collectSamplesParallel(
            cfg, bench::victimKey(), samples, 32, 7,
            &bench::benchPool());
    bench::engineReport().record(
        "collect", samples,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_collect)
            .count());

    bench::PolicyEvaluation eval;
    eval.policy = policy;
    eval.samples = samples;
    eval.lines = 32;
    for (const auto &obs : observations) {
        eval.meanTotalTime += obs.totalTime;
        eval.meanTotalAccesses += static_cast<double>(obs.totalAccesses);
        eval.meanLastRoundAccesses +=
            static_cast<double>(obs.lastRoundAccesses);
    }
    eval.meanTotalTime /= samples;
    eval.meanTotalAccesses /= samples;
    eval.meanLastRoundAccesses /= samples;

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = policy;
    attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(cfg, bench::victimKey());
    eval.attackResult = attacker.attackKey(
        observations, reference.lastRoundKey(), &bench::benchPool());
    return eval;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv).samples;

    printBanner("Ablation: L1/L2/MSHR interaction (Section VII)");
    TablePrinter table({"policy", "hierarchy", "mean cycles",
                        "avg corr", "bytes recovered"});
    const std::vector<core::CoalescingPolicy> policies = {
        core::CoalescingPolicy::baseline(),
        core::CoalescingPolicy::fss(8, true),
        core::CoalescingPolicy::rss(8, true),
    };
    for (const auto &policy : policies) {
        const auto off =
            evaluateWithHierarchy(policy, false, false, false, samples);
        const auto on =
            evaluateWithHierarchy(policy, true, true, true, samples);
        table.addRow({policy.name(), "off (paper)",
                      TablePrinter::num(off.meanTotalTime, 0),
                      TablePrinter::num(off.avgCorrelation(), 3),
                      TablePrinter::num(off.attackResult.bytesRecovered) +
                          "/16"});
        table.addRow({policy.name(), "L1+L2+MSHR",
                      TablePrinter::num(on.meanTotalTime, 0),
                      TablePrinter::num(on.avgCorrelation(), 3),
                      TablePrinter::num(on.attackResult.bytesRecovered) +
                          "/16"});
        table.addSeparator();
    }
    table.print();
    std::printf("\nReading: caching shortens execution but does NOT close "
                "the channel - the number of coalesced accesses is decided "
                "before\nthe cache, and the LD/ST unit still serializes "
                "them, so timing keeps tracking the coalesce count. This "
                "is exactly why the\npaper attacks *coalescing* rather "
                "than DRAM state, and why Section VII calls for "
                "randomization at every level of the\nhierarchy rather "
                "than relying on caches.\n");
    bench::writeEngineReport();
    return 0;
}
