/**
 * @file
 * Ablation: interaction with the bandwidth-saving features the paper
 * disabled (Section VII) across DRAM device generations.
 *
 * The grid is {L1 off/on x L2 off/on} x {GDDR5, GDDR6, HBM2} x
 * {BASE, FSS, RSS, RSS+RTS}: for every cell we report the mean
 * encryption time, the slowdown the defense costs relative to BASE in
 * the same substrate cell, and the leakage the correlation attack still
 * extracts. --dram-backend filters the sweep to one personality (CI
 * smoke-runs one backend per job).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "rcoal/mem/dram_backend.hpp"
#include "support/bench_support.hpp"

namespace {

/** One L1/L2 substrate cell (MSHR merging rides with any cache). */
struct HierarchyCell
{
    const char *name;
    bool l1, l2;
};

constexpr HierarchyCell kCells[] = {
    {"off (paper)", false, false},
    {"L1", true, false},
    {"L2", false, true},
    {"L1+L2", true, true},
};

rcoal::bench::PolicyEvaluation
evaluateCell(const rcoal::core::CoalescingPolicy &policy,
             rcoal::sim::DramBackendKind backend,
             const HierarchyCell &cell, unsigned samples)
{
    using namespace rcoal;
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 42;
    cfg.policy = policy;
    cfg.dramBackend = backend;
    cfg.l1Enabled = cell.l1;
    cfg.l2Enabled = cell.l2;
    cfg.mshrEnabled = cell.l1 || cell.l2;
    const auto observations =
        bench::collectObservationsFor(cfg, samples, 32, 7);

    bench::PolicyEvaluation eval;
    eval.policy = policy;
    eval.samples = samples;
    eval.lines = 32;
    for (const auto &obs : observations) {
        eval.meanTotalTime += obs.totalTime;
        eval.meanTotalAccesses += static_cast<double>(obs.totalAccesses);
        eval.meanLastRoundAccesses +=
            static_cast<double>(obs.lastRoundAccesses);
    }
    eval.meanTotalTime /= samples;
    eval.meanTotalAccesses /= samples;
    eval.meanLastRoundAccesses /= samples;

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = policy;
    attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(cfg, bench::victimKey());
    eval.attackResult = attacker.attackKey(
        observations, reference.lastRoundKey(), &bench::benchPool());
    return eval;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const auto opts = bench::parseBenchArgsWarm(argc, argv);
    const unsigned samples = opts.samples;

    std::vector<sim::DramBackendKind> backends = {
        sim::DramBackendKind::Gddr5,
        sim::DramBackendKind::Gddr6,
        sim::DramBackendKind::Hbm2,
    };
    if (!opts.dramBackend.empty()) {
        sim::DramBackendKind only;
        mem::parseDramBackendKind(opts.dramBackend.c_str(), only);
        backends = {only};
    }

    const std::vector<core::CoalescingPolicy> policies = {
        core::CoalescingPolicy::baseline(),
        core::CoalescingPolicy::fss(8),
        core::CoalescingPolicy::rss(8),
        core::CoalescingPolicy::rss(8, true),
    };

    printBanner("Ablation: cache hierarchy x DRAM backend (Section VII)");
    TablePrinter table({"backend", "hierarchy", "policy", "mean cycles",
                        "overhead", "avg corr", "bytes recovered"});
    for (const auto backend : backends) {
        for (const auto &cell : kCells) {
            double base_time = 0.0;
            for (const auto &policy : policies) {
                const auto eval =
                    evaluateCell(policy, backend, cell, samples);
                if (policy.mechanism == core::Mechanism::Baseline)
                    base_time = eval.meanTotalTime;
                const double overhead =
                    base_time > 0.0 ? eval.meanTotalTime / base_time
                                    : 1.0;
                table.addRow(
                    {mem::dramBackendKindName(backend), cell.name,
                     policy.name(),
                     TablePrinter::num(eval.meanTotalTime, 0),
                     TablePrinter::num(overhead, 2) + "x",
                     TablePrinter::num(eval.avgCorrelation(), 3),
                     TablePrinter::num(eval.attackResult.bytesRecovered) +
                         "/16"});
            }
            table.addSeparator();
        }
    }
    table.print();
    std::printf(
        "\nReading: caching shortens execution but does NOT close the "
        "channel - the number of coalesced accesses is decided before\n"
        "the cache, and the LD/ST unit still serializes them, so timing "
        "keeps tracking the coalesce count on every DRAM generation.\n"
        "The substrate only rescales the channel (bank-group windows and "
        "pseudo-channels shift the constants); the defenses' leakage\n"
        "reduction and overhead are substrate-invariant. This is exactly "
        "why the paper attacks *coalescing* rather than DRAM state,\n"
        "and why Section VII calls for randomization at every level of "
        "the hierarchy rather than relying on caches.\n");
    bench::writeEngineReport();
    return 0;
}
