/**
 * @file
 * The correlation attack, re-mounted against the rcoal::serve frontend
 * under background load.
 *
 * The paper's attacker enjoys a dedicated device: every probe runs
 * alone, so the measured last-round window is exactly the probe's own.
 * A production encryption service looks different — probes are batched
 * with co-tenant requests and their kernels share the machine with
 * co-resident kernels. This driver quantifies how much that serving
 * structure alone (no RCoal, baseline coalescing) dilutes the timing
 * channel, per batching policy and background-load level, next to the
 * latency/throughput cost the operator pays.
 *
 * Each (policy, load) scenario is an independent single-threaded
 * simulation; scenarios spread over the bench pool, and every number
 * printed is byte-identical for any RCOAL_THREADS.
 */

#include <cstdio>

#include "rcoal/attack/served_attack.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

/** One (batching policy, background load) cell of the sweep. */
struct Scenario
{
    serve::BatchPolicy policy;
    const char *loadName;
    double meanGapCycles; ///< 0 = no background traffic.
    std::vector<unsigned> lineChoices; ///< Background request sizes.
};

/**
 * The two offered-load levels above zero. Light traffic is sparse and
 * small (probes are occasionally batched with, or co-resident with, a
 * one-warp tenant); heavy traffic saturates the queue with mixed sizes.
 */
const std::vector<unsigned> kLightSizes = {32};
const std::vector<unsigned> kHeavySizes = {32, 64, 96, 128};

/** A scenario's results: the operator's view and the attacker's. */
struct ScenarioResult
{
    Scenario scenario;
    serve::ServeReport report;
    attack::KeyAttackResult attack;
    double serveSeconds = 0.0;
    double attackSeconds = 0.0;
};

ScenarioResult
runScenario(const Scenario &scenario, std::size_t index,
            unsigned probe_samples, std::uint64_t root_seed)
{
    // Everything below derives from (root_seed, index) only, so the
    // scenario is a pure function of its cell regardless of which
    // worker runs it.
    sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    gpu.seed = Rng::deriveSeed(root_seed, index + 1);

    serve::ServeConfig cfg;
    cfg.batchPolicy = scenario.policy;
    cfg.queueCapacity = 64;
    cfg.maxBatchRequests = 4;
    cfg.batchTimeoutCycles = 3000;
    cfg.smsPerKernel = 5;

    serve::WorkloadSpec spec;
    spec.probeSamples = probe_samples;
    spec.probeLines = 32;
    // Probe plaintext stream root = the solo harness's plaintext seed,
    // so the attacker submits the same probe sequence in both worlds.
    spec.probeSeed = 7;
    spec.probeThinkCycles = 200;
    spec.backgroundMeanGapCycles = scenario.meanGapCycles;
    spec.backgroundLineChoices = scenario.lineChoices;
    spec.backgroundSeed = Rng::deriveSeed(root_seed, 1000 + index);

    ScenarioResult result;
    result.scenario = scenario;

    auto start = std::chrono::steady_clock::now();
    auto set = attack::collectSamplesServed(gpu, cfg, bench::victimKey(),
                                            spec);
    result.serveSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // The strong attacker clamps wildly slow probes (those that hit
    // co-tenant traffic) before correlating; see winsorizeObservations.
    attack::winsorizeObservations(set.observations,
                                  attack::MeasurementVector::LastRoundTime);

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = gpu.policy; // Baseline coalescing.
    attack_cfg.measurement = attack::MeasurementVector::LastRoundTime;
    const attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(gpu, bench::victimKey());

    start = std::chrono::steady_clock::now();
    // Serial attack: the scenarios themselves are the parallel axis.
    result.attack =
        attacker.attackKey(set.observations, reference.lastRoundKey());
    result.attackSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    result.report = std::move(set.report);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = rcoal::bench::parseBenchArgs(argc, argv, 48);

    printBanner("Serve: correlation attack under background load");
    std::printf(
        "victim: baseline coalescing, AES-128, %u probe samples; "
        "probes batched with open-loop background traffic\n\n",
        opts.samples);

    const std::vector<Scenario> scenarios = {
        {serve::BatchPolicy::Fcfs, "none", 0.0, {}},
        {serve::BatchPolicy::Fcfs, "light", 20000.0, kLightSizes},
        {serve::BatchPolicy::Fcfs, "heavy", 1500.0, kHeavySizes},
        {serve::BatchPolicy::BatchFill, "none", 0.0, {}},
        {serve::BatchPolicy::BatchFill, "light", 20000.0, kLightSizes},
        {serve::BatchPolicy::BatchFill, "heavy", 1500.0, kHeavySizes},
        {serve::BatchPolicy::Sjf, "none", 0.0, {}},
        {serve::BatchPolicy::Sjf, "light", 20000.0, kLightSizes},
        {serve::BatchPolicy::Sjf, "heavy", 1500.0, kHeavySizes},
    };

    const auto results = rcoal::bench::benchPool().parallelMap(
        scenarios.size(), [&](std::size_t i) {
            return runScenario(scenarios[i], i, opts.samples, opts.seed);
        });

    rcoal::TablePrinter table(
        {"policy", "load", "probe p50", "p95", "p99", "req/s",
         "queue", "SM%", "rej", "req/batch", "avg corr", "bytes"});
    for (const auto &r : results) {
        const auto &probe = r.report.probeLatency;
        table.addRow(
            {serve::batchPolicyName(r.scenario.policy),
             r.scenario.loadName,
             rcoal::TablePrinter::num(probe.p50, 0),
             rcoal::TablePrinter::num(probe.p95, 0),
             rcoal::TablePrinter::num(probe.p99, 0),
             rcoal::TablePrinter::num(r.report.throughputReqPerSec, 0),
             rcoal::TablePrinter::num(r.report.meanQueueDepth, 2),
             rcoal::TablePrinter::num(r.report.smOccupancy * 100.0, 1),
             rcoal::TablePrinter::num(
                 static_cast<std::int64_t>(r.report.rejected)),
             rcoal::TablePrinter::num(r.report.meanBatchRequests, 2),
             rcoal::TablePrinter::num(
                 r.attack.avgCorrectCorrelation, 4),
             rcoal::TablePrinter::num(r.attack.bytesRecovered) + "/16"});
    }
    table.print();

    // The security claim this driver exists to check: more background
    // load never helps the attacker. Scenarios are grouped per policy
    // in load order (none, light, heavy).
    std::printf("\nleakage vs load (avg correct-guess correlation):\n");
    bool monotone = true;
    for (std::size_t base = 0; base < results.size(); base += 3) {
        const auto &policy_name = serve::batchPolicyName(
            results[base].scenario.policy);
        double previous = results[base].attack.avgCorrectCorrelation;
        std::printf("  %-9s %+0.4f", policy_name, previous);
        for (std::size_t i = base + 1; i < base + 3; ++i) {
            const double corr =
                results[i].attack.avgCorrectCorrelation;
            std::printf(" -> %+0.4f", corr);
            if (corr > previous)
                monotone = false;
            previous = corr;
        }
        std::printf("\n");
    }
    std::printf("  correlation non-increasing with load: %s\n",
                monotone ? "yes" : "NO");

    for (const auto &r : results) {
        rcoal::bench::engineReport().record(
            "serve", r.report.completed.size(), r.serveSeconds);
        rcoal::bench::engineReport().record("attack", 16 * 256,
                                            r.attackSeconds);
    }
    rcoal::bench::writeEngineReport();
    return 0;
}
