/**
 * @file
 * The correlation attack, re-mounted against the rcoal::serve frontend
 * under background load.
 *
 * The paper's attacker enjoys a dedicated device: every probe runs
 * alone, so the measured last-round window is exactly the probe's own.
 * A production encryption service looks different — probes are batched
 * with co-tenant requests and their kernels share the machine with
 * co-resident kernels. This driver quantifies how much that serving
 * structure alone (no RCoal, baseline coalescing) dilutes the timing
 * channel, per batching policy and background-load level, next to the
 * latency/throughput cost the operator pays — and contrasts it with an
 * RSS+RTS(M=8) deployment, where the channel is gone at the source.
 *
 * Every scenario also runs with live telemetry attached: a per-scenario
 * metric registry, a skip-safe periodic sampler, and the online
 * LeakageAuditor whose correlation gauge is the leakage SLO. The BASE
 * scenarios are expected to trip the alert; the RSS+RTS scenarios must
 * stay quiet. --telemetry-out DIR additionally writes one Prometheus
 * text-exposition snapshot per scenario (lint-checked before writing).
 *
 * Each (coalescing, policy, load) scenario is an independent
 * single-threaded simulation; scenarios spread over the bench pool, and
 * every number printed is byte-identical for any RCOAL_THREADS.
 */

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>

#include "rcoal/attack/served_attack.hpp"
#include "rcoal/common/logging.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/prometheus.hpp"
#include "rcoal/telemetry/sampler.hpp"
#include "rcoal/trace/chrome_trace.hpp"
#include "rcoal/trace/tracer.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

/** One (coalescing policy, batching policy, load) cell of the sweep. */
struct Scenario
{
    const char *coalescingName;  ///< "BASE" or "RSS+RTS" (table/labels).
    const char *coalescingToken; ///< Filename-safe form.
    core::CoalescingPolicy gpuPolicy;
    serve::BatchPolicy policy;
    const char *loadName;
    double meanGapCycles; ///< 0 = no background traffic.
    std::vector<unsigned> lineChoices; ///< Background request sizes.
};

/**
 * The two offered-load levels above zero. Light traffic is sparse and
 * small (probes are occasionally batched with, or co-resident with, a
 * one-warp tenant); heavy traffic saturates the queue with mixed sizes.
 */
const std::vector<unsigned> kLightSizes = {32};
const std::vector<unsigned> kHeavySizes = {32, 64, 96, 128};

/** A scenario's results: the operator's view and the attacker's. */
struct ScenarioResult
{
    Scenario scenario;
    serve::ServeReport report;
    attack::KeyAttackResult attack;
    double serveSeconds = 0.0;
    double attackSeconds = 0.0;
    /** Live-telemetry state; outlives the run for rendering. */
    std::unique_ptr<telemetry::MetricRegistry> registry;
    std::unique_ptr<telemetry::TelemetrySampler> sampler;
    std::unique_ptr<telemetry::LeakageAuditor> auditor;
};

/** The full deterministic configuration of one scenario cell. */
struct ScenarioSetup
{
    sim::GpuConfig gpu;
    serve::ServeConfig cfg;
    serve::WorkloadSpec spec;
};

ScenarioSetup
makeScenarioSetup(const Scenario &scenario, std::size_t index,
                  unsigned probe_samples, std::uint64_t root_seed)
{
    // Everything below derives from (root_seed, index) only, so the
    // scenario is a pure function of its cell regardless of which
    // worker runs it.
    ScenarioSetup setup;
    setup.gpu = sim::GpuConfig::paperBaseline();
    setup.gpu.seed = Rng::deriveSeed(root_seed, index + 1);
    setup.gpu.policy = scenario.gpuPolicy;

    setup.cfg.batchPolicy = scenario.policy;
    setup.cfg.queueCapacity = 64;
    setup.cfg.maxBatchRequests = 4;
    setup.cfg.batchTimeoutCycles = 3000;
    setup.cfg.smsPerKernel = 5;
    // Warm boot shares one machine prefix across the sweep; its
    // randomness derives from warmBootSeed (the ServeConfig default),
    // never the per-scenario gpu seed, so every cell with the same
    // coalescing policy can fork the same snapshot.
    setup.cfg.warmBootKernels = bench::benchWarmup();

    setup.spec.probeSamples = probe_samples;
    setup.spec.probeLines = 32;
    // Probe plaintext stream root = the solo harness's plaintext seed,
    // so the attacker submits the same probe sequence in both worlds.
    setup.spec.probeSeed = 7;
    setup.spec.probeThinkCycles = 200;
    setup.spec.backgroundMeanGapCycles = scenario.meanGapCycles;
    setup.spec.backgroundLineChoices = scenario.lineChoices;
    setup.spec.backgroundSeed = Rng::deriveSeed(root_seed, 1000 + index);
    return setup;
}

ScenarioResult
runScenario(const Scenario &scenario, std::size_t index,
            unsigned probe_samples, std::uint64_t root_seed,
            Cycle telemetry_interval,
            const sim::MachineSnapshot *warm_boot)
{
    const ScenarioSetup setup =
        makeScenarioSetup(scenario, index, probe_samples, root_seed);
    const sim::GpuConfig &gpu = setup.gpu;
    const serve::ServeConfig &cfg = setup.cfg;
    const serve::WorkloadSpec &spec = setup.spec;

    ScenarioResult result;
    result.scenario = scenario;

    // Per-scenario telemetry: own registry (exposition independent of
    // RCOAL_THREADS), skip-safe sampler, and the leakage SLO auditor.
    result.registry = std::make_unique<telemetry::MetricRegistry>();
    result.sampler = std::make_unique<telemetry::TelemetrySampler>(
        *result.registry, telemetry_interval);
    result.auditor = std::make_unique<telemetry::LeakageAuditor>(
        *result.registry, telemetry::LeakageAuditor::Config{},
        telemetry::MetricRegistry::Labels{
            {"policy", scenario.coalescingName}});
    serve::ServeTelemetry hooks;
    hooks.sampler = result.sampler.get();
    hooks.auditor = result.auditor.get();

    auto start = std::chrono::steady_clock::now();
    auto set = attack::collectSamplesServed(gpu, cfg, bench::victimKey(),
                                            spec, &hooks, warm_boot);
    result.serveSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // The strong attacker clamps wildly slow probes (those that hit
    // co-tenant traffic) before correlating; see winsorizeObservations.
    attack::winsorizeObservations(set.observations,
                                  attack::MeasurementVector::LastRoundTime);

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = gpu.policy; // Attacker knows the defense.
    attack_cfg.measurement = attack::MeasurementVector::LastRoundTime;
    const attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(gpu, bench::victimKey());

    start = std::chrono::steady_clock::now();
    // Serial attack: the scenarios themselves are the parallel axis.
    result.attack =
        attacker.attackKey(set.observations, reference.lastRoundKey());
    result.attackSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    result.report = std::move(set.report);
    return result;
}

/** Lowercased copy for snapshot filenames. */
std::string
lowered(const char *s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Lint-checked Prometheus snapshot of one scenario's registry. */
void
writeSnapshot(const std::string &dir, const ScenarioResult &r)
{
    const std::string path =
        dir + "/" + lowered(r.scenario.coalescingToken) + "_" +
        lowered(serve::batchPolicyName(r.scenario.policy)) + "_" +
        lowered(r.scenario.loadName) + ".prom";
    const std::string text = telemetry::renderPrometheus(*r.registry);
    if (const auto lint = telemetry::lintPrometheus(text)) {
        fatal("telemetry exposition failed lint for %s: %s",
              path.c_str(), lint->c_str());
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write telemetry snapshot %s", path.c_str());
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::printf("  wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = rcoal::bench::parseBenchArgsWarm(argc, argv, 48);

    printBanner("Serve: correlation attack under background load");
    std::printf(
        "victim: AES-128, %u probe samples; probes batched with "
        "open-loop background traffic\n"
        "coalescing: BASE (attackable baseline) vs RSS+RTS(M=8)\n\n",
        opts.samples);

    const auto base = core::CoalescingPolicy::baseline();
    const auto rcoal_policy = core::CoalescingPolicy::rss(8, true);
    const std::vector<Scenario> scenarios = {
        {"BASE", "base", base, serve::BatchPolicy::Fcfs, "none", 0.0, {}},
        {"BASE", "base", base, serve::BatchPolicy::Fcfs, "light",
         20000.0, kLightSizes},
        {"BASE", "base", base, serve::BatchPolicy::Fcfs, "heavy", 1500.0,
         kHeavySizes},
        {"BASE", "base", base, serve::BatchPolicy::BatchFill, "none", 0.0,
         {}},
        {"BASE", "base", base, serve::BatchPolicy::BatchFill, "light",
         20000.0, kLightSizes},
        {"BASE", "base", base, serve::BatchPolicy::BatchFill, "heavy",
         1500.0, kHeavySizes},
        {"BASE", "base", base, serve::BatchPolicy::Sjf, "none", 0.0, {}},
        {"BASE", "base", base, serve::BatchPolicy::Sjf, "light", 20000.0,
         kLightSizes},
        {"BASE", "base", base, serve::BatchPolicy::Sjf, "heavy", 1500.0,
         kHeavySizes},
        {"RSS+RTS", "rss_rts", rcoal_policy, serve::BatchPolicy::Fcfs,
         "none", 0.0, {}},
        {"RSS+RTS", "rss_rts", rcoal_policy, serve::BatchPolicy::Fcfs,
         "light", 20000.0, kLightSizes},
        {"RSS+RTS", "rss_rts", rcoal_policy, serve::BatchPolicy::Fcfs,
         "heavy", 1500.0, kHeavySizes},
    };

    // Fork mode: build one warm-boot snapshot per distinct gpu
    // structure (here: per coalescing policy — scenario gpu configs
    // within a policy differ only in the seed, which snapshot restore
    // masks) and share it across the sweep. Replay mode leaves every
    // scenario to re-simulate its boot launches, which must be
    // byte-identical — the snapshot determinism tests and the CI
    // fork-vs-replay diff enforce exactly that.
    // std::map: node-based, so the snapshot addresses handed to warm[]
    // stay valid as more policies are inserted.
    std::map<std::string, sim::MachineSnapshot> boots;
    std::vector<const sim::MachineSnapshot *> warm(scenarios.size(),
                                                   nullptr);
    if (rcoal::bench::benchWarmup() > 0 &&
        rcoal::bench::benchCollectMode() == attack::CollectMode::Fork) {
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const std::string token = scenarios[i].coalescingToken;
            auto it = boots.find(token);
            if (it == boots.end()) {
                const ScenarioSetup setup = makeScenarioSetup(
                    scenarios[i], i, opts.samples, opts.seed);
                const serve::EncryptionServer server(
                    setup.gpu, setup.cfg, rcoal::bench::victimKey());
                it = boots.emplace(token, server.warmBootSnapshot())
                         .first;
            }
            warm[i] = &it->second;
        }
    }

    const auto results = rcoal::bench::benchPool().parallelMap(
        scenarios.size(), [&](std::size_t i) {
            return runScenario(scenarios[i], i, opts.samples, opts.seed,
                               opts.telemetryInterval, warm[i]);
        });

    rcoal::TablePrinter table(
        {"coalesce", "policy", "load", "probe p50", "p95", "p99",
         "req/s", "queue", "SM%", "rej", "req/batch", "avg corr",
         "bytes"});
    for (const auto &r : results) {
        const auto &probe = r.report.probeLatency;
        table.addRow(
            {r.scenario.coalescingName,
             serve::batchPolicyName(r.scenario.policy),
             r.scenario.loadName,
             rcoal::TablePrinter::num(probe.p50, 0),
             rcoal::TablePrinter::num(probe.p95, 0),
             rcoal::TablePrinter::num(probe.p99, 0),
             rcoal::TablePrinter::num(r.report.throughputReqPerSec, 0),
             rcoal::TablePrinter::num(r.report.meanQueueDepth, 2),
             rcoal::TablePrinter::num(r.report.smOccupancy * 100.0, 1),
             rcoal::TablePrinter::num(
                 static_cast<std::int64_t>(r.report.rejected)),
             rcoal::TablePrinter::num(r.report.meanBatchRequests, 2),
             rcoal::TablePrinter::num(
                 r.attack.avgCorrectCorrelation, 4),
             rcoal::TablePrinter::num(r.attack.bytesRecovered) + "/16"});
    }
    table.print();

    // The security claim this driver exists to check: more background
    // load never helps the attacker. Scenarios are grouped per
    // (coalescing, batch policy) in load order (none, light, heavy).
    std::printf("\nleakage vs load (avg correct-guess correlation):\n");
    bool monotone = true;
    for (std::size_t group = 0; group < results.size(); group += 3) {
        const auto &head = results[group];
        double previous = head.attack.avgCorrectCorrelation;
        std::printf("  %-8s %-9s %+0.4f", head.scenario.coalescingName,
                    serve::batchPolicyName(head.scenario.policy),
                    previous);
        for (std::size_t i = group + 1; i < group + 3; ++i) {
            const double corr =
                results[i].attack.avgCorrectCorrelation;
            std::printf(" -> %+0.4f", corr);
            if (corr > previous)
                monotone = false;
            previous = corr;
        }
        std::printf("\n");
    }
    std::printf("  correlation non-increasing with load: %s\n",
                monotone ? "yes" : "NO");

    // The live leakage SLO: the online auditor watched every scenario
    // while it ran. BASE deployments must trip the alert; RSS+RTS must
    // stay quiet — if either fails, the gauge is not a usable SLO.
    std::printf("\nleakage SLO (online auditor, |corr| >= %.2f "
                "after %zu probes):\n",
                results[0].auditor->alertThreshold(),
                telemetry::LeakageAuditor::Config{}.minSamples);
    bool slo_base_trips = true;
    bool slo_rcoal_quiet = true;
    for (const auto &r : results) {
        const bool alert = r.auditor->alerting();
        std::printf("  %-8s %-9s %-5s corr=%+0.4f  alert=%s\n",
                    r.scenario.coalescingName,
                    serve::batchPolicyName(r.scenario.policy),
                    r.scenario.loadName, r.auditor->correlation(),
                    alert ? "FIRING" : "quiet");
        const bool is_base = r.scenario.gpuPolicy ==
                             core::CoalescingPolicy::baseline();
        // Loaded BASE cells genuinely dilute the channel (the point of
        // this driver); the SLO promise is that an *unloaded* BASE
        // service is caught, while RSS+RTS stays quiet at every load.
        if (is_base && r.scenario.meanGapCycles == 0.0 && !alert)
            slo_base_trips = false;
        if (!is_base && alert)
            slo_rcoal_quiet = false;
    }
    std::printf("  SLO separates BASE (firing) from RSS+RTS (quiet): "
                "%s\n",
                slo_base_trips && slo_rcoal_quiet ? "yes" : "NO");

    if (!opts.telemetryDir.empty()) {
        std::printf("\ntelemetry snapshots (%s):\n",
                    opts.telemetryDir.c_str());
        for (const auto &r : results)
            writeSnapshot(opts.telemetryDir, r);
    }

    for (const auto &r : results) {
        rcoal::bench::engineReport().record(
            "serve", r.report.completed.size(), r.serveSeconds);
        rcoal::bench::engineReport().record("attack", 16 * 256,
                                            r.attackSeconds);
    }

    // Roll the per-kernel counter snapshots up into the engine report:
    // the numbers a perf regression in the machine itself would move
    // first, independent of the latency percentiles above.
    std::uint64_t kernels = 0;
    std::uint64_t kernel_cycles = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t prt_stalls = 0;
    std::uint64_t icn_stalls = 0;
    for (const auto &r : results) {
        kernels += r.report.kernels.size();
        for (const auto &snap : r.report.kernels) {
            kernel_cycles += snap.cycles;
            coalesced += snap.coalescedAccesses;
            prt_stalls += snap.prtStallCycles;
            icn_stalls += snap.icnStallCycles;
        }
    }
    auto &engine = rcoal::bench::engineReport();
    engine.setExtra("kernels_retired",
                    std::to_string(kernels));
    engine.setExtra("mean_kernel_cycles",
                    kernels == 0
                        ? "0"
                        : std::to_string(kernel_cycles / kernels));
    engine.setExtra("coalesced_accesses", std::to_string(coalesced));
    engine.setExtra("prt_stall_cycles", std::to_string(prt_stalls));
    engine.setExtra("icn_stall_cycles", std::to_string(icn_stalls));

    // Live-telemetry roll-up: the sampler's recorded time series for
    // the two saturated FCFS cells (one per coalescing policy) and the
    // final SLO gauge of every cell, so the engine report carries the
    // leakage trajectory next to the perf trajectory.
    engine.setExtra("telemetry_interval_cycles",
                    std::to_string(opts.telemetryInterval));
    std::string slo_json = "{";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        slo_json += strprintf(
            "%s\"%s/%s/%s\":%.6f", i == 0 ? "" : ",",
            r.scenario.coalescingName,
            serve::batchPolicyName(r.scenario.policy),
            r.scenario.loadName, r.auditor->correlation());
    }
    slo_json += "}";
    engine.setExtra("leakage_correlation", slo_json);
    for (const auto &r : results) {
        if (r.scenario.policy != serve::BatchPolicy::Fcfs ||
            r.scenario.meanGapCycles != 1500.0) {
            continue;
        }
        engine.setExtra(std::string("telemetry_series_") +
                            r.scenario.coalescingToken + "_fcfs_heavy",
                        r.sampler->seriesJson());
    }

    // --trace FILE: re-run one representative scenario (BASE, FCFS,
    // heavy load) with the tracer attached and export a Chrome/Perfetto
    // timeline of the whole serving stack.
    if (!opts.tracePath.empty()) {
        const std::size_t traced_index = 2; // {BASE, Fcfs, "heavy"}.
        const ScenarioSetup setup = makeScenarioSetup(
            scenarios[traced_index], traced_index, opts.samples,
            opts.seed);
        rcoal::trace::Tracer tracer;
        const serve::EncryptionServer server(setup.gpu, setup.cfg,
                                             rcoal::bench::victimKey());
        (void)server.run(setup.spec, &tracer);
        rcoal::trace::writeChromeTrace(opts.tracePath, tracer,
                                       setup.gpu.burstCycles);
        std::printf("\n[trace] wrote %s (%llu events recorded, "
                    "%llu dropped)%s\n",
                    opts.tracePath.c_str(),
                    static_cast<unsigned long long>(
                        tracer.totalRecorded()),
                    static_cast<unsigned long long>(
                        tracer.totalDropped()),
                    tracer.totalRecorded() == 0
                        ? " — build with -DRCOAL_TRACE=ON to record "
                          "events"
                        : "");
    }

    rcoal::bench::writeEngineReport();
    return 0;
}
