/**
 * @file
 * The correlation attack, re-mounted against the rcoal::serve frontend
 * under background load.
 *
 * The paper's attacker enjoys a dedicated device: every probe runs
 * alone, so the measured last-round window is exactly the probe's own.
 * A production encryption service looks different — probes are batched
 * with co-tenant requests and their kernels share the machine with
 * co-resident kernels. This driver quantifies how much that serving
 * structure alone (no RCoal, baseline coalescing) dilutes the timing
 * channel, per batching policy and background-load level, next to the
 * latency/throughput cost the operator pays.
 *
 * Each (policy, load) scenario is an independent single-threaded
 * simulation; scenarios spread over the bench pool, and every number
 * printed is byte-identical for any RCOAL_THREADS.
 */

#include <cstdio>

#include "rcoal/attack/served_attack.hpp"
#include "rcoal/trace/chrome_trace.hpp"
#include "rcoal/trace/tracer.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

/** One (batching policy, background load) cell of the sweep. */
struct Scenario
{
    serve::BatchPolicy policy;
    const char *loadName;
    double meanGapCycles; ///< 0 = no background traffic.
    std::vector<unsigned> lineChoices; ///< Background request sizes.
};

/**
 * The two offered-load levels above zero. Light traffic is sparse and
 * small (probes are occasionally batched with, or co-resident with, a
 * one-warp tenant); heavy traffic saturates the queue with mixed sizes.
 */
const std::vector<unsigned> kLightSizes = {32};
const std::vector<unsigned> kHeavySizes = {32, 64, 96, 128};

/** A scenario's results: the operator's view and the attacker's. */
struct ScenarioResult
{
    Scenario scenario;
    serve::ServeReport report;
    attack::KeyAttackResult attack;
    double serveSeconds = 0.0;
    double attackSeconds = 0.0;
};

/** The full deterministic configuration of one scenario cell. */
struct ScenarioSetup
{
    sim::GpuConfig gpu;
    serve::ServeConfig cfg;
    serve::WorkloadSpec spec;
};

ScenarioSetup
makeScenarioSetup(const Scenario &scenario, std::size_t index,
                  unsigned probe_samples, std::uint64_t root_seed)
{
    // Everything below derives from (root_seed, index) only, so the
    // scenario is a pure function of its cell regardless of which
    // worker runs it.
    ScenarioSetup setup;
    setup.gpu = sim::GpuConfig::paperBaseline();
    setup.gpu.seed = Rng::deriveSeed(root_seed, index + 1);

    setup.cfg.batchPolicy = scenario.policy;
    setup.cfg.queueCapacity = 64;
    setup.cfg.maxBatchRequests = 4;
    setup.cfg.batchTimeoutCycles = 3000;
    setup.cfg.smsPerKernel = 5;

    setup.spec.probeSamples = probe_samples;
    setup.spec.probeLines = 32;
    // Probe plaintext stream root = the solo harness's plaintext seed,
    // so the attacker submits the same probe sequence in both worlds.
    setup.spec.probeSeed = 7;
    setup.spec.probeThinkCycles = 200;
    setup.spec.backgroundMeanGapCycles = scenario.meanGapCycles;
    setup.spec.backgroundLineChoices = scenario.lineChoices;
    setup.spec.backgroundSeed = Rng::deriveSeed(root_seed, 1000 + index);
    return setup;
}

ScenarioResult
runScenario(const Scenario &scenario, std::size_t index,
            unsigned probe_samples, std::uint64_t root_seed)
{
    const ScenarioSetup setup =
        makeScenarioSetup(scenario, index, probe_samples, root_seed);
    const sim::GpuConfig &gpu = setup.gpu;
    const serve::ServeConfig &cfg = setup.cfg;
    const serve::WorkloadSpec &spec = setup.spec;

    ScenarioResult result;
    result.scenario = scenario;

    auto start = std::chrono::steady_clock::now();
    auto set = attack::collectSamplesServed(gpu, cfg, bench::victimKey(),
                                            spec);
    result.serveSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    // The strong attacker clamps wildly slow probes (those that hit
    // co-tenant traffic) before correlating; see winsorizeObservations.
    attack::winsorizeObservations(set.observations,
                                  attack::MeasurementVector::LastRoundTime);

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = gpu.policy; // Baseline coalescing.
    attack_cfg.measurement = attack::MeasurementVector::LastRoundTime;
    const attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(gpu, bench::victimKey());

    start = std::chrono::steady_clock::now();
    // Serial attack: the scenarios themselves are the parallel axis.
    result.attack =
        attacker.attackKey(set.observations, reference.lastRoundKey());
    result.attackSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    result.report = std::move(set.report);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = rcoal::bench::parseBenchArgs(argc, argv, 48);

    printBanner("Serve: correlation attack under background load");
    std::printf(
        "victim: baseline coalescing, AES-128, %u probe samples; "
        "probes batched with open-loop background traffic\n\n",
        opts.samples);

    const std::vector<Scenario> scenarios = {
        {serve::BatchPolicy::Fcfs, "none", 0.0, {}},
        {serve::BatchPolicy::Fcfs, "light", 20000.0, kLightSizes},
        {serve::BatchPolicy::Fcfs, "heavy", 1500.0, kHeavySizes},
        {serve::BatchPolicy::BatchFill, "none", 0.0, {}},
        {serve::BatchPolicy::BatchFill, "light", 20000.0, kLightSizes},
        {serve::BatchPolicy::BatchFill, "heavy", 1500.0, kHeavySizes},
        {serve::BatchPolicy::Sjf, "none", 0.0, {}},
        {serve::BatchPolicy::Sjf, "light", 20000.0, kLightSizes},
        {serve::BatchPolicy::Sjf, "heavy", 1500.0, kHeavySizes},
    };

    const auto results = rcoal::bench::benchPool().parallelMap(
        scenarios.size(), [&](std::size_t i) {
            return runScenario(scenarios[i], i, opts.samples, opts.seed);
        });

    rcoal::TablePrinter table(
        {"policy", "load", "probe p50", "p95", "p99", "req/s",
         "queue", "SM%", "rej", "req/batch", "avg corr", "bytes"});
    for (const auto &r : results) {
        const auto &probe = r.report.probeLatency;
        table.addRow(
            {serve::batchPolicyName(r.scenario.policy),
             r.scenario.loadName,
             rcoal::TablePrinter::num(probe.p50, 0),
             rcoal::TablePrinter::num(probe.p95, 0),
             rcoal::TablePrinter::num(probe.p99, 0),
             rcoal::TablePrinter::num(r.report.throughputReqPerSec, 0),
             rcoal::TablePrinter::num(r.report.meanQueueDepth, 2),
             rcoal::TablePrinter::num(r.report.smOccupancy * 100.0, 1),
             rcoal::TablePrinter::num(
                 static_cast<std::int64_t>(r.report.rejected)),
             rcoal::TablePrinter::num(r.report.meanBatchRequests, 2),
             rcoal::TablePrinter::num(
                 r.attack.avgCorrectCorrelation, 4),
             rcoal::TablePrinter::num(r.attack.bytesRecovered) + "/16"});
    }
    table.print();

    // The security claim this driver exists to check: more background
    // load never helps the attacker. Scenarios are grouped per policy
    // in load order (none, light, heavy).
    std::printf("\nleakage vs load (avg correct-guess correlation):\n");
    bool monotone = true;
    for (std::size_t base = 0; base < results.size(); base += 3) {
        const auto &policy_name = serve::batchPolicyName(
            results[base].scenario.policy);
        double previous = results[base].attack.avgCorrectCorrelation;
        std::printf("  %-9s %+0.4f", policy_name, previous);
        for (std::size_t i = base + 1; i < base + 3; ++i) {
            const double corr =
                results[i].attack.avgCorrectCorrelation;
            std::printf(" -> %+0.4f", corr);
            if (corr > previous)
                monotone = false;
            previous = corr;
        }
        std::printf("\n");
    }
    std::printf("  correlation non-increasing with load: %s\n",
                monotone ? "yes" : "NO");

    for (const auto &r : results) {
        rcoal::bench::engineReport().record(
            "serve", r.report.completed.size(), r.serveSeconds);
        rcoal::bench::engineReport().record("attack", 16 * 256,
                                            r.attackSeconds);
    }

    // Roll the per-kernel counter snapshots up into the engine report:
    // the numbers a perf regression in the machine itself would move
    // first, independent of the latency percentiles above.
    std::uint64_t kernels = 0;
    std::uint64_t kernel_cycles = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t prt_stalls = 0;
    std::uint64_t icn_stalls = 0;
    for (const auto &r : results) {
        kernels += r.report.kernels.size();
        for (const auto &snap : r.report.kernels) {
            kernel_cycles += snap.cycles;
            coalesced += snap.coalescedAccesses;
            prt_stalls += snap.prtStallCycles;
            icn_stalls += snap.icnStallCycles;
        }
    }
    auto &engine = rcoal::bench::engineReport();
    engine.setExtra("kernels_retired",
                    std::to_string(kernels));
    engine.setExtra("mean_kernel_cycles",
                    kernels == 0
                        ? "0"
                        : std::to_string(kernel_cycles / kernels));
    engine.setExtra("coalesced_accesses", std::to_string(coalesced));
    engine.setExtra("prt_stall_cycles", std::to_string(prt_stalls));
    engine.setExtra("icn_stall_cycles", std::to_string(icn_stalls));

    // --trace FILE: re-run one representative scenario (FCFS, heavy
    // load) with the tracer attached and export a Chrome/Perfetto
    // timeline of the whole serving stack.
    if (!opts.tracePath.empty()) {
        const std::size_t traced_index = 2; // {Fcfs, "heavy", ...}.
        const ScenarioSetup setup = makeScenarioSetup(
            scenarios[traced_index], traced_index, opts.samples,
            opts.seed);
        rcoal::trace::Tracer tracer;
        const serve::EncryptionServer server(setup.gpu, setup.cfg,
                                             rcoal::bench::victimKey());
        (void)server.run(setup.spec, &tracer);
        rcoal::trace::writeChromeTrace(opts.tracePath, tracer,
                                       setup.gpu.burstCycles);
        std::printf("\n[trace] wrote %s (%llu events recorded, "
                    "%llu dropped)%s\n",
                    opts.tracePath.c_str(),
                    static_cast<unsigned long long>(
                        tracer.totalRecorded()),
                    static_cast<unsigned long long>(
                        tracer.totalDropped()),
                    tracer.totalRecorded() == 0
                        ? " — build with -DRCOAL_TRACE=ON to record "
                          "events"
                        : "");
    }

    rcoal::bench::writeEngineReport();
    return 0;
}
