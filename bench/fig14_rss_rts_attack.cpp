/**
 * @file
 * Fig. 14: the RSS+RTS defense against the RSS+RTS-aware attack -
 * randomness in both the subwarp sizes and the thread allocation.
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples =
        bench::parseBenchArgsWarm(argc, argv).samples;
    bench::runScatterFigure(
        "Fig. 14: RSS+RTS defense vs RSS+RTS attack",
        [](unsigned m) { return core::CoalescingPolicy::rss(m, true); },
        samples);
    std::printf("\nPaper claims: combining size and thread-allocation "
                "randomness is very difficult to replicate in the "
                "attack; recovery\nfails for num-subwarp > 2.\n");
    bench::writeEngineReport();
    return 0;
}
