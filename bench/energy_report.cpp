/**
 * @file
 * Energy report: data-movement energy per defense (the Section III
 * motivation quantified with the first-order GPUWattch-style model).
 */

#include <cstdio>

#include "rcoal/sim/energy.hpp"
#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv, 10).samples;

    printBanner("Energy per 32-line AES encryption (first-order model)");
    const sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();

    TablePrinter table({"policy", "energy/launch (nJ)", "vs baseline",
                        "DRAM share"});
    double baseline_total = 0.0;
    std::vector<core::CoalescingPolicy> policies = {
        core::CoalescingPolicy::baseline(),
        core::CoalescingPolicy::fss(8),
        core::CoalescingPolicy::rss(8),
        core::CoalescingPolicy::rss(8, true),
        core::CoalescingPolicy::disabled(),
    };
    for (const auto &policy : policies) {
        sim::GpuConfig run_cfg = cfg;
        run_cfg.seed = 42;
        run_cfg.policy = policy;
        attack::EncryptionService service(run_cfg, bench::victimKey());
        Rng rng(7);
        sim::EnergyBreakdown sum;
        const auto add = [&](const sim::EnergyBreakdown &e) {
            sum.dramDynamic += e.dramDynamic;
            sum.dramActivate += e.dramActivate;
            sum.interconnect += e.interconnect;
            sum.caches += e.caches;
            sum.core += e.core;
            sum.leakage += e.leakage;
        };
        for (unsigned s = 0; s < samples; ++s) {
            const auto plaintext = workloads::randomPlaintext(32, rng);
            workloads::AesGpuKernel kernel(plaintext, bench::victimKey(),
                                           run_cfg.warpSize);
            sim::Gpu gpu(run_cfg);
            add(sim::estimateEnergy(gpu.launch(kernel), run_cfg));
        }
        const double total = sum.total() / samples;
        const double dram_share =
            (sum.dramDynamic + sum.dramActivate) / sum.total();
        if (policy.mechanism == core::Mechanism::Baseline)
            baseline_total = total;
        table.addRow({policy.name(),
                      TablePrinter::num(total / 1000.0, 1),
                      TablePrinter::num(total / baseline_total, 2) + "x",
                      TablePrinter::num(100.0 * dram_share, 1) + "%"});
    }
    table.print();
    std::printf("\nReading: energy follows data movement - disabling "
                "coalescing costs the most, the subwarp defenses sit "
                "between, and\nRSS-based sizing keeps the energy bill "
                "below FSS at equal M (Section III's efficiency "
                "argument for partial, randomized\ncoalescing instead "
                "of none).\n");
    return 0;
}
