/**
 * @file
 * Fig. 18 case study: plaintexts of 1024 lines (32 warps). To remove
 * warp-scheduling noise the attack correlates its estimates with the
 * *observed* last-round coalesced accesses (the paper's methodology);
 * performance is reported as execution time normalized to
 * num-subwarp = 1.
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    // 1024-line launches are ~30x costlier than 32-line ones; default
    // to 60 samples (override with --samples).
    const unsigned samples = bench::parseBenchArgs(argc, argv, 60).samples;
    constexpr unsigned kLines = 1024;

    std::printf("Fig. 18: simulating %u x 1024-line encryptions per "
                "config (this takes a couple of minutes)...\n",
                samples);
    const auto baseline = bench::evaluatePolicy(
        core::CoalescingPolicy::baseline(), samples, kLines,
        attack::MeasurementVector::ObservedLastRoundAccesses);

    printBanner("Fig. 18a: avg correlation vs observed last-round "
                "accesses (1024 lines)");
    TablePrinter corr({"num-subwarp", "FSS", "FSS+RTS", "RSS",
                       "RSS+RTS"});
    std::vector<unsigned> ms = {2, 4, 8};
    std::vector<std::vector<bench::PolicyEvaluation>> evals;
    for (unsigned m : ms) {
        std::vector<bench::PolicyEvaluation> row;
        for (const auto &policy : bench::defenseFamilies(m)) {
            row.push_back(bench::evaluatePolicy(
                policy, samples, kLines,
                attack::MeasurementVector::ObservedLastRoundAccesses));
        }
        evals.push_back(std::move(row));
    }
    corr.addRow({"1 (baseline)",
                 TablePrinter::num(baseline.avgCorrelation(), 3),
                 TablePrinter::num(baseline.avgCorrelation(), 3),
                 TablePrinter::num(baseline.avgCorrelation(), 3),
                 TablePrinter::num(baseline.avgCorrelation(), 3)});
    for (std::size_t i = 0; i < ms.size(); ++i) {
        std::vector<std::string> row{TablePrinter::num(ms[i])};
        for (const auto &eval : evals[i])
            row.push_back(TablePrinter::num(eval.avgCorrelation(), 3));
        corr.addRow(std::move(row));
    }
    corr.print();

    printBanner("Fig. 18b: execution time normalized to num-subwarp = 1");
    TablePrinter time({"num-subwarp", "FSS", "FSS+RTS", "RSS",
                       "RSS+RTS"});
    for (std::size_t i = 0; i < ms.size(); ++i) {
        std::vector<std::string> row{TablePrinter::num(ms[i])};
        for (const auto &eval : evals[i]) {
            row.push_back(TablePrinter::num(eval.meanTotalTime /
                                                baseline.meanTotalTime,
                                            2) +
                          "x");
        }
        time.addRow(std::move(row));
    }
    time.print();

    std::printf("\nBaseline: %.0f cycles, %.0f accesses per 1024-line "
                "plaintext.\n",
                baseline.meanTotalTime, baseline.meanTotalAccesses);
    std::printf("\nPaper claims: the defenses scale to large plaintexts "
                "- FSS stays attackable, the randomized mechanisms drive "
                "the\ncorrelation down for num-subwarp > 1, and RSS-based "
                "mechanisms stay cheaper than FSS-based ones (paper: "
                "29-76%%\noverhead for RSS+RTS at M = 2..8).\n");
    bench::writeEngineReport();
    return 0;
}
