/**
 * @file
 * Ablation: RSS subwarp-size distribution - skewed (the paper's
 * choice) vs normal. Section IV-B claims skewed sizing improves both
 * security and performance over normal sizing; this bench quantifies
 * that claim.
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples =
        bench::parseBenchArgsWarm(argc, argv).samples;

    printBanner("Ablation: RSS sizing distribution (skewed vs normal)");
    const auto baseline = bench::evaluatePolicy(
        core::CoalescingPolicy::baseline(), samples);

    TablePrinter table({"num-subwarp", "sizing", "avg corr",
                        "bytes recovered", "accesses vs baseline",
                        "time vs baseline"});
    for (unsigned m : {2u, 4u, 8u}) {
        for (const auto sizing :
             {core::RssSizing::Skewed, core::RssSizing::Normal}) {
            auto policy = core::CoalescingPolicy::rss(m, true, sizing);
            policy.normalSigma = 1.0;
            const auto eval = bench::evaluatePolicy(policy, samples);
            table.addRow(
                {TablePrinter::num(m),
                 sizing == core::RssSizing::Skewed ? "skewed" : "normal",
                 TablePrinter::num(eval.avgCorrelation(), 3),
                 TablePrinter::num(eval.attackResult.bytesRecovered) +
                     "/16",
                 TablePrinter::num(eval.meanTotalAccesses /
                                       baseline.meanTotalAccesses,
                                   2) +
                     "x",
                 TablePrinter::num(eval.meanTotalTime /
                                       baseline.meanTotalTime,
                                   2) +
                     "x"});
        }
        table.addSeparator();
    }
    table.print();
    std::printf("\nExpectation (Section IV-B): normal sizing behaves like "
                "FSS (sizes concentrate at N/M); skewed sizing produces "
                "large\nsubwarps that recover coalescing (fewer accesses, "
                "less time) while keeping the size channel random.\n");
    bench::writeEngineReport();
    return 0;
}
