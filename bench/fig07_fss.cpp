/**
 * @file
 * Fig. 7: FSS-enabled AES vs number of subwarps: (a) execution time and
 * total memory accesses; (b) average correlation achieved by the
 * *baseline* attack (which still assumes num-subwarp = 1).
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv).samples;

    printBanner("Fig. 7: FSS vs num-subwarp (baseline attack)");
    TablePrinter table({"num-subwarp", "exec time (cycles)",
                        "accesses/plaintext", "time vs M=1",
                        "avg corr (baseline attack)"});

    double base_time = 0.0;
    for (unsigned m : bench::paperSubwarpCounts()) {
        const auto policy = m == 1 ? core::CoalescingPolicy::baseline()
                                   : core::CoalescingPolicy::fss(m);
        // Victim runs FSS; the attacker still models num-subwarp = 1.
        const auto obs = bench::collectObservations(policy, samples);
        attack::AttackConfig attack_cfg;
        attack_cfg.assumedPolicy = core::CoalescingPolicy::baseline();
        attack::CorrelationAttack attacker(attack_cfg);
        sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
        attack::EncryptionService reference(cfg, bench::victimKey());
        const auto result =
            attacker.attackKey(obs, reference.lastRoundKey());

        double time = 0.0;
        double accesses = 0.0;
        for (const auto &o : obs) {
            time += o.totalTime;
            accesses += static_cast<double>(o.totalAccesses);
        }
        time /= obs.size();
        accesses /= obs.size();
        if (m == 1)
            base_time = time;

        table.addRow({TablePrinter::num(m), TablePrinter::num(time, 0),
                      TablePrinter::num(accesses, 0),
                      TablePrinter::num(time / base_time, 2) + "x",
                      TablePrinter::num(result.avgCorrectCorrelation,
                                        3)});
    }
    table.print();
    std::printf("\nPaper claims: execution time and accesses grow with "
                "num-subwarp (7a); the baseline attacker's correlation "
                "decays as the\nvictim's subwarp count diverges from the "
                "attacker's single-subwarp model (7b).\n");
    return 0;
}
