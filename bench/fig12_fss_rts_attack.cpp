/**
 * @file
 * Fig. 12: the FSS+RTS defense against the FSS+RTS-aware attack. The
 * attacker simulates random thread allocation but cannot match the
 * hardware's actual draw, so recovery gets harder as num-subwarp grows.
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv).samples;
    bench::runScatterFigure(
        "Fig. 12: FSS+RTS defense vs FSS+RTS attack",
        [](unsigned m) { return core::CoalescingPolicy::fss(m, true); },
        samples);
    std::printf("\nPaper claims: unlike plain FSS (Fig. 8), the random "
                "thread allocation keeps the correct guess buried as M "
                "grows;\nsecurity improves monotonically with "
                "num-subwarp.\n");
    bench::writeEngineReport();
    return 0;
}
