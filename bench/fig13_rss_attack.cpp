/**
 * @file
 * Fig. 13: the RSS defense against the RSS-aware attack. The random
 * subwarp sizing changes between plaintexts and cannot be replicated
 * by the attacker's simulation of the size distribution.
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples =
        bench::parseBenchArgsWarm(argc, argv).samples;
    bench::runScatterFigure(
        "Fig. 13: RSS defense vs RSS attack",
        [](unsigned m) { return core::CoalescingPolicy::rss(m); },
        samples);
    std::printf("\nPaper claims: for num-subwarp > 2 the correct key "
                "byte no longer has the highest correlation - random "
                "sizing alone\n(without RTS) already defeats the "
                "size-aware attacker.\n");
    bench::writeEngineReport();
    return 0;
}
