/**
 * @file
 * Fig. 15: security comparison across all four defenses - average
 * correct-guess correlation under each defense's corresponding attack,
 * for num-subwarp in {1, 2, 4, 8, 16}.
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv).samples;

    printBanner("Fig. 15: average correlation, corresponding attacks");
    TablePrinter table(
        {"num-subwarp", "FSS", "FSS+RTS", "RSS", "RSS+RTS"});

    const auto baseline =
        bench::evaluatePolicy(core::CoalescingPolicy::baseline(), samples);
    table.addRow({"1 (baseline)",
                  TablePrinter::num(baseline.avgCorrelation(), 3),
                  TablePrinter::num(baseline.avgCorrelation(), 3),
                  TablePrinter::num(baseline.avgCorrelation(), 3),
                  TablePrinter::num(baseline.avgCorrelation(), 3)});

    for (unsigned m : {2u, 4u, 8u, 16u}) {
        std::vector<std::string> row{TablePrinter::num(m)};
        for (const auto &policy : bench::defenseFamilies(m)) {
            const auto eval = bench::evaluatePolicy(policy, samples);
            row.push_back(TablePrinter::num(eval.avgCorrelation(), 3));
        }
        table.addRow(std::move(row));
    }
    table.print();

    std::printf("\nPaper claims: FSS stays attackable at every M "
                "(correlation near the baseline level); FSS+RTS, RSS and "
                "RSS+RTS\ncollapse the correlation into the noise floor, "
                "with RSS+RTS strongest at M = 2 and 4 and FSS+RTS at "
                "M = 8 and 16\n(cf. Table II).\n");
    bench::writeEngineReport();
    return 0;
}
