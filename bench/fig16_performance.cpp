/**
 * @file
 * Fig. 16: performance and data movement of every defense vs
 * num-subwarp: (a) total memory accesses, (b) execution time, both
 * normalized to the baseline (num-subwarp = 1).
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv, 20).samples;

    const auto baseline = bench::evaluatePolicy(
        core::CoalescingPolicy::baseline(), samples);

    printBanner("Fig. 16a: total memory accesses (normalized to baseline)");
    TablePrinter acc({"num-subwarp", "FSS", "FSS+RTS", "RSS", "RSS+RTS"});
    std::vector<std::vector<bench::PolicyEvaluation>> evals;
    for (unsigned m : {2u, 4u, 8u, 16u, 32u}) {
        std::vector<bench::PolicyEvaluation> row;
        for (const auto &policy : bench::defenseFamilies(m))
            row.push_back(bench::evaluatePolicy(policy, samples));
        evals.push_back(std::move(row));
    }
    const std::vector<unsigned> ms = {2, 4, 8, 16, 32};
    for (std::size_t i = 0; i < ms.size(); ++i) {
        std::vector<std::string> row{TablePrinter::num(ms[i])};
        for (const auto &eval : evals[i]) {
            row.push_back(TablePrinter::num(eval.meanTotalAccesses /
                                                baseline.meanTotalAccesses,
                                            2) +
                          "x");
        }
        acc.addRow(std::move(row));
    }
    acc.print();

    printBanner("Fig. 16b: execution time (normalized to baseline)");
    TablePrinter time({"num-subwarp", "FSS", "FSS+RTS", "RSS",
                       "RSS+RTS"});
    for (std::size_t i = 0; i < ms.size(); ++i) {
        std::vector<std::string> row{TablePrinter::num(ms[i])};
        for (const auto &eval : evals[i]) {
            row.push_back(TablePrinter::num(eval.meanTotalTime /
                                                baseline.meanTotalTime,
                                            2) +
                          "x");
        }
        time.addRow(std::move(row));
    }
    time.print();

    std::printf("\nBaseline (num-subwarp = 1): %.0f accesses, %.0f "
                "cycles per 32-line plaintext.\n",
                baseline.meanTotalAccesses, baseline.meanTotalTime);
    std::printf("\nPaper claims: accesses and time grow with "
                "num-subwarp; RSS-based mechanisms cost less than "
                "FSS-based ones (skewed\nsizes recover coalescing); RTS "
                "is performance-neutral.\n");
    return 0;
}
