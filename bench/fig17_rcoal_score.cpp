/**
 * @file
 * Fig. 17: the RCoal_Score trade-off metric (Eq. 7) for every defense
 * and num-subwarp, under (a) security-oriented weights a=1, b=1 and
 * (b) performance-oriented weights a=1, b=20.
 */

#include <cmath>
#include <cstdio>

#include "rcoal/common/logging.hpp"
#include "rcoal/core/rcoal_score.hpp"
#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv).samples;

    const auto baseline = bench::evaluatePolicy(
        core::CoalescingPolicy::baseline(), samples);

    struct Cell
    {
        double security = 0.0;
        double norm_time = 1.0;
    };
    std::vector<unsigned> ms = {2, 4, 8, 16};
    std::vector<std::vector<Cell>> cells;
    for (unsigned m : ms) {
        std::vector<Cell> row;
        for (const auto &policy : bench::defenseFamilies(m)) {
            const auto eval = bench::evaluatePolicy(policy, samples);
            Cell cell;
            cell.security =
                core::securityStrength(eval.avgCorrelation());
            cell.norm_time =
                eval.meanTotalTime / baseline.meanTotalTime;
            row.push_back(cell);
        }
        cells.push_back(std::move(row));
    }

    const auto render = [&](const char *title, double a, double b) {
        printBanner(title);
        TablePrinter table(
            {"num-subwarp", "FSS", "FSS+RTS", "RSS", "RSS+RTS"});
        for (std::size_t i = 0; i < ms.size(); ++i) {
            std::vector<std::string> row{TablePrinter::num(ms[i])};
            for (const auto &cell : cells[i]) {
                const double score =
                    core::rcoalScore(cell.security, cell.norm_time, a, b);
                row.push_back(std::isinf(score)
                                  ? "inf"
                                  : strprintf("%.3g", score));
            }
            table.addRow(std::move(row));
        }
        table.print();
    };

    render("Fig. 17a: RCoal_Score, security-oriented (a=1, b=1)", 1.0,
           1.0);
    render("Fig. 17b: RCoal_Score, performance-oriented (a=1, b=20)",
           1.0, 20.0);

    std::printf("\nS = (1 / avg corresponding-attack correlation)^2; "
                "time normalized to baseline. Paper claims: under (a) "
                "the RTS-based\nmechanisms at large M win on raw "
                "security; under (b) RSS+RTS overtakes FSS+RTS because "
                "it buys nearly the same security\nfor less time.\n");
    return 0;
}
