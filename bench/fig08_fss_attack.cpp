/**
 * @file
 * Fig. 8: the FSS attack (Algorithm 1) against an FSS-enabled GPU -
 * subwarp-aware estimation restores the correlation, so plain FSS is
 * not a sufficient defense (until M = 32 where the access count is
 * constant).
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples =
        bench::parseBenchArgsWarm(argc, argv).samples;

    printBanner("Fig. 8: FSS defense vs FSS attack (key byte 0 scatter)");
    const auto true_key = [&] {
        sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
        attack::EncryptionService svc(cfg, bench::victimKey());
        return svc.lastRoundKey();
    }();

    TablePrinter table({"num-subwarp", "avg corr (all bytes)",
                        "byte-0 corr", "byte-0 rank", "bytes recovered"});
    for (unsigned m : {2u, 4u, 8u, 16u, 32u}) {
        const auto eval =
            bench::evaluatePolicy(core::CoalescingPolicy::fss(m), samples);
        std::printf("num-subwarp = %u:\n", m);
        bench::printByteScatterSummary(eval.attackResult.bytes[0],
                                       true_key[0]);
        table.addRow(
            {TablePrinter::num(m),
             TablePrinter::num(eval.avgCorrelation(), 3),
             TablePrinter::num(
                 eval.attackResult.bytes[0].correctGuessCorrelation, 3),
             TablePrinter::num(
                 static_cast<int>(eval.attackResult.bytes[0].rankOfCorrect)),
             TablePrinter::num(eval.attackResult.bytesRecovered) + "/16"});
    }
    std::printf("\n");
    table.print();
    std::printf("\nPaper claims: the FSS attack re-establishes a high "
                "correlation for all M < 32; at M = 32 the access count "
                "is constant\n(512) and the correlation drops to 0, i.e. "
                "standalone FSS only helps at the price of fully "
                "disabled coalescing.\n");
    bench::writeEngineReport();
    return 0;
}
