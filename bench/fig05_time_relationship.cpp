/**
 * @file
 * Fig. 5: relationship between last-round and total execution time -
 * both track the number of last-round coalesced accesses.
 */

#include <cstdio>

#include "rcoal/common/stats.hpp"
#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples = bench::parseBenchArgs(argc, argv).samples;

    printBanner("Fig. 5: last-round vs total execution time");
    const auto obs = bench::collectObservations(
        core::CoalescingPolicy::baseline(), samples);

    std::vector<double> accesses;
    for (const auto &o : obs)
        accesses.push_back(static_cast<double>(o.lastRoundAccesses));
    const auto last =
        attack::measurementSeries(obs, attack::MeasurementVector::LastRoundTime);
    const auto total =
        attack::measurementSeries(obs, attack::MeasurementVector::TotalTime);

    TablePrinter table({"sample", "last-round accesses",
                        "last-round cycles", "total cycles"});
    for (unsigned i = 0; i < std::min<std::size_t>(10, obs.size()); ++i) {
        table.addRow({TablePrinter::num(i),
                      TablePrinter::num(obs[i].lastRoundAccesses),
                      TablePrinter::num(last[i], 0),
                      TablePrinter::num(total[i], 0)});
    }
    table.print();
    std::printf("(first 10 of %u samples shown)\n\n", samples);

    std::printf("corr(last-round accesses, last-round time) = %+.3f\n",
                pearsonCorrelation(accesses, last));
    std::printf("corr(last-round accesses, total time)      = %+.3f\n",
                pearsonCorrelation(accesses, total));
    std::printf("corr(last-round time, total time)          = %+.3f\n",
                pearsonCorrelation(last, total));
    std::printf("\nPaper claim: both total and last-round execution time "
                "correlate with last-round coalesced accesses, so the\n"
                "attacker can work from either; the last-round window is "
                "the cleaner (stronger-attacker) signal.\n");
    return 0;
}
