/**
 * @file
 * Fig. 6 + Section III motivation: (a) the baseline attack recovers
 * key byte 0 when coalescing is enabled; (b) recovery fails with
 * coalescing disabled - but disabling costs up to ~2x performance and
 * ~2.3x data movement.
 */

#include <cstdio>

#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    // Byte-level recovery at paper-scale samples is marginal in our
    // noisier DRAM model; 400 samples makes Fig. 6a unambiguous (see
    // EXPERIMENTS.md).
    const unsigned samples = bench::parseBenchArgs(argc, argv, 400).samples;

    printBanner("Fig. 6a: coalescing ENABLED - baseline attack, key byte 0");
    const auto enabled = bench::evaluatePolicy(
        core::CoalescingPolicy::baseline(), samples);
    const auto true_key = [&] {
        sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
        attack::EncryptionService svc(cfg, bench::victimKey());
        return svc.lastRoundKey();
    }();
    bench::printByteScatterSummary(enabled.attackResult.bytes[0],
                                   true_key[0]);
    std::printf("  full key: %u/16 bytes recovered, avg correct-guess "
                "corr %+.3f\n",
                enabled.attackResult.bytesRecovered,
                enabled.avgCorrelation());

    printBanner("Fig. 6b: coalescing DISABLED - baseline attack, key byte 0");
    const auto disabled = bench::evaluatePolicy(
        core::CoalescingPolicy::disabled(), std::min(samples, 100u));
    bench::printByteScatterSummary(disabled.attackResult.bytes[0],
                                   true_key[0]);
    std::printf("  full key: %u/16 bytes recovered, avg correct-guess "
                "corr %+.3f\n",
                disabled.attackResult.bytesRecovered,
                disabled.avgCorrelation());

    printBanner("Section III: the cost of disabling coalescing");
    TablePrinter table({"config", "mean total cycles", "mean accesses",
                        "slowdown", "data movement"});
    table.addRow({"coalescing on", TablePrinter::num(enabled.meanTotalTime, 0),
                  TablePrinter::num(enabled.meanTotalAccesses, 0), "1.00x",
                  "1.00x"});
    table.addRow(
        {"coalescing off", TablePrinter::num(disabled.meanTotalTime, 0),
         TablePrinter::num(disabled.meanTotalAccesses, 0),
         TablePrinter::num(disabled.meanTotalTime / enabled.meanTotalTime,
                           2) +
             "x",
         TablePrinter::num(
             disabled.meanTotalAccesses / enabled.meanTotalAccesses, 2) +
             "x"});
    table.print();
    std::printf("\nPaper reports up to 178%% slowdown and 2.7x data "
                "movement (1024-line plaintexts); the 32-line shape is "
                "the same - security without coalescing is paid for in "
                "bandwidth.\n");
    return 0;
}
