/**
 * @file
 * The correlation attack, mounted against a replicated fleet.
 *
 * rcoal::fleet puts N GpuMachine+serve replicas behind a deterministic
 * router and a multi-tenant load model. That changes the attacker's
 * problem: which replica serves a probe now depends on placement. This
 * driver contrasts the two extremes across routing policies:
 *
 *  - pinned: the attacker steers every probe onto one replica (tenant
 *    affinity from the attacker's perspective, or a placement exploit),
 *    concentrating the timing series on a single device;
 *  - sprayed: probes flow through the configured policy like any other
 *    tenant, scattering the series over replicas with independent
 *    subwarp randomness and different co-tenant contention.
 *
 * Each cell reports the fleet operator's view (per-replica and
 * fleet-aggregate p50/p99/p999, throughput, rejections) next to the
 * attacker's (recovered key bytes, average correct-guess correlation)
 * and the online FleetLeakageAuditor's per-replica + aggregate
 * correlation gauges — the monitoring a deployment would actually page
 * on. A final scenario turns the queue-depth autoscaler on under a
 * heavier tenant mix and prints its action log.
 *
 * Every scenario is an independent single-threaded simulation;
 * scenarios spread over the bench pool and all printed output is
 * byte-identical for any RCOAL_THREADS and with cycle skipping on or
 * off.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "rcoal/attack/served_attack.hpp"
#include "rcoal/common/logging.hpp"
#include "rcoal/fleet/fleet.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/sampler.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

constexpr unsigned kReplicas = 3;

/** One (coalescing, routing, placement) cell of the sweep. */
struct Scenario
{
    const char *coalescingName; ///< "BASE" or "RSS+RTS".
    core::CoalescingPolicy gpuPolicy;
    fleet::RoutingPolicy routing;
    bool pinned; ///< Attacker pins probes to replica 0.
};

struct ScenarioResult
{
    Scenario scenario;
    fleet::FleetReport report;
    attack::KeyAttackResult attack;
    double fleetSeconds = 0.0;
    /** Live-telemetry state; outlives the run for rendering. */
    std::unique_ptr<telemetry::MetricRegistry> registry;
    std::unique_ptr<telemetry::TelemetrySampler> sampler;
    std::unique_ptr<telemetry::FleetLeakageAuditor> auditor;
};

sim::GpuConfig
fleetGpu(const Scenario &scenario, std::size_t index,
         std::uint64_t root_seed)
{
    sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    gpu.seed = Rng::deriveSeed(root_seed, index + 1);
    gpu.policy = scenario.gpuPolicy;
    return gpu;
}

serve::ServeConfig
fleetServe()
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 64;
    cfg.maxBatchRequests = 4;
    cfg.batchTimeoutCycles = 3000;
    cfg.smsPerKernel = 5;
    return cfg;
}

fleet::FleetWorkloadSpec
fleetWorkload(const Scenario &scenario, std::size_t index,
              unsigned probe_samples, std::uint64_t root_seed)
{
    fleet::FleetWorkloadSpec spec;
    spec.probeSamples = probe_samples;
    spec.probeLines = 32;
    // Probe plaintext stream root = the solo harness's plaintext seed,
    // so the attacker submits the same probe sequence in every world.
    spec.probeSeed = 7;
    spec.probeThinkCycles = 200;
    spec.pinProbesToReplica = scenario.pinned ? 0 : -1;

    spec.tenants.tenants = 4;
    spec.tenants.baseMeanGapCycles = 6000.0;
    spec.tenants.zipfExponent = 1.0;
    spec.tenants.burstProbability = 0.05;
    spec.tenants.burstLength = 4;
    spec.tenants.burstRateFactor = 4.0;
    spec.tenants.lineChoices = {32, 64};
    spec.tenants.seed = Rng::deriveSeed(root_seed, 1000 + index);
    return spec;
}

ScenarioResult
runScenario(const Scenario &scenario, std::size_t index,
            unsigned probe_samples, std::uint64_t root_seed,
            Cycle telemetry_interval)
{
    const sim::GpuConfig gpu = fleetGpu(scenario, index, root_seed);
    const serve::ServeConfig serve_cfg = fleetServe();
    fleet::FleetConfig fleet_cfg;
    fleet_cfg.numReplicas = kReplicas;
    fleet_cfg.routing = scenario.routing;

    ScenarioResult result;
    result.scenario = scenario;
    result.registry = std::make_unique<telemetry::MetricRegistry>();
    result.sampler = std::make_unique<telemetry::TelemetrySampler>(
        *result.registry, telemetry_interval);
    result.auditor = std::make_unique<telemetry::FleetLeakageAuditor>(
        *result.registry, telemetry::LeakageAuditor::Config{},
        kReplicas);
    fleet::FleetTelemetry hooks;
    hooks.sampler = result.sampler.get();
    hooks.auditor = result.auditor.get();

    const fleet::FleetServer fleet(gpu, serve_cfg, fleet_cfg,
                                   bench::victimKey());
    const auto start = std::chrono::steady_clock::now();
    result.report = fleet.run(
        fleetWorkload(scenario, index, probe_samples, root_seed),
        &hooks);
    result.fleetSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    auto observations = attack::probeObservations(result.report.completed);
    attack::winsorizeObservations(observations,
                                  attack::MeasurementVector::LastRoundTime);

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = gpu.policy; // Attacker knows the defense.
    attack_cfg.measurement = attack::MeasurementVector::LastRoundTime;
    const attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(gpu, bench::victimKey());
    result.attack =
        attacker.attackKey(observations, reference.lastRoundKey());
    return result;
}

const char *
placementName(bool pinned)
{
    return pinned ? "pinned" : "sprayed";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = rcoal::bench::parseBenchArgs(argc, argv, 48);

    printBanner("Fleet: correlation attack against a replicated service");
    std::printf(
        "victim: AES-128 behind %u replicas, %u probe samples; probes\n"
        "either pinned to replica 0 or sprayed through the router,\n"
        "against 4 zipf-skewed background tenants with bursts\n\n",
        kReplicas, opts.samples);

    const auto base = core::CoalescingPolicy::baseline();
    const auto rcoal_policy = core::CoalescingPolicy::rss(8, true);
    std::vector<Scenario> scenarios;
    for (const auto &coalescing :
         {std::pair{"BASE", base}, std::pair{"RSS+RTS", rcoal_policy}}) {
        for (fleet::RoutingPolicy routing :
             {fleet::RoutingPolicy::RoundRobin,
              fleet::RoutingPolicy::JoinShortestQueue,
              fleet::RoutingPolicy::TenantAffinity}) {
            for (bool pinned : {true, false}) {
                scenarios.push_back(Scenario{coalescing.first,
                                             coalescing.second, routing,
                                             pinned});
            }
        }
    }

    const auto results = rcoal::bench::benchPool().parallelMap(
        scenarios.size(), [&](std::size_t i) {
            return runScenario(scenarios[i], i, opts.samples, opts.seed,
                               opts.telemetryInterval);
        });

    rcoal::TablePrinter table(
        {"coalesce", "routing", "probes", "probe p50", "p99", "p999",
         "req/s", "rej", "fleet corr", "avg corr", "bytes"});
    for (const auto &r : results) {
        const auto &probe = r.report.probeLatency;
        table.addRow(
            {r.scenario.coalescingName,
             fleet::routingPolicyName(r.scenario.routing),
             placementName(r.scenario.pinned),
             rcoal::TablePrinter::num(probe.p50, 0),
             rcoal::TablePrinter::num(probe.p99, 0),
             rcoal::TablePrinter::num(probe.p999, 0),
             rcoal::TablePrinter::num(r.report.throughputReqPerSec, 0),
             rcoal::TablePrinter::num(
                 static_cast<std::int64_t>(r.report.rejected)),
             rcoal::TablePrinter::num(r.auditor->fleetCorrelation(), 4),
             rcoal::TablePrinter::num(r.attack.avgCorrectCorrelation, 4),
             rcoal::TablePrinter::num(r.attack.bytesRecovered) + "/16"});
    }
    table.print();

    // The operator's latency view, per replica: an attacker pinned to
    // replica 0 shows up as a latency and occupancy skew long before
    // any key byte falls.
    std::printf("\nper-replica latency (all requests, cycles):\n");
    for (const auto &r : results) {
        std::printf("  %-8s %-4s %-8s", r.scenario.coalescingName,
                    fleet::routingPolicyName(r.scenario.routing),
                    placementName(r.scenario.pinned));
        for (const auto &rep : r.report.replicas) {
            std::printf("  [%u] n=%-4zu p50 %-6.0f p99 %-6.0f p999 %-6.0f",
                        rep.replica, rep.allLatency.count,
                        rep.allLatency.p50, rep.allLatency.p99,
                        rep.allLatency.p999);
        }
        std::printf("\n");
    }

    // The monitoring view: per-replica + aggregate auditor correlation.
    // Pinning concentrates the attacker's sample on one replica's
    // auditor; spraying dilutes every per-replica series while the
    // fleet aggregate still accumulates the full sample — the reason
    // the aggregate gauge exists.
    std::printf("\nleakage auditors (per-replica corr | n, then fleet):\n");
    for (const auto &r : results) {
        std::printf("  %-8s %-4s %-8s", r.scenario.coalescingName,
                    fleet::routingPolicyName(r.scenario.routing),
                    placementName(r.scenario.pinned));
        for (unsigned rep = 0; rep < kReplicas; ++rep) {
            std::printf("  [%u] %+0.3f|%-3zu", rep,
                        r.auditor->correlation(rep),
                        r.auditor->samples(rep));
        }
        std::printf("  fleet %+0.4f|%zu%s\n",
                    r.auditor->fleetCorrelation(),
                    r.auditor->fleetSamples(),
                    r.auditor->alerting() ? "  ALERT" : "");
    }

    // The placement axis acts through contention, not randomness: BASE
    // coalescing is deterministic, so probes from different replicas
    // are directly comparable and the only noise placement adds is
    // co-tenant load. Pinning concentrates the probe stream AND its
    // share of routed tenants on one machine; under round-robin that
    // self-inflicted contention can dilute the attacker more than
    // spraying does. What must hold — and what the summary line below
    // reports — is that RCoal floors the strongest placement an
    // attacker can pick, so security never rests on routing luck.
    std::printf("\npinned vs sprayed (avg correct-guess correlation):\n");
    double base_best = 0.0, rcoal_best = 0.0;
    for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
        const auto &pinned = results[i];
        const auto &sprayed = results[i + 1];
        const double delta = pinned.attack.avgCorrectCorrelation -
                             sprayed.attack.avgCorrectCorrelation;
        std::printf("  %-8s %-4s pinned %+0.4f vs sprayed %+0.4f "
                    "(delta %+0.4f)\n",
                    pinned.scenario.coalescingName,
                    fleet::routingPolicyName(pinned.scenario.routing),
                    pinned.attack.avgCorrectCorrelation,
                    sprayed.attack.avgCorrectCorrelation, delta);
    }
    for (const auto &r : results) {
        double &best = std::string(r.scenario.coalescingName) == "BASE"
                           ? base_best
                           : rcoal_best;
        best = std::max(best, r.attack.avgCorrectCorrelation);
    }
    std::printf("  strongest cell: BASE %+0.4f vs RSS+RTS %+0.4f "
                "(attacker picks placement; RCoal floors every choice)\n",
                base_best, rcoal_best);

    // Autoscaler showcase: a cold 3-replica fleet under a heavier
    // tenant mix, growing on the queue-depth SLO it reads back from
    // the telemetry registry.
    {
        const Scenario scenario{"BASE", base,
                                fleet::RoutingPolicy::JoinShortestQueue,
                                false};
        const sim::GpuConfig gpu =
            fleetGpu(scenario, scenarios.size(), opts.seed);
        fleet::FleetConfig cfg;
        cfg.numReplicas = kReplicas;
        cfg.routing = scenario.routing;
        cfg.autoscaler.enabled = true;
        cfg.autoscaler.evalIntervalCycles = 25'000;
        cfg.autoscaler.queueDepthSlo = 4.0;
        cfg.autoscaler.scaleDownQueueDepth = 0.5;
        cfg.autoscaler.cooldownCycles = 50'000;
        fleet::FleetWorkloadSpec spec = fleetWorkload(
            scenario, scenarios.size(), opts.samples, opts.seed);
        spec.tenants.baseMeanGapCycles = 1500.0;

        const fleet::FleetServer fleet(gpu, fleetServe(), cfg,
                                       rcoal::bench::victimKey());
        const fleet::FleetReport report = fleet.run(spec);
        std::printf("\nautoscaler (cold start, JSQ, heavy tenants): "
                    "%.2f active replicas avg, %zu actions\n",
                    report.meanActiveReplicas,
                    report.autoscalerActions.size());
        for (const auto &action : report.autoscalerActions) {
            std::printf("  @%-10llu %u -> %u (mean depth %.2f)\n",
                        static_cast<unsigned long long>(action.cycle),
                        action.fromReplicas, action.toReplicas,
                        action.meanQueueDepth);
        }
    }

    for (const auto &r : results) {
        rcoal::bench::engineReport().record(
            "fleet", r.report.completed.size(), r.fleetSeconds);
    }

    // Fleet SLO numbers into the engine report: the aggregate and the
    // per-replica p50/p99/p999 plus throughput per scenario, keyed by
    // (coalescing, routing, placement).
    auto &engine = rcoal::bench::engineReport();
    std::string fleet_json = "{";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const auto &all = r.report.allLatency;
        fleet_json += strprintf(
            "%s\"%s/%s/%s\":{\"p50\":%.0f,\"p99\":%.0f,\"p999\":%.0f,"
            "\"req_per_s\":%.1f,\"rejected\":%llu,"
            "\"fleet_corr\":%.6f}",
            i == 0 ? "" : ",", r.scenario.coalescingName,
            fleet::routingPolicyName(r.scenario.routing),
            placementName(r.scenario.pinned), all.p50, all.p99, all.p999,
            r.report.throughputReqPerSec,
            static_cast<unsigned long long>(r.report.rejected),
            r.auditor->fleetCorrelation());
    }
    fleet_json += "}";
    engine.setExtra("fleet_slo", fleet_json);
    engine.setExtra("fleet_replicas", std::to_string(kReplicas));

    rcoal::bench::writeEngineReport();
    return 0;
}
