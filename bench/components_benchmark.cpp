/**
 * @file
 * google-benchmark microbenchmarks of the core components: coalescer,
 * partition sampling, T-table AES, DRAM model, attack estimation, a
 * full 32-line kernel launch, and GpuMachine tick throughput (idle /
 * PRT-saturated / DRAM-saturated, with and without cycle skipping).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "rcoal/aes/ttable.hpp"
#include "rcoal/attack/correlation_attack.hpp"
#include "rcoal/core/coalescer.hpp"
#include "rcoal/core/partitioner.hpp"
#include "rcoal/mem/sectored_cache.hpp"
#include "rcoal/sim/dram.hpp"
#include "rcoal/sim/gpu.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/workloads/aes_kernel.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

std::vector<core::LaneRequest>
randomLanes(Rng &rng)
{
    std::vector<core::LaneRequest> lanes(32);
    for (ThreadId t = 0; t < 32; ++t)
        lanes[t] = {t, 0x1000 + rng.below(16) * 64, 4, true};
    return lanes;
}

void
BM_CoalesceBaseline(benchmark::State &state)
{
    Rng rng(1);
    const core::Coalescer coalescer(64);
    const auto lanes = randomLanes(rng);
    const auto partition = core::SubwarpPartition::single(32);
    for (auto _ : state)
        benchmark::DoNotOptimize(coalescer.coalesce(lanes, partition));
}
BENCHMARK(BM_CoalesceBaseline);

void
BM_CoalesceRssRts8(benchmark::State &state)
{
    Rng rng(2);
    const core::Coalescer coalescer(64);
    const auto lanes = randomLanes(rng);
    core::SubwarpPartitioner partitioner(
        core::CoalescingPolicy::rss(8, true), 32);
    const auto partition = partitioner.draw(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(coalescer.coalesce(lanes, partition));
}
BENCHMARK(BM_CoalesceRssRts8);

void
BM_PartitionDraw(benchmark::State &state)
{
    Rng rng(3);
    core::SubwarpPartitioner partitioner(
        core::CoalescingPolicy::rss(static_cast<unsigned>(state.range(0)),
                                    true),
        32);
    for (auto _ : state)
        benchmark::DoNotOptimize(partitioner.draw(rng));
}
BENCHMARK(BM_PartitionDraw)->Arg(2)->Arg(8)->Arg(32);

void
BM_TTableEncryptTraced(benchmark::State &state)
{
    const aes::TTableAes cipher(bench::victimKey());
    aes::Block block{};
    std::uint8_t counter = 0;
    for (auto _ : state) {
        block[0] = ++counter;
        std::vector<aes::TableLookup> trace;
        benchmark::DoNotOptimize(
            cipher.encryptBlockTraced(block, trace));
    }
}
BENCHMARK(BM_TTableEncryptTraced);

void
BM_DramPartitionDrain(benchmark::State &state)
{
    const sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    const sim::AddressMapping mapping(cfg);
    Rng rng(4);
    for (auto _ : state) {
        sim::KernelStats stats;
        sim::DramPartition dram(cfg, 0, &stats);
        Cycle now = 0;
        unsigned completed = 0;
        unsigned injected = 0;
        while (completed < 64) {
            if (injected < 64 && dram.canAccept()) {
                sim::MemoryAccess access;
                access.id = injected;
                access.blockAddr = (rng.below(512) * 6) * 256;
                dram.enqueue(access, mapping.decode(access.blockAddr),
                             now);
                ++injected;
            }
            dram.tick(++now);
            while (dram.hasCompleted(now)) {
                dram.popCompleted(now);
                ++completed;
            }
        }
        benchmark::DoNotOptimize(now);
    }
}
BENCHMARK(BM_DramPartitionDrain);

void
BM_AttackEstimate(benchmark::State &state)
{
    attack::AttackConfig cfg;
    cfg.assumedPolicy = core::CoalescingPolicy::rss(8, true);
    attack::CorrelationAttack attacker(cfg);
    Rng data_rng(5);
    std::vector<aes::Block> lines(32);
    for (auto &line : lines) {
        for (auto &b : line)
            b = static_cast<std::uint8_t>(data_rng.below(256));
    }
    Rng rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            attacker.estimateLastRoundAccesses(lines, 0, 0x42, rng));
    }
}
BENCHMARK(BM_AttackEstimate);

/**
 * Simulated core cycles per wall second on an idle machine: the floor
 * cost of the main loop. Arg(0) steps every cycle; Arg(1) fast-forwards
 * in nextEventCycle()-bounded strides like runUntilDone does (clamped
 * to 4096-cycle hops so one benchmark iteration stays bounded).
 */
void
BM_MachineTickIdle(benchmark::State &state)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.cycleSkipping = state.range(0) != 0;
    auto machine = std::make_unique<sim::GpuMachine>(cfg);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        if (machine->now() > 1'000'000'000) {
            // Stay far away from the machine's deadlock cycle cap.
            state.PauseTiming();
            machine = std::make_unique<sim::GpuMachine>(cfg);
            state.ResumeTiming();
        }
        const Cycle before = machine->now();
        machine->tick();
        if (machine->cycleSkippingEnabled()) {
            const Cycle target = std::min(machine->nextEventCycle(),
                                          machine->now() + 4096);
            if (target > machine->now() + 1)
                machine->skipTo(target);
        }
        cycles += machine->now() - before;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}
BENCHMARK(BM_MachineTickIdle)->Arg(0)->Arg(1);

/**
 * Shared body of the saturated-machine benchmarks: run the 32-line AES
 * kernel to completion per iteration and report simulated cycles per
 * second. Arg toggles cycle skipping.
 */
void
runSaturatedMachineBench(benchmark::State &state, sim::GpuConfig cfg)
{
    cfg.cycleSkipping = state.range(0) != 0;
    cfg.seed = 11;
    sim::Gpu gpu(cfg);
    Rng rng(12);
    const auto plaintext = workloads::randomPlaintext(32, rng);
    const workloads::AesGpuKernel kernel(plaintext, bench::victimKey(),
                                         cfg.warpSize);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const sim::KernelStats stats = gpu.launch(kernel);
        cycles += stats.cycles;
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}

/** PRT-starved machine: every divergent load stalls on PRT capacity. */
void
BM_MachinePrtSaturated(benchmark::State &state)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.prtEntries = cfg.warpSize;
    cfg.policy = core::CoalescingPolicy::rss(8, true);
    runSaturatedMachineBench(state, cfg);
}
BENCHMARK(BM_MachinePrtSaturated)->Arg(0)->Arg(1);

/** One memory partition: all traffic contends on a single controller. */
void
BM_MachineDramSaturated(benchmark::State &state)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numPartitions = 1;
    runSaturatedMachineBench(state, cfg);
}
BENCHMARK(BM_MachineDramSaturated)->Arg(0)->Arg(1);

/**
 * Crossbar-starved machine: two-deep ports into a single partition keep
 * every input queue backed up, so the per-tick cost is dominated by the
 * output-major headTargets arbitration and the backpressure rescans the
 * SlotRing/slot-index rewrite targets.
 */
void
BM_MachineXbarSaturated(benchmark::State &state)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numPartitions = 1;
    cfg.icnQueueDepth = 2;
    cfg.dramQueueDepth = 2;
    runSaturatedMachineBench(state, cfg);
}
BENCHMARK(BM_MachineXbarSaturated)->Arg(0)->Arg(1);

/**
 * Raw tag-array throughput of the sectored cache on a mixed
 * hit/sector-miss/line-miss stream. This is the structure whose inline
 * age-counter LRU replaced the per-set std::list (which allocated on
 * every fill); the machine-tick benchmarks below gate the end-to-end
 * effect.
 */
void
BM_SectoredCacheAccessFill(benchmark::State &state)
{
    mem::SectoredCache cache(sim::CacheGeometry{});
    Rng rng(13);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        const Addr addr = rng.below(4096) * 32;
        if (cache.access(addr, 32) != mem::AccessOutcome::Hit)
            cache.fill(addr, 32);
        ++ops;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_SectoredCacheAccessFill);

/** Caches + MSHRs on: the L1/L2 lookup path on every LD/ST drain. */
void
BM_MachineCacheSaturated(benchmark::State &state)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.l1Enabled = true;
    cfg.l2Enabled = true;
    cfg.mshrEnabled = true;
    runSaturatedMachineBench(state, cfg);
}
BENCHMARK(BM_MachineCacheSaturated)->Arg(0)->Arg(1);

void
BM_AesKernelLaunch32Lines(benchmark::State &state)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 9;
    sim::Gpu gpu(cfg);
    Rng rng(10);
    const auto plaintext = workloads::randomPlaintext(32, rng);
    const workloads::AesGpuKernel kernel(plaintext, bench::victimKey(),
                                         cfg.warpSize);
    for (auto _ : state)
        benchmark::DoNotOptimize(gpu.launch(kernel));
}
BENCHMARK(BM_AesKernelLaunch32Lines);

} // namespace

BENCHMARK_MAIN();
