/**
 * @file
 * Table I: key configuration parameters of the simulated GPU, plus a
 * substrate sanity run that exercises the configured machine.
 */

#include <cstdio>

#include "rcoal/sim/gpu.hpp"
#include "rcoal/workloads/micro_kernels.hpp"
#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;

    bench::parseBenchArgs(argc, argv, 1);

    printBanner("Table I: simulated GPU configuration");
    const sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    std::fputs(cfg.describe().c_str(), stdout);

    printBanner("Substrate sanity: streaming kernel on the Table I machine");
    sim::Gpu gpu(cfg);
    const auto kernel = workloads::makeStreamingKernel(30, 64, 32);
    const sim::KernelStats stats = gpu.launch(*kernel);
    std::fputs(stats.describe().c_str(), stdout);

    const double bytes = static_cast<double>(stats.coalescedAccesses) *
                         cfg.coalesceBlockBytes;
    const double seconds = static_cast<double>(stats.cycles) /
                           (cfg.coreClockMhz * 1e6);
    std::printf("\nachieved DRAM bandwidth: %.1f GB/s (streaming, %u "
                "partitions)\n",
                bytes / seconds / 1e9, cfg.numPartitions);
    return 0;
}
