/**
 * @file
 * Stage-level leakage attribution: WHERE in the pipeline does the
 * timing channel live?
 *
 * The whole-kernel LeakageAuditor says THAT a deployment leaks — its
 * single correlation folds queueing, coalescing, interconnect and DRAM
 * time into one number. This driver splits that number by pipeline
 * stage: every request carries a span (rcoal::spans) whose per-stage
 * last-round cycle totals are correlated, stage by stage, against the
 * request's predicted baseline access count (StageLeakageAuditor).
 *
 * The paper's prediction (Kadam et al., HPCA'18, Sec. III): the
 * channel is created at the coalescer — the access COUNT is the secret
 * — and monetized in DRAM service time, so under BASE the coalesce and
 * dram_service stages should carry significant correlation while
 * queueing is noise. RSS/RTS randomize the count-to-secret mapping at
 * the source, pushing EVERY stage into the noise floor — which this
 * driver checks across {BASE, FSS, RSS, RSS+RTS} x {flat, L1+L2}
 * memory hierarchies.
 *
 * Span mechanics under test, doubling as a determinism harness: the
 * retained span slab (and therefore the --trace Perfetto export and
 * the digest column) is byte-identical across cycle skipping on/off
 * and any RCOAL_THREADS — CI diffs exactly that.
 *
 * The in-simulator stamp points (coalesce, prt, crossbar, dram) are
 * compiled out under RCOAL_TRACE=OFF; the driver still runs and the
 * frontend stages still resolve, but sim-stage attribution degrades to
 * zero and the verdict lines say so instead of failing.
 */

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>

#include "rcoal/attack/served_attack.hpp"
#include "rcoal/common/logging.hpp"
#include "rcoal/spans/analysis.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/prometheus.hpp"
#include "rcoal/telemetry/sampler.hpp"
#include "rcoal/trace/event.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

/** One (coalescing policy, memory hierarchy) cell of the sweep. */
struct Scenario
{
    const char *coalescingName;  ///< "BASE", "FSS", "RSS", "RSS+RTS".
    const char *coalescingToken; ///< Filename-safe form.
    core::CoalescingPolicy gpuPolicy;
    const char *hierName; ///< "flat" or "l1l2".
    bool hierarchy;       ///< L1+L2+MSHR on.
};

/** A scenario's results plus the live observability state. */
struct ScenarioResult
{
    Scenario scenario;
    serve::ServeReport report;
    double serveSeconds = 0.0;
    std::uint64_t slabDigest = 0;
    std::unique_ptr<telemetry::MetricRegistry> registry;
    std::unique_ptr<telemetry::TelemetrySampler> sampler;
    std::unique_ptr<telemetry::LeakageAuditor> auditor;
    std::unique_ptr<telemetry::StageLeakageAuditor> stageAuditor;
    std::unique_ptr<spans::SpanCollector> collector;
    std::unique_ptr<spans::CriticalPathReducer> reducer;
};

/** Full deterministic configuration of one cell. */
struct ScenarioSetup
{
    sim::GpuConfig gpu;
    serve::ServeConfig cfg;
    serve::WorkloadSpec spec;
};

ScenarioSetup
makeScenarioSetup(const Scenario &scenario, std::size_t index,
                  unsigned probe_samples, std::uint64_t root_seed)
{
    ScenarioSetup setup;
    setup.gpu = sim::GpuConfig::paperBaseline();
    setup.gpu.seed = Rng::deriveSeed(root_seed, index + 1);
    setup.gpu.policy = scenario.gpuPolicy;
    setup.gpu.l1Enabled = scenario.hierarchy;
    setup.gpu.l2Enabled = scenario.hierarchy;
    setup.gpu.mshrEnabled = scenario.hierarchy;

    setup.cfg.batchPolicy = serve::BatchPolicy::Fcfs;
    setup.cfg.queueCapacity = 64;
    setup.cfg.maxBatchRequests = 4;
    setup.cfg.batchTimeoutCycles = 3000;
    setup.cfg.smsPerKernel = 5;
    setup.cfg.warmBootKernels = bench::benchWarmup();

    setup.spec.probeSamples = probe_samples;
    setup.spec.probeLines = 32;
    setup.spec.probeSeed = 7;
    // Think time longer than the batch timeout so consecutive probes
    // never share a batch: co-batched probes overlap in DRAM, and that
    // cross-request queueing noise is exactly what drowns the
    // per-stage duration signal the attribution exists to measure.
    setup.spec.probeThinkCycles = 4000;
    // Sparse background traffic: enough co-residency to exercise the
    // crossbar/DRAM stages with cross-kernel contention, sparse enough
    // that the BASE channel survives for attribution.
    setup.spec.backgroundMeanGapCycles = 60000.0;
    setup.spec.backgroundLineChoices = {32};
    setup.spec.backgroundSeed = Rng::deriveSeed(root_seed, 1000 + index);
    return setup;
}

/** FNV-1a over the retained slab records: the determinism digest. */
std::uint64_t
slabDigest(const spans::SpanSlab &slab)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const spans::SpanRecord &record : slab.snapshot()) {
        const auto *bytes = reinterpret_cast<const unsigned char *>(&record);
        for (std::size_t i = 0; i < sizeof(record); ++i) {
            hash ^= bytes[i];
            hash *= 1099511628211ull;
        }
    }
    return hash;
}

std::vector<std::string>
stageNames()
{
    std::vector<std::string> names;
    names.reserve(spans::kNumSpanStages);
    for (std::size_t s = 0; s < spans::kNumSpanStages; ++s)
        names.emplace_back(
            spans::spanStageName(static_cast<spans::SpanStage>(s)));
    return names;
}

ScenarioResult
runScenario(const Scenario &scenario, std::size_t index,
            unsigned probe_samples, std::uint64_t root_seed,
            Cycle telemetry_interval, unsigned span_sample_rate,
            const sim::MachineSnapshot *warm_boot)
{
    const ScenarioSetup setup =
        makeScenarioSetup(scenario, index, probe_samples, root_seed);

    ScenarioResult result;
    result.scenario = scenario;
    result.registry = std::make_unique<telemetry::MetricRegistry>();
    result.sampler = std::make_unique<telemetry::TelemetrySampler>(
        *result.registry, telemetry_interval);
    const telemetry::MetricRegistry::Labels labels = {
        {"policy", scenario.coalescingName},
        {"hierarchy", scenario.hierName}};
    result.auditor = std::make_unique<telemetry::LeakageAuditor>(
        *result.registry, telemetry::LeakageAuditor::Config{}, labels);
    result.stageAuditor =
        std::make_unique<telemetry::StageLeakageAuditor>(
            *result.registry, telemetry::LeakageAuditor::Config{},
            stageNames(), labels);
    spans::SpanCollector::Config span_cfg;
    span_cfg.sampleRate = span_sample_rate;
    result.collector =
        std::make_unique<spans::SpanCollector>(span_cfg);
    const double core_per_mem =
        setup.gpu.coreClockMhz / setup.gpu.memClockMhz;
    result.reducer = std::make_unique<spans::CriticalPathReducer>(
        *result.registry, core_per_mem, labels);

    serve::ServeTelemetry hooks;
    hooks.sampler = result.sampler.get();
    hooks.auditor = result.auditor.get();
    hooks.spans = result.collector.get();
    hooks.stageAuditor = result.stageAuditor.get();

    const auto start = std::chrono::steady_clock::now();
    auto set = attack::collectSamplesServed(setup.gpu, setup.cfg,
                                            bench::victimKey(),
                                            setup.spec, &hooks, warm_boot);
    result.serveSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.report = std::move(set.report);

    // Critical-path breakdown over every sampled completed request.
    for (const serve::CompletedRequest &done : result.report.completed) {
        if (done.spanSampled)
            result.reducer->observe(done.stageTotals);
    }
    result.slabDigest = slabDigest(result.collector->slab());
    return result;
}

/** Lowercased copy for snapshot filenames. */
std::string
lowered(const char *s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Lint-checked Prometheus snapshot of one scenario's registry. */
void
writeSnapshot(const std::string &dir, const ScenarioResult &r)
{
    const std::string path = dir + "/" +
                             lowered(r.scenario.coalescingToken) + "_" +
                             r.scenario.hierName + ".prom";
    const std::string text = telemetry::renderPrometheus(*r.registry);
    if (const auto lint = telemetry::lintPrometheus(text)) {
        fatal("telemetry exposition failed lint for %s: %s",
              path.c_str(), lint->c_str());
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write telemetry snapshot %s", path.c_str());
    std::fputs(text.c_str(), f);
    std::fclose(f);
    std::printf("  wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = rcoal::bench::parseBenchArgsWarm(argc, argv, 48);

    printBanner("Spans: per-stage leakage attribution");
    std::printf(
        "victim: AES-128, %u probe samples; every request span-traced "
        "(sample rate %u)\n"
        "per-stage Pearson: predicted baseline accesses vs stage "
        "last-round cycles\n\n",
        opts.samples, opts.spanSampleRate);
#if !RCOAL_TRACE_ENABLED
    std::printf("NOTE: RCOAL_TRACE=OFF build — in-simulator stamp "
                "points (coalesce, prt,\n"
                "crossbar, dram_service) are compiled out; only "
                "frontend stages resolve.\n\n");
#endif

    const std::vector<Scenario> scenarios = {
        {"BASE", "base", core::CoalescingPolicy::baseline(), "flat",
         false},
        {"BASE", "base", core::CoalescingPolicy::baseline(), "l1l2",
         true},
        {"FSS", "fss", core::CoalescingPolicy::fss(8), "flat", false},
        {"FSS", "fss", core::CoalescingPolicy::fss(8), "l1l2", true},
        {"RSS", "rss", core::CoalescingPolicy::rss(8), "flat", false},
        {"RSS", "rss", core::CoalescingPolicy::rss(8), "l1l2", true},
        {"RSS+RTS", "rss_rts", core::CoalescingPolicy::rss(8, true),
         "flat", false},
        {"RSS+RTS", "rss_rts", core::CoalescingPolicy::rss(8, true),
         "l1l2", true},
    };

    // One warm-boot snapshot per distinct machine structure: the
    // hierarchy toggles change the machine's component graph and the
    // coalescing policy changes its behaviour, so the snapshot is
    // keyed by both. std::map keeps addresses stable while filling.
    std::map<std::string, sim::MachineSnapshot> boots;
    std::vector<const sim::MachineSnapshot *> warm(scenarios.size(),
                                                   nullptr);
    if (rcoal::bench::benchWarmup() > 0 &&
        rcoal::bench::benchCollectMode() == attack::CollectMode::Fork) {
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const std::string token =
                std::string(scenarios[i].coalescingToken) + "_" +
                scenarios[i].hierName;
            auto it = boots.find(token);
            if (it == boots.end()) {
                const ScenarioSetup setup = makeScenarioSetup(
                    scenarios[i], i, opts.samples, opts.seed);
                const serve::EncryptionServer server(
                    setup.gpu, setup.cfg, rcoal::bench::victimKey());
                it = boots.emplace(token, server.warmBootSnapshot())
                         .first;
            }
            warm[i] = &it->second;
        }
    }

    const auto results = rcoal::bench::benchPool().parallelMap(
        scenarios.size(), [&](std::size_t i) {
            return runScenario(scenarios[i], i, opts.samples, opts.seed,
                               opts.telemetryInterval,
                               opts.spanSampleRate, warm[i]);
        });

    const auto stage_index = [](spans::SpanStage s) {
        return static_cast<std::size_t>(s);
    };
    const std::size_t st_queue = stage_index(spans::SpanStage::Queue);
    const std::size_t st_kexec =
        stage_index(spans::SpanStage::KernelExec);
    const std::size_t st_coal = stage_index(spans::SpanStage::Coalesce);
    const std::size_t st_dram =
        stage_index(spans::SpanStage::DramService);

    rcoal::TablePrinter table({"coalesce", "hier", "spans", "records",
                               "drop", "corr(queue)", "corr(kexec)",
                               "corr(coalesce)", "corr(dram)",
                               "critical", "digest"});
    for (const auto &r : results) {
        const auto &aud = *r.stageAuditor;
        table.addRow(
            {r.scenario.coalescingName, r.scenario.hierName,
             rcoal::TablePrinter::num(static_cast<std::int64_t>(
                 r.collector->spansFinished())),
             rcoal::TablePrinter::num(static_cast<std::int64_t>(
                 r.collector->slab().totalAppended())),
             rcoal::TablePrinter::num(static_cast<std::int64_t>(
                 r.collector->slab().dropped())),
             rcoal::TablePrinter::num(aud.correlation(st_queue), 4),
             rcoal::TablePrinter::num(aud.correlation(st_kexec), 4),
             rcoal::TablePrinter::num(aud.correlation(st_coal), 4),
             rcoal::TablePrinter::num(aud.correlation(st_dram), 4),
             spans::spanStageName(r.reducer->dominantStage()),
             strprintf("%016llx", static_cast<unsigned long long>(
                                      r.slabDigest))});
    }
    table.print();

    // Per-stage alert map: the attribution the driver exists to check.
    std::printf("\nstage attribution (|corr| >= %.2f alerts, per "
                "stage):\n",
                results[0].auditor->alertThreshold());
    for (const auto &r : results) {
        std::printf("  %-8s %-5s", r.scenario.coalescingName,
                    r.scenario.hierName);
        for (std::size_t s = 0; s < r.stageAuditor->stages(); ++s) {
            if (r.stageAuditor->alerting(s)) {
                std::printf(" %s(%+0.3f)",
                            r.stageAuditor->stageName(s).c_str(),
                            r.stageAuditor->correlation(s));
            }
        }
        std::printf("%s\n", [&] {
            for (std::size_t s = 0; s < r.stageAuditor->stages(); ++s)
                if (r.stageAuditor->alerting(s))
                    return "";
            return " (all stages quiet)";
        }());
    }

    // The paper's prediction, as pass/fail lines. Under a TRACE=OFF
    // build the sim stages cannot resolve, so only the randomized-
    // policy quietness claim remains checkable.
    bool base_localized = true;
    bool randomized_quiet = true;
    for (const auto &r : results) {
        const bool is_base = r.scenario.gpuPolicy ==
                             core::CoalescingPolicy::baseline();
        const bool is_randomized =
            r.scenario.gpuPolicy.mechanism == core::Mechanism::Rss ||
            r.scenario.gpuPolicy.randomThreads;
        if (is_base) {
            // The DRAM half of the claim only holds on the paper's
            // configuration (caches disabled): with L1+L2 on, the
            // 32-line T-table is cache-resident after warm-up and the
            // last round generates no DRAM traffic at all — the cache
            // absorbs that stage's channel while the coalesce-count
            // channel survives. So: coalesce must alert on every BASE
            // cell, DRAM on the flat one.
            if (!r.stageAuditor->alerting(st_coal))
                base_localized = false;
            if (!r.scenario.hierarchy &&
                !r.stageAuditor->alerting(st_dram))
                base_localized = false;
        }
        if (is_randomized) {
            for (std::size_t s = 0; s < r.stageAuditor->stages(); ++s)
                if (r.stageAuditor->alerting(s))
                    randomized_quiet = false;
        }
    }
#if RCOAL_TRACE_ENABLED
    std::printf("\nBASE leak localizes to coalesce+dram_service: %s\n",
                base_localized ? "yes" : "NO");
#else
    std::printf("\nBASE leak localizes to coalesce+dram_service: "
                "unresolvable (RCOAL_TRACE=OFF)\n");
    (void)base_localized;
#endif
    std::printf("RSS/RTS push every stage below the alert SLO: %s\n",
                randomized_quiet ? "yes" : "NO");

    if (!opts.telemetryDir.empty()) {
        std::printf("\ntelemetry snapshots (%s):\n",
                    opts.telemetryDir.c_str());
        for (const auto &r : results)
            writeSnapshot(opts.telemetryDir, r);
    }

    // Engine report: serve throughput per scenario plus the span
    // bookkeeping and the attribution map itself.
    std::uint64_t records_total = 0;
    std::uint64_t records_dropped = 0;
    for (const auto &r : results) {
        rcoal::bench::engineReport().record(
            "serve", r.report.completed.size(), r.serveSeconds);
        records_total += r.collector->slab().totalAppended();
        records_dropped += r.collector->slab().dropped();
    }
    auto &engine = rcoal::bench::engineReport();
    engine.setExtra("span_sample_rate",
                    std::to_string(opts.spanSampleRate));
    engine.setExtra("span_records_total",
                    std::to_string(records_total));
    engine.setExtra("span_records_dropped",
                    std::to_string(records_dropped));
    std::string digest_json = "{";
    std::string attribution_json = "{";
    std::string critical_json = "{";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        const std::string key =
            strprintf("%s/%s", r.scenario.coalescingName,
                      r.scenario.hierName);
        digest_json += strprintf("%s\"%s\":\"%016llx\"",
                                 i == 0 ? "" : ",", key.c_str(),
                                 static_cast<unsigned long long>(
                                     r.slabDigest));
        critical_json += strprintf(
            "%s\"%s\":\"%s\"", i == 0 ? "" : ",", key.c_str(),
            spans::spanStageName(r.reducer->dominantStage()));
        attribution_json +=
            strprintf("%s\"%s\":{", i == 0 ? "" : ",", key.c_str());
        for (std::size_t s = 0; s < r.stageAuditor->stages(); ++s) {
            attribution_json += strprintf(
                "%s\"%s\":%.6f", s == 0 ? "" : ",",
                r.stageAuditor->stageName(s).c_str(),
                r.stageAuditor->correlation(s));
        }
        attribution_json += "}";
    }
    engine.setExtra("span_slab_digest", digest_json + "}");
    engine.setExtra("span_stage_attribution", attribution_json + "}");
    engine.setExtra("span_critical_stage", critical_json + "}");

    // --trace FILE: export the BASE/flat scenario's retained spans as
    // a Perfetto timeline (one nested track per request). No re-run
    // needed — the slab already holds the records.
    if (!opts.tracePath.empty()) {
        const ScenarioSetup setup =
            makeScenarioSetup(scenarios[0], 0, opts.samples, opts.seed);
        spans::writeSpanTrace(opts.tracePath, *results[0].collector,
                              setup.gpu.coreClockMhz /
                                  setup.gpu.memClockMhz);
        std::printf("\n[trace] wrote %s (%llu span records retained, "
                    "%llu overwritten)%s\n",
                    opts.tracePath.c_str(),
                    static_cast<unsigned long long>(
                        results[0].collector->slab().totalAppended()),
                    static_cast<unsigned long long>(
                        results[0].collector->slab().dropped()),
                    results[0].collector->slab().totalAppended() == 0
                        ? " — frontend stages only unless built with "
                          "-DRCOAL_TRACE=ON"
                        : "");
    }

    rcoal::bench::writeEngineReport();
    return 0;
}
