/**
 * @file
 * Table II: analytical security results (rho and normalized sample
 * count S) for FSS, FSS+RTS and RSS+RTS with N = 32 threads and
 * R = 16 memory blocks.
 */

#include <cmath>
#include <cstdio>

#include "rcoal/common/table_printer.hpp"
#include "rcoal/theory/security_model.hpp"
#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;

    bench::parseBenchArgs(argc, argv, 1);

    printBanner("Table II: theoretical security analysis (N=32, R=16)");

    const auto fmt_s = [](double s) {
        if (std::isinf(s))
            return std::string("inf");
        return TablePrinter::num(s, 0);
    };

    TablePrinter table({"M", "rho FSS", "rho FSS+RTS", "rho RSS+RTS",
                        "S FSS", "S FSS+RTS", "S RSS+RTS"});
    for (const auto &row : theory::tableTwo()) {
        table.addRow({TablePrinter::num(row.m),
                      TablePrinter::num(row.fss.rho, 2),
                      TablePrinter::num(row.fssRts.rho, 2),
                      TablePrinter::num(row.rssRts.rho, 2),
                      fmt_s(row.fss.normalizedSamples),
                      fmt_s(row.fssRts.normalizedSamples),
                      fmt_s(row.rssRts.normalizedSamples)});
    }
    table.print();

    std::printf("\nPaper reference (Table II): FSS+RTS S = 1, 6, 24, 115, "
                "961, inf; RSS+RTS S = 1, 25, 42, 78, 349, inf.\n");
    std::printf("Security improvement headline: 24x-961x more samples "
                "needed at M = 4..16.\n");

    printBanner("Expected coalesced accesses mu(U) per defense");
    TablePrinter mu({"M", "mu(U) FSS/FSS+RTS", "mu(U) RSS+RTS",
                     "sigma(U) FSS"});
    for (const auto &row : theory::tableTwo()) {
        mu.addRow({TablePrinter::num(row.m),
                   TablePrinter::num(row.fss.muU, 2),
                   TablePrinter::num(row.rssRts.muU, 2),
                   TablePrinter::num(row.fss.sigmaU, 3)});
    }
    mu.print();
    return 0;
}
