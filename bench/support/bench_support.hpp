/**
 * @file
 * Shared harness code for the per-figure/table bench binaries.
 *
 * Every bench evaluates one or more (defense policy, attack) pairs on
 * the simulated GPU AES service and prints the same rows/series the
 * paper reports. The harness fixes seeds so output is reproducible.
 */

#ifndef RCOAL_BENCH_SUPPORT_HPP
#define RCOAL_BENCH_SUPPORT_HPP

#include <array>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cli.hpp"
#include "rcoal/attack/correlation_attack.hpp"
#include "rcoal/common/stats.hpp"
#include "rcoal/common/table_printer.hpp"
#include "rcoal/common/thread_pool.hpp"

namespace rcoal::bench {

/**
 * The experiment engine's pool, shared by every bench driver. Sized by
 * RCOAL_THREADS (default: hardware concurrency). Thanks to the
 * counter-based RNG streams, all bench output is identical for every
 * worker count.
 */
ThreadPool &benchPool();

/**
 * Wall-clock / throughput bookkeeping for the engine, grouped into
 * named phases ("collect", "attack", ...). Per-call wall times
 * accumulate into one RunningStats per phase (and merge() lets callers
 * fold in their own accumulators); writeEngineReport() serializes the
 * lot so the perf trajectory is tracked across PRs.
 */
class EngineReport
{
  public:
    /** Record one timed call of @p phase covering @p items work items. */
    void record(const std::string &phase, std::uint64_t items,
                double wall_seconds);

    /** Fold an externally accumulated timing series into @p phase. */
    void merge(const std::string &phase, std::uint64_t items,
               const RunningStats &wall_seconds);

    /**
     * Attach a driver-specific counter to the report entry. @p value is
     * a JSON value literal ("12", "3.5", "\"text\"", or a nested
     * object); it lands under "extras" in this driver's entry. Setting
     * an existing key overwrites it. Per-kernel counter roll-ups from
     * the serve drivers arrive through here.
     */
    void setExtra(const std::string &key, const std::string &value);

    /**
     * Write the machine-readable report (BENCH_engine.json, schema
     * rcoal-engine-report-v2): engine sizing, per-phase wall-clock
     * stats and throughput, and worker-balance summaries.
     *
     * The file keys one entry per driver under "drivers" and is merged
     * on write: this run replaces only its own @p driver entry, so
     * running fig05 no longer clobbers fig08's record.
     */
    void writeJson(const std::string &path,
                   const std::string &driver) const;

  private:
    struct Phase
    {
        std::string name;
        std::uint64_t items = 0;
        RunningStats wallSeconds;
    };

    Phase &phaseFor(const std::string &name);

    std::vector<Phase> phases; // small; insertion order = report order
    /// Driver-specific key -> JSON value literal, insertion-ordered.
    std::vector<std::pair<std::string, std::string>> extras;
};

/** The process-wide report every driver appends to. */
EngineReport &engineReport();

/**
 * Emit this driver's entry into BENCH_engine.json (or @p path) and
 * print a one-line summary. Call at the end of a driver's main(); the
 * entry is keyed by benchDriverName() (recorded by parseBenchArgs()).
 */
void writeEngineReport(const std::string &path = "BENCH_engine.json");

/** The fixed AES-128 key every experiment's victim uses. */
const std::array<std::uint8_t, 16> &victimKey();

/** The subwarp counts the paper sweeps. */
const std::vector<unsigned> &paperSubwarpCounts();

/** Default sample count (the paper demonstrates with 100 plaintexts). */
inline constexpr unsigned kDefaultSamples = 100;

/**
 * Default warm-up prefix for the sweep drivers: two retired AES
 * launches settle the DRAM/clock phase and (when the hierarchy is on)
 * the caches before the measured launch, and make the snapshot-fork
 * fast path the drivers' default.
 */
inline constexpr unsigned kDefaultWarmup = 2;

/** parseBenchArgs() with the standard default sample count. */
inline CliOptions
parseBenchArgs(int argc, char **argv)
{
    return parseBenchArgs(argc, argv, kDefaultSamples);
}

/**
 * parseBenchArgs() for the sweep drivers (ablation_*, fig08/13/14,
 * serve_attack_under_load): same flags, but collection defaults to a
 * kDefaultWarmup-launch shared prefix forked per trial. --warmup 0
 * restores the historical cold-start behaviour.
 */
inline CliOptions
parseBenchArgsWarm(int argc, char **argv,
                   unsigned default_samples = kDefaultSamples)
{
    return parseBenchArgs(argc, argv, default_samples, kDefaultWarmup);
}

/** Aggregate result of evaluating one policy under its attack. */
struct PolicyEvaluation
{
    core::CoalescingPolicy policy;
    unsigned samples = 0;
    unsigned lines = 0;

    // Victim-side aggregates (mean per plaintext).
    double meanTotalTime = 0.0;
    double meanLastRoundTime = 0.0;
    double meanTotalAccesses = 0.0;
    double meanLastRoundAccesses = 0.0;

    // Attack-side results (corresponding attack).
    attack::KeyAttackResult attackResult;

    /** Average correct-guess correlation (Fig. 7b / 15 / 18a metric). */
    double
    avgCorrelation() const
    {
        return attackResult.avgCorrectCorrelation;
    }
};

/**
 * Run the full pipeline for one policy: collect @p samples encryptions
 * of @p lines-line plaintexts under @p policy, then run the
 * corresponding attack (the attacker assumes the same policy,
 * Section IV-E) against @p measurement.
 *
 * Both phases run on benchPool() with per-trial RNG streams and are
 * timed into engineReport(); output is independent of RCOAL_THREADS.
 */
PolicyEvaluation evaluatePolicy(
    const core::CoalescingPolicy &policy, unsigned samples,
    unsigned lines = 32,
    attack::MeasurementVector measurement =
        attack::MeasurementVector::LastRoundTime,
    std::uint64_t victim_seed = benchSeed(),
    std::uint64_t plaintext_seed = 7);

/** Collect observations only (no attack), on benchPool(). */
std::vector<attack::EncryptionObservation>
collectObservations(const core::CoalescingPolicy &policy,
                    unsigned samples, unsigned lines = 32,
                    std::uint64_t victim_seed = benchSeed(),
                    std::uint64_t plaintext_seed = 7);

/**
 * Collect on an explicit GPU config (the hierarchy/backend sweeps tune
 * more than the policy). Honors --warmup/--collect-mode exactly like
 * collectObservations(): warmup > 0 forks a warmed snapshot per trial,
 * times the run into the "collect" phase, and (in fork mode)
 * re-simulates a bounded trial prefix from cold machines into
 * "collect_replay", fatal()ing on any byte divergence.
 */
std::vector<attack::EncryptionObservation>
collectObservationsFor(const sim::GpuConfig &config, unsigned samples,
                       unsigned lines = 32,
                       std::uint64_t plaintext_seed = 7);

/**
 * The four defense families of the paper's evaluation, at subwarp count
 * @p m: FSS, FSS+RTS, RSS, RSS+RTS.
 */
std::vector<core::CoalescingPolicy> defenseFamilies(unsigned m);

/** Short column label for a policy family ("FSS+RTS" etc). */
std::string familyName(const core::CoalescingPolicy &policy);

/** Print the per-guess correlation summary for one key byte. */
void printByteScatterSummary(const attack::ByteAttackResult &byte_result,
                             std::uint8_t true_byte);

/**
 * Shared driver for the Fig. 12/13/14 scatter figures: run the
 * corresponding attack against the defense produced by @p policy_for_m
 * for M in {2, 4, 8, 16} and print the key-byte-0 scatter summaries
 * plus the roll-up table.
 */
void runScatterFigure(
    const std::string &title,
    const std::function<core::CoalescingPolicy(unsigned)> &policy_for_m,
    unsigned samples);

} // namespace rcoal::bench

#endif // RCOAL_BENCH_SUPPORT_HPP
