/**
 * @file
 * Bench CLI implementation.
 */

#include "cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "rcoal/common/logging.hpp"
#include "rcoal/mem/dram_backend.hpp"
#include "rcoal/sim/config.hpp"

namespace rcoal::bench {

namespace {

std::uint64_t current_seed = 42;
std::string current_driver = "bench";
unsigned current_warmup = 0;
attack::CollectMode current_collect_mode = attack::CollectMode::Fork;

/** basename without directories (no libgen dependency). */
std::string
baseName(const char *argv0)
{
    std::string name = argv0 != nullptr ? argv0 : "bench";
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return name.empty() ? "bench" : name;
}

[[noreturn]] void
printUsage(const std::string &driver, unsigned default_samples,
           unsigned default_warmup)
{
    std::printf("usage: %s [N | --samples N] [--seed S] [--threads T] "
                "[--trace FILE] [--telemetry-out DIR]\n"
                "       [--telemetry-interval N] "
                "[--no-cycle-skipping] [--dram-backend NAME]\n"
                "       [--warmup N] [--collect-mode fork|replay]\n"
                "  --samples N   sample count (default %u)\n"
                "  --seed S      victim GPU seed (default 42)\n"
                "  --threads T   engine worker count "
                "(default: RCOAL_THREADS or hardware)\n"
                "  --trace FILE  export a Chrome/Perfetto trace of one "
                "representative run\n"
                "                (event recording needs a "
                "-DRCOAL_TRACE=ON build)\n"
                "  --telemetry-out DIR\n"
                "                write one Prometheus snapshot per "
                "scenario into DIR\n"
                "                (drivers with live telemetry; DIR must "
                "exist)\n"
                "  --telemetry-interval N\n"
                "                cycles between telemetry samples "
                "(default 5000)\n"
                "  --no-cycle-skipping\n"
                "                force the legacy per-cycle simulation "
                "loop (identical\n"
                "                output, lower simulator throughput)\n"
                "  --dram-backend NAME\n"
                "                DRAM personality: gddr5 (default), "
                "gddr6 or hbm2;\n"
                "                backend-sweep drivers treat it as a "
                "filter\n"
                "  --warmup N    shared-prefix warm-up launches per "
                "sweep cell\n"
                "                (default %u; 0 = historical cold-start "
                "collection)\n"
                "  --collect-mode fork|replay\n"
                "                reuse the warm prefix by snapshot fork "
                "(default) or\n"
                "                by re-simulating it per trial "
                "(byte-identical\n"
                "                verification path)\n"
                "  --span-sample-rate N\n"
                "                keep every Nth request span (retained "
                "iff spanId %% N == 0,\n"
                "                deterministic, no RNG; default 1 = all; "
                "span-tracing\n"
                "                drivers only)\n",
                driver.c_str(), default_samples, default_warmup);
    std::exit(0);
}

/** Parse the numeric value of flag @p flag or die with context. */
std::uint64_t
numericValue(const char *flag, const char *value)
{
    if (value == nullptr)
        fatal("%s requires a value", flag);
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        fatal("%s expects a number, got '%s'", flag, value);
    return parsed;
}

} // namespace

CliOptions
parseBenchArgs(int argc, char **argv, unsigned default_samples,
               unsigned default_warmup)
{
    CliOptions opts;
    opts.driver = baseName(argc > 0 ? argv[0] : nullptr);
    opts.samples = default_samples;
    opts.warmup = default_warmup;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            printUsage(opts.driver, default_samples, default_warmup);
        } else if (std::strcmp(arg, "--samples") == 0) {
            opts.samples =
                static_cast<unsigned>(numericValue(arg, value));
            ++i;
        } else if (std::strcmp(arg, "--seed") == 0) {
            opts.seed = numericValue(arg, value);
            ++i;
        } else if (std::strcmp(arg, "--threads") == 0) {
            opts.threads =
                static_cast<unsigned>(numericValue(arg, value));
            if (opts.threads == 0)
                fatal("--threads must be positive");
            ++i;
        } else if (std::strcmp(arg, "--trace") == 0) {
            if (value == nullptr || value[0] == '\0')
                fatal("--trace requires a file path");
            opts.tracePath = value;
            ++i;
        } else if (std::strcmp(arg, "--telemetry-out") == 0) {
            if (value == nullptr || value[0] == '\0')
                fatal("--telemetry-out requires a directory path");
            opts.telemetryDir = value;
            ++i;
        } else if (std::strcmp(arg, "--telemetry-interval") == 0) {
            opts.telemetryInterval = numericValue(arg, value);
            if (opts.telemetryInterval == 0)
                fatal("--telemetry-interval must be positive");
            ++i;
        } else if (std::strcmp(arg, "--no-cycle-skipping") == 0) {
            sim::setCycleSkippingOverride(0);
        } else if (std::strcmp(arg, "--dram-backend") == 0) {
            sim::DramBackendKind kind;
            if (value == nullptr ||
                !mem::parseDramBackendKind(value, kind)) {
                fatal("--dram-backend expects gddr5, gddr6 or hbm2 "
                      "(got '%s')",
                      value != nullptr ? value : "");
            }
            opts.dramBackend = value;
            ++i;
        } else if (std::strcmp(arg, "--warmup") == 0) {
            opts.warmup =
                static_cast<unsigned>(numericValue(arg, value));
            ++i;
        } else if (std::strcmp(arg, "--collect-mode") == 0) {
            if (value != nullptr && std::strcmp(value, "fork") == 0) {
                opts.collectMode = attack::CollectMode::Fork;
            } else if (value != nullptr &&
                       std::strcmp(value, "replay") == 0) {
                opts.collectMode = attack::CollectMode::Replay;
            } else {
                fatal("--collect-mode expects fork or replay "
                      "(got '%s')",
                      value != nullptr ? value : "");
            }
            ++i;
        } else if (std::strcmp(arg, "--span-sample-rate") == 0) {
            opts.spanSampleRate =
                static_cast<unsigned>(numericValue(arg, value));
            if (opts.spanSampleRate == 0)
                fatal("--span-sample-rate must be positive");
            ++i;
        } else if (i == 1 && arg[0] != '-' && std::atoi(arg) > 0) {
            // Historical form: first positional argument = samples.
            opts.samples = static_cast<unsigned>(std::atoi(arg));
        } else {
            fatal("unknown argument '%s' (try --help)", arg);
        }
    }

    if (opts.samples == 0)
        fatal("--samples must be positive");
    if (opts.threads > 0) {
        // The global pool reads RCOAL_THREADS lazily on first use, so
        // exporting here (before any pool call) is race-free.
        char buf[16];
        std::snprintf(buf, sizeof buf, "%u", opts.threads);
        setenv("RCOAL_THREADS", buf, 1);
    }

    current_seed = opts.seed;
    current_driver = opts.driver;
    current_warmup = opts.warmup;
    current_collect_mode = opts.collectMode;
    return opts;
}

std::uint64_t
benchSeed()
{
    return current_seed;
}

unsigned
benchWarmup()
{
    return current_warmup;
}

attack::CollectMode
benchCollectMode()
{
    return current_collect_mode;
}

const std::string &
benchDriverName()
{
    return current_driver;
}

} // namespace rcoal::bench
