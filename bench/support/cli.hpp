/**
 * @file
 * Shared command-line handling for the bench drivers.
 *
 * Every driver accepts the same small flag set:
 *
 *   --samples N   sample count (also accepted as the first positional
 *                 argument, the historical form)
 *   --seed S      victim GPU seed (default 42, the fixed seed every
 *                 figure has always used)
 *   --threads T   engine worker count (sets RCOAL_THREADS; must come
 *                 before the pool spins up, which parseBenchArgs
 *                 guarantees when called first thing in main())
 *   --trace FILE  write a Chrome/Perfetto trace of one representative
 *                 run to FILE (drivers that support it; event recording
 *                 needs the RCOAL_TRACE build option)
 *   --telemetry-out DIR
 *                 write one Prometheus text-exposition snapshot per
 *                 scenario into DIR (drivers that support live
 *                 telemetry; DIR must already exist)
 *   --telemetry-interval N
 *                 cycles between telemetry samples (default 5000)
 *   --no-cycle-skipping
 *                 force the legacy per-cycle simulation loop (disables
 *                 GpuConfig::cycleSkipping process-wide; equivalent to
 *                 RCOAL_CYCLE_SKIPPING=0). Output is identical either
 *                 way — this only trades simulator throughput.
 *   --dram-backend NAME
 *                 DRAM device personality: gddr5 (default), gddr6 or
 *                 hbm2 (see rcoal::mem::DramBackend). Drivers that
 *                 sweep backends treat the flag as a filter.
 *   --warmup N    shared-prefix warm-up launches per sweep cell
 *                 (default: driver-specific). N > 0 snapshots a warmed
 *                 machine once and forks it per trial
 *                 (EncryptionService::collectSamplesShared); 0 keeps
 *                 the historical cold-start collection.
 *   --collect-mode fork|replay
 *                 how the shared prefix is reused: fork restores each
 *                 trial from the snapshot (fast path, default); replay
 *                 re-simulates the warm-up per trial (byte-identical
 *                 verification path). Ignored when warmup is 0.
 *   --span-sample-rate N
 *                 keep every Nth request span (deterministic: a span is
 *                 retained iff spanId %% N == 0, no RNG involved), so a
 *                 sampled run's retained spans are byte-identical to the
 *                 same subset of a full run. Default 1 = trace every
 *                 request. Drivers with span tracing only.
 *   --help        usage
 *
 * Parsing also records the driver's name (basename of argv[0]) so the
 * engine report can key its entry per driver instead of clobbering the
 * whole file.
 */

#ifndef RCOAL_BENCH_CLI_HPP
#define RCOAL_BENCH_CLI_HPP

#include <cstdint>
#include <string>

#include "rcoal/attack/encryption_service.hpp"

namespace rcoal::bench {

/** Parsed common options. */
struct CliOptions
{
    std::string driver; ///< basename(argv[0]).
    unsigned samples = 0;
    std::uint64_t seed = 42;
    unsigned threads = 0; ///< 0 = RCOAL_THREADS / hardware default.
    std::string tracePath; ///< --trace FILE; empty = no trace export.
    std::string telemetryDir; ///< --telemetry-out DIR; empty = off.
    std::uint64_t telemetryInterval = 5000; ///< --telemetry-interval.
    /**
     * --dram-backend NAME, validated at parse time; empty when the flag
     * was not given (drivers fall back to the config default, and the
     * backend-sweep drivers run every personality).
     */
    std::string dramBackend;
    /** --warmup N; seeded from parseBenchArgs' default_warmup. */
    unsigned warmup = 0;
    /** --collect-mode; how warm-prefix trials reuse the prefix. */
    attack::CollectMode collectMode = attack::CollectMode::Fork;

    /**
     * --span-sample-rate N: deterministic span sampling modulus for
     * drivers with span tracing (spans::SpanCollector::Config). 1 =
     * every request traced.
     */
    unsigned spanSampleRate = 1;
};

/**
 * Parse the shared flags; fatal()s on malformed or unknown arguments,
 * prints usage and exits 0 on --help. @p default_samples seeds the
 * samples field when neither --samples nor a positional count is given;
 * @p default_warmup likewise seeds warmup when --warmup is absent (the
 * sweep drivers default to a small shared prefix, one-shot drivers to
 * the historical cold start).
 *
 * Side effects: exports --threads into RCOAL_THREADS (before the lazy
 * global pool is created) and records driver/seed/warmup/collect-mode
 * for benchSeed()/benchWarmup()/benchCollectMode() and the engine
 * report.
 */
CliOptions parseBenchArgs(int argc, char **argv,
                          unsigned default_samples,
                          unsigned default_warmup = 0);

/**
 * The victim seed of the current run: --seed if given, else 42.
 * evaluatePolicy()/collectObservations() default to it.
 */
std::uint64_t benchSeed();

/** Warm-up launches recorded by parseBenchArgs(); 0 before that. */
unsigned benchWarmup();

/** Collect mode recorded by parseBenchArgs(); Fork before that. */
attack::CollectMode benchCollectMode();

/** Driver name recorded by parseBenchArgs(); "bench" before that. */
const std::string &benchDriverName();

} // namespace rcoal::bench

#endif // RCOAL_BENCH_CLI_HPP
