/**
 * @file
 * Bench harness implementation.
 */

#include "bench_support.hpp"

#include <algorithm>
#include <cstring>

#include "rcoal/common/logging.hpp"

namespace rcoal::bench {

const std::array<std::uint8_t, 16> &
victimKey()
{
    // The FIPS-197 example key; any key works, this one makes results
    // easy to cross-check.
    static const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    return key;
}

const std::vector<unsigned> &
paperSubwarpCounts()
{
    static const std::vector<unsigned> counts = {1, 2, 4, 8, 16, 32};
    return counts;
}

unsigned
samplesFromArgs(int argc, char **argv, unsigned fallback)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc)
            return static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
    if (argc >= 2 && std::atoi(argv[1]) > 0)
        return static_cast<unsigned>(std::atoi(argv[1]));
    return fallback;
}

std::vector<attack::EncryptionObservation>
collectObservations(const core::CoalescingPolicy &policy,
                    unsigned samples, unsigned lines,
                    std::uint64_t victim_seed,
                    std::uint64_t plaintext_seed)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = victim_seed;
    cfg.policy = policy;
    attack::EncryptionService service(cfg, victimKey());
    Rng rng(plaintext_seed);
    return service.collectSamples(samples, lines, rng);
}

PolicyEvaluation
evaluatePolicy(const core::CoalescingPolicy &policy, unsigned samples,
               unsigned lines, attack::MeasurementVector measurement,
               std::uint64_t victim_seed, std::uint64_t plaintext_seed)
{
    PolicyEvaluation eval;
    eval.policy = policy;
    eval.samples = samples;
    eval.lines = lines;

    const auto observations = collectObservations(
        policy, samples, lines, victim_seed, plaintext_seed);
    for (const auto &obs : observations) {
        eval.meanTotalTime += obs.totalTime;
        eval.meanLastRoundTime += obs.lastRoundTime;
        eval.meanTotalAccesses += static_cast<double>(obs.totalAccesses);
        eval.meanLastRoundAccesses +=
            static_cast<double>(obs.lastRoundAccesses);
    }
    const auto n = static_cast<double>(observations.size());
    eval.meanTotalTime /= n;
    eval.meanLastRoundTime /= n;
    eval.meanTotalAccesses /= n;
    eval.meanLastRoundAccesses /= n;

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = policy;
    attack_cfg.measurement = measurement;
    attack::CorrelationAttack attacker(attack_cfg);

    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.policy = policy;
    attack::EncryptionService reference(cfg, victimKey());
    eval.attackResult =
        attacker.attackKey(observations, reference.lastRoundKey());
    return eval;
}

std::vector<core::CoalescingPolicy>
defenseFamilies(unsigned m)
{
    return {
        core::CoalescingPolicy::fss(m),
        core::CoalescingPolicy::fss(m, true),
        core::CoalescingPolicy::rss(m),
        core::CoalescingPolicy::rss(m, true),
    };
}

std::string
familyName(const core::CoalescingPolicy &policy)
{
    switch (policy.mechanism) {
      case core::Mechanism::Baseline:
        return "Baseline";
      case core::Mechanism::Disabled:
        return "NoCoalescing";
      case core::Mechanism::Fss:
        return policy.randomThreads ? "FSS+RTS" : "FSS";
      case core::Mechanism::Rss:
        return policy.randomThreads ? "RSS+RTS" : "RSS";
    }
    return "?";
}

void
printByteScatterSummary(const attack::ByteAttackResult &byte_result,
                        std::uint8_t true_byte)
{
    // Reproduce the information content of the scatter plots: where the
    // correct guess lands relative to the 255 wrong guesses.
    double wrong_min = 1.0;
    double wrong_max = -1.0;
    double wrong_sum = 0.0;
    for (unsigned m = 0; m < 256; ++m) {
        if (m == true_byte)
            continue;
        const double c = byte_result.correlation[m];
        wrong_min = std::min(wrong_min, c);
        wrong_max = std::max(wrong_max, c);
        wrong_sum += c;
    }
    std::printf("  correct guess 0x%02x: corr %+0.4f (rank %u)\n",
                true_byte, byte_result.correlation[true_byte],
                byte_result.rankOfCorrect);
    std::printf("  wrong guesses: min %+0.4f mean %+0.4f max %+0.4f\n",
                wrong_min, wrong_sum / 255.0, wrong_max);
    std::printf("  best guess 0x%02x with corr %+0.4f -> %s\n",
                byte_result.bestGuess, byte_result.bestCorrelation,
                byte_result.bestGuess == true_byte ? "KEY BYTE RECOVERED"
                                                   : "recovery failed");
}

void
runScatterFigure(
    const std::string &title,
    const std::function<core::CoalescingPolicy(unsigned)> &policy_for_m,
    unsigned samples)
{
    printBanner(title);
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    attack::EncryptionService reference(cfg, victimKey());
    const aes::Block true_key = reference.lastRoundKey();

    TablePrinter table({"num-subwarp", "avg corr (all bytes)",
                        "byte-0 corr", "byte-0 rank",
                        "bytes recovered"});
    for (unsigned m : {2u, 4u, 8u, 16u}) {
        const auto eval = evaluatePolicy(policy_for_m(m), samples);
        std::printf("num-subwarp = %u (%s):\n", m,
                    eval.policy.name().c_str());
        printByteScatterSummary(eval.attackResult.bytes[0], true_key[0]);
        table.addRow(
            {TablePrinter::num(m),
             TablePrinter::num(eval.avgCorrelation(), 3),
             TablePrinter::num(
                 eval.attackResult.bytes[0].correctGuessCorrelation, 3),
             TablePrinter::num(static_cast<int>(
                 eval.attackResult.bytes[0].rankOfCorrect)),
             TablePrinter::num(eval.attackResult.bytesRecovered) +
                 "/16"});
    }
    std::printf("\n");
    table.print();
}

} // namespace rcoal::bench
