/**
 * @file
 * Bench harness implementation.
 */

#include "bench_support.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "rcoal/common/logging.hpp"
#include "rcoal/sim/config.hpp"
#include "rcoal/sim/gpu_machine.hpp"

namespace rcoal::bench {

namespace {

/** Seconds elapsed since @p start (steady clock). */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Existing per-driver entries of a v2 report file, in file order. Each
 * entry is the single JSON-object line the driver wrote. Older schemas
 * (and unreadable files) yield an empty list — their layout predates
 * per-driver keying, so there is nothing mergeable to preserve.
 */
std::vector<std::pair<std::string, std::string>>
readDriverEntries(const std::string &path)
{
    std::vector<std::pair<std::string, std::string>> entries;
    std::ifstream in(path);
    if (!in)
        return entries;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    if (text.find("\"rcoal-engine-report-v2\"") == std::string::npos)
        return entries;

    // Entries are written one per line as:  "<driver>": {...},
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        const auto quote = line.find("    \"");
        if (quote != 0)
            continue;
        const auto name_end = line.find('"', 5);
        if (name_end == std::string::npos)
            continue;
        const auto brace = line.find('{', name_end);
        if (brace == std::string::npos)
            continue;
        auto object_end = line.find_last_of('}');
        if (object_end == std::string::npos || object_end < brace)
            continue;
        entries.emplace_back(
            line.substr(5, name_end - 5),
            line.substr(brace, object_end - brace + 1));
    }
    return entries;
}

} // namespace

ThreadPool &
benchPool()
{
    return globalThreadPool();
}

EngineReport::Phase &
EngineReport::phaseFor(const std::string &name)
{
    for (auto &phase : phases) {
        if (phase.name == name)
            return phase;
    }
    phases.push_back({name, 0, {}});
    return phases.back();
}

void
EngineReport::record(const std::string &phase, std::uint64_t items,
                     double wall_seconds)
{
    Phase &p = phaseFor(phase);
    p.items += items;
    p.wallSeconds.push(wall_seconds);
}

void
EngineReport::merge(const std::string &phase, std::uint64_t items,
                    const RunningStats &wall_seconds)
{
    Phase &p = phaseFor(phase);
    p.items += items;
    p.wallSeconds.merge(wall_seconds);
}

void
EngineReport::setExtra(const std::string &key, const std::string &value)
{
    for (auto &existing : extras) {
        if (existing.first == key) {
            existing.second = value;
            return;
        }
    }
    extras.emplace_back(key, value);
}

void
EngineReport::writeJson(const std::string &path,
                        const std::string &driver) const
{
    // Assemble this driver's entry as one line so the merge below can
    // treat the file as a line-per-driver key/value store.
    std::string entry = strprintf(
        "{\"threads\": %u, \"hardware_concurrency\": %u, ",
        benchPool().size(), std::thread::hardware_concurrency());

    entry += "\"phases\": {";
    double total_wall = 0.0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const Phase &p = phases[i];
        const double wall = p.wallSeconds.sum();
        total_wall += wall;
        entry += strprintf(
            "\"%s\": {\"calls\": %zu, \"items\": %llu, "
            "\"wall_seconds\": %.6f, \"mean_call_seconds\": %.6f, "
            "\"min_call_seconds\": %.6f, \"max_call_seconds\": %.6f, "
            "\"items_per_second\": %.3f}%s",
            p.name.c_str(), p.wallSeconds.count(),
            static_cast<unsigned long long>(p.items), wall,
            p.wallSeconds.mean(),
            p.wallSeconds.count() ? p.wallSeconds.min() : 0.0,
            p.wallSeconds.count() ? p.wallSeconds.max() : 0.0,
            wall > 0.0 ? static_cast<double>(p.items) / wall : 0.0,
            i + 1 < phases.size() ? ", " : "");
    }
    entry += strprintf("}, \"total_wall_seconds\": %.6f, ", total_wall);

    // Per-worker engine totals summarized: how evenly the sweep
    // spread. Folding them through RunningStats keeps the report
    // robust to any worker count (including the serial 1-thread
    // engine).
    RunningStats tasks_per_worker;
    RunningStats busy_per_worker;
    for (const auto &worker : benchPool().workerStats()) {
        tasks_per_worker.push(static_cast<double>(worker.tasks));
        busy_per_worker.push(worker.busySeconds);
    }
    entry += strprintf(
        "\"workers\": %zu, "
        "\"worker_tasks\": {\"mean\": %.1f, \"min\": %.0f, "
        "\"max\": %.0f}, "
        "\"worker_busy_seconds_total\": %.6f",
        tasks_per_worker.count(), tasks_per_worker.mean(),
        tasks_per_worker.count() ? tasks_per_worker.min() : 0.0,
        tasks_per_worker.count() ? tasks_per_worker.max() : 0.0,
        busy_per_worker.sum());
    // Simulator-cycle throughput: every GpuMachine retired in this
    // process folded its counters into the global accumulator, so the
    // ratio against the phase wall clock is the end-to-end simulation
    // rate the event-driven core achieves for this driver.
    auto all_extras = extras;
    const sim::SimCycleCounters &cycles = sim::simCycleCounters();
    const auto simulated =
        cycles.simulated.load(std::memory_order_relaxed);
    all_extras.emplace_back(
        "sim_cycles",
        strprintf("%llu", static_cast<unsigned long long>(simulated)));
    all_extras.emplace_back(
        "sim_cycles_per_second",
        strprintf("%.1f", total_wall > 0.0
                              ? static_cast<double>(simulated) /
                                    total_wall
                              : 0.0));
    if (sim::resolveCycleSkipping(true)) {
        all_extras.emplace_back(
            "skipped_cycles",
            strprintf("%llu",
                      static_cast<unsigned long long>(
                          cycles.skipped.load(
                              std::memory_order_relaxed))));
    }
    entry += ", \"extras\": {";
    for (std::size_t i = 0; i < all_extras.size(); ++i) {
        entry += strprintf("\"%s\": %s%s", all_extras[i].first.c_str(),
                           all_extras[i].second.c_str(),
                           i + 1 < all_extras.size() ? ", " : "");
    }
    entry += "}}";

    // Merge: replace (or append) only this driver's entry.
    auto entries = readDriverEntries(path);
    bool replaced = false;
    for (auto &existing : entries) {
        if (existing.first == driver) {
            existing.second = entry;
            replaced = true;
            break;
        }
    }
    if (!replaced)
        entries.emplace_back(driver, entry);

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write engine report to '%s'", path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"rcoal-engine-report-v2\",\n");
    std::fprintf(f, "  \"drivers\": {\n");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        std::fprintf(f, "    \"%s\": %s%s\n", entries[i].first.c_str(),
                     entries[i].second.c_str(),
                     i + 1 < entries.size() ? "," : "");
    }
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

EngineReport &
engineReport()
{
    static EngineReport report;
    return report;
}

void
writeEngineReport(const std::string &path)
{
    engineReport().writeJson(path, benchDriverName());
    std::printf("\n[engine] %u thread(s); wrote %s entry '%s'\n",
                benchPool().size(), path.c_str(),
                benchDriverName().c_str());
}

const std::array<std::uint8_t, 16> &
victimKey()
{
    // The FIPS-197 example key; any key works, this one makes results
    // easy to cross-check.
    static const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    return key;
}

const std::vector<unsigned> &
paperSubwarpCounts()
{
    static const std::vector<unsigned> counts = {1, 2, 4, 8, 16, 32};
    return counts;
}

namespace {

/**
 * Byte-for-byte equality of two observations: every field is a
 * deterministic function of the trial, so fork and replay must agree
 * exactly (doubles included — they hold integer cycle counts).
 */
bool
observationsIdentical(const attack::EncryptionObservation &a,
                      const attack::EncryptionObservation &b)
{
    return a.ciphertext == b.ciphertext && a.totalTime == b.totalTime &&
           a.lastRoundTime == b.lastRoundTime &&
           a.lastRoundAccesses == b.lastRoundAccesses &&
           a.totalAccesses == b.totalAccesses;
}

} // namespace

std::vector<attack::EncryptionObservation>
collectObservationsFor(const sim::GpuConfig &config, unsigned samples,
                       unsigned lines, std::uint64_t plaintext_seed)
{
    const unsigned warmup = benchWarmup();
    const attack::CollectMode mode = benchCollectMode();
    const auto start = std::chrono::steady_clock::now();
    auto observations = attack::EncryptionService::collectSamplesShared(
        config, victimKey(), samples, lines, plaintext_seed, warmup,
        mode, &benchPool());
    engineReport().record("collect", samples, secondsSince(start));

    if (warmup > 0 && mode == attack::CollectMode::Fork) {
        // Fork-vs-replay cross-check on a bounded trial prefix: replay
        // re-simulates the warm-up from a cold machine, so any state the
        // snapshot failed to capture (or restore) shows up here as a
        // byte mismatch. Timed separately — the collect_replay /
        // collect items_per_second ratio is the recorded fork speedup.
        const unsigned replayed = std::min(samples, 6u);
        const auto replay_start = std::chrono::steady_clock::now();
        const auto replayed_obs =
            attack::EncryptionService::collectSamplesShared(
                config, victimKey(), replayed, lines, plaintext_seed,
                warmup, attack::CollectMode::Replay, &benchPool());
        engineReport().record("collect_replay", replayed,
                              secondsSince(replay_start));
        for (unsigned i = 0; i < replayed; ++i) {
            if (!observationsIdentical(observations[i],
                                       replayed_obs[i])) {
                fatal("fork-vs-replay divergence at trial %u "
                      "(policy %s, warmup %u): snapshot restore lost "
                      "machine state",
                      i, config.policy.name().c_str(), warmup);
            }
        }
    }
    return observations;
}

std::vector<attack::EncryptionObservation>
collectObservations(const core::CoalescingPolicy &policy,
                    unsigned samples, unsigned lines,
                    std::uint64_t victim_seed,
                    std::uint64_t plaintext_seed)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = victim_seed;
    cfg.policy = policy;
    return collectObservationsFor(cfg, samples, lines, plaintext_seed);
}

PolicyEvaluation
evaluatePolicy(const core::CoalescingPolicy &policy, unsigned samples,
               unsigned lines, attack::MeasurementVector measurement,
               std::uint64_t victim_seed, std::uint64_t plaintext_seed)
{
    PolicyEvaluation eval;
    eval.policy = policy;
    eval.samples = samples;
    eval.lines = lines;

    const auto observations = collectObservations(
        policy, samples, lines, victim_seed, plaintext_seed);
    for (const auto &obs : observations) {
        eval.meanTotalTime += obs.totalTime;
        eval.meanLastRoundTime += obs.lastRoundTime;
        eval.meanTotalAccesses += static_cast<double>(obs.totalAccesses);
        eval.meanLastRoundAccesses +=
            static_cast<double>(obs.lastRoundAccesses);
    }
    const auto n = static_cast<double>(observations.size());
    eval.meanTotalTime /= n;
    eval.meanLastRoundTime /= n;
    eval.meanTotalAccesses /= n;
    eval.meanLastRoundAccesses /= n;

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = policy;
    attack_cfg.measurement = measurement;
    attack::CorrelationAttack attacker(attack_cfg);

    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.policy = policy;
    attack::EncryptionService reference(cfg, victimKey());
    const auto start = std::chrono::steady_clock::now();
    eval.attackResult = attacker.attackKey(
        observations, reference.lastRoundKey(), &benchPool());
    engineReport().record("attack", 16 * 256, secondsSince(start));
    return eval;
}

std::vector<core::CoalescingPolicy>
defenseFamilies(unsigned m)
{
    return {
        core::CoalescingPolicy::fss(m),
        core::CoalescingPolicy::fss(m, true),
        core::CoalescingPolicy::rss(m),
        core::CoalescingPolicy::rss(m, true),
    };
}

std::string
familyName(const core::CoalescingPolicy &policy)
{
    switch (policy.mechanism) {
      case core::Mechanism::Baseline:
        return "Baseline";
      case core::Mechanism::Disabled:
        return "NoCoalescing";
      case core::Mechanism::Fss:
        return policy.randomThreads ? "FSS+RTS" : "FSS";
      case core::Mechanism::Rss:
        return policy.randomThreads ? "RSS+RTS" : "RSS";
    }
    return "?";
}

void
printByteScatterSummary(const attack::ByteAttackResult &byte_result,
                        std::uint8_t true_byte)
{
    // Reproduce the information content of the scatter plots: where the
    // correct guess lands relative to the 255 wrong guesses.
    double wrong_min = 1.0;
    double wrong_max = -1.0;
    double wrong_sum = 0.0;
    for (unsigned m = 0; m < 256; ++m) {
        if (m == true_byte)
            continue;
        const double c = byte_result.correlation[m];
        wrong_min = std::min(wrong_min, c);
        wrong_max = std::max(wrong_max, c);
        wrong_sum += c;
    }
    std::printf("  correct guess 0x%02x: corr %+0.4f (rank %u)\n",
                true_byte, byte_result.correlation[true_byte],
                byte_result.rankOfCorrect);
    std::printf("  wrong guesses: min %+0.4f mean %+0.4f max %+0.4f\n",
                wrong_min, wrong_sum / 255.0, wrong_max);
    std::printf("  best guess 0x%02x with corr %+0.4f -> %s\n",
                byte_result.bestGuess, byte_result.bestCorrelation,
                byte_result.bestGuess == true_byte ? "KEY BYTE RECOVERED"
                                                   : "recovery failed");
}

void
runScatterFigure(
    const std::string &title,
    const std::function<core::CoalescingPolicy(unsigned)> &policy_for_m,
    unsigned samples)
{
    printBanner(title);
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    attack::EncryptionService reference(cfg, victimKey());
    const aes::Block true_key = reference.lastRoundKey();

    TablePrinter table({"num-subwarp", "avg corr (all bytes)",
                        "byte-0 corr", "byte-0 rank",
                        "bytes recovered"});
    for (unsigned m : {2u, 4u, 8u, 16u}) {
        const auto eval = evaluatePolicy(policy_for_m(m), samples);
        std::printf("num-subwarp = %u (%s):\n", m,
                    eval.policy.name().c_str());
        printByteScatterSummary(eval.attackResult.bytes[0], true_key[0]);
        table.addRow(
            {TablePrinter::num(m),
             TablePrinter::num(eval.avgCorrelation(), 3),
             TablePrinter::num(
                 eval.attackResult.bytes[0].correctGuessCorrelation, 3),
             TablePrinter::num(static_cast<int>(
                 eval.attackResult.bytes[0].rankOfCorrect)),
             TablePrinter::num(eval.attackResult.bytesRecovered) +
                 "/16"});
    }
    std::printf("\n");
    table.print();
}

} // namespace rcoal::bench
