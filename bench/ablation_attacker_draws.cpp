/**
 * @file
 * Ablation: a stronger attacker who averages many simulated
 * randomization draws per estimate. Averaging converges the estimate
 * to E[U | ciphertext], whose correlation with the victim's actual
 * draw is exactly the analytical rho of Table II - so this bench ties
 * the empirical attack to the theoretical model and shows the defense
 * holds even against the averaging attacker.
 */

#include <chrono>
#include <cstdio>

#include "rcoal/theory/security_model.hpp"
#include "support/bench_support.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned samples =
        bench::parseBenchArgsWarm(argc, argv).samples;

    printBanner("Ablation: attacker-side estimate averaging (FSS+RTS)");
    TablePrinter table({"num-subwarp", "draws/estimate", "avg corr",
                        "bytes recovered", "theoretical rho (x0.25)"});
    for (unsigned m : {4u, 8u}) {
        const auto policy = core::CoalescingPolicy::fss(m, true);
        const auto observations =
            bench::collectObservations(policy, samples);
        sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
        attack::EncryptionService reference(cfg, bench::victimKey());
        const double rho_theory =
            theory::analyzeFssRts({32, 16, m}).rho;

        for (unsigned draws : {1u, 4u, 16u, 64u}) {
            attack::AttackConfig attack_cfg;
            attack_cfg.assumedPolicy = policy;
            attack_cfg.drawsPerEstimate = draws;
            attack::CorrelationAttack attacker(attack_cfg);
            const auto start = std::chrono::steady_clock::now();
            const auto result = attacker.attackKey(
                observations, reference.lastRoundKey(),
                &bench::benchPool());
            bench::engineReport().record(
                "attack", 16 * 256,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            // Our measured channel aggregates 16 per-byte lookup
            // instructions, diluting per-byte correlation by ~1/4
            // relative to the single-byte theoretical channel.
            table.addRow(
                {TablePrinter::num(m), TablePrinter::num(draws),
                 TablePrinter::num(result.avgCorrectCorrelation, 3),
                 TablePrinter::num(result.bytesRecovered) + "/16",
                 TablePrinter::num(rho_theory * 0.25, 3)});
        }
        table.addSeparator();
    }
    table.print();
    std::printf("\nReading: more draws push the achieved correlation "
                "toward the (diluted) analytical rho - the attacker "
                "cannot do better\nthan Table II predicts, which is why "
                "the paper's sample-count multipliers are the right "
                "security metric.\n");
    bench::writeEngineReport();
    return 0;
}
