/**
 * @file
 * Fig. 2 and Fig. 10 worked examples: how subwarps, RTS and RSS change
 * the coalescing of one 4-thread warp instruction.
 */

#include <cstdio>

#include "rcoal/core/coalescer.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

void
show(const char *label, const core::SubwarpPartition &partition)
{
    // The example of Section II-A: threads 0..3 request blocks
    // 0, 1, 1, 2 (threads 1 and 2 share a block).
    const core::Coalescer coalescer(64);
    const std::vector<core::LaneRequest> lanes = {
        {0, 0x000, 4, true},
        {1, 0x100, 4, true},
        {2, 0x104, 4, true},
        {3, 0x200, 4, true},
    };
    const auto accesses = coalescer.coalesce(lanes, partition);
    std::printf("%-28s sid of thread [", label);
    for (ThreadId t = 0; t < 4; ++t)
        std::printf("%u%s", partition.subwarpOf(t), t == 3 ? "" : " ");
    std::printf("] -> %zu coalesced accesses:", accesses.size());
    for (const auto &access : accesses) {
        std::printf(" (sid %u, block 0x%03llx)", access.sid,
                    static_cast<unsigned long long>(access.blockAddr));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    rcoal::bench::parseBenchArgs(argc, argv, 1);
    printBanner("Fig. 2: effect of subwarps on memory coalescing");
    show("Case 1: num-subwarp = 1", core::SubwarpPartition::single(4));
    show("Case 2: num-subwarp = 2",
         core::SubwarpPartition::fromSizes({2, 2}));

    printBanner("Fig. 10: RTS / RSS+RTS on the same requests");
    // Fig. 10a: FSS+RTS - sizes {2,2} but threads shuffled so the
    // sharing pair (1, 2) is split: subwarp 0 holds threads {0, 2}.
    show("Fig. 10a: FSS+RTS", core::SubwarpPartition({0, 1, 0, 1}, 2));
    // Fig. 10b: RSS+RTS - sizes {1, 3}; thread 0 moves to subwarp 1 and
    // the sharing pair stays together.
    show("Fig. 10b: RSS+RTS", core::SubwarpPartition({1, 1, 1, 0}, 2));

    std::printf("\nPaper claims: Fig. 2 - splitting the warp breaks "
                "cross-subwarp merging (3 -> 4 accesses); Fig. 10a - RTS "
                "can split\nsharing pairs (4 accesses); Fig. 10b - RSS's "
                "large subwarps can keep them together (3 accesses) while "
                "still randomizing.\n");
    return 0;
}
