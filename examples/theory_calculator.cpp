/**
 * @file
 * Analytical security calculator: compute the Section V model (rho and
 * the normalized sample count S) for arbitrary warp size N, memory
 * blocks R and subwarp counts.
 *
 * Usage: theory_calculator [N] [R] [M1 M2 ...]
 * e.g.   theory_calculator 32 16 1 2 4 8 16 32     (Table II)
 *        theory_calculator 64 32 2 4 8             (a 64-wide warp GPU)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "rcoal/common/table_printer.hpp"
#include "rcoal/theory/security_model.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    const unsigned n =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 32;
    const unsigned r =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
    std::vector<unsigned> ms;
    for (int i = 3; i < argc; ++i)
        ms.push_back(static_cast<unsigned>(std::atoi(argv[i])));

    std::printf("Analytical model for N = %u threads, R = %u memory "
                "blocks\n\n",
                n, r);
    const auto rows = theory::tableTwo(n, r, ms);

    TablePrinter table({"M", "rho FSS", "rho FSS+RTS", "rho RSS+RTS",
                        "S FSS", "S FSS+RTS", "S RSS+RTS",
                        "mu(U) FSS", "mu(U) RSS"});
    const auto fmt_s = [](double s) {
        return std::isinf(s) ? std::string("inf")
                             : TablePrinter::num(s, 0);
    };
    for (const auto &row : rows) {
        table.addRow({TablePrinter::num(row.m),
                      TablePrinter::num(row.fss.rho, 3),
                      TablePrinter::num(row.fssRts.rho, 3),
                      TablePrinter::num(row.rssRts.rho, 3),
                      fmt_s(row.fss.normalizedSamples),
                      fmt_s(row.fssRts.normalizedSamples),
                      fmt_s(row.rssRts.normalizedSamples),
                      TablePrinter::num(row.fss.muU, 2),
                      TablePrinter::num(row.rssRts.muU, 2)});
    }
    table.print();

    std::printf("\nS is normalized to the undefended baseline: an "
                "attacker needs S times more timing samples. The paper "
                "estimates the\nbaseline at ~1M samples (~30 min of "
                "collection) on real hardware, so S = 961 means ~20 days "
                "of sampling.\n");
    return 0;
}
