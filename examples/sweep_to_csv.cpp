/**
 * @file
 * Export a full security/performance sweep as CSV for external
 * plotting: every defense family x num-subwarp, with the corresponding
 * attack's correlation, the Eq. 4 sample estimate, timing, data
 * movement and modeled energy.
 *
 * The sweep runs on the parallel experiment engine (RCOAL_THREADS
 * workers, deterministic per-trial RNG streams, so the CSV is
 * bit-identical for any worker count) and records engine throughput in
 * BENCH_engine.json.
 *
 * Usage: sweep_to_csv [output.csv] [samples]
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "rcoal/attack/correlation_attack.hpp"
#include "rcoal/common/csv.hpp"
#include "rcoal/sim/energy.hpp"
#include "support/bench_support.hpp"

namespace {

using namespace rcoal;

struct SweepRow
{
    core::CoalescingPolicy policy;
    double meanTime = 0.0;
    double meanAccesses = 0.0;
    double meanEnergyNj = 0.0;
    attack::KeyAttackResult attackResult;
};

SweepRow
runPoint(const core::CoalescingPolicy &policy, unsigned samples,
         const std::array<std::uint8_t, 16> &key)
{
    SweepRow row;
    row.policy = policy;

    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 42;
    cfg.policy = policy;

    const auto t_collect = std::chrono::steady_clock::now();
    const auto observations =
        attack::EncryptionService::collectSamplesParallel(
            cfg, key, samples, 32, 7, &bench::benchPool());
    bench::engineReport().record(
        "collect", samples,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_collect)
            .count());
    for (const auto &obs : observations) {
        row.meanTime += obs.totalTime;
        row.meanAccesses += static_cast<double>(obs.totalAccesses);
    }
    row.meanTime /= samples;
    row.meanAccesses /= samples;

    // Energy from one representative launch (the model is linear in the
    // stats, and per-launch variation is small).
    {
        Rng erng(13);
        const auto plaintext = workloads::randomPlaintext(32, erng);
        workloads::AesGpuKernel kernel(plaintext, key, cfg.warpSize);
        sim::Gpu gpu(cfg);
        row.meanEnergyNj =
            sim::estimateEnergy(gpu.launch(kernel), cfg)
                .totalNanojoules();
    }

    attack::AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = policy;
    attack::CorrelationAttack attacker(attack_cfg);
    attack::EncryptionService reference(cfg, key);
    const auto t_attack = std::chrono::steady_clock::now();
    row.attackResult = attacker.attackKey(
        observations, reference.lastRoundKey(), &bench::benchPool());
    bench::engineReport().record(
        "attack", 16 * 256,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_attack)
            .count());
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : "rcoal_sweep.csv";
    const unsigned samples =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 60;

    const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

    CsvWriter csv({"mechanism", "num_subwarps", "rts", "avg_correlation",
                   "bytes_recovered", "est_samples_to_recover",
                   "mean_cycles", "mean_accesses", "energy_nj"});

    std::vector<core::CoalescingPolicy> points = {
        core::CoalescingPolicy::baseline(),
        core::CoalescingPolicy::disabled(),
    };
    for (unsigned m : {2u, 4u, 8u, 16u}) {
        points.push_back(core::CoalescingPolicy::fss(m));
        points.push_back(core::CoalescingPolicy::fss(m, true));
        points.push_back(core::CoalescingPolicy::rss(m));
        points.push_back(core::CoalescingPolicy::rss(m, true));
    }

    std::printf("sweeping %zu design points x %u samples...\n",
                points.size(), samples);
    for (const auto &policy : points) {
        const SweepRow row = runPoint(policy, samples, key);
        const double est = attack::estimatedSamplesToRecover(
            row.attackResult);
        csv.addRow({row.policy.name(),
                    CsvWriter::num(std::uint64_t{row.policy.numSubwarps}),
                    row.policy.randomThreads ? "1" : "0",
                    CsvWriter::num(row.attackResult.avgCorrectCorrelation,
                                   4),
                    CsvWriter::num(
                        std::uint64_t{row.attackResult.bytesRecovered}),
                    std::isinf(est) ? "inf" : CsvWriter::num(est, 0),
                    CsvWriter::num(row.meanTime, 0),
                    CsvWriter::num(row.meanAccesses, 0),
                    CsvWriter::num(row.meanEnergyNj, 1)});
        std::printf("  %-18s corr %+0.3f  %s\n",
                    row.policy.name().c_str(),
                    row.attackResult.avgCorrectCorrelation,
                    row.attackResult.fullKeyRecovered() ? "(BROKEN)"
                                                        : "");
    }
    csv.writeFile(path);
    std::printf("wrote %zu rows to %s\n", csv.rowCount(), path.c_str());
    bench::writeEngineReport();
    return 0;
}
