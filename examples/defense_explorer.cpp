/**
 * @file
 * Interactive defense exploration: pick a mechanism, subwarp count and
 * sample budget on the command line; get the security / performance /
 * RCoal_Score report for that design point.
 *
 * Usage:
 *   defense_explorer [fss|fss+rts|rss|rss+rts|baseline|off]
 *                    [num-subwarp] [samples]
 * e.g. defense_explorer rss+rts 8 100
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "rcoal/attack/correlation_attack.hpp"
#include "rcoal/common/logging.hpp"
#include "rcoal/core/rcoal_score.hpp"

namespace {

using namespace rcoal;

core::CoalescingPolicy
parsePolicy(const std::string &name, unsigned m)
{
    if (name == "baseline")
        return core::CoalescingPolicy::baseline();
    if (name == "off" || name == "disabled")
        return core::CoalescingPolicy::disabled();
    if (name == "fss")
        return core::CoalescingPolicy::fss(m);
    if (name == "fss+rts")
        return core::CoalescingPolicy::fss(m, true);
    if (name == "rss")
        return core::CoalescingPolicy::rss(m);
    if (name == "rss+rts")
        return core::CoalescingPolicy::rss(m, true);
    fatal("unknown mechanism '%s' (want fss|fss+rts|rss|rss+rts|"
          "baseline|off)",
          name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string mechanism = argc > 1 ? argv[1] : "rss+rts";
    const unsigned m =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
    const unsigned samples =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 100;

    const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const auto policy = parsePolicy(mechanism, m);
    std::printf("Evaluating %s with %u timing samples...\n\n",
                policy.name().c_str(), samples);

    // Baseline reference.
    sim::GpuConfig config = sim::GpuConfig::paperBaseline();
    config.seed = 42;
    attack::EncryptionService baseline_service(config, key);
    Rng base_rng(7);
    const auto baseline_obs =
        baseline_service.collectSamples(samples, 32, base_rng);
    double baseline_time = 0.0;
    for (const auto &obs : baseline_obs)
        baseline_time += obs.totalTime;
    baseline_time /= samples;

    // The design point under test, attacked by its corresponding
    // attacker.
    config.policy = policy;
    attack::EncryptionService service(config, key);
    Rng rng(7);
    const auto observations = service.collectSamples(samples, 32, rng);
    double time = 0.0;
    double accesses = 0.0;
    for (const auto &obs : observations) {
        time += obs.totalTime;
        accesses += static_cast<double>(obs.totalAccesses);
    }
    time /= samples;
    accesses /= samples;

    attack::AttackConfig attack_config;
    attack_config.assumedPolicy = policy;
    attack::CorrelationAttack attacker(attack_config);
    const auto result =
        attacker.attackKey(observations, service.lastRoundKey());

    const double norm_time = time / baseline_time;
    const double security =
        core::securityStrength(result.avgCorrectCorrelation);

    std::printf("performance:\n");
    std::printf("  execution time     : %.0f cycles (%.2fx baseline)\n",
                time, norm_time);
    std::printf("  memory accesses    : %.0f per 32-line plaintext\n",
                accesses);
    std::printf("security (corresponding attack):\n");
    std::printf("  avg correct corr   : %+0.4f\n",
                result.avgCorrectCorrelation);
    std::printf("  key bytes recovered: %u/16\n", result.bytesRecovered);
    std::printf("  security factor S  : %.3g\n", security);
    std::printf("trade-off:\n");
    std::printf("  RCoal_Score (a=1,b=1)  : %.3g\n",
                core::rcoalScore(security, norm_time, 1, 1));
    std::printf("  RCoal_Score (a=1,b=20) : %.3g\n",
                core::rcoalScore(security, norm_time, 1, 20));
    return 0;
}
