/**
 * @file
 * Quickstart: simulate AES-128 encryption on the Table I GPU, then turn
 * on the RSS+RTS defense and compare.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "rcoal/attack/encryption_service.hpp"

int
main()
{
    using namespace rcoal;

    // 1. A GPU with the paper's baseline configuration (Table I).
    sim::GpuConfig config = sim::GpuConfig::paperBaseline();
    config.seed = 1;
    std::printf("Simulated GPU:\n%s\n", config.describe().c_str());

    // 2. An AES-128 encryption service running on it.
    const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    attack::EncryptionService service(config, key);

    // 3. Encrypt one 32-line plaintext (one warp, one line per thread).
    Rng rng(2024);
    const auto plaintext = workloads::randomPlaintext(32, rng);
    const auto baseline = service.encrypt(plaintext);
    std::printf("Baseline coalescing: %.0f cycles, %llu coalesced "
                "accesses (%llu in the last AES round)\n",
                baseline.totalTime,
                static_cast<unsigned long long>(baseline.totalAccesses),
                static_cast<unsigned long long>(
                    baseline.lastRoundAccesses));

    // 4. Same workload under the RSS+RTS defense with 8 subwarps.
    config.policy = core::CoalescingPolicy::rss(8, /*rts=*/true);
    attack::EncryptionService defended(config, key);
    const auto rcoal = defended.encrypt(plaintext);
    std::printf("RSS+RTS (M=8):       %.0f cycles, %llu coalesced "
                "accesses (%llu in the last AES round)\n",
                rcoal.totalTime,
                static_cast<unsigned long long>(rcoal.totalAccesses),
                static_cast<unsigned long long>(rcoal.lastRoundAccesses));

    std::printf("\nDefense cost: %.1f%% more time, %.1f%% more data "
                "movement - the price of randomizing the timing "
                "channel.\n",
                100.0 * (rcoal.totalTime / baseline.totalTime - 1.0),
                100.0 * (static_cast<double>(rcoal.totalAccesses) /
                             static_cast<double>(baseline.totalAccesses) -
                         1.0));

    // 5. Ciphertext is unchanged - the defense only reorders memory
    // traffic.
    if (rcoal.ciphertext == baseline.ciphertext)
        std::printf("Ciphertexts match: the defense is functionally "
                    "transparent.\n");
    return 0;
}
