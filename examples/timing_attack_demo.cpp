/**
 * @file
 * The full correlation timing attack, end to end: observe an
 * unprotected GPU AES service, recover all 16 bytes of the last round
 * key from timing alone, and invert the key schedule to obtain the
 * original AES key (Jiang et al. / Section II-C of the RCoal paper).
 *
 * Usage: timing_attack_demo [--samples N]   (default 400)
 */

#include <cstdio>
#include <cstring>

#include "rcoal/aes/key_schedule.hpp"
#include "rcoal/attack/correlation_attack.hpp"

int
main(int argc, char **argv)
{
    using namespace rcoal;
    unsigned samples = 400;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc)
            samples = static_cast<unsigned>(std::atoi(argv[i + 1]));
    }

    // The victim: a remote GPU AES encryption service. The attacker
    // does NOT know this key.
    const std::array<std::uint8_t, 16> secret_key = {
        0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67,
        0x89, 0xab, 0xcd, 0xef, 0x10, 0x32, 0x54, 0x76};
    sim::GpuConfig config = sim::GpuConfig::paperBaseline();
    config.seed = 99;
    attack::EncryptionService victim(config, secret_key);

    // Step 1: submit random plaintexts, record ciphertext + timing.
    std::printf("Collecting %u timing samples from the victim...\n",
                samples);
    Rng rng(1337);
    const auto observations = victim.collectSamples(samples, 32, rng);

    // Step 2: per key byte, correlate guessed access counts (Eq. 3 +
    // the coalescing model) with the measured timing.
    attack::AttackConfig attack_config;
    attack_config.assumedPolicy = core::CoalescingPolicy::baseline();
    attack_config.measurement =
        attack::MeasurementVector::LastRoundTime;
    attack::CorrelationAttack attacker(attack_config);

    const aes::Block true_last_round_key = victim.lastRoundKey();
    const auto result =
        attacker.attackKey(observations, true_last_round_key);

    std::printf("\nbyte | guessed | actual | corr    | rank\n");
    std::printf("-----+---------+--------+---------+-----\n");
    for (unsigned j = 0; j < 16; ++j) {
        const auto &byte = result.bytes[j];
        std::printf("  %2u |  0x%02x   |  0x%02x  | %+0.4f | %3u %s\n",
                    j, byte.bestGuess, true_last_round_key[j],
                    byte.bestCorrelation, byte.rankOfCorrect,
                    byte.bestGuess == true_last_round_key[j] ? "ok"
                                                             : "MISS");
    }
    std::printf("\nrecovered %u/16 last-round key bytes "
                "(avg correct-guess correlation %+0.3f)\n",
                result.bytesRecovered, result.avgCorrectCorrelation);

    if (!result.fullKeyRecovered()) {
        std::printf("partial recovery - rerun with more --samples.\n");
        return 1;
    }

    // Step 3: the key expansion is invertible, so the last round key
    // yields the original cipher key.
    const aes::Block recovered =
        aes::invertFromLastRoundKey(result.recoveredLastRoundKey);
    std::printf("\ninverting the key schedule...\nrecovered AES key:  ");
    for (std::uint8_t b : recovered)
        std::printf("%02x", b);
    std::printf("\nactual AES key:     ");
    for (std::uint8_t b : secret_key)
        std::printf("%02x", b);
    const bool match =
        std::equal(recovered.begin(), recovered.end(),
                   secret_key.begin());
    std::printf("\n\n%s\n",
                match ? "FULL KEY RECOVERED FROM TIMING ALONE."
                      : "key mismatch (unexpected)");
    return match ? 0 : 1;
}
