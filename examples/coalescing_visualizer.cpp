/**
 * @file
 * Visualize how each RCoal mechanism coalesces one warp's T-table
 * lookups: 32 threads, 16 memory blocks, one row per subwarp.
 *
 * Usage: coalescing_visualizer [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "rcoal/core/coalescer.hpp"
#include "rcoal/core/partitioner.hpp"

namespace {

using namespace rcoal;

void
visualize(const core::CoalescingPolicy &policy,
          const std::vector<core::LaneRequest> &lanes, Rng &rng)
{
    core::SubwarpPartitioner partitioner(policy, 32);
    const auto partition = partitioner.draw(rng);
    const core::Coalescer coalescer(64);
    const auto accesses = coalescer.coalesce(lanes, partition);

    std::printf("\n%s -> %zu coalesced accesses\n",
                policy.name().c_str(), accesses.size());
    for (unsigned s = 0; s < partition.numSubwarps(); ++s) {
        std::printf("  sid %2u | threads:", s);
        for (ThreadId tid : partition.threadsOf(s))
            std::printf(" %2u", tid);
        std::printf("\n         | blocks :");
        for (const auto &access : accesses) {
            if (access.sid == s) {
                std::printf(" %2llu",
                            static_cast<unsigned long long>(
                                (access.blockAddr - 0x1000) / 64));
            }
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 7;
    Rng rng(seed);

    // One warp instruction: every thread looks up a random element of a
    // 1 KiB T-table (16 blocks of 64 bytes) - the AES access pattern.
    std::vector<core::LaneRequest> lanes(32);
    std::printf("warp instruction: T4[t] lookups, thread -> block:\n ");
    for (ThreadId t = 0; t < 32; ++t) {
        const Addr block = rng.below(16);
        lanes[t] = {t, 0x1000 + block * 64 + 4 * rng.below(16), 4, true};
        std::printf(" %llu", static_cast<unsigned long long>(block));
    }
    std::printf("\n");

    visualize(core::CoalescingPolicy::baseline(), lanes, rng);
    visualize(core::CoalescingPolicy::fss(4), lanes, rng);
    visualize(core::CoalescingPolicy::fss(4, true), lanes, rng);
    visualize(core::CoalescingPolicy::rss(4), lanes, rng);
    visualize(core::CoalescingPolicy::rss(4, true), lanes, rng);
    visualize(core::CoalescingPolicy::disabled(), lanes, rng);

    std::printf("\nEach access is one DRAM transaction; the attacker "
                "tries to predict the total from the ciphertext. Re-run "
                "with a\ndifferent seed to see the randomized mechanisms "
                "change their grouping.\n");
    return 0;
}
