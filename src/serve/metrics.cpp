/**
 * @file
 * Serving metrics implementation.
 */

#include "rcoal/serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "rcoal/common/logging.hpp"

namespace rcoal::serve {

double
percentile(const std::vector<double> &sorted_values, double p)
{
    RCOAL_ASSERT(p >= 0.0 && p <= 100.0, "percentile %g out of range", p);
    if (sorted_values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    // Nearest-rank definition: the smallest value with at least p% of
    // the sample at or below it. p=0 degenerates to the minimum.
    const auto n = sorted_values.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    return sorted_values[rank - 1];
}

LatencySummary
LatencySummary::of(std::vector<double> values)
{
    LatencySummary summary;
    summary.count = values.size();
    if (values.empty())
        return summary;
    std::sort(values.begin(), values.end());
    summary.p50 = percentile(values, 50.0);
    summary.p95 = percentile(values, 95.0);
    summary.p99 = percentile(values, 99.0);
    summary.mean = std::accumulate(values.begin(), values.end(), 0.0) /
                   static_cast<double>(values.size());
    summary.max = values.back();
    return summary;
}

namespace {

/** One "latency" line; an empty series says so instead of fake zeros. */
std::string
latencyLine(const char *label, const LatencySummary &summary)
{
    if (summary.count == 0)
        return strprintf("  latency %s no samples\n", label);
    return strprintf("  latency %s p50 %.0f p95 %.0f p99 %.0f "
                     "mean %.0f max %.0f cycles (n=%zu)\n",
                     label, summary.p50, summary.p95, summary.p99,
                     summary.mean, summary.max, summary.count);
}

} // namespace

std::string
ServeReport::describe() const
{
    std::string out;
    out += strprintf("completed %zu requests in %llu cycles "
                     "(%.1f req/s)\n",
                     completed.size(),
                     static_cast<unsigned long long>(totalCycles),
                     throughputReqPerSec);
    out += latencyLine("all  ", allLatency);
    out += latencyLine("probe", probeLatency);
    out += strprintf("  queue depth mean %.2f max %zu; admitted %llu "
                     "rejected %llu\n",
                     meanQueueDepth, maxQueueDepth,
                     static_cast<unsigned long long>(admitted),
                     static_cast<unsigned long long>(rejected));
    out += strprintf("  kernels %llu (%.2f req/batch); SM busy mean "
                     "%.2f max %u (occupancy %.1f%%)\n",
                     static_cast<unsigned long long>(kernelsLaunched),
                     meanBatchRequests, meanBusySms, maxBusySms,
                     smOccupancy * 100.0);
    return out;
}

} // namespace rcoal::serve
