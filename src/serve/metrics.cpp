/**
 * @file
 * Serving metrics implementation.
 */

#include "rcoal/serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "rcoal/common/logging.hpp"

namespace rcoal::serve {

double
percentile(const std::vector<double> &sorted_values, double p)
{
    RCOAL_ASSERT(p >= 0.0 && p <= 100.0, "percentile %g out of range", p);
    if (sorted_values.empty())
        return std::numeric_limits<double>::quiet_NaN();
    // Nearest-rank definition: the smallest value with at least p% of
    // the sample at or below it. p=0 degenerates to the minimum.
    const auto n = sorted_values.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::min(std::max<std::size_t>(rank, 1), n);
    return sorted_values[rank - 1];
}

LatencySummary
LatencySummary::of(std::vector<double> values)
{
    // Streaming path with an unreachable cutoff would defeat the
    // point: size the accumulator so the behaviour (exact vs.
    // histogram) matches what a server feeding values one at a time
    // would have produced for the same sample size.
    StreamingLatency streaming;
    for (double v : values)
        streaming.observe(v);
    return streaming.summary();
}

StreamingLatency::StreamingLatency(std::size_t exact_cutoff)
    : exactCutoff(exact_cutoff)
{
    exact.reserve(std::min<std::size_t>(exactCutoff, 64));
}

void
StreamingLatency::observe(double latency_cycles)
{
    RCOAL_ASSERT(latency_cycles >= 0.0 &&
                     std::isfinite(latency_cycles),
                 "latency %f is not a non-negative finite cycle count",
                 latency_cycles);
    ++observations;
    sum += latency_cycles;
    maxSeen = std::max(maxSeen, latency_cycles);
    hist.observe(static_cast<std::uint64_t>(
        std::llround(latency_cycles)));
    if (observations <= exactCutoff) {
        exact.push_back(latency_cycles);
        return;
    }
    if (!exact.empty()) {
        // Cutoff crossed: release the retained values for good; the
        // histogram (which saw every observation) takes over.
        exact.clear();
        exact.shrink_to_fit();
    }
}

LatencySummary
StreamingLatency::summary() const
{
    LatencySummary out;
    out.count = observations;
    if (observations == 0)
        return out;
    out.mean = sum / static_cast<double>(observations);
    out.max = maxSeen;
    if (!exact.empty()) {
        std::vector<double> sorted = exact;
        std::sort(sorted.begin(), sorted.end());
        out.p50 = percentile(sorted, 50.0);
        out.p95 = percentile(sorted, 95.0);
        out.p99 = percentile(sorted, 99.0);
        out.p999 = percentile(sorted, 99.9);
        return out;
    }
    out.p50 = hist.quantile(0.50);
    out.p95 = hist.quantile(0.95);
    out.p99 = hist.quantile(0.99);
    out.p999 = hist.quantile(0.999);
    return out;
}

namespace {

/** One "latency" line; an empty series says so instead of fake zeros. */
std::string
latencyLine(const char *label, const LatencySummary &summary)
{
    if (summary.count == 0)
        return strprintf("  latency %s no samples\n", label);
    return strprintf("  latency %s p50 %.0f p95 %.0f p99 %.0f "
                     "p999 %.0f mean %.0f max %.0f cycles (n=%zu)\n",
                     label, summary.p50, summary.p95, summary.p99,
                     summary.p999, summary.mean, summary.max,
                     summary.count);
}

} // namespace

std::string
ServeReport::describe() const
{
    std::string out;
    out += strprintf("completed %zu requests in %llu cycles "
                     "(%.1f req/s)\n",
                     completed.size(),
                     static_cast<unsigned long long>(totalCycles),
                     throughputReqPerSec);
    out += latencyLine("all  ", allLatency);
    out += latencyLine("probe", probeLatency);
    out += strprintf("  queue depth mean %.2f max %zu; admitted %llu "
                     "rejected %llu\n",
                     meanQueueDepth, maxQueueDepth,
                     static_cast<unsigned long long>(admitted),
                     static_cast<unsigned long long>(rejected));
    out += strprintf("  kernels %llu (%.2f req/batch); SM busy mean "
                     "%.2f max %u (occupancy %.1f%%)\n",
                     static_cast<unsigned long long>(kernelsLaunched),
                     meanBatchRequests, meanBusySms, maxBusySms,
                     smOccupancy * 100.0);
    return out;
}

} // namespace rcoal::serve
