/**
 * @file
 * Load generator implementations.
 */

#include "rcoal/serve/load_generator.hpp"

#include <algorithm>
#include <cmath>

#include "rcoal/common/logging.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::serve {

namespace detail {

Cycle
exponentialGap(double u, double mean_gap)
{
    RCOAL_ASSERT(mean_gap > 0.0 && std::isfinite(mean_gap),
                 "exponential gap needs a positive finite mean, got %f",
                 mean_gap);
    RCOAL_ASSERT(u >= 0.0, "uniform draw %f below 0", u);
    // uniform01() yields [0, 1) with 2^-53 granularity, so its largest
    // draw is exactly 1 - 2^-53 — for which the clamp is a no-op and
    // sequences are unchanged. The clamp only bites for draws at or
    // beyond 1, where log1p(-u) would be -inf (or NaN past 1).
    constexpr double kMaxU = 1.0 - 0x1p-53;
    u = std::min(u, kMaxU);
    const double gap = -mean_gap * std::log1p(-u);
    RCOAL_ASSERT(std::isfinite(gap),
                 "exponential gap is not finite (u=%f mean=%f)", u,
                 mean_gap);
    const double rounded = std::max(1.0, std::floor(gap + 0.5));
    // Cap before converting: a double beyond the Cycle range would make
    // the cast undefined (an absurd mean times the tail draw's ~36.7
    // factor can exceed 2^63).
    if (rounded >= static_cast<double>(kMaxGapCycles))
        return kMaxGapCycles;
    return static_cast<Cycle>(rounded);
}

} // namespace detail

namespace {

/**
 * Exponential interarrival gap from the first uniform draw of @p rng.
 */
Cycle
exponentialGap(Rng &rng, double mean_gap)
{
    return detail::exponentialGap(rng.uniform01(), mean_gap);
}

} // namespace

OpenLoopGenerator::OpenLoopGenerator(double mean_gap_cycles,
                                     std::vector<unsigned> line_choices,
                                     std::uint64_t generator_seed,
                                     std::uint64_t first_id)
    : meanGap(mean_gap_cycles),
      lineChoices(std::move(line_choices)),
      seed(generator_seed),
      nextId(first_id),
      enabled(mean_gap_cycles > 0.0)
{
    RCOAL_ASSERT(!enabled || !lineChoices.empty(),
                 "open-loop generator enabled without request sizes");
}

void
OpenLoopGenerator::startAt(Cycle start_origin)
{
    RCOAL_ASSERT(!primed && issuedCount == 0,
                 "open-loop startAt() after traffic already began");
    origin = start_origin;
}

void
OpenLoopGenerator::poll(Cycle now, std::vector<Request> &out)
{
    if (!enabled)
        return;
    if (!primed) {
        Rng rng = Rng::stream(seed, issuedCount);
        nextArrival = origin + exponentialGap(rng, meanGap);
        primed = true;
    }
    while (nextArrival <= now) {
        // Request k owns stream (seed, k): the first draw is its
        // interarrival gap (already consumed above / below), the rest
        // its size and plaintext.
        Rng rng = Rng::stream(seed, issuedCount);
        (void)rng.uniform01(); // The gap draw.
        const unsigned lines = lineChoices[static_cast<std::size_t>(
            rng.below(lineChoices.size()))];

        Request request;
        request.id = nextId++;
        // The *scheduled* arrival, not the poll cycle: an arrival that
        // falls between polls (or inside a skipped window) must not
        // inherit the later poll timestamp, or every queueing-latency
        // number downstream is under-counted by the poll interval.
        request.arrival = nextArrival;
        request.plaintext = workloads::randomPlaintext(lines, rng);
        request.isProbe = false;
        request.clientId = -1;
        out.push_back(std::move(request));
        ++issuedCount;

        Rng next_rng = Rng::stream(seed, issuedCount);
        nextArrival += exponentialGap(next_rng, meanGap);
    }
}

Cycle
OpenLoopGenerator::nextEventCycle()
{
    if (!enabled)
        return kInvalidCycle;
    if (!primed) {
        Rng rng = Rng::stream(seed, issuedCount);
        nextArrival = origin + exponentialGap(rng, meanGap);
        primed = true;
    }
    return nextArrival;
}

ClosedLoopGenerator::ClosedLoopGenerator(unsigned clients,
                                         Cycle think_cycles,
                                         unsigned lines,
                                         std::uint64_t generator_seed,
                                         std::uint64_t first_id,
                                         bool probes)
    : thinkCycles(think_cycles),
      linesPerRequest(lines),
      seed(generator_seed),
      nextId(first_id),
      probeRequests(probes),
      clientsState(clients)
{
    RCOAL_ASSERT(clients > 0, "closed loop needs at least one client");
    RCOAL_ASSERT(lines > 0, "closed-loop requests need plaintext lines");
}

void
ClosedLoopGenerator::poll(Cycle now, std::vector<Request> &out)
{
    for (std::size_t c = 0; c < clientsState.size(); ++c) {
        Client &client = clientsState[c];
        if (client.waiting || client.nextSubmitAt > now)
            continue;

        Request request;
        // Same contract as the open-loop generator: the client submits
        // at its scheduled cycle, regardless of when the caller polls.
        request.arrival = client.nextSubmitAt;
        request.isProbe = probeRequests;
        request.clientId = static_cast<int>(c);
        if (!client.retryPlaintext.empty()) {
            // Resubmit the rejected request verbatim: same id, same
            // plaintext, so observation i always corresponds to
            // plaintext stream (seed, i).
            request.id = client.retryId;
            request.plaintext = std::move(client.retryPlaintext);
            client.retryPlaintext.clear();
        } else {
            request.id = nextId++;
            Rng rng = Rng::stream(seed, issuedCount);
            request.plaintext =
                workloads::randomPlaintext(linesPerRequest, rng);
            ++issuedCount;
        }
        client.waiting = true;
        out.push_back(std::move(request));
    }
}

Cycle
ClosedLoopGenerator::nextEventCycle() const
{
    Cycle bound = kInvalidCycle;
    for (const Client &client : clientsState) {
        if (!client.waiting)
            bound = std::min(bound, client.nextSubmitAt);
    }
    return bound;
}

void
ClosedLoopGenerator::onCompletion(int client_id, Cycle now)
{
    RCOAL_ASSERT(client_id >= 0 &&
                     static_cast<std::size_t>(client_id) <
                         clientsState.size(),
                 "completion for unknown client %d", client_id);
    Client &client = clientsState[static_cast<std::size_t>(client_id)];
    RCOAL_ASSERT(client.waiting, "client %d completed while idle",
                 client_id);
    client.waiting = false;
    client.nextSubmitAt = now + thinkCycles;
}

void
ClosedLoopGenerator::startAt(Cycle origin)
{
    RCOAL_ASSERT(issuedCount == 0,
                 "closed-loop startAt() after traffic already began");
    for (Client &client : clientsState)
        client.nextSubmitAt = origin;
}

void
ClosedLoopGenerator::onRejection(int client_id, Request request,
                                 Cycle now)
{
    RCOAL_ASSERT(client_id >= 0 &&
                     static_cast<std::size_t>(client_id) <
                         clientsState.size(),
                 "rejection for unknown client %d", client_id);
    Client &client = clientsState[static_cast<std::size_t>(client_id)];
    RCOAL_ASSERT(client.waiting, "client %d rejected while idle",
                 client_id);
    client.waiting = false;
    client.nextSubmitAt = now + thinkCycles;
    client.retryId = request.id;
    client.retryPlaintext = std::move(request.plaintext);
}

} // namespace rcoal::serve
