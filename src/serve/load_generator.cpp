/**
 * @file
 * Load generator implementations.
 */

#include "rcoal/serve/load_generator.hpp"

#include <algorithm>
#include <cmath>

#include "rcoal/common/logging.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::serve {

namespace {

/**
 * Exponential interarrival gap (whole cycles, at least 1) from the
 * first uniform draw of @p rng.
 */
Cycle
exponentialGap(Rng &rng, double mean_gap)
{
    const double u = rng.uniform01();
    const double gap = -mean_gap * std::log1p(-u);
    return static_cast<Cycle>(std::max(1.0, std::floor(gap + 0.5)));
}

} // namespace

OpenLoopGenerator::OpenLoopGenerator(double mean_gap_cycles,
                                     std::vector<unsigned> line_choices,
                                     std::uint64_t generator_seed,
                                     std::uint64_t first_id)
    : meanGap(mean_gap_cycles),
      lineChoices(std::move(line_choices)),
      seed(generator_seed),
      nextId(first_id),
      enabled(mean_gap_cycles > 0.0)
{
    RCOAL_ASSERT(!enabled || !lineChoices.empty(),
                 "open-loop generator enabled without request sizes");
}

void
OpenLoopGenerator::poll(Cycle now, std::vector<Request> &out)
{
    if (!enabled)
        return;
    if (!primed) {
        Rng rng = Rng::stream(seed, issuedCount);
        nextArrival = exponentialGap(rng, meanGap);
        primed = true;
    }
    while (nextArrival <= now) {
        // Request k owns stream (seed, k): the first draw is its
        // interarrival gap (already consumed above / below), the rest
        // its size and plaintext.
        Rng rng = Rng::stream(seed, issuedCount);
        (void)rng.uniform01(); // The gap draw.
        const unsigned lines = lineChoices[static_cast<std::size_t>(
            rng.below(lineChoices.size()))];

        Request request;
        request.id = nextId++;
        request.arrival = now;
        request.plaintext = workloads::randomPlaintext(lines, rng);
        request.isProbe = false;
        request.clientId = -1;
        out.push_back(std::move(request));
        ++issuedCount;

        Rng next_rng = Rng::stream(seed, issuedCount);
        nextArrival += exponentialGap(next_rng, meanGap);
    }
}

Cycle
OpenLoopGenerator::nextEventCycle()
{
    if (!enabled)
        return kInvalidCycle;
    if (!primed) {
        Rng rng = Rng::stream(seed, issuedCount);
        nextArrival = exponentialGap(rng, meanGap);
        primed = true;
    }
    return nextArrival;
}

ClosedLoopGenerator::ClosedLoopGenerator(unsigned clients,
                                         Cycle think_cycles,
                                         unsigned lines,
                                         std::uint64_t generator_seed,
                                         std::uint64_t first_id,
                                         bool probes)
    : thinkCycles(think_cycles),
      linesPerRequest(lines),
      seed(generator_seed),
      nextId(first_id),
      probeRequests(probes),
      clientsState(clients)
{
    RCOAL_ASSERT(clients > 0, "closed loop needs at least one client");
    RCOAL_ASSERT(lines > 0, "closed-loop requests need plaintext lines");
}

void
ClosedLoopGenerator::poll(Cycle now, std::vector<Request> &out)
{
    for (std::size_t c = 0; c < clientsState.size(); ++c) {
        Client &client = clientsState[c];
        if (client.waiting || client.nextSubmitAt > now)
            continue;

        Request request;
        request.arrival = now;
        request.isProbe = probeRequests;
        request.clientId = static_cast<int>(c);
        if (!client.retryPlaintext.empty()) {
            // Resubmit the rejected request verbatim: same id, same
            // plaintext, so observation i always corresponds to
            // plaintext stream (seed, i).
            request.id = client.retryId;
            request.plaintext = std::move(client.retryPlaintext);
            client.retryPlaintext.clear();
        } else {
            request.id = nextId++;
            Rng rng = Rng::stream(seed, issuedCount);
            request.plaintext =
                workloads::randomPlaintext(linesPerRequest, rng);
            ++issuedCount;
        }
        client.waiting = true;
        out.push_back(std::move(request));
    }
}

Cycle
ClosedLoopGenerator::nextEventCycle() const
{
    Cycle bound = kInvalidCycle;
    for (const Client &client : clientsState) {
        if (!client.waiting)
            bound = std::min(bound, client.nextSubmitAt);
    }
    return bound;
}

void
ClosedLoopGenerator::onCompletion(int client_id, Cycle now)
{
    RCOAL_ASSERT(client_id >= 0 &&
                     static_cast<std::size_t>(client_id) <
                         clientsState.size(),
                 "completion for unknown client %d", client_id);
    Client &client = clientsState[static_cast<std::size_t>(client_id)];
    RCOAL_ASSERT(client.waiting, "client %d completed while idle",
                 client_id);
    client.waiting = false;
    client.nextSubmitAt = now + thinkCycles;
}

void
ClosedLoopGenerator::onRejection(int client_id, Request request,
                                 Cycle now)
{
    RCOAL_ASSERT(client_id >= 0 &&
                     static_cast<std::size_t>(client_id) <
                         clientsState.size(),
                 "rejection for unknown client %d", client_id);
    Client &client = clientsState[static_cast<std::size_t>(client_id)];
    RCOAL_ASSERT(client.waiting, "client %d rejected while idle",
                 client_id);
    client.waiting = false;
    client.nextSubmitAt = now + thinkCycles;
    client.retryId = request.id;
    client.retryPlaintext = std::move(request.plaintext);
}

} // namespace rcoal::serve
