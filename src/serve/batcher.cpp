/**
 * @file
 * Batcher implementation.
 */

#include "rcoal/serve/batcher.hpp"

#include <algorithm>

namespace rcoal::serve {

Batcher::Batcher(const ServeConfig &config)
    : policy(config.batchPolicy),
      maxRequests(config.maxBatchRequests),
      timeoutCycles(config.batchTimeoutCycles)
{
}

std::vector<Request>
Batcher::popOldest(RequestQueue &queue) const
{
    std::vector<Request> batch;
    while (!queue.empty() && batch.size() < maxRequests)
        batch.push_back(queue.popFront());
    return batch;
}

std::vector<Request>
Batcher::popSmallest(RequestQueue &queue) const
{
    std::vector<Request> batch;
    while (!queue.empty() && batch.size() < maxRequests) {
        // Scan for the fewest-lines request; the first (oldest) wins
        // ties, which keeps the selection deterministic and starvation
        // bounded by the line-count distribution rather than arrival
        // interleaving.
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue.size(); ++i) {
            if (queue.peek(i).lines() < queue.peek(best).lines())
                best = i;
        }
        batch.push_back(queue.popAt(best));
    }
    return batch;
}

std::vector<Request>
Batcher::formBatch(RequestQueue &queue, Cycle now) const
{
    if (queue.empty())
        return {};
    switch (policy) {
      case BatchPolicy::Fcfs:
        return popOldest(queue);
      case BatchPolicy::BatchFill:
        // Launch a partial batch only once its oldest member has aged
        // past the deadline; otherwise hold out for a full one.
        if (queue.size() < maxRequests &&
            now - queue.oldestArrival() < timeoutCycles) {
            return {};
        }
        return popOldest(queue);
      case BatchPolicy::Sjf:
        return popSmallest(queue);
    }
    return {};
}

Cycle
Batcher::earliestLaunch(const RequestQueue &queue, Cycle now) const
{
    if (queue.empty())
        return kInvalidCycle;
    if (policy == BatchPolicy::BatchFill && queue.size() < maxRequests) {
        // A held partial batch fires once its oldest member ages out.
        return std::max(now + 1, queue.oldestArrival() + timeoutCycles);
    }
    return now + 1;
}

} // namespace rcoal::serve
