/**
 * @file
 * EncryptionServer implementation.
 */

#include "rcoal/serve/server.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"
#include "rcoal/serve/batcher.hpp"
#include "rcoal/serve/load_generator.hpp"
#include "rcoal/serve/request_queue.hpp"
#include "rcoal/serve/scheduler.hpp"
#include "rcoal/trace/tracer.hpp"

namespace rcoal::serve {

namespace {

/** Background requests get ids far above any probe id. */
constexpr std::uint64_t kBackgroundFirstId = 1'000'000'000;

} // namespace

EncryptionServer::EncryptionServer(const sim::GpuConfig &gpu,
                                   const ServeConfig &serve,
                                   std::span<const std::uint8_t> key)
    : gpuConfig(gpu),
      serveConfig(serve),
      secretKey(key.begin(), key.end())
{
    serveConfig.validate(gpuConfig);
}

ServeReport
EncryptionServer::run(const WorkloadSpec &spec,
                      trace::Tracer *tracer) const
{
    RCOAL_ASSERT(spec.probeSamples > 0, "workload without probes");

    RequestQueue queue(serveConfig.queueCapacity);
    Batcher batcher(serveConfig);
    KernelScheduler scheduler(gpuConfig, serveConfig, secretKey);
    [[maybe_unused]] trace::TraceSink *serve_sink = nullptr;
    if (tracer != nullptr) {
        scheduler.gpu().setTracer(tracer);
        serve_sink = &tracer->sink("serve", trace::ClockDomain::Core);
        scheduler.setTraceSink(serve_sink);
    }
    ClosedLoopGenerator probes(/*clients=*/1, spec.probeThinkCycles,
                               spec.probeLines, spec.probeSeed,
                               /*first_id=*/0, /*probes=*/true);
    OpenLoopGenerator background(spec.backgroundMeanGapCycles,
                                 spec.backgroundLineChoices,
                                 spec.backgroundSeed,
                                 kBackgroundFirstId);

    ServeReport report;
    unsigned probe_completions = 0;
    std::uint64_t depth_sum = 0;
    std::uint64_t busy_sum = 0;
    std::vector<Request> arrivals;

    Cycle now = 0;
    while (true) {
        // 1. Retire finished batches and notify closed-loop clients.
        for (CompletedRequest &done : scheduler.collectCompleted(now)) {
            if (done.isProbe) {
                probes.onCompletion(done.clientId, now);
                ++probe_completions;
            }
            report.completed.push_back(std::move(done));
        }
        if (probe_completions >= spec.probeSamples)
            break;

        // 2. New arrivals pass admission control.
        arrivals.clear();
        probes.poll(now, arrivals);
        background.poll(now, arrivals);
        for (Request &request : arrivals) {
            const bool is_probe = request.isProbe;
            const int client = request.clientId;
            [[maybe_unused]] const std::uint64_t rid = request.id;
            [[maybe_unused]] const unsigned req_lines = request.lines();
            if (queue.tryPush(std::move(request))) {
                RCOAL_TRACE(serve_sink, ServeAdmit, now, rid, req_lines,
                            is_probe ? 1 : 0);
                continue;
            }
            RCOAL_TRACE(serve_sink, ServeReject, now, rid, req_lines,
                        is_probe ? 1 : 0);
            // tryPush leaves a rejected request intact.
            if (is_probe)
                probes.onRejection(client, std::move(request), now);
        }

        // 3. Launch batches while gangs are free and the batcher is
        //    willing to form one.
        while (scheduler.gangFree()) {
            std::vector<Request> batch = batcher.formBatch(queue, now);
            if (batch.empty())
                break;
            RCOAL_TRACE(serve_sink, ServeBatch, now, batch.size(),
                        [&batch] {
                            unsigned lines = 0;
                            for (const Request &r : batch)
                                lines += r.lines();
                            return lines;
                        }(),
                        0);
            scheduler.launchBatch(std::move(batch), now);
        }

        // 4. Sample occupancy, then advance the machine.
        depth_sum += queue.size();
        report.maxQueueDepth =
            std::max(report.maxQueueDepth, queue.size());
        const unsigned busy = scheduler.busySms();
        busy_sum += busy;
        report.maxBusySms = std::max(report.maxBusySms, busy);

        scheduler.tick();
        ++now;
        if (now > serveConfig.maxSimCycles) {
            fatal("serve simulation still running after %llu cycles "
                  "(%u/%u probes done) — livelocked workload?",
                  static_cast<unsigned long long>(now),
                  probe_completions, spec.probeSamples);
        }

        // 5. Event-driven sleep: when nothing can happen before the
        //    next machine / arrival / batch-deadline event, fast-forward
        //    instead of polling every cycle. A completed-but-uncollected
        //    kernel pins per-cycle stepping because step 1 consumes it
        //    at this exact loop cycle (probe think times key off it).
        //    The skipped iterations are provably identical no-ops except
        //    for the occupancy sampling, which is applied in bulk.
        sim::GpuMachine &machine = scheduler.gpu();
        if (machine.cycleSkippingEnabled()) {
            // The machine bound is checked first: on event-dense
            // stretches it pins to now + 1 after one component check,
            // and the dearer frontend bounds are never computed.
            Cycle target = machine.nextEventCycle();
            if (target > now + 1 && !machine.anyCompletedUntaken()) {
                target = std::min(target, probes.nextEventCycle());
                target = std::min(target, background.nextEventCycle());
                if (scheduler.gangFree()) {
                    target = std::min(
                        target, batcher.earliestLaunch(queue, now));
                }
                // Keep the livelock backstop: never jump past the cycle
                // the fatal above would have fired at.
                target = std::min(target, serveConfig.maxSimCycles + 1);
                if (target > now + 1) {
                    const Cycle skipped = machine.skipTo(target);
                    depth_sum += queue.size() * skipped;
                    busy_sum += scheduler.busySms() * skipped;
                    now += skipped;
                }
            }
        }
    }

    report.totalCycles = now;
    report.kernels = scheduler.takeKernelSnapshots();
    report.admitted = queue.admitted();
    report.rejected = queue.rejected();
    report.kernelsLaunched = scheduler.kernelsLaunched();
    report.meanBatchRequests =
        scheduler.kernelsLaunched() == 0
            ? 0.0
            : static_cast<double>(scheduler.batchedRequests()) /
                  static_cast<double>(scheduler.kernelsLaunched());
    if (now > 0) {
        report.meanQueueDepth = static_cast<double>(depth_sum) /
                                static_cast<double>(now);
        report.meanBusySms = static_cast<double>(busy_sum) /
                             static_cast<double>(now);
        report.smOccupancy =
            report.meanBusySms / static_cast<double>(gpuConfig.numSms);
        const double seconds = static_cast<double>(now) /
                               (gpuConfig.coreClockMhz * 1e6);
        report.throughputReqPerSec =
            static_cast<double>(report.completed.size()) / seconds;
    }

    std::vector<double> all_latency;
    std::vector<double> probe_latency;
    all_latency.reserve(report.completed.size());
    for (const CompletedRequest &done : report.completed) {
        const auto latency =
            static_cast<double>(done.latencyCycles());
        all_latency.push_back(latency);
        if (done.isProbe)
            probe_latency.push_back(latency);
    }
    report.allLatency = LatencySummary::of(std::move(all_latency));
    report.probeLatency = LatencySummary::of(std::move(probe_latency));
    return report;
}

} // namespace rcoal::serve
