/**
 * @file
 * EncryptionServer implementation.
 */

#include "rcoal/serve/server.hpp"

#include <algorithm>
#include <tuple>

#include "rcoal/common/logging.hpp"
#include "rcoal/serve/batcher.hpp"
#include "rcoal/serve/load_generator.hpp"
#include "rcoal/serve/request_queue.hpp"
#include "rcoal/serve/scheduler.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/sampler.hpp"
#include "rcoal/trace/tracer.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::serve {

namespace {

/** Background requests get ids far above any probe id. */
constexpr std::uint64_t kBackgroundFirstId = 1'000'000'000;

/** Stream tag separating warm-boot plaintexts from all serve traffic. */
constexpr std::uint64_t kBootPlaintextTag = 0xb007'74b1'e5ee'd001ull;

/** Plaintext lines per warm-boot kernel (one full warp). */
constexpr unsigned kBootLines = 32;

/**
 * Retire ServeConfig::warmBootKernels AES launches on @p machine. All
 * randomness (launch RNG streams 1..N under warmBootSeed, plaintexts
 * from a boot-tagged stream) derives from warmBootSeed alone, so the
 * booted state is independent of the scenario GPU seed — the caller
 * reseeds back afterwards. Leaves the machine with cfg.seed ==
 * warmBootSeed, exactly like restoring a warmBootSnapshot().
 */
void
runBootLaunches(sim::GpuMachine &machine,
                std::span<const std::uint8_t> key,
                const ServeConfig &serve)
{
    machine.reseed(serve.warmBootSeed);
    const std::uint64_t plaintext_root =
        Rng::deriveSeed(serve.warmBootSeed, kBootPlaintextTag);
    const sim::SmRange all{0, machine.config().numSms};
    for (unsigned w = 0; w < serve.warmBootKernels; ++w) {
        Rng rng = Rng::stream(plaintext_root, w);
        const auto plaintext = workloads::randomPlaintext(kBootLines, rng);
        workloads::AesGpuKernel kernel(plaintext, key,
                                       machine.config().warpSize);
        const auto id = machine.launchStream(kernel, all, w + 1);
        machine.runUntilDone(id);
        machine.take(id);
    }
}

/** Serve-layer instruments; null when telemetry is off. */
struct ServeCells
{
    telemetry::Gauge *queueDepth = nullptr;
    telemetry::Gauge *busyGangs = nullptr;
    telemetry::Counter *admitted = nullptr;
    telemetry::Counter *rejected = nullptr;
    telemetry::Counter *completed = nullptr;
    telemetry::Counter *probeCompleted = nullptr;
    telemetry::Counter *kernelsLaunched = nullptr;
    telemetry::LogHistogram *batchRequests = nullptr;
    telemetry::LogHistogram *latencyAll = nullptr;
    telemetry::LogHistogram *latencyProbe = nullptr;
    /** (sink, recorded counter, dropped counter) triples. */
    std::vector<std::tuple<const trace::TraceSink *,
                           telemetry::Counter *, telemetry::Counter *>>
        sinks;
};

} // namespace

EncryptionServer::EncryptionServer(const sim::GpuConfig &gpu,
                                   const ServeConfig &serve,
                                   std::span<const std::uint8_t> key)
    : gpuConfig(gpu),
      serveConfig(serve),
      secretKey(key.begin(), key.end())
{
    serveConfig.validate(gpuConfig);
}

sim::MachineSnapshot
EncryptionServer::warmBootSnapshot() const
{
    sim::GpuMachine machine(gpuConfig);
    runBootLaunches(machine, secretKey, serveConfig);
    return machine.snapshot();
}

ServeReport
EncryptionServer::run(const WorkloadSpec &spec,
                      trace::Tracer *tracer,
                      const ServeTelemetry *telemetry,
                      const sim::MachineSnapshot *warm_boot) const
{
    RCOAL_ASSERT(spec.probeSamples > 0, "workload without probes");
    RCOAL_ASSERT(warm_boot == nullptr || serveConfig.warmBootKernels > 0,
                 "warm-boot snapshot passed with warmBootKernels == 0");

    RequestQueue queue(serveConfig.queueCapacity);
    Batcher batcher(serveConfig);
    KernelScheduler scheduler(gpuConfig, serveConfig, secretKey);
    if (serveConfig.warmBootKernels > 0) {
        // Boot before any tracer/telemetry attaches: the boot prefix is
        // shared machinery, not part of the measured scenario. restore()
        // adopts the snapshot's seed (warmBootSeed) just like the inline
        // replay, so reseeding back to the scenario seed makes the two
        // paths byte-identical from here on.
        sim::GpuMachine &machine = scheduler.gpu();
        if (warm_boot != nullptr)
            machine.restore(*warm_boot);
        else
            runBootLaunches(machine, secretKey, serveConfig);
        machine.reseed(gpuConfig.seed);
    }
    [[maybe_unused]] trace::TraceSink *serve_sink = nullptr;
    if (tracer != nullptr) {
        scheduler.gpu().setTracer(tracer);
        serve_sink = &tracer->sink("serve", trace::ClockDomain::Core);
        scheduler.setTraceSink(serve_sink);
    }
    // Span tracing attaches after the warm boot for the same reason
    // the tracer does: the boot prefix is shared machinery. The
    // collector then rides the machine through snapshot()/restore().
    spans::SpanCollector *span_collector =
        telemetry != nullptr ? telemetry->spans : nullptr;
    telemetry::StageLeakageAuditor *stage_auditor =
        telemetry != nullptr ? telemetry->stageAuditor : nullptr;
    RCOAL_ASSERT(stage_auditor == nullptr || span_collector != nullptr,
                 "stage auditor requires a span collector");
    if (span_collector != nullptr)
        scheduler.setSpanCollector(span_collector, /*span_namespace=*/0);
    ClosedLoopGenerator probes(/*clients=*/1, spec.probeThinkCycles,
                               spec.probeLines, spec.probeSeed,
                               /*first_id=*/0, /*probes=*/true);
    OpenLoopGenerator background(spec.backgroundMeanGapCycles,
                                 spec.backgroundLineChoices,
                                 spec.backgroundSeed,
                                 kBackgroundFirstId);

    ServeReport report;
    unsigned probe_completions = 0;
    std::uint64_t completed_count = 0;
    std::uint64_t depth_sum = 0;
    std::uint64_t busy_sum = 0;
    std::vector<Request> arrivals;
    StreamingLatency all_latency;
    StreamingLatency probe_latency;

    ServeCells cells;
    telemetry::TelemetrySampler *sampler =
        telemetry != nullptr ? telemetry->sampler : nullptr;
    telemetry::LeakageAuditor *auditor =
        telemetry != nullptr ? telemetry->auditor : nullptr;
    if (sampler != nullptr) {
        telemetry::MetricRegistry &reg = sampler->registry();
        // Machine instruments first: setTelemetry also re-anchors the
        // sampler and folds its bound into nextEventCycle().
        scheduler.gpu().setTelemetry(sampler);
        cells.queueDepth =
            &reg.gauge("rcoal_serve_queue_depth",
                       "Requests waiting in the admission queue");
        cells.busyGangs =
            &reg.gauge("rcoal_serve_busy_gangs",
                       "SM gangs currently running a batch kernel");
        cells.admitted =
            &reg.counter("rcoal_serve_admitted_total",
                         "Requests accepted by admission control");
        cells.rejected =
            &reg.counter("rcoal_serve_rejected_total",
                         "Requests rejected by admission control");
        cells.completed =
            &reg.counter("rcoal_serve_completed_total",
                         "Requests completed end to end");
        cells.probeCompleted =
            &reg.counter("rcoal_serve_probe_completed_total",
                         "Probe (attacker) requests completed");
        cells.kernelsLaunched =
            &reg.counter("rcoal_serve_kernels_launched_total",
                         "Batch kernels launched");
        cells.batchRequests =
            &reg.histogram("rcoal_serve_batch_requests",
                           "Requests per launched batch kernel", {},
                           /*value_bits=*/16);
        cells.latencyAll = &reg.histogram(
            "rcoal_serve_request_latency_cycles",
            "End-to-end request latency in core cycles",
            {{"scope", "all"}});
        cells.latencyProbe = &reg.histogram(
            "rcoal_serve_request_latency_cycles",
            "End-to-end request latency in core cycles",
            {{"scope", "probe"}});
        if (tracer != nullptr) {
            for (const auto &sink : tracer->sinks()) {
                const telemetry::MetricRegistry::Labels sink_labels = {
                    {"sink", std::string(sink->name())}};
                cells.sinks.emplace_back(
                    sink.get(),
                    &reg.counter("rcoal_trace_recorded_total",
                                 "Trace events recorded, per sink",
                                 sink_labels),
                    &reg.counter("rcoal_trace_dropped_total",
                                 "Trace events dropped (ring full), "
                                 "per sink",
                                 sink_labels));
            }
        }
        sampler->addCollector([&](Cycle) {
            cells.queueDepth->set(static_cast<double>(queue.size()));
            cells.busyGangs->set(
                static_cast<double>(scheduler.busyGangs()));
            cells.admitted->set(queue.admitted());
            cells.rejected->set(queue.rejected());
            cells.completed->set(completed_count);
            cells.probeCompleted->set(probe_completions);
            cells.kernelsLaunched->set(scheduler.kernelsLaunched());
            for (auto &[sink, recorded, dropped] : cells.sinks) {
                recorded->set(sink->totalRecorded());
                dropped->set(sink->dropped());
            }
        });
        if (span_collector != nullptr) {
            telemetry::Counter *span_recorded = &reg.counter(
                "rcoal_span_records_total",
                "Span stage records appended to the slab");
            telemetry::Counter *span_dropped = &reg.counter(
                "rcoal_span_dropped_total",
                "Span stage records lost to slab overwrite");
            telemetry::Gauge *spans_live = &reg.gauge(
                "rcoal_spans_live", "Spans open (admitted, not retired)");
            sampler->addCollector([span_collector, span_recorded,
                                   span_dropped, spans_live](Cycle) {
                span_recorded->set(static_cast<double>(
                    span_collector->slab().totalAppended()));
                span_dropped->set(static_cast<double>(
                    span_collector->slab().dropped()));
                spans_live->set(static_cast<double>(
                    span_collector->liveSpans()));
            });
        }
        sampler->track("serve_queue_depth", [&queue] {
            return static_cast<double>(queue.size());
        });
        sampler->track("busy_sms", [&scheduler] {
            return static_cast<double>(scheduler.busySms());
        });
        if (auditor != nullptr) {
            sampler->track("leakage_correlation", [auditor] {
                return auditor->correlation();
            });
        }
    }

    // The loop runs in machine time rebased to the boot point: after a
    // warm boot the machine clock is already past zero, and keeping
    // now == machine.now() is what lets the skip path below pass
    // machine-time targets through unchanged. All reported cycle
    // counts subtract `start`, so they are boot-invariant.
    const Cycle start = scheduler.gpu().now();
    probes.startAt(start);
    background.startAt(start);
    Cycle now = start;
    while (true) {
        // 1. Retire finished batches and notify closed-loop clients.
        for (CompletedRequest &done : scheduler.collectCompleted(now)) {
            const auto latency =
                static_cast<double>(done.latencyCycles());
            all_latency.observe(latency);
            ++completed_count;
            if (cells.latencyAll != nullptr)
                cells.latencyAll->observe(done.latencyCycles());
            if (done.isProbe) {
                probe_latency.observe(latency);
                if (cells.latencyProbe != nullptr)
                    cells.latencyProbe->observe(done.latencyCycles());
                if (auditor != nullptr) {
                    auditor->observe(
                        static_cast<double>(
                            done.kernelPredictedLastRoundAccesses),
                        done.kernelLastRoundTime);
                }
                if (stage_auditor != nullptr && done.spanSampled) {
                    // Per-stage attribution: same X series as the
                    // end-to-end auditor, Y = this stage's last-round
                    // cycle slice. Pearson is scale-invariant, so the
                    // DRAM stage's memory-clock slice needs no
                    // conversion.
                    const auto x = static_cast<double>(
                        done.kernelPredictedLastRoundAccesses);
                    for (std::size_t st = 0;
                         st < spans::kNumSpanStages; ++st) {
                        stage_auditor->observe(
                            st, x,
                            static_cast<double>(
                                done.stageTotals.lastRoundCycles[st]));
                    }
                }
                probes.onCompletion(done.clientId, now);
                ++probe_completions;
            }
            report.completed.push_back(std::move(done));
        }
        if (probe_completions >= spec.probeSamples)
            break;

        // 2. New arrivals pass admission control.
        arrivals.clear();
        probes.poll(now, arrivals);
        background.poll(now, arrivals);
        for (Request &request : arrivals) {
            [[maybe_unused]] const bool is_probe = request.isProbe;
            const int client = request.clientId;
            [[maybe_unused]] const std::uint64_t rid = request.id;
            [[maybe_unused]] const unsigned req_lines = request.lines();
            if (span_collector != nullptr)
                request.spanId = span_collector->openRequest();
            const std::uint32_t span_id = request.spanId;
            if (queue.tryPush(std::move(request))) {
                RCOAL_TRACE(serve_sink, ServeAdmit, now, rid, req_lines,
                            is_probe ? 1 : 0);
                continue;
            }
            if (span_collector != nullptr)
                span_collector->abandon(span_id);
            RCOAL_TRACE(serve_sink, ServeReject, now, rid, req_lines,
                        is_probe ? 1 : 0);
            // tryPush leaves a rejected request intact. Every rejected
            // closed-loop client must be notified or it stays `waiting`
            // forever (stuck-client livelock) — key off clientId, not
            // isProbe, so the invariant holds for any future closed-loop
            // traffic, not just the attacker.
            if (client >= 0)
                probes.onRejection(client, std::move(request), now);
        }

        // 3. Launch batches while gangs are free and the batcher is
        //    willing to form one.
        while (scheduler.gangFree()) {
            std::vector<Request> batch = batcher.formBatch(queue, now);
            if (batch.empty())
                break;
            RCOAL_TRACE(serve_sink, ServeBatch, now, batch.size(),
                        [&batch] {
                            unsigned lines = 0;
                            for (const Request &r : batch)
                                lines += r.lines();
                            return lines;
                        }(),
                        0);
            if (cells.batchRequests != nullptr)
                cells.batchRequests->observe(batch.size());
            scheduler.launchBatch(std::move(batch), now);
        }

        // 4. Sample occupancy, then advance the machine.
        depth_sum += queue.size();
        report.maxQueueDepth =
            std::max(report.maxQueueDepth, queue.size());
        const unsigned busy = scheduler.busySms();
        busy_sum += busy;
        report.maxBusySms = std::max(report.maxBusySms, busy);

        scheduler.tick();
        ++now;
        if (now - start > serveConfig.maxSimCycles) {
            fatal("serve simulation still running after %llu cycles "
                  "(%u/%u probes done) — livelocked workload?",
                  static_cast<unsigned long long>(now - start),
                  probe_completions, spec.probeSamples);
        }

        // 5. Event-driven sleep: when nothing can happen before the
        //    next machine / arrival / batch-deadline event, fast-forward
        //    instead of polling every cycle. A completed-but-uncollected
        //    kernel pins per-cycle stepping because step 1 consumes it
        //    at this exact loop cycle (probe think times key off it).
        //    The skipped iterations are provably identical no-ops except
        //    for the occupancy sampling, which is applied in bulk.
        sim::GpuMachine &machine = scheduler.gpu();
        if (machine.cycleSkippingEnabled()) {
            // The machine bound is checked first: on event-dense
            // stretches it pins to now + 1 after one component check,
            // and the dearer frontend bounds are never computed.
            Cycle target = machine.nextEventCycle();
            if (target > now + 1 && !machine.anyCompletedUntaken()) {
                target = std::min(target, probes.nextEventCycle());
                target = std::min(target, background.nextEventCycle());
                if (scheduler.gangFree()) {
                    target = std::min(
                        target, batcher.earliestLaunch(queue, now));
                }
                // Keep the livelock backstop: never jump past the cycle
                // the fatal above would have fired at.
                target = std::min(target,
                                  start + serveConfig.maxSimCycles + 1);
                if (target > now + 1) {
                    const Cycle skipped = machine.skipTo(target);
                    depth_sum += queue.size() * skipped;
                    busy_sum += scheduler.busySms() * skipped;
                    now += skipped;
                }
            }
        }
    }

    report.totalCycles = now - start;
    report.kernels = scheduler.takeKernelSnapshots();
    report.admitted = queue.admitted();
    report.rejected = queue.rejected();
    report.kernelsLaunched = scheduler.kernelsLaunched();
    report.meanBatchRequests =
        scheduler.kernelsLaunched() == 0
            ? 0.0
            : static_cast<double>(scheduler.batchedRequests()) /
                  static_cast<double>(scheduler.kernelsLaunched());
    if (now > start) {
        const auto elapsed = static_cast<double>(now - start);
        report.meanQueueDepth = static_cast<double>(depth_sum) / elapsed;
        report.meanBusySms = static_cast<double>(busy_sum) / elapsed;
        report.smOccupancy =
            report.meanBusySms / static_cast<double>(gpuConfig.numSms);
        const double seconds = elapsed / (gpuConfig.coreClockMhz * 1e6);
        report.throughputReqPerSec =
            static_cast<double>(report.completed.size()) / seconds;
    }

    report.allLatency = all_latency.summary();
    report.probeLatency = probe_latency.summary();

    if (sampler != nullptr) {
        // Final refresh so the exposition snapshot reflects the end
        // state, then drop every run-local callback: the sampled
        // objects die with this frame, the registry and series do not.
        sampler->collect(now);
        sampler->detachSources();
        scheduler.gpu().setTelemetry(nullptr);
    }
    if (span_collector != nullptr)
        scheduler.setSpanCollector(nullptr);
    return report;
}

} // namespace rcoal::serve
