/**
 * @file
 * KernelScheduler implementation.
 */

#include "rcoal/serve/scheduler.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"
#include "rcoal/core/coalescer.hpp"
#include "rcoal/core/subwarp.hpp"
#include "rcoal/spans/collector.hpp"

namespace rcoal::serve {

KernelScheduler::KernelScheduler(const sim::GpuConfig &gpu,
                                 const ServeConfig &serve,
                                 std::span<const std::uint8_t> key)
    : machine(gpu),
      secretKey(key.begin(), key.end()),
      smsPerKernel(serve.smsPerKernel),
      gangBusy(serve.numGangs(gpu), false)
{
    serve.validate(gpu);
    if (secretKey.size() != 16 && secretKey.size() != 24 &&
        secretKey.size() != 32) {
        fatal("AES key must be 16, 24 or 32 bytes, got %zu",
              secretKey.size());
    }
}

sim::SmRange
KernelScheduler::gangRange(unsigned gang) const
{
    return sim::SmRange{gang * smsPerKernel, smsPerKernel};
}

void
KernelScheduler::setSpanCollector(spans::SpanCollector *c,
                                  std::uint32_t span_namespace)
{
    spanCollector = c;
    spanNamespace = span_namespace;
    machine.setSpanCollector(c, span_namespace);
}

std::vector<std::uint64_t>
KernelScheduler::predictedBaselineLastRound(
    const workloads::AesGpuKernel &kernel) const
{
    const sim::GpuConfig &cfg = machine.config();
    core::Coalescer coalescer(cfg.coalesceBlockBytes);
    const core::SubwarpPartition baseline =
        core::SubwarpPartition::single(cfg.warpSize);
    std::vector<std::uint64_t> per_warp(kernel.numWarps(), 0);
    for (unsigned w = 0; w < kernel.numWarps(); ++w) {
        for (const sim::WarpInstruction &instr : kernel.trace(w)) {
            if (instr.op != sim::WarpInstruction::Op::Load ||
                instr.tag != sim::AccessTag::LastRoundLookup) {
                continue;
            }
            per_warp[w] += coalescer.countAccesses(instr.lanes, baseline);
        }
    }
    return per_warp;
}

bool
KernelScheduler::gangFree() const
{
    return std::find(gangBusy.begin(), gangBusy.end(), false) !=
           gangBusy.end();
}

unsigned
KernelScheduler::busyGangs() const
{
    return static_cast<unsigned>(
        std::count(gangBusy.begin(), gangBusy.end(), true));
}

void
KernelScheduler::launchBatch(std::vector<Request> batch, Cycle now)
{
    RCOAL_ASSERT(!batch.empty(), "launching an empty batch");

    unsigned gang = 0;
    while (gang < gangBusy.size() && gangBusy[gang])
        ++gang;
    RCOAL_ASSERT(gang < gangBusy.size(),
                 "launchBatch with every gang busy");

    ResidentBatch entry;
    entry.gang = gang;
    entry.launchedAt = now;
    entry.lineOffsets.reserve(batch.size());

    std::vector<aes::Block> plaintext;
    unsigned offset = 0;
    for (const Request &request : batch) {
        entry.lineOffsets.push_back(offset);
        offset += request.lines();
        plaintext.insert(plaintext.end(), request.plaintext.begin(),
                         request.plaintext.end());
    }

    entry.kernel = std::make_unique<workloads::AesGpuKernel>(
        plaintext, secretKey, machine.config().warpSize);
    entry.predictedPerWarp = predictedBaselineLastRound(*entry.kernel);
    entry.predictedLastRound = 0;
    for (std::uint64_t w : entry.predictedPerWarp)
        entry.predictedLastRound += w;
    entry.id = machine.launch(*entry.kernel, gangRange(gang));
    entry.requests = std::move(batch);

    if (spanCollector != nullptr) {
        // Queue stage closes and the batch seals for every request;
        // then the launch's warp->span ownership map goes live so the
        // simulator's stamp points can attribute in-kernel stages.
        std::vector<std::uint32_t> warp_spans(entry.kernel->numWarps(),
                                              0);
        const unsigned warp_size = machine.config().warpSize;
        for (std::size_t r = 0; r < entry.requests.size(); ++r) {
            const Request &request = entry.requests[r];
            spanCollector->stampRequest(
                request.spanId, spans::SpanStage::Queue,
                request.arrival, now,
                static_cast<std::uint32_t>(request.lines()),
                static_cast<std::uint16_t>(gang));
            spanCollector->stampRequest(
                request.spanId, spans::SpanStage::BatchSeal, now, now,
                static_cast<std::uint32_t>(entry.requests.size()),
                static_cast<std::uint16_t>(gang));
            const unsigned first = entry.lineOffsets[r];
            const unsigned first_warp = first / warp_size;
            const unsigned end_warp = std::min(
                static_cast<unsigned>(warp_spans.size()),
                (first + request.lines() + warp_size - 1) / warp_size);
            for (unsigned w = first_warp; w < end_warp; ++w) {
                // A boundary warp shared by two requests stays with
                // the earlier one (single owner per warp).
                if (warp_spans[w] == 0)
                    warp_spans[w] = request.spanId;
            }
        }
        spanCollector->registerLaunch(
            spanNamespace, static_cast<std::uint32_t>(entry.id),
            std::move(warp_spans));
    }

    gangBusy[gang] = true;
    ++launchedCount;
    batchedCount += entry.requests.size();
    RCOAL_TRACE(traceSink, ServeLaunch, now, entry.id, gang,
                entry.requests.size());
    resident.push_back(std::move(entry));
}

std::vector<CompletedRequest>
KernelScheduler::collectCompleted(Cycle now)
{
    std::vector<CompletedRequest> out;
    for (auto it = resident.begin(); it != resident.end();) {
        if (!machine.done(it->id)) {
            ++it;
            continue;
        }
        // The kernel's true finish cycle, not the poll cycle: the serve
        // loop polls at kernelPollInterval granularity, and stamping the
        // poll cycle quantized (and inflated) every latency percentile.
        const Cycle finished = machine.finishCycle(it->id);
        RCOAL_ASSERT(finished <= now,
                     "launch %llu finished at %llu, after poll cycle %llu",
                     static_cast<unsigned long long>(it->id),
                     static_cast<unsigned long long>(finished),
                     static_cast<unsigned long long>(now));
        const sim::KernelStats stats = machine.take(it->id);
        const auto &cipher = it->kernel->ciphertext();
        const auto batch_size =
            static_cast<unsigned>(it->requests.size());

        KernelSnapshot snap;
        snap.launchId = it->id;
        snap.gang = it->gang;
        snap.batchRequests = batch_size;
        snap.launchedAt = it->launchedAt;
        snap.finishedAt = finished;
        snap.cycles = stats.cycles;
        snap.coalescedAccesses = stats.coalescedAccesses;
        snap.lastRoundAccesses = stats.lastRoundAccesses();
        snap.predictedLastRoundAccesses = it->predictedLastRound;
        snap.prtStallCycles = stats.prtStallCycles;
        snap.icnStallCycles = stats.icnStallCycles;
        snapshots.push_back(snap);

        for (std::size_t r = 0; r < it->requests.size(); ++r) {
            Request &request = it->requests[r];
            CompletedRequest done;
            done.id = request.id;
            done.isProbe = request.isProbe;
            done.clientId = request.clientId;
            done.tenant = request.tenant;
            done.lines = request.lines();
            done.arrival = request.arrival;
            done.launched = it->launchedAt;
            done.completed = finished;
            const unsigned first = it->lineOffsets[r];
            done.ciphertext.assign(cipher.begin() + first,
                                   cipher.begin() + first + done.lines);
            done.kernelTotalTime = static_cast<double>(stats.cycles);
            done.kernelLastRoundTime =
                static_cast<double>(stats.lastRoundCycles());
            done.kernelLastRoundAccesses = stats.lastRoundAccesses();
            done.kernelTotalAccesses = stats.coalescedAccesses;
            // This request's own slice of the predicted count: the
            // warps whose lines it contributed. Requests are padded to
            // warp multiples in practice; a shared boundary warp is
            // attributed to every request overlapping it.
            {
                const unsigned warp_size = machine.config().warpSize;
                const unsigned first_warp = first / warp_size;
                const unsigned end_warp = std::min(
                    static_cast<unsigned>(it->predictedPerWarp.size()),
                    (first + done.lines + warp_size - 1) / warp_size);
                std::uint64_t own = 0;
                for (unsigned w = first_warp; w < end_warp; ++w)
                    own += it->predictedPerWarp[w];
                done.kernelPredictedLastRoundAccesses = own;
            }
            done.batchRequests = batch_size;
            done.spanId = request.spanId;
            if (spanCollector != nullptr && request.spanId != 0) {
                spanCollector->stampRequest(
                    request.spanId, spans::SpanStage::KernelExec,
                    it->launchedAt, finished, batch_size,
                    static_cast<std::uint16_t>(it->gang),
                    static_cast<std::uint64_t>(stats.lastRoundCycles()));
                spanCollector->stampRequest(
                    request.spanId, spans::SpanStage::Response, finished,
                    finished, 0, static_cast<std::uint16_t>(it->gang));
                done.spanSampled =
                    spanCollector->sampled(request.spanId);
                done.stageTotals =
                    spanCollector->finishRequest(request.spanId);
            }
            RCOAL_TRACE(traceSink, ServeComplete, finished, done.id,
                        finished - done.arrival, it->gang);
            out.push_back(std::move(done));
        }

        if (spanCollector != nullptr) {
            spanCollector->releaseLaunch(
                spanNamespace, static_cast<std::uint32_t>(it->id));
        }
        gangBusy[it->gang] = false;
        it = resident.erase(it);
    }
    return out;
}

} // namespace rcoal::serve
