/**
 * @file
 * ServeConfig validation and description.
 */

#include "rcoal/serve/config.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::serve {

const char *
batchPolicyName(BatchPolicy policy)
{
    switch (policy) {
      case BatchPolicy::Fcfs:
        return "FCFS";
      case BatchPolicy::BatchFill:
        return "BatchFill";
      case BatchPolicy::Sjf:
        return "SJF";
    }
    return "?";
}

void
ServeConfig::validate(const sim::GpuConfig &gpu) const
{
    if (queueCapacity == 0) {
        fatal("serve queueCapacity must be positive (got 0): a service "
              "with no queue slots rejects every request");
    }
    if (maxBatchRequests == 0) {
        fatal("serve maxBatchRequests must be positive (got 0): a batch "
              "must hold at least one request");
    }
    if (smsPerKernel == 0) {
        fatal("serve smsPerKernel must be positive (got 0): a kernel "
              "gang needs at least one SM");
    }
    if (smsPerKernel > gpu.numSms) {
        fatal("serve smsPerKernel (%u) exceeds the GPU's %u SMs; no "
              "kernel gang would fit",
              smsPerKernel, gpu.numSms);
    }
    if (batchPolicy == BatchPolicy::BatchFill && batchTimeoutCycles == 0) {
        fatal("serve batchTimeoutCycles must be positive under the "
              "BatchFill policy (got 0): a zero deadline degenerates to "
              "FCFS; use BatchPolicy::Fcfs explicitly instead");
    }
    if (maxSimCycles == 0)
        fatal("serve maxSimCycles must be positive (got 0)");
}

std::string
ServeConfig::describe(const sim::GpuConfig &gpu) const
{
    std::string text = strprintf(
        "serve: queue %zu, policy %s (batch<=%u, timeout %llu), "
        "%u gangs x %u SMs",
        queueCapacity, batchPolicyName(batchPolicy), maxBatchRequests,
        static_cast<unsigned long long>(batchTimeoutCycles), numGangs(gpu),
        smsPerKernel);
    if (warmBootKernels > 0)
        text += strprintf(", warm boot %u kernels", warmBootKernels);
    return text;
}

} // namespace rcoal::serve
