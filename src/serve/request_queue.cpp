/**
 * @file
 * RequestQueue implementation.
 */

#include "rcoal/serve/request_queue.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::serve {

RequestQueue::RequestQueue(std::size_t capacity) : cap(capacity)
{
    RCOAL_ASSERT(cap > 0, "request queue needs positive capacity");
}

bool
RequestQueue::tryPush(Request &&request)
{
    if (pending.size() >= cap) {
        ++rejectedCount;
        return false;
    }
    ++admittedCount;
    pending.push_back(std::move(request));
    return true;
}

const Request &
RequestQueue::peek(std::size_t index) const
{
    RCOAL_ASSERT(index < pending.size(), "peek %zu of %zu pending", index,
                 pending.size());
    return pending[index];
}

Request
RequestQueue::popFront()
{
    RCOAL_ASSERT(!pending.empty(), "pop from empty request queue");
    Request request = std::move(pending.front());
    pending.pop_front();
    return request;
}

Request
RequestQueue::popAt(std::size_t index)
{
    RCOAL_ASSERT(index < pending.size(), "pop %zu of %zu pending", index,
                 pending.size());
    Request request = std::move(pending[index]);
    pending.erase(pending.begin() +
                  static_cast<std::ptrdiff_t>(index));
    return request;
}

Cycle
RequestQueue::oldestArrival() const
{
    RCOAL_ASSERT(!pending.empty(), "oldestArrival of empty queue");
    return pending.front().arrival;
}

} // namespace rcoal::serve
