/**
 * @file
 * The encryption server: one virtual-time event loop wiring the request
 * queue, batcher, load generators and concurrent-kernel scheduler into
 * a serving system, measured end to end.
 *
 * The loop is strictly single-threaded and advances in core cycles, so
 * a scenario's result is a pure function of (GpuConfig, ServeConfig,
 * WorkloadSpec). Parallelism belongs one level up: run independent
 * scenarios on a thread pool; each is bit-reproducible on its own.
 */

#ifndef RCOAL_SERVE_SERVER_HPP
#define RCOAL_SERVE_SERVER_HPP

#include <span>
#include <vector>

#include "rcoal/serve/config.hpp"
#include "rcoal/serve/metrics.hpp"
#include "rcoal/sim/config.hpp"
#include "rcoal/sim/snapshot.hpp"

namespace rcoal::trace {
class Tracer;
} // namespace rcoal::trace

namespace rcoal::telemetry {
class LeakageAuditor;
class StageLeakageAuditor;
class TelemetrySampler;
} // namespace rcoal::telemetry

namespace rcoal::spans {
class SpanCollector;
} // namespace rcoal::spans

namespace rcoal::serve {

/**
 * Traffic offered to the server: a closed-loop probe client (the
 * attacker, whose request i draws its plaintext from
 * Rng::stream(probeSeed, i) — the same derivation the one-shot attack
 * harness uses) plus optional open-loop background tenants.
 */
struct WorkloadSpec
{
    /** Run until this many probe requests completed. */
    unsigned probeSamples = 64;

    /** Plaintext lines per probe (32 = one warp in the paper). */
    unsigned probeLines = 32;

    /** Root of the probe plaintext streams. */
    std::uint64_t probeSeed = 2024;

    /** Probe client think time between completions. */
    Cycle probeThinkCycles = 200;

    /**
     * Mean exponential interarrival gap of background requests in core
     * cycles; <= 0 offers no background load at all.
     */
    double backgroundMeanGapCycles = 0.0;

    /** Background request sizes (plaintext lines), drawn uniformly. */
    std::vector<unsigned> backgroundLineChoices = {32, 64, 96, 128};

    /** Root of the background randomness streams. */
    std::uint64_t backgroundSeed = 777;
};

/**
 * Live observability hooks for one serving run.  The sampler (whose
 * registry holds every instrument) is required; the auditor is
 * optional.  Both must outlive run(): the server registers serve-layer
 * instruments and collectors, drives the sampler from the machine's
 * event loop (skip-safe), feeds the auditor one observation per
 * completed probe, and detaches every run-local callback before
 * returning — so afterwards the registry and recorded series can be
 * rendered at leisure.
 */
struct ServeTelemetry
{
    telemetry::TelemetrySampler *sampler = nullptr;
    telemetry::LeakageAuditor *auditor = nullptr;

    /**
     * Optional per-request span tracing (rcoal::spans): every admitted
     * request gets a span id and the whole pipeline stamps stage
     * records into the collector's slab. Detached before run()
     * returns, like the other hooks.
     */
    spans::SpanCollector *spans = nullptr;

    /**
     * Optional leakage attribution: requires `spans`. Fed one
     * observation per completed *sampled* probe and stage — predicted
     * baseline accesses vs. that stage's last-round duration — so the
     * per-stage Pearson correlations localize the leak.
     */
    telemetry::StageLeakageAuditor *stageAuditor = nullptr;
};

/**
 * Runs one serving scenario to completion.
 */
class EncryptionServer
{
  public:
    /**
     * @param gpu the simulated device.
     * @param serve frontend knobs (validated against @p gpu).
     * @param key the service's secret AES key.
     */
    EncryptionServer(const sim::GpuConfig &gpu, const ServeConfig &serve,
                     std::span<const std::uint8_t> key);

    /**
     * Simulate until @p spec.probeSamples probe requests completed and
     * return everything measured along the way. fatal()s if the
     * simulation passes ServeConfig::maxSimCycles.
     *
     * An optional @p tracer is wired through the whole stack (machine
     * components plus a "serve" sink for admit/reject/batch events);
     * event recording additionally needs the RCOAL_TRACE build option.
     *
     * Optional @p telemetry attaches live metrics (see ServeTelemetry).
     * When a tracer is also attached, every sink's recorded/dropped
     * counters are re-exported through the registry so silent trace
     * loss is visible in exposition output.
     *
     * With ServeConfig::warmBootKernels > 0 the machine is booted
     * before the loop: either restored from @p warm_boot (a snapshot
     * from warmBootSnapshot() on a structurally identical GpuConfig —
     * the fast path when many scenarios share one gpu config) or, when
     * @p warm_boot is null, by re-simulating the boot launches inline
     * (the byte-identical replay path). The serve loop then runs in
     * machine time rebased to the boot point, so every reported cycle
     * count stays boot-invariant.
     */
    ServeReport run(const WorkloadSpec &spec,
                    trace::Tracer *tracer = nullptr,
                    const ServeTelemetry *telemetry = nullptr,
                    const sim::MachineSnapshot *warm_boot = nullptr) const;

    /**
     * Boot a fresh machine with ServeConfig::warmBootKernels launches
     * and snapshot it at quiescence. The snapshot restores into any
     * server whose GpuConfig differs at most in seed — build it once
     * per gpu config and share it across a scenario sweep.
     */
    sim::MachineSnapshot warmBootSnapshot() const;

  private:
    sim::GpuConfig gpuConfig;
    ServeConfig serveConfig;
    std::vector<std::uint8_t> secretKey;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_SERVER_HPP
