/**
 * @file
 * Serving metrics: per-request latency percentiles, throughput, queue
 * depth and SM occupancy — the numbers a capacity planner reads next to
 * the attacker correlation the security analyst reads.
 */

#ifndef RCOAL_SERVE_METRICS_HPP
#define RCOAL_SERVE_METRICS_HPP

#include <string>
#include <vector>

#include "rcoal/serve/request.hpp"

namespace rcoal::serve {

/**
 * Order statistics of a latency sample (cycles).
 */
struct LatencySummary
{
    std::size_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    double max = 0.0;

    /** Summarize @p values (copied; empty input gives all zeros). */
    static LatencySummary of(std::vector<double> values);
};

/**
 * Nearest-rank percentile of @p sorted_values (sorted ascending).
 * @p p must be in [0, 100]; p=0 gives the minimum, p=100 the maximum.
 * An empty sample yields NaN (there is no order statistic to report).
 */
double percentile(const std::vector<double> &sorted_values, double p);

/**
 * Counter snapshot of one retired kernel (batch) launch: the per-kernel
 * view the engine report embeds next to the aggregate percentiles.
 */
struct KernelSnapshot
{
    std::uint64_t launchId = 0;
    unsigned gang = 0;
    unsigned batchRequests = 0;
    Cycle launchedAt = 0;
    Cycle finishedAt = 0;
    Cycle cycles = 0; ///< finishedAt - launch on the machine clock.
    std::uint64_t coalescedAccesses = 0;
    std::uint64_t lastRoundAccesses = 0;
    std::uint64_t prtStallCycles = 0;
    std::uint64_t icnStallCycles = 0;
};

/**
 * Everything one serve simulation produced.
 */
struct ServeReport
{
    /** Every request that completed, in completion order. */
    std::vector<CompletedRequest> completed;

    /** One counter snapshot per retired kernel, in retire order. */
    std::vector<KernelSnapshot> kernels;

    LatencySummary probeLatency; ///< End-to-end, probe requests.
    LatencySummary allLatency;   ///< End-to-end, every request.

    Cycle totalCycles = 0;          ///< Simulated wall time.
    double throughputReqPerSec = 0; ///< Completions per wall second.

    double meanQueueDepth = 0.0;
    std::size_t maxQueueDepth = 0;

    double meanBusySms = 0.0; ///< Average SMs running a kernel.
    unsigned maxBusySms = 0;
    double smOccupancy = 0.0; ///< meanBusySms / numSms.

    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t kernelsLaunched = 0;
    double meanBatchRequests = 0.0; ///< Requests per kernel launch.

    /** Multi-line human-readable dump. */
    std::string describe() const;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_METRICS_HPP
