/**
 * @file
 * Serving metrics: per-request latency percentiles, throughput, queue
 * depth and SM occupancy — the numbers a capacity planner reads next to
 * the attacker correlation the security analyst reads.
 */

#ifndef RCOAL_SERVE_METRICS_HPP
#define RCOAL_SERVE_METRICS_HPP

#include <string>
#include <vector>

#include "rcoal/serve/request.hpp"
#include "rcoal/telemetry/metric.hpp"

namespace rcoal::serve {

/**
 * Order statistics of a latency sample (cycles).
 */
struct LatencySummary
{
    std::size_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0; ///< Fleet SLOs are written against p999.
    double mean = 0.0;
    double max = 0.0;

    /** Summarize @p values (copied; empty input gives all zeros). */
    static LatencySummary of(std::vector<double> values);
};

/**
 * Streaming latency accumulator: O(1) per observation, bounded memory.
 *
 * Small samples (up to the exact cutoff) are retained verbatim, so
 * their summary is bit-identical to the historical copy-and-sort path.
 * Once the cutoff is crossed the retained values are released and
 * percentiles come from a log-linear histogram, bounding p50/p95/p99
 * relative error at 1/16 (6.25%) while mean/max/count stay exact.
 * Latencies are cycle counts; fractional inputs are rounded for the
 * histogram (the exact path keeps them as-is).
 */
class StreamingLatency
{
  public:
    static constexpr std::size_t kExactCutoff = 4096;

    explicit StreamingLatency(std::size_t exact_cutoff = kExactCutoff);

    void observe(double latency_cycles);

    LatencySummary summary() const;

    std::size_t count() const { return observations; }

    /** True once the exact values were released to the histogram. */
    bool streaming() const { return exact.empty() && observations > 0; }

  private:
    std::size_t exactCutoff;
    std::size_t observations = 0;
    double sum = 0.0;
    double maxSeen = 0.0;
    std::vector<double> exact;
    telemetry::LogHistogram hist;
};

/**
 * Nearest-rank percentile of @p sorted_values (sorted ascending).
 * @p p must be in [0, 100]; p=0 gives the minimum, p=100 the maximum.
 * An empty sample yields NaN (there is no order statistic to report).
 */
double percentile(const std::vector<double> &sorted_values, double p);

/**
 * Counter snapshot of one retired kernel (batch) launch: the per-kernel
 * view the engine report embeds next to the aggregate percentiles.
 */
struct KernelSnapshot
{
    std::uint64_t launchId = 0;
    unsigned gang = 0;
    unsigned batchRequests = 0;
    Cycle launchedAt = 0;
    Cycle finishedAt = 0;
    Cycle cycles = 0; ///< finishedAt - launch on the machine clock.
    std::uint64_t coalescedAccesses = 0;
    std::uint64_t lastRoundAccesses = 0;
    /** Baseline-predicted last-round accesses (see CompletedRequest). */
    std::uint64_t predictedLastRoundAccesses = 0;
    std::uint64_t prtStallCycles = 0;
    std::uint64_t icnStallCycles = 0;
};

/**
 * Everything one serve simulation produced.
 */
struct ServeReport
{
    /** Every request that completed, in completion order. */
    std::vector<CompletedRequest> completed;

    /** One counter snapshot per retired kernel, in retire order. */
    std::vector<KernelSnapshot> kernels;

    LatencySummary probeLatency; ///< End-to-end, probe requests.
    LatencySummary allLatency;   ///< End-to-end, every request.

    Cycle totalCycles = 0;          ///< Simulated wall time.
    double throughputReqPerSec = 0; ///< Completions per wall second.

    double meanQueueDepth = 0.0;
    std::size_t maxQueueDepth = 0;

    double meanBusySms = 0.0; ///< Average SMs running a kernel.
    unsigned maxBusySms = 0;
    double smOccupancy = 0.0; ///< meanBusySms / numSms.

    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t kernelsLaunched = 0;
    double meanBatchRequests = 0.0; ///< Requests per kernel launch.

    /** Multi-line human-readable dump. */
    std::string describe() const;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_METRICS_HPP
