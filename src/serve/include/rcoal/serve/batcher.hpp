/**
 * @file
 * Plaintext batcher: turns queued requests into kernel-sized batches
 * under a pluggable policy (FCFS, BatchFill with a timeout deadline,
 * size-aware SJF). Pure virtual-time logic; the scheduler decides when
 * a gang is free to actually launch the batch.
 */

#ifndef RCOAL_SERVE_BATCHER_HPP
#define RCOAL_SERVE_BATCHER_HPP

#include <vector>

#include "rcoal/serve/config.hpp"
#include "rcoal/serve/request_queue.hpp"

namespace rcoal::serve {

/**
 * Stateless batch-forming logic over a RequestQueue.
 */
class Batcher
{
  public:
    explicit Batcher(const ServeConfig &config);

    /**
     * Form the next batch at cycle @p now, removing its requests from
     * @p queue; an empty result means the policy prefers to wait (or
     * nothing is pending). Deterministic: ties are broken by queue age.
     */
    std::vector<Request> formBatch(RequestQueue &queue, Cycle now) const;

    /**
     * Earliest cycle (>= now + 1) at which formBatch() over the current
     * @p queue contents could return a batch it would not return now:
     * the BatchFill deadline of a held partial batch, now + 1 when work
     * is pending (the policy would fire immediately), kInvalidCycle on
     * an empty queue. Used by the serving loop to sleep to the next
     * event instead of polling every cycle.
     */
    Cycle earliestLaunch(const RequestQueue &queue, Cycle now) const;

  private:
    std::vector<Request> popOldest(RequestQueue &queue) const;
    std::vector<Request> popSmallest(RequestQueue &queue) const;

    BatchPolicy policy;
    unsigned maxRequests;
    Cycle timeoutCycles;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_BATCHER_HPP
