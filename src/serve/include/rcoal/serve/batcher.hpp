/**
 * @file
 * Plaintext batcher: turns queued requests into kernel-sized batches
 * under a pluggable policy (FCFS, BatchFill with a timeout deadline,
 * size-aware SJF). Pure virtual-time logic; the scheduler decides when
 * a gang is free to actually launch the batch.
 */

#ifndef RCOAL_SERVE_BATCHER_HPP
#define RCOAL_SERVE_BATCHER_HPP

#include <vector>

#include "rcoal/serve/config.hpp"
#include "rcoal/serve/request_queue.hpp"

namespace rcoal::serve {

/**
 * Stateless batch-forming logic over a RequestQueue.
 */
class Batcher
{
  public:
    explicit Batcher(const ServeConfig &config);

    /**
     * Form the next batch at cycle @p now, removing its requests from
     * @p queue; an empty result means the policy prefers to wait (or
     * nothing is pending). Deterministic: ties are broken by queue age.
     */
    std::vector<Request> formBatch(RequestQueue &queue, Cycle now) const;

  private:
    std::vector<Request> popOldest(RequestQueue &queue) const;
    std::vector<Request> popSmallest(RequestQueue &queue) const;

    BatchPolicy policy;
    unsigned maxRequests;
    Cycle timeoutCycles;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_BATCHER_HPP
