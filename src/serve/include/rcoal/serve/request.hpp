/**
 * @file
 * The unit of work the serving frontend moves around: an encryption
 * request (a set of 16-byte plaintext lines) and its completed form
 * carrying the timing a client — or an attacker — can observe.
 */

#ifndef RCOAL_SERVE_REQUEST_HPP
#define RCOAL_SERVE_REQUEST_HPP

#include <cstdint>
#include <vector>

#include "rcoal/aes/aes.hpp"
#include "rcoal/common/types.hpp"
#include "rcoal/spans/span.hpp"

namespace rcoal::serve {

/** One encryption request waiting in (or travelling toward) the queue. */
struct Request
{
    std::uint64_t id = 0;
    Cycle arrival = 0; ///< Cycle the request reached the frontend.
    std::vector<aes::Block> plaintext;
    bool isProbe = false; ///< Attacker probe vs. background tenant.
    int clientId = -1;    ///< Closed-loop client index; -1 = open loop.

    /**
     * Tenant identity for multi-tenant load and affinity routing
     * (rcoal::fleet hashes it to pick a replica). 0 for single-tenant
     * traffic and for attacker probes.
     */
    std::uint64_t tenant = 0;

    /**
     * Span id assigned at admission when a spans::SpanCollector is
     * attached (0 = untraced). Carried through batching and launch so
     * every stage stamp lands on the right request.
     */
    std::uint32_t spanId = 0;

    unsigned lines() const
    {
        return static_cast<unsigned>(plaintext.size());
    }
};

/** A request after its batch's kernel retired. */
struct CompletedRequest
{
    std::uint64_t id = 0;
    bool isProbe = false;
    int clientId = -1;
    std::uint64_t tenant = 0; ///< Copied from the request (see above).
    unsigned lines = 0;

    Cycle arrival = 0;   ///< Admission into the queue.
    Cycle launched = 0;  ///< Its batch's kernel launch cycle.
    Cycle completed = 0; ///< Its batch's kernel retirement cycle.

    /** This request's ciphertext lines (its slice of the batch). */
    std::vector<aes::Block> ciphertext;

    // Kernel-level observables of the batch that served the request
    // (shared by every request in the batch): what the paper's strong
    // attacker measures, now inclusive of co-tenant lines in the batch
    // and memory contention from co-resident kernels.
    double kernelTotalTime = 0.0;      ///< Kernel cycles.
    double kernelLastRoundTime = 0.0;  ///< Last-round window, cycles.
    std::uint64_t kernelLastRoundAccesses = 0;
    std::uint64_t kernelTotalAccesses = 0;

    /**
     * Last-round coalesced accesses THIS request's own lines would
     * produce under baseline (single-subwarp) coalescing — a pure
     * function of the request's plaintext and the key, computed at
     * launch from the kernel trace and sliced to the warps this
     * request's lines occupy.  This is the leakage auditor's X series:
     * its correlation with the kernel's last-round time is the
     * attacker's signal.  Under BASE a solo request's predicted count
     * equals the count the hardware performs, so the correlation
     * approaches 1; co-tenant lines and RSS/RTS randomization both
     * decouple the two.  Deliberately per-request, not per-batch: the
     * whole batch's predicted count scales with batch size — as does
     * kernel time under every policy — which would make the auditor
     * fire on load rather than on leakage.
     */
    std::uint64_t kernelPredictedLastRoundAccesses = 0;
    unsigned batchRequests = 0; ///< Requests merged into the kernel.

    /** Span id (0 when no collector was attached at admission). */
    std::uint32_t spanId = 0;

    /** True when the span was retained under the sample rate. */
    bool spanSampled = false;

    /**
     * Per-stage cycle totals (and last-round slices) accumulated by
     * the span collector; zeroed for untraced/unsampled requests.
     * The leakage-attribution auditor correlates
     * kernelPredictedLastRoundAccesses against each stage's
     * lastRoundCycles entry.
     */
    spans::StageTotals stageTotals;

    Cycle queueWaitCycles() const { return launched - arrival; }
    Cycle serviceCycles() const { return completed - launched; }
    Cycle latencyCycles() const { return completed - arrival; }
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_REQUEST_HPP
