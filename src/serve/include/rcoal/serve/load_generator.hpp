/**
 * @file
 * Deterministic load generation for the serving frontend.
 *
 * Two classical shapes:
 *  - open loop: requests arrive on an exponential interarrival process
 *    regardless of service progress (models aggregate internet traffic);
 *  - closed loop: a fixed population of clients, each submitting its
 *    next request a think time after the previous one completed
 *    (models sessions — and the attacker's probe loop).
 *
 * All randomness is counter-based (Rng::stream(seed, request index)), so
 * request i carries the same interarrival gap, size and plaintext no
 * matter how the simulation is scheduled — the property that makes the
 * leakage-under-load experiments bit-reproducible under any
 * RCOAL_THREADS setting.
 */

#ifndef RCOAL_SERVE_LOAD_GENERATOR_HPP
#define RCOAL_SERVE_LOAD_GENERATOR_HPP

#include <vector>

#include "rcoal/common/rng.hpp"
#include "rcoal/serve/request.hpp"

namespace rcoal::serve {

namespace detail {

/**
 * Exponential interarrival gap (whole cycles, at least 1) for uniform
 * draw @p u in [0, 1) and mean @p mean_gap > 0.
 *
 * Hardened against edge draws: @p u is clamped below 1 so log1p(-u)
 * never reaches -inf (uniform01() cannot produce 1.0 today, but the
 * gap must stay finite even if a future generator or a caller-supplied
 * draw can), and the result is capped at kMaxGapCycles so the
 * double-to-Cycle conversion is always in range. The returned gap is
 * asserted finite.
 */
Cycle exponentialGap(double u, double mean_gap);

/** Largest gap exponentialGap() returns (keeps the cast in range). */
inline constexpr Cycle kMaxGapCycles = Cycle{1} << 62;

} // namespace detail

/**
 * Open-loop (arrival-rate driven) background traffic.
 */
class OpenLoopGenerator
{
  public:
    /**
     * @param mean_gap_cycles mean exponential interarrival gap in core
     *        cycles; <= 0 disables the generator (zero offered load).
     * @param line_choices request sizes (plaintext lines), drawn
     *        uniformly per request; must be non-empty when enabled.
     * @param seed root of the per-request randomness streams.
     * @param first_id id assigned to the first emitted request
     *        (id spaces of different generators must not collide).
     */
    OpenLoopGenerator(double mean_gap_cycles,
                      std::vector<unsigned> line_choices,
                      std::uint64_t seed, std::uint64_t first_id);

    /**
     * Append every request with a scheduled arrival at or before cycle
     * @p now. Each request is stamped with its *scheduled* arrival
     * cycle, not the poll cycle: a caller polling coarsely (or resuming
     * after a skipped window) must observe exactly the timestamps a
     * per-cycle poller would, or queueing latency is under-counted.
     */
    void poll(Cycle now, std::vector<Request> &out);

    /**
     * Cycle of the next arrival (kInvalidCycle when disabled). Primes
     * the lazily drawn first gap exactly as poll() would, so consulting
     * the bound never perturbs the arrival sequence.
     */
    Cycle nextEventCycle();

    /**
     * Rebase the arrival process to begin at @p origin: the first gap
     * extends from @p origin instead of cycle 0 (every later arrival
     * shifts with it, gaps unchanged). Must precede the first
     * poll()/nextEventCycle() — the serve loop calls it after a warm
     * boot so the offered load is the cold-boot load, shifted.
     */
    void startAt(Cycle origin);

    /** Requests emitted so far. */
    std::uint64_t issued() const { return issuedCount; }

  private:
    double meanGap;
    std::vector<unsigned> lineChoices;
    std::uint64_t seed;
    std::uint64_t nextId;
    std::uint64_t issuedCount = 0;
    Cycle nextArrival = 0;
    Cycle origin = 0; ///< startAt() rebase of the arrival process.
    bool enabled;
    bool primed = false; ///< First gap drawn lazily on first poll.
};

/**
 * Closed-loop client population. Every client keeps exactly one request
 * in flight; completions (and admission rejections) schedule the next
 * submission. The probe stream of the attack-under-load experiment is a
 * single-client instance whose request i draws its plaintext from
 * Rng::stream(seed, i) — the same derivation the one-shot attack
 * harness uses, so probe plaintexts match the solo experiment.
 */
class ClosedLoopGenerator
{
  public:
    /**
     * @param clients population size.
     * @param think_cycles gap between a completion and the client's
     *        next submission (also the retry delay after a rejection).
     * @param lines plaintext lines per request.
     * @param seed root of the per-request plaintext streams.
     * @param first_id id of the first request (collision-free spacing
     *        with other generators is the caller's job).
     * @param probes mark emitted requests as attacker probes.
     */
    ClosedLoopGenerator(unsigned clients, Cycle think_cycles,
                        unsigned lines, std::uint64_t seed,
                        std::uint64_t first_id, bool probes);

    /**
     * Append every request due at or before cycle @p now, each stamped
     * with the client's scheduled submission cycle (nextSubmitAt), not
     * the poll cycle — see OpenLoopGenerator::poll.
     */
    void poll(Cycle now, std::vector<Request> &out);

    /**
     * Earliest submission cycle over clients without a request in
     * flight (kInvalidCycle when every client is waiting — the next
     * submission then hinges on a completion, not on time).
     */
    Cycle nextEventCycle() const;

    /** A request of client @p client_id completed at @p now. */
    void onCompletion(int client_id, Cycle now);

    /**
     * A request of client @p client_id was rejected by admission
     * control at @p now; the client retries the same request content
     * after a think time (request index — hence plaintext — is reused,
     * keeping the observation sequence aligned with request indices).
     */
    void onRejection(int client_id, Request request, Cycle now);

    /**
     * Rebase every client's first submission to @p origin (see
     * OpenLoopGenerator::startAt). Must precede the first poll().
     */
    void startAt(Cycle origin);

    /** Requests submitted so far (retries are not re-counted). */
    std::uint64_t issued() const { return issuedCount; }

  private:
    struct Client
    {
        Cycle nextSubmitAt = 0;
        bool waiting = false; ///< Has a request in flight or queued.
        /** Pending retry payload after a rejection (empty otherwise). */
        std::vector<aes::Block> retryPlaintext;
        std::uint64_t retryId = 0;
    };

    Cycle thinkCycles;
    unsigned linesPerRequest;
    std::uint64_t seed;
    std::uint64_t nextId;
    std::uint64_t issuedCount = 0;
    bool probeRequests;
    std::vector<Client> clientsState;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_LOAD_GENERATOR_HPP
