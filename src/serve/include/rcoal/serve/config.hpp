/**
 * @file
 * Configuration of the rcoal::serve frontend: admission control,
 * batching policy and the concurrent-kernel scheduler's SM gangs.
 */

#ifndef RCOAL_SERVE_CONFIG_HPP
#define RCOAL_SERVE_CONFIG_HPP

#include <cstddef>
#include <string>

#include "rcoal/common/types.hpp"
#include "rcoal/sim/config.hpp"

namespace rcoal::serve {

/** How the batcher turns queued requests into kernel launches. */
enum class BatchPolicy
{
    /** Launch as soon as anything is queued, oldest requests first. */
    Fcfs,

    /**
     * Wait until maxBatchRequests are queued or the oldest request has
     * aged past batchTimeoutCycles; then launch oldest-first. Trades
     * latency for larger (better-utilized) kernels.
     */
    BatchFill,

    /**
     * Size-aware shortest-job-first: launch as soon as anything is
     * queued, but pick the smallest requests (fewest plaintext lines,
     * ties broken by age) so small jobs are not stuck behind large
     * ones.
     */
    Sjf,
};

/** Short display name ("FCFS", "BatchFill", "SJF"). */
const char *batchPolicyName(BatchPolicy policy);

/**
 * Serving-layer knobs. The GPU itself is configured by sim::GpuConfig;
 * this struct only shapes the traffic in front of it.
 */
struct ServeConfig
{
    /**
     * Admission-control bound: requests arriving while the queue holds
     * this many are rejected (the client may retry). Keeps the service
     * stable under overload instead of growing latency without bound.
     */
    std::size_t queueCapacity = 64;

    BatchPolicy batchPolicy = BatchPolicy::Fcfs;

    /** Most requests merged into one kernel launch. */
    unsigned maxBatchRequests = 4;

    /** BatchFill's age deadline for a partially filled batch. */
    Cycle batchTimeoutCycles = 3000;

    /**
     * SMs per kernel gang. The scheduler carves the GPU into
     * numSms / smsPerKernel disjoint gangs and co-schedules one kernel
     * per gang; co-resident kernels share the interconnect and DRAM
     * partitions, so cross-tenant contention is simulated, not faked.
     */
    unsigned smsPerKernel = 5;

    /** Hard wall for one serve simulation (deadlock/livelock guard). */
    Cycle maxSimCycles = 500'000'000;

    /**
     * Warm boot: AES launches retired on the machine before the serve
     * loop starts (0 = historical cold boot). Their randomness derives
     * from warmBootSeed, never the scenario GPU seed, so the booted
     * state is one shared prefix across a seed sweep — callers can
     * snapshot it once and pass the fork to every scenario
     * (EncryptionServer::warmBootSnapshot / run(..., warm_boot)).
     */
    unsigned warmBootKernels = 0;

    /** Root of the warm-boot launch/plaintext randomness. */
    std::uint64_t warmBootSeed = 0x5eed'b007;

    /** Number of kernel gangs this config yields on @p gpu. */
    unsigned numGangs(const sim::GpuConfig &gpu) const
    {
        return smsPerKernel == 0 ? 0 : gpu.numSms / smsPerKernel;
    }

    /** Panics (fatal) on inconsistent parameters. */
    void validate(const sim::GpuConfig &gpu) const;

    /** One-line human-readable summary. */
    std::string describe(const sim::GpuConfig &gpu) const;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_CONFIG_HPP
