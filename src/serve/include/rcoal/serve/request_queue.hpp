/**
 * @file
 * Bounded admission queue in front of the batcher.
 *
 * Capacity is the admission-control knob: a request arriving at a full
 * queue is rejected (counted, and the client may retry) instead of
 * growing an unbounded backlog. The queue is age-ordered; the batching
 * policies either consume from the front (FCFS/BatchFill) or scan and
 * remove by index (SJF).
 */

#ifndef RCOAL_SERVE_REQUEST_QUEUE_HPP
#define RCOAL_SERVE_REQUEST_QUEUE_HPP

#include <deque>

#include "rcoal/serve/request.hpp"

namespace rcoal::serve {

/**
 * Bounded FIFO of pending requests with admission statistics.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity);

    /**
     * Admit @p request, or reject it (return false) when full. On
     * rejection the request is left untouched, so the caller can hand
     * it back to a retrying client.
     */
    bool tryPush(Request &&request);

    /** Pending requests. */
    std::size_t size() const { return pending.size(); }

    bool empty() const { return pending.empty(); }

    std::size_t capacity() const { return cap; }

    /** Peek the @p index-th oldest pending request. */
    const Request &peek(std::size_t index) const;

    /** Remove and return the oldest request. */
    Request popFront();

    /** Remove and return the @p index-th oldest request (for SJF). */
    Request popAt(std::size_t index);

    /** Arrival cycle of the oldest pending request (queue non-empty). */
    Cycle oldestArrival() const;

    /** Requests admitted since construction. */
    std::uint64_t admitted() const { return admittedCount; }

    /** Requests rejected at a full queue since construction. */
    std::uint64_t rejected() const { return rejectedCount; }

  private:
    std::deque<Request> pending;
    std::size_t cap;
    std::uint64_t admittedCount = 0;
    std::uint64_t rejectedCount = 0;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_REQUEST_QUEUE_HPP
