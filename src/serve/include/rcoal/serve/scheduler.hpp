/**
 * @file
 * Concurrent-kernel scheduler over the persistent GpuMachine.
 *
 * The machine's SMs are carved into fixed-size "gangs"
 * (ServeConfig::smsPerKernel SMs each). Each batch becomes one AES
 * kernel launched on the lowest-numbered free gang; several batches are
 * resident at once, contending for the shared interconnect and DRAM —
 * which is exactly the contention the leakage-under-load experiments
 * measure.
 */

#ifndef RCOAL_SERVE_SCHEDULER_HPP
#define RCOAL_SERVE_SCHEDULER_HPP

#include <memory>
#include <span>
#include <vector>

#include "rcoal/serve/config.hpp"
#include "rcoal/serve/metrics.hpp"
#include "rcoal/serve/request.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::serve {

/**
 * Owns the GpuMachine and the resident batches.
 */
class KernelScheduler
{
  public:
    KernelScheduler(const sim::GpuConfig &gpu, const ServeConfig &serve,
                    std::span<const std::uint8_t> key);

    /** Number of SM gangs (launch slots). */
    unsigned numGangs() const
    {
        return static_cast<unsigned>(gangBusy.size());
    }

    /** True when at least one gang can take a batch. */
    bool gangFree() const;

    /** Gangs currently running a kernel. */
    unsigned busyGangs() const;

    /** SMs currently allocated to resident kernels. */
    unsigned busySms() const { return machine.busySms(); }

    /**
     * Launch @p batch (non-empty) on a free gang at cycle @p now. The
     * requests' plaintext lines are concatenated into one kernel in
     * batch order.
     */
    void launchBatch(std::vector<Request> batch, Cycle now);

    /** Advance the machine one core cycle. */
    void tick() { machine.tick(); }

    /**
     * Retire every finished batch: free its gang and return its
     * requests with per-request ciphertext slices and the batch
     * kernel's timing observables attached.
     */
    std::vector<CompletedRequest> collectCompleted(Cycle now);

    /** Kernels launched so far. */
    std::uint64_t kernelsLaunched() const { return launchedCount; }

    /** Sum of batch sizes (requests) over all launches. */
    std::uint64_t batchedRequests() const { return batchedCount; }

    /** Drain the per-kernel counter snapshots gathered at retire time. */
    std::vector<KernelSnapshot> takeKernelSnapshots()
    {
        return std::move(snapshots);
    }

    /** True while any kernel is resident. */
    bool anyResident() const { return machine.anyResident(); }

    /** The underlying machine (to attach tracing or DRAM checking). */
    sim::GpuMachine &gpu() { return machine; }
    const sim::GpuMachine &gpu() const { return machine; }

    /** Attach a sink for serve launch/complete events (core domain). */
    void setTraceSink(trace::TraceSink *s) { traceSink = s; }

    /**
     * Attach a span collector: wires the machine's stamp points and
     * makes the scheduler stamp queue/batch/kernel stages and register
     * each launch's warp->span ownership map. @p span_namespace is the
     * fleet replica index (0 for solo serve).
     */
    void setSpanCollector(spans::SpanCollector *c,
                          std::uint32_t span_namespace = 0);

  private:
    struct ResidentBatch
    {
        sim::GpuMachine::LaunchId id = 0;
        unsigned gang = 0;
        Cycle launchedAt = 0;
        /** Kernel traces must outlive the launch; owned here. */
        std::unique_ptr<workloads::AesGpuKernel> kernel;
        std::vector<Request> requests;
        /** Line offset of each request inside the batch plaintext. */
        std::vector<unsigned> lineOffsets;
        /** Whole-kernel baseline last-round access count. */
        std::uint64_t predictedLastRound = 0;
        /** Same quantity split per warp (see request.hpp). */
        std::vector<std::uint64_t> predictedPerWarp;
    };

    /**
     * Count the last-round coalesced accesses each warp of @p kernel
     * would produce under the baseline single-subwarp partition — the
     * data-determined quantity the leakage auditor correlates against
     * time.  Per warp so retire time can attribute the count to the
     * individual requests whose lines the warp covers.
     */
    std::vector<std::uint64_t>
    predictedBaselineLastRound(const workloads::AesGpuKernel &kernel) const;

    sim::SmRange gangRange(unsigned gang) const;

    sim::GpuMachine machine;
    std::vector<std::uint8_t> secretKey;
    unsigned smsPerKernel;
    std::vector<bool> gangBusy;
    std::vector<ResidentBatch> resident;
    std::vector<KernelSnapshot> snapshots;
    std::uint64_t launchedCount = 0;
    std::uint64_t batchedCount = 0;
    trace::TraceSink *traceSink = nullptr;
    spans::SpanCollector *spanCollector = nullptr;
    std::uint32_t spanNamespace = 0;
};

} // namespace rcoal::serve

#endif // RCOAL_SERVE_SCHEDULER_HPP
