/**
 * @file
 * BigRational implementation.
 */

#include "rcoal/numeric/big_rational.hpp"

#include <cmath>

#include "rcoal/common/logging.hpp"

namespace rcoal::numeric {

BigRational::BigRational(BigUInt numerator, BigUInt denominator)
    : num(std::move(numerator)), den(std::move(denominator))
{
    RCOAL_ASSERT(!den.isZero(), "rational with zero denominator");
    reduce();
}

void
BigRational::reduce()
{
    if (num.isZero()) {
        den = BigUInt(1);
        return;
    }
    const BigUInt g = BigUInt::gcd(num, den);
    num = num / g;
    den = den / g;
}

std::strong_ordering
BigRational::operator<=>(const BigRational &other) const
{
    // a/b <=> c/d  iff  a*d <=> c*b (all values non-negative).
    return (num * other.den) <=> (other.num * den);
}

BigRational &
BigRational::operator+=(const BigRational &other)
{
    num = num * other.den + other.num * den;
    den = den * other.den;
    reduce();
    return *this;
}

BigRational &
BigRational::operator-=(const BigRational &other)
{
    RCOAL_ASSERT(*this >= other,
                 "BigRational underflow: %s - %s", toString().c_str(),
                 other.toString().c_str());
    num = num * other.den - other.num * den;
    den = den * other.den;
    reduce();
    return *this;
}

BigRational &
BigRational::operator*=(const BigRational &other)
{
    num = num * other.num;
    den = den * other.den;
    reduce();
    return *this;
}

BigRational &
BigRational::operator/=(const BigRational &other)
{
    RCOAL_ASSERT(!other.isZero(), "BigRational division by zero");
    num = num * other.den;
    den = den * other.num;
    reduce();
    return *this;
}

std::string
BigRational::toString() const
{
    if (den == BigUInt(1))
        return num.toString();
    return num.toString() + "/" + den.toString();
}

long double
BigRational::toLongDouble() const
{
    // Scale so both operands convert without precision collapse when the
    // magnitudes are huge but the ratio is moderate.
    const std::size_t nb = num.bitLength();
    const std::size_t db = den.bitLength();
    if (nb < 16000 && db < 16000)
        return num.toLongDouble() / den.toLongDouble();
    const std::size_t shift = std::max(nb, db) - 8000;
    const BigUInt sn = num >> shift;
    const BigUInt sd = den >> shift;
    RCOAL_ASSERT(!sd.isZero(), "rational scaling underflow");
    return sn.toLongDouble() / sd.toLongDouble();
}

double
BigRational::toDouble() const
{
    return static_cast<double>(toLongDouble());
}

} // namespace rcoal::numeric
