/**
 * @file
 * Partition enumeration implementation.
 */

#include "rcoal/numeric/partitions.hpp"

#include "rcoal/common/logging.hpp"
#include "rcoal/numeric/combinatorics.hpp"

namespace rcoal::numeric {

namespace {

void
recurse(unsigned remaining, unsigned max_parts, unsigned max_part,
        Partition &prefix, const std::function<void(const Partition &)> &fn)
{
    if (remaining == 0) {
        fn(prefix);
        return;
    }
    if (max_parts == 0)
        return;
    const unsigned hi = std::min(remaining, max_part);
    // Largest remaining part first keeps parts non-increasing.
    for (unsigned part = hi; part >= 1; --part) {
        // Prune: the rest must fit in (max_parts - 1) parts of size <= part.
        if (static_cast<std::uint64_t>(part) * max_parts < remaining)
            break;
        prefix.push_back(part);
        recurse(remaining - part, max_parts - 1, part, prefix, fn);
        prefix.pop_back();
    }
}

} // namespace

void
forEachPartition(unsigned n, unsigned max_parts, unsigned max_part,
                 const std::function<void(const Partition &)> &fn)
{
    Partition prefix;
    recurse(n, max_parts, max_part, prefix, fn);
}

void
forEachPartitionExact(unsigned n, unsigned parts, unsigned max_part,
                      const std::function<void(const Partition &)> &fn)
{
    forEachPartition(n, parts, max_part, [&](const Partition &p) {
        if (p.size() == parts)
            fn(p);
    });
}

std::uint64_t
countPartitions(unsigned n, unsigned max_parts, unsigned max_part)
{
    std::uint64_t count = 0;
    forEachPartition(n, max_parts, max_part,
                     [&](const Partition &) { ++count; });
    return count;
}

namespace {

/** prod over distinct part values of multiplicity!. */
BigUInt
multiplicityFactorialProduct(const Partition &partition)
{
    BigUInt prod(1);
    std::size_t i = 0;
    while (i < partition.size()) {
        std::size_t j = i;
        while (j < partition.size() && partition[j] == partition[i])
            ++j;
        prod *= factorial(static_cast<unsigned>(j - i));
        i = j;
    }
    return prod;
}

} // namespace

BigUInt
compositionsOfPartition(const Partition &partition)
{
    return factorial(static_cast<unsigned>(partition.size())) /
           multiplicityFactorialProduct(partition);
}

BigUInt
vectorsOfPartition(const Partition &partition, unsigned total_slots)
{
    const auto k = static_cast<unsigned>(partition.size());
    RCOAL_ASSERT(k <= total_slots,
                 "partition has %u parts but only %u slots", k, total_slots);
    BigUInt denom = multiplicityFactorialProduct(partition);
    denom *= factorial(total_slots - k);
    return factorial(total_slots) / denom;
}

BigUInt
threadAssignmentsOfPartition(const Partition &partition)
{
    unsigned total = 0;
    for (unsigned p : partition)
        total += p;
    BigUInt result = factorial(total);
    for (unsigned p : partition)
        result = result / factorial(p);
    return result;
}

} // namespace rcoal::numeric
