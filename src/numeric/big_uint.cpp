/**
 * @file
 * BigUInt implementation (schoolbook algorithms over 32-bit limbs).
 */

#include "rcoal/numeric/big_uint.hpp"

#include <algorithm>
#include <cctype>

#include "rcoal/common/logging.hpp"

namespace rcoal::numeric {

BigUInt::BigUInt(std::uint64_t value)
{
    if (value != 0) {
        limbs.push_back(static_cast<std::uint32_t>(value));
        if (value >> 32)
            limbs.push_back(static_cast<std::uint32_t>(value >> 32));
    }
}

BigUInt
BigUInt::fromDecimal(const std::string &text)
{
    RCOAL_ASSERT(!text.empty(), "empty decimal string");
    BigUInt out;
    for (char ch : text) {
        RCOAL_ASSERT(std::isdigit(static_cast<unsigned char>(ch)),
                     "invalid decimal digit '%c'", ch);
        out *= BigUInt(10);
        out += BigUInt(static_cast<std::uint64_t>(ch - '0'));
    }
    return out;
}

void
BigUInt::trim()
{
    while (!limbs.empty() && limbs.back() == 0)
        limbs.pop_back();
}

std::size_t
BigUInt::bitLength() const
{
    if (limbs.empty())
        return 0;
    const std::uint32_t top = limbs.back();
    const int top_bits = 32 - __builtin_clz(top);
    return (limbs.size() - 1) * 32 + static_cast<std::size_t>(top_bits);
}

bool
BigUInt::bit(std::size_t i) const
{
    const std::size_t limb = i / 32;
    if (limb >= limbs.size())
        return false;
    return (limbs[limb] >> (i % 32)) & 1u;
}

std::strong_ordering
BigUInt::operator<=>(const BigUInt &other) const
{
    if (limbs.size() != other.limbs.size())
        return limbs.size() <=> other.limbs.size();
    for (std::size_t i = limbs.size(); i-- > 0;) {
        if (limbs[i] != other.limbs[i])
            return limbs[i] <=> other.limbs[i];
    }
    return std::strong_ordering::equal;
}

BigUInt &
BigUInt::operator+=(const BigUInt &other)
{
    const std::size_t n = std::max(limbs.size(), other.limbs.size());
    limbs.resize(n, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry + limbs[i];
        if (i < other.limbs.size())
            sum += other.limbs[i];
        limbs[i] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
    }
    if (carry)
        limbs.push_back(static_cast<std::uint32_t>(carry));
    return *this;
}

BigUInt &
BigUInt::operator-=(const BigUInt &other)
{
    RCOAL_ASSERT(*this >= other, "BigUInt underflow: %s - %s",
                 toString().c_str(), other.toString().c_str());
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(limbs[i]) - borrow;
        if (i < other.limbs.size())
            diff -= other.limbs[i];
        if (diff < 0) {
            diff += (std::int64_t{1} << 32);
            borrow = 1;
        } else {
            borrow = 0;
        }
        limbs[i] = static_cast<std::uint32_t>(diff);
    }
    RCOAL_ASSERT(borrow == 0, "BigUInt subtraction left a borrow");
    trim();
    return *this;
}

BigUInt
operator*(const BigUInt &a, const BigUInt &b)
{
    if (a.isZero() || b.isZero())
        return {};
    BigUInt out;
    out.limbs.assign(a.limbs.size() + b.limbs.size(), 0);
    for (std::size_t i = 0; i < a.limbs.size(); ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < b.limbs.size(); ++j) {
            const std::uint64_t cur =
                static_cast<std::uint64_t>(a.limbs[i]) * b.limbs[j] +
                out.limbs[i + j] + carry;
            out.limbs[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + b.limbs.size();
        while (carry) {
            const std::uint64_t cur = out.limbs[k] + carry;
            out.limbs[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigUInt &
BigUInt::operator*=(const BigUInt &other)
{
    *this = *this * other;
    return *this;
}

BigUInt &
BigUInt::operator<<=(std::size_t bits)
{
    if (isZero() || bits == 0)
        return *this;
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    limbs.insert(limbs.begin(), limb_shift, 0);
    if (bit_shift) {
        std::uint32_t carry = 0;
        for (std::size_t i = limb_shift; i < limbs.size(); ++i) {
            const std::uint64_t cur =
                (static_cast<std::uint64_t>(limbs[i]) << bit_shift) | carry;
            limbs[i] = static_cast<std::uint32_t>(cur);
            carry = static_cast<std::uint32_t>(cur >> 32);
        }
        if (carry)
            limbs.push_back(carry);
    }
    return *this;
}

BigUInt &
BigUInt::operator>>=(std::size_t bits)
{
    if (isZero() || bits == 0)
        return *this;
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    if (limb_shift >= limbs.size()) {
        limbs.clear();
        return *this;
    }
    limbs.erase(limbs.begin(),
                limbs.begin() + static_cast<std::ptrdiff_t>(limb_shift));
    if (bit_shift) {
        for (std::size_t i = 0; i < limbs.size(); ++i) {
            std::uint64_t cur = limbs[i] >> bit_shift;
            if (i + 1 < limbs.size()) {
                cur |= static_cast<std::uint64_t>(limbs[i + 1])
                       << (32 - bit_shift);
            }
            limbs[i] = static_cast<std::uint32_t>(cur);
        }
    }
    trim();
    return *this;
}

std::pair<BigUInt, BigUInt>
BigUInt::divmod(const BigUInt &divisor) const
{
    RCOAL_ASSERT(!divisor.isZero(), "BigUInt division by zero");
    if (*this < divisor)
        return {BigUInt{}, *this};

    BigUInt quotient;
    BigUInt remainder;
    const std::size_t nbits = bitLength();
    for (std::size_t i = nbits; i-- > 0;) {
        remainder <<= 1;
        if (bit(i))
            remainder += BigUInt(1);
        quotient <<= 1;
        if (remainder >= divisor) {
            remainder -= divisor;
            quotient += BigUInt(1);
        }
    }
    return {quotient, remainder};
}

BigUInt
BigUInt::pow(std::uint64_t exp) const
{
    BigUInt base = *this;
    BigUInt result(1);
    while (exp) {
        if (exp & 1)
            result *= base;
        exp >>= 1;
        if (exp)
            base *= base;
    }
    return result;
}

BigUInt
BigUInt::gcd(BigUInt a, BigUInt b)
{
    while (!b.isZero()) {
        BigUInt r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

std::string
BigUInt::toString() const
{
    if (isZero())
        return "0";
    // Repeated division by 1e9 yields 9-digit chunks.
    static const BigUInt chunk(1'000'000'000ull);
    std::vector<std::uint32_t> groups;
    BigUInt cur = *this;
    while (!cur.isZero()) {
        auto [q, r] = cur.divmod(chunk);
        groups.push_back(r.isZero() ? 0u
                                    : static_cast<std::uint32_t>(r.toU64()));
        cur = std::move(q);
    }
    std::string out = std::to_string(groups.back());
    for (std::size_t i = groups.size() - 1; i-- > 0;)
        out += strprintf("%09u", groups[i]);
    return out;
}

double
BigUInt::toDouble() const
{
    double out = 0.0;
    for (std::size_t i = limbs.size(); i-- > 0;)
        out = out * 4294967296.0 + static_cast<double>(limbs[i]);
    return out;
}

long double
BigUInt::toLongDouble() const
{
    long double out = 0.0L;
    for (std::size_t i = limbs.size(); i-- > 0;)
        out = out * 4294967296.0L + static_cast<long double>(limbs[i]);
    return out;
}

std::uint64_t
BigUInt::toU64() const
{
    RCOAL_ASSERT(limbs.size() <= 2, "BigUInt %s does not fit in 64 bits",
                 toString().c_str());
    std::uint64_t out = 0;
    if (limbs.size() >= 2)
        out = static_cast<std::uint64_t>(limbs[1]) << 32;
    if (!limbs.empty())
        out |= limbs[0];
    return out;
}

} // namespace rcoal::numeric
