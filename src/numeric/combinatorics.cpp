/**
 * @file
 * Exact combinatorics implementation with simple memo tables.
 */

#include "rcoal/numeric/combinatorics.hpp"

#include <mutex>
#include <vector>

#include "rcoal/common/logging.hpp"

namespace rcoal::numeric {

namespace {

std::mutex memo_mutex;

} // namespace

const BigUInt &
factorial(unsigned n)
{
    static std::vector<BigUInt> table = {BigUInt(1)}; // 0! = 1
    std::scoped_lock lock(memo_mutex);
    while (table.size() <= n)
        table.push_back(table.back() * BigUInt(table.size()));
    return table[n];
}

BigUInt
binomial(unsigned n, unsigned k)
{
    if (k > n)
        return {};
    if (k > n - k)
        k = n - k;
    // Multiply/divide incrementally; each intermediate is integral.
    BigUInt result(1);
    for (unsigned i = 0; i < k; ++i) {
        result *= BigUInt(n - i);
        result = result / BigUInt(i + 1);
    }
    return result;
}

BigUInt
fallingFactorial(unsigned n, unsigned k)
{
    RCOAL_ASSERT(k <= n, "falling factorial with k=%u > n=%u", k, n);
    BigUInt result(1);
    for (unsigned i = 0; i < k; ++i)
        result *= BigUInt(n - i);
    return result;
}

BigUInt
multinomial(std::span<const unsigned> counts)
{
    unsigned total = 0;
    for (unsigned c : counts)
        total += c;
    BigUInt result = factorial(total);
    for (unsigned c : counts)
        result = result / factorial(c);
    return result;
}

const BigUInt &
stirling2(unsigned n, unsigned k)
{
    // Triangular memo table: row n holds S(n, 0..n).
    static std::vector<std::vector<BigUInt>> table = {{BigUInt(1)}};
    static const BigUInt zero{};
    if (k > n)
        return zero;
    std::scoped_lock lock(memo_mutex);
    while (table.size() <= n) {
        const std::size_t row = table.size();
        std::vector<BigUInt> cur(row + 1);
        cur[0] = BigUInt{}; // S(n, 0) = 0 for n >= 1
        for (std::size_t j = 1; j <= row; ++j) {
            // S(n, k) = k * S(n-1, k) + S(n-1, k-1)
            BigUInt v = table[row - 1][j - 1];
            if (j < row)
                v += BigUInt(j) * table[row - 1][j];
            cur[j] = std::move(v);
        }
        table.push_back(std::move(cur));
    }
    return table[n][k];
}

BigUInt
bell(unsigned n)
{
    BigUInt sum;
    for (unsigned k = 0; k <= n; ++k)
        sum += stirling2(n, k);
    return sum;
}

BigUInt
compositionsCount(unsigned n, unsigned k)
{
    if (k == 0)
        return n == 0 ? BigUInt(1) : BigUInt{};
    if (n < k)
        return {};
    return binomial(n - 1, k - 1);
}

} // namespace rcoal::numeric
