/**
 * @file
 * Exact non-negative rational numbers on top of BigUInt.
 *
 * Probabilities and expectations in the analytical model are ratios of
 * exact integers; carrying them as reduced rationals keeps the Table II
 * computation exact until the final square root.
 */

#ifndef RCOAL_NUMERIC_BIG_RATIONAL_HPP
#define RCOAL_NUMERIC_BIG_RATIONAL_HPP

#include <string>

#include "rcoal/numeric/big_uint.hpp"

namespace rcoal::numeric {

/**
 * Non-negative rational number, always stored in lowest terms with a
 * positive denominator. Subtraction below zero panics (quantities in the
 * analytical model are non-negative by construction).
 */
class BigRational
{
  public:
    /** Zero. */
    BigRational() : den(1) {}

    /** Whole number. */
    BigRational(std::uint64_t value) // NOLINT(google-explicit-constructor)
        : num(value), den(1)
    {}

    /** numerator / denominator; denominator must be non-zero. */
    BigRational(BigUInt numerator, BigUInt denominator);

    const BigUInt &numerator() const { return num; }
    const BigUInt &denominator() const { return den; }

    bool isZero() const { return num.isZero(); }

    bool operator==(const BigRational &other) const = default;
    std::strong_ordering operator<=>(const BigRational &other) const;

    BigRational &operator+=(const BigRational &other);
    BigRational &operator-=(const BigRational &other);
    BigRational &operator*=(const BigRational &other);
    BigRational &operator/=(const BigRational &other);

    friend BigRational
    operator+(BigRational a, const BigRational &b)
    {
        a += b;
        return a;
    }
    friend BigRational
    operator-(BigRational a, const BigRational &b)
    {
        a -= b;
        return a;
    }
    friend BigRational
    operator*(BigRational a, const BigRational &b)
    {
        a *= b;
        return a;
    }
    friend BigRational
    operator/(BigRational a, const BigRational &b)
    {
        a /= b;
        return a;
    }

    /** "num/den" (or just "num" when den == 1). */
    std::string toString() const;

    /** Nearest long double. */
    long double toLongDouble() const;

    /** Nearest double. */
    double toDouble() const;

  private:
    void reduce();

    BigUInt num;
    BigUInt den;
};

} // namespace rcoal::numeric

#endif // RCOAL_NUMERIC_BIG_RATIONAL_HPP
