/**
 * @file
 * Integer partition and composition enumeration.
 *
 * The analytical model sums over the frequency set F (all ways N thread
 * accesses distribute over R memory blocks) and over the RSS size space W
 * (all compositions of N into M positive parts). Both spaces are
 * astronomically large when enumerated as vectors (|F| ~ 1.5e12 for
 * N=32, R=16), but every summand is symmetric under relabeling, so the
 * sums collapse to integer *partitions* with multiplicity weights
 * (~1e4 terms). This header provides the partition enumerators and the
 * weight helpers.
 */

#ifndef RCOAL_NUMERIC_PARTITIONS_HPP
#define RCOAL_NUMERIC_PARTITIONS_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "rcoal/numeric/big_uint.hpp"

namespace rcoal::numeric {

/** A partition of an integer: positive parts in non-increasing order. */
using Partition = std::vector<unsigned>;

/**
 * Enumerate all partitions of @p n into at most @p max_parts parts, each
 * part at most @p max_part. The callback receives parts in non-increasing
 * order. n == 0 yields the empty partition.
 */
void forEachPartition(unsigned n, unsigned max_parts, unsigned max_part,
                      const std::function<void(const Partition &)> &fn);

/**
 * Enumerate all partitions of @p n into exactly @p parts positive parts
 * (each at most @p max_part).
 */
void forEachPartitionExact(unsigned n, unsigned parts, unsigned max_part,
                           const std::function<void(const Partition &)> &fn);

/** Number of partitions of n into at most max_parts parts. */
std::uint64_t countPartitions(unsigned n, unsigned max_parts,
                              unsigned max_part);

/**
 * Number of distinct compositions (ordered sequences of positive parts)
 * realizing a given partition over exactly k slots, i.e.
 * k! / prod(multiplicity of each distinct part)!. Requires
 * partition.size() == k.
 */
BigUInt compositionsOfPartition(const Partition &partition);

/**
 * Number of distinct R-slot frequency vectors (slots may be zero)
 * realizing a given partition of positive parts:
 * R! / (prod(multiplicity of each distinct positive part)! * (R-k)!)
 * where k = partition.size(). Requires k <= total_slots.
 */
BigUInt vectorsOfPartition(const Partition &partition, unsigned total_slots);

/**
 * Multinomial N! / prod(f_i!) for the parts of a partition: the number of
 * ways to assign N labeled threads to blocks with these frequencies.
 */
BigUInt threadAssignmentsOfPartition(const Partition &partition);

} // namespace rcoal::numeric

#endif // RCOAL_NUMERIC_PARTITIONS_HPP
