/**
 * @file
 * Exact combinatorial quantities: factorials, binomials, multinomials,
 * Stirling numbers of the second kind, and Bell numbers.
 *
 * Definition 1 of the paper expresses the distribution of the number of
 * coalesced accesses in terms of Stirling numbers of the second kind and
 * falling factorials; everything here is computed exactly with BigUInt
 * and memoized.
 */

#ifndef RCOAL_NUMERIC_COMBINATORICS_HPP
#define RCOAL_NUMERIC_COMBINATORICS_HPP

#include <cstdint>
#include <span>

#include "rcoal/numeric/big_uint.hpp"

namespace rcoal::numeric {

/** n! (memoized). */
const BigUInt &factorial(unsigned n);

/** Binomial coefficient C(n, k); 0 when k > n. */
BigUInt binomial(unsigned n, unsigned k);

/** Falling factorial n * (n-1) * ... * (n-k+1); 1 when k == 0. */
BigUInt fallingFactorial(unsigned n, unsigned k);

/**
 * Multinomial coefficient (sum counts)! / prod(counts[i]!).
 */
BigUInt multinomial(std::span<const unsigned> counts);

/**
 * Stirling number of the second kind S(n, k): the number of ways to
 * partition n labeled items into k non-empty unlabeled subsets (memoized).
 */
const BigUInt &stirling2(unsigned n, unsigned k);

/** Bell number B(n) = sum over k of S(n, k). */
BigUInt bell(unsigned n);

/**
 * Number of compositions of n into k positive parts: C(n-1, k-1).
 * This is |W| in Section V-B3 of the paper (the skewed RSS size space).
 */
BigUInt compositionsCount(unsigned n, unsigned k);

} // namespace rcoal::numeric

#endif // RCOAL_NUMERIC_COMBINATORICS_HPP
