/**
 * @file
 * Arbitrary-precision unsigned integers.
 *
 * The analytical security model (Section V of the paper) needs exact
 * Stirling numbers of the second kind and multinomials up to 32!, which
 * overflow 64-bit (and in places 128-bit) arithmetic. This class provides
 * the small exact-integer substrate those computations run on. It is a
 * little-endian vector of 32-bit limbs with schoolbook algorithms - ample
 * for the few-hundred-bit values this project manipulates.
 */

#ifndef RCOAL_NUMERIC_BIG_UINT_HPP
#define RCOAL_NUMERIC_BIG_UINT_HPP

#include <compare>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rcoal::numeric {

/**
 * Arbitrary-precision unsigned integer.
 *
 * Invariant: no leading zero limbs (zero is the empty limb vector).
 * Subtraction of a larger value panics: all quantities in the analytical
 * model are non-negative, so underflow always indicates a bug.
 */
class BigUInt
{
  public:
    /** Zero. */
    BigUInt() = default;

    /** Construct from a built-in unsigned value. */
    BigUInt(std::uint64_t value); // NOLINT(google-explicit-constructor)

    /** Parse a non-empty decimal string; panics on invalid input. */
    static BigUInt fromDecimal(const std::string &text);

    /** True when the value is zero. */
    bool isZero() const { return limbs.empty(); }

    /** Number of significant bits (0 for zero). */
    std::size_t bitLength() const;

    /** Value of bit @p i (0 = least significant). */
    bool bit(std::size_t i) const;

    bool operator==(const BigUInt &other) const = default;
    std::strong_ordering operator<=>(const BigUInt &other) const;

    BigUInt &operator+=(const BigUInt &other);
    BigUInt &operator-=(const BigUInt &other);
    BigUInt &operator*=(const BigUInt &other);
    BigUInt &operator<<=(std::size_t bits);
    BigUInt &operator>>=(std::size_t bits);

    friend BigUInt
    operator+(BigUInt a, const BigUInt &b)
    {
        a += b;
        return a;
    }
    friend BigUInt
    operator-(BigUInt a, const BigUInt &b)
    {
        a -= b;
        return a;
    }
    friend BigUInt operator*(const BigUInt &a, const BigUInt &b);
    friend BigUInt
    operator<<(BigUInt a, std::size_t bits)
    {
        a <<= bits;
        return a;
    }
    friend BigUInt
    operator>>(BigUInt a, std::size_t bits)
    {
        a >>= bits;
        return a;
    }

    /**
     * Quotient and remainder; panics when @p divisor is zero.
     * Binary long division: O(bitLength * limbs), fine at this scale.
     */
    std::pair<BigUInt, BigUInt> divmod(const BigUInt &divisor) const;

    friend BigUInt
    operator/(const BigUInt &a, const BigUInt &b)
    {
        return a.divmod(b).first;
    }
    friend BigUInt
    operator%(const BigUInt &a, const BigUInt &b)
    {
        return a.divmod(b).second;
    }

    /** this^exp via binary exponentiation (0^0 == 1). */
    BigUInt pow(std::uint64_t exp) const;

    /** Greatest common divisor (Euclid). */
    static BigUInt gcd(BigUInt a, BigUInt b);

    /** Decimal representation. */
    std::string toString() const;

    /** Nearest double (may overflow to +inf for huge values). */
    double toDouble() const;

    /** Nearest long double. */
    long double toLongDouble() const;

    /**
     * Convert to uint64_t; panics if the value does not fit.
     */
    std::uint64_t toU64() const;

  private:
    void trim();

    /** Little-endian 32-bit limbs; empty means zero. */
    std::vector<std::uint32_t> limbs;
};

} // namespace rcoal::numeric

#endif // RCOAL_NUMERIC_BIG_UINT_HPP
