/**
 * @file
 * EncryptionService implementation.
 */

#include "rcoal/attack/encryption_service.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::attack {

EncryptionService::EncryptionService(const sim::GpuConfig &config,
                                     std::span<const std::uint8_t> key)
    : device(config), secretKey(key.begin(), key.end())
{
    if (secretKey.size() != 16 && secretKey.size() != 24 &&
        secretKey.size() != 32) {
        fatal("AES key must be 16, 24 or 32 bytes, got %zu",
              secretKey.size());
    }
}

EncryptionObservation
EncryptionService::encrypt(std::span<const aes::Block> plaintext_lines)
{
    workloads::AesGpuKernel kernel(plaintext_lines, secretKey,
                                   device.config().warpSize);
    const sim::KernelStats stats = device.launch(kernel);

    EncryptionObservation obs;
    obs.ciphertext = kernel.ciphertext();
    obs.totalTime = static_cast<double>(stats.cycles);
    obs.lastRoundTime = static_cast<double>(stats.lastRoundCycles());
    obs.lastRoundAccesses = stats.lastRoundAccesses();
    obs.totalAccesses = stats.coalescedAccesses;
    return obs;
}

std::vector<EncryptionObservation>
EncryptionService::collectSamples(unsigned samples, unsigned lines,
                                  Rng &rng)
{
    std::vector<EncryptionObservation> out;
    out.reserve(samples);
    for (unsigned s = 0; s < samples; ++s) {
        const auto plaintext = workloads::randomPlaintext(lines, rng);
        out.push_back(encrypt(plaintext));
    }
    return out;
}

std::vector<EncryptionObservation>
EncryptionService::collectSamplesParallel(const sim::GpuConfig &config,
                                          std::span<const std::uint8_t> key,
                                          unsigned samples, unsigned lines,
                                          std::uint64_t plaintext_seed,
                                          ThreadPool *pool)
{
    const auto run_trial = [&](std::size_t trial) {
        // Fresh GPU-sim instance per trial: the launch-counter state of
        // a shared Gpu would make trial i depend on how many trials its
        // worker ran before it. Seed index is trial + 1 so the trial-0
        // GPU stream is not the root stream itself.
        sim::GpuConfig trial_config = config;
        trial_config.seed = Rng::deriveSeed(config.seed, trial + 1);
        EncryptionService service(trial_config, key);
        Rng rng = Rng::stream(plaintext_seed, trial);
        return service.encrypt(workloads::randomPlaintext(lines, rng));
    };

    if (pool != nullptr)
        return pool->parallelMap(samples, run_trial);

    std::vector<EncryptionObservation> out;
    out.reserve(samples);
    for (unsigned s = 0; s < samples; ++s)
        out.push_back(run_trial(s));
    return out;
}

aes::Block
EncryptionService::lastRoundKey() const
{
    const aes::KeySchedule schedule(
        secretKey, aes::keySizeForLength(secretKey.size()));
    return schedule.roundKey(schedule.rounds());
}

std::vector<double>
measurementSeries(std::span<const EncryptionObservation> observations,
                  MeasurementVector which)
{
    std::vector<double> out;
    out.reserve(observations.size());
    for (const auto &obs : observations) {
        switch (which) {
          case MeasurementVector::TotalTime:
            out.push_back(obs.totalTime);
            break;
          case MeasurementVector::LastRoundTime:
            out.push_back(obs.lastRoundTime);
            break;
          case MeasurementVector::ObservedLastRoundAccesses:
            out.push_back(static_cast<double>(obs.lastRoundAccesses));
            break;
        }
    }
    return out;
}

} // namespace rcoal::attack
