/**
 * @file
 * EncryptionService implementation.
 */

#include "rcoal/attack/encryption_service.hpp"

#include "rcoal/common/logging.hpp"
#include "rcoal/sim/gpu_machine.hpp"

namespace rcoal::attack {

namespace {

/**
 * Stream tag separating warm-up plaintexts from trial plaintexts under
 * one plaintext_seed root: warm-up launch w draws from
 * Rng::stream(deriveSeed(plaintext_seed, tag), w), trial i from
 * Rng::stream(plaintext_seed, i), so the two families never collide.
 */
constexpr std::uint64_t kWarmupPlaintextTag = 0x77a7'24d5'59c3'b001ull;

/** The full SM range of @p machine. */
sim::SmRange
fullRange(const sim::GpuMachine &machine)
{
    return sim::SmRange{0, machine.config().numSms};
}

/**
 * Run one measured AES launch on @p machine with launch RNG stream
 * @p rng_stream_index and package the attacker-visible observation.
 * Mirrors EncryptionService::encrypt(), whose Gpu::launch() path runs
 * the same launchStream(kernel, full range, 1) on a fresh machine.
 */
EncryptionObservation
encryptOnMachine(sim::GpuMachine &machine,
                 std::span<const std::uint8_t> key,
                 std::span<const aes::Block> plaintext_lines,
                 std::uint64_t rng_stream_index)
{
    workloads::AesGpuKernel kernel(plaintext_lines, key,
                                   machine.config().warpSize);
    const auto id =
        machine.launchStream(kernel, fullRange(machine), rng_stream_index);
    machine.runUntilDone(id);
    const sim::KernelStats stats = machine.take(id);

    EncryptionObservation obs;
    obs.ciphertext = kernel.ciphertext();
    obs.totalTime = static_cast<double>(stats.cycles);
    obs.lastRoundTime = static_cast<double>(stats.lastRoundCycles());
    obs.lastRoundAccesses = stats.lastRoundAccesses();
    obs.totalAccesses = stats.coalescedAccesses;
    return obs;
}

/**
 * The shared prefix: @p warmup AES launches on launch RNG streams
 * 1..warmup, run to quiescence and retired. Deterministic given
 * (machine config, key, lines, plaintext_seed, warmup), which is what
 * makes fork-vs-replay byte-identical.
 */
void
runWarmupLaunches(sim::GpuMachine &machine,
                  std::span<const std::uint8_t> key, unsigned lines,
                  std::uint64_t plaintext_seed, unsigned warmup)
{
    const std::uint64_t warm_root =
        Rng::deriveSeed(plaintext_seed, kWarmupPlaintextTag);
    for (unsigned w = 0; w < warmup; ++w) {
        Rng rng = Rng::stream(warm_root, w);
        const auto plaintext = workloads::randomPlaintext(lines, rng);
        workloads::AesGpuKernel kernel(plaintext, key,
                                       machine.config().warpSize);
        const auto id =
            machine.launchStream(kernel, fullRange(machine), w + 1);
        machine.runUntilDone(id);
        machine.take(id);
    }
}

} // namespace

EncryptionService::EncryptionService(const sim::GpuConfig &config,
                                     std::span<const std::uint8_t> key)
    : device(config), secretKey(key.begin(), key.end())
{
    if (secretKey.size() != 16 && secretKey.size() != 24 &&
        secretKey.size() != 32) {
        fatal("AES key must be 16, 24 or 32 bytes, got %zu",
              secretKey.size());
    }
}

EncryptionObservation
EncryptionService::encrypt(std::span<const aes::Block> plaintext_lines)
{
    workloads::AesGpuKernel kernel(plaintext_lines, secretKey,
                                   device.config().warpSize);
    const sim::KernelStats stats = device.launch(kernel);

    EncryptionObservation obs;
    obs.ciphertext = kernel.ciphertext();
    obs.totalTime = static_cast<double>(stats.cycles);
    obs.lastRoundTime = static_cast<double>(stats.lastRoundCycles());
    obs.lastRoundAccesses = stats.lastRoundAccesses();
    obs.totalAccesses = stats.coalescedAccesses;
    return obs;
}

std::vector<EncryptionObservation>
EncryptionService::collectSamples(unsigned samples, unsigned lines,
                                  Rng &rng)
{
    std::vector<EncryptionObservation> out;
    out.reserve(samples);
    for (unsigned s = 0; s < samples; ++s) {
        const auto plaintext = workloads::randomPlaintext(lines, rng);
        out.push_back(encrypt(plaintext));
    }
    return out;
}

std::vector<EncryptionObservation>
EncryptionService::collectSamplesParallel(const sim::GpuConfig &config,
                                          std::span<const std::uint8_t> key,
                                          unsigned samples, unsigned lines,
                                          std::uint64_t plaintext_seed,
                                          ThreadPool *pool)
{
    const auto run_trial = [&](std::size_t trial) {
        // Fresh GPU-sim instance per trial: the launch-counter state of
        // a shared Gpu would make trial i depend on how many trials its
        // worker ran before it. Seed index is trial + 1 so the trial-0
        // GPU stream is not the root stream itself.
        sim::GpuConfig trial_config = config;
        trial_config.seed = Rng::deriveSeed(config.seed, trial + 1);
        EncryptionService service(trial_config, key);
        Rng rng = Rng::stream(plaintext_seed, trial);
        return service.encrypt(workloads::randomPlaintext(lines, rng));
    };

    if (pool != nullptr)
        return pool->parallelMap(samples, run_trial);

    std::vector<EncryptionObservation> out;
    out.reserve(samples);
    for (unsigned s = 0; s < samples; ++s)
        out.push_back(run_trial(s));
    return out;
}

sim::MachineSnapshot
EncryptionService::warmedSnapshot(const sim::GpuConfig &config,
                                  std::span<const std::uint8_t> key,
                                  unsigned lines,
                                  std::uint64_t plaintext_seed,
                                  unsigned warmup_launches)
{
    sim::GpuMachine machine(config);
    runWarmupLaunches(machine, key, lines, plaintext_seed,
                      warmup_launches);
    return machine.snapshot();
}

std::vector<EncryptionObservation>
EncryptionService::collectSamplesShared(const sim::GpuConfig &config,
                                        std::span<const std::uint8_t> key,
                                        unsigned samples, unsigned lines,
                                        std::uint64_t plaintext_seed,
                                        unsigned warmup_launches,
                                        CollectMode mode, ThreadPool *pool)
{
    if (warmup_launches == 0) {
        // No shared prefix: this is exactly the historical experiment.
        return collectSamplesParallel(config, key, samples, lines,
                                      plaintext_seed, pool);
    }

    sim::MachineSnapshot warmed;
    if (mode == CollectMode::Fork) {
        warmed = warmedSnapshot(config, key, lines, plaintext_seed,
                                warmup_launches);
    }

    const auto run_trial = [&](std::size_t trial) {
        // Trial randomness matches collectSamplesParallel(): GPU seed
        // deriveSeed(config.seed, trial + 1), plaintext stream
        // stream(plaintext_seed, trial), measured launch on stream 1.
        Rng rng = Rng::stream(plaintext_seed, trial);
        const auto plaintext = workloads::randomPlaintext(lines, rng);
        std::unique_ptr<sim::GpuMachine> machine;
        if (mode == CollectMode::Fork) {
            machine = sim::GpuMachine::fork(warmed);
        } else {
            machine = std::make_unique<sim::GpuMachine>(config);
            runWarmupLaunches(*machine, key, lines, plaintext_seed,
                              warmup_launches);
        }
        machine->reseed(Rng::deriveSeed(config.seed, trial + 1));
        return encryptOnMachine(*machine, key, plaintext, 1);
    };

    if (pool != nullptr)
        return pool->parallelMap(samples, run_trial);

    std::vector<EncryptionObservation> out;
    out.reserve(samples);
    for (unsigned s = 0; s < samples; ++s)
        out.push_back(run_trial(s));
    return out;
}

aes::Block
EncryptionService::lastRoundKey() const
{
    const aes::KeySchedule schedule(
        secretKey, aes::keySizeForLength(secretKey.size()));
    return schedule.roundKey(schedule.rounds());
}

std::vector<double>
measurementSeries(std::span<const EncryptionObservation> observations,
                  MeasurementVector which)
{
    std::vector<double> out;
    out.reserve(observations.size());
    for (const auto &obs : observations) {
        switch (which) {
          case MeasurementVector::TotalTime:
            out.push_back(obs.totalTime);
            break;
          case MeasurementVector::LastRoundTime:
            out.push_back(obs.lastRoundTime);
            break;
          case MeasurementVector::ObservedLastRoundAccesses:
            out.push_back(static_cast<double>(obs.lastRoundAccesses));
            break;
        }
    }
    return out;
}

} // namespace rcoal::attack
