/**
 * @file
 * Served-attack helpers.
 */

#include "rcoal/attack/served_attack.hpp"

#include <algorithm>
#include <cmath>

namespace rcoal::attack {

std::vector<EncryptionObservation>
probeObservations(const serve::ServeReport &report)
{
    return probeObservations(report.completed);
}

std::vector<EncryptionObservation>
probeObservations(const std::vector<serve::CompletedRequest> &completed)
{
    std::vector<const serve::CompletedRequest *> probes;
    for (const serve::CompletedRequest &done : completed) {
        if (done.isProbe)
            probes.push_back(&done);
    }
    // Completion order can differ from submission order (a later probe
    // may ride a faster batch); the attack pairs observation i with
    // plaintext stream i, so order by id.
    std::sort(probes.begin(), probes.end(),
              [](const auto *a, const auto *b) { return a->id < b->id; });

    std::vector<EncryptionObservation> out;
    out.reserve(probes.size());
    for (const serve::CompletedRequest *done : probes) {
        EncryptionObservation obs;
        obs.ciphertext = done->ciphertext;
        obs.totalTime = done->kernelTotalTime;
        obs.lastRoundTime = done->kernelLastRoundTime;
        obs.lastRoundAccesses = done->kernelLastRoundAccesses;
        obs.totalAccesses = done->kernelTotalAccesses;
        out.push_back(std::move(obs));
    }
    return out;
}

namespace {

/** Median of @p values (copied; non-empty). */
double
medianOf(std::vector<double> values)
{
    const auto mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    const double upper = values[mid];
    if (values.size() % 2 == 1)
        return upper;
    std::nth_element(values.begin(), values.begin() + mid - 1,
                     values.begin() + mid);
    return (values[mid - 1] + upper) / 2.0;
}

} // namespace

void
winsorizeObservations(std::vector<EncryptionObservation> &observations,
                      MeasurementVector which, double k_mad)
{
    if (observations.size() < 3)
        return;
    const std::vector<double> series =
        measurementSeries(observations, which);
    const double median = medianOf(series);
    std::vector<double> deviations;
    deviations.reserve(series.size());
    for (double v : series)
        deviations.push_back(std::abs(v - median));
    const double mad = medianOf(std::move(deviations));
    if (mad <= 0.0)
        return; // Degenerate series; nothing to bound against.

    const double lo = median - k_mad * mad;
    const double hi = median + k_mad * mad;
    for (std::size_t i = 0; i < observations.size(); ++i) {
        const double clamped = std::clamp(series[i], lo, hi);
        switch (which) {
          case MeasurementVector::TotalTime:
            observations[i].totalTime = clamped;
            break;
          case MeasurementVector::LastRoundTime:
            observations[i].lastRoundTime = clamped;
            break;
          case MeasurementVector::ObservedLastRoundAccesses:
            observations[i].lastRoundAccesses =
                static_cast<std::uint64_t>(clamped);
            break;
        }
    }
}

ServedSampleSet
collectSamplesServed(const sim::GpuConfig &gpu,
                     const serve::ServeConfig &serve_config,
                     std::span<const std::uint8_t> key,
                     const serve::WorkloadSpec &spec,
                     const serve::ServeTelemetry *telemetry,
                     const sim::MachineSnapshot *warm_boot)
{
    const serve::EncryptionServer server(gpu, serve_config, key);
    ServedSampleSet set;
    set.report = server.run(spec, /*tracer=*/nullptr, telemetry,
                            warm_boot);
    set.observations = probeObservations(set.report);
    return set;
}

} // namespace rcoal::attack
