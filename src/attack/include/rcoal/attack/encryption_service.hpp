/**
 * @file
 * The victim: a GPU AES encryption service.
 *
 * Models the remote GPU server of the baseline attack (Section II-C):
 * the attacker submits plaintexts; the service encrypts each on the
 * simulated GPU and returns the ciphertext together with the timing the
 * attacker can observe. Following the paper we expose the stronger
 * attacker's measurements (last-round execution time) in addition to the
 * total time, plus the ground-truth last-round coalesced-access count
 * used by the Fig. 18 noise-free evaluation.
 */

#ifndef RCOAL_ATTACK_ENCRYPTION_SERVICE_HPP
#define RCOAL_ATTACK_ENCRYPTION_SERVICE_HPP

#include <span>
#include <vector>

#include "rcoal/aes/key_schedule.hpp"
#include "rcoal/common/thread_pool.hpp"
#include "rcoal/sim/gpu.hpp"
#include "rcoal/sim/snapshot.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::attack {

/** Everything observable from one encryption request. */
struct EncryptionObservation
{
    std::vector<aes::Block> ciphertext; ///< One block per line.
    double totalTime = 0.0;             ///< Kernel cycles.
    double lastRoundTime = 0.0;         ///< Last-round window, cycles.
    std::uint64_t lastRoundAccesses = 0; ///< Observed (ground truth).
    std::uint64_t totalAccesses = 0;
};

/** Which observable the attacker correlates against. */
enum class MeasurementVector
{
    TotalTime,
    LastRoundTime,
    ObservedLastRoundAccesses, ///< Noise-free (Fig. 18 methodology).
};

/**
 * How collectSamplesShared() reuses the warmed-up machine prefix.
 * Fork restores each trial's machine from one shared snapshot; Replay
 * re-simulates the warm-up launches from a cold machine per trial.
 * The two are byte-identical by construction — Replay is the
 * verification (and CI cross-check) path, Fork the fast path.
 */
enum class CollectMode
{
    Fork,
    Replay,
};

/**
 * GPU AES encryption service (AES-128/192/256).
 */
class EncryptionService
{
  public:
    /**
     * @param config GPU configuration (including the defense policy).
     * @param key the service's secret AES key (16, 24 or 32 bytes;
     *        the paper evaluates AES-128 "without losing generality" -
     *        the last-round channel is identical for all sizes).
     */
    EncryptionService(const sim::GpuConfig &config,
                      std::span<const std::uint8_t> key);

    /** Encrypt one plaintext (a set of 16-byte lines). */
    EncryptionObservation
    encrypt(std::span<const aes::Block> plaintext_lines);

    /**
     * Encrypt @p samples random plaintexts of @p lines lines each,
     * drawn from @p rng.
     *
     * Sequential semantics: one shared plaintext stream and one GPU
     * whose launch counter advances across samples, so sample i
     * depends on i-1 having run. collectSamplesParallel() is the
     * order-free equivalent.
     */
    std::vector<EncryptionObservation>
    collectSamples(unsigned samples, unsigned lines, Rng &rng);

    /**
     * Batch collection with per-trial deterministic randomness,
     * optionally spread over a thread pool.
     *
     * Trial i derives its own plaintext stream
     * Rng::stream(@p plaintext_seed, i) and its own GPU-sim instance
     * seeded Rng::deriveSeed(config.seed, i + 1), so every observation
     * is a pure function of (config, key, lines, plaintext_seed, i).
     * The result is bit-identical for any worker count, including the
     * serial @p pool == nullptr path — enforced by the determinism
     * cross-check test.
     *
     * Note the per-trial GPU means trial streams differ from the
     * sequential collectSamples() run at the same seeds; the two APIs
     * define different (each internally reproducible) experiments.
     *
     * @param pool worker pool to spread trials over; nullptr runs
     *        serially on the caller.
     */
    static std::vector<EncryptionObservation>
    collectSamplesParallel(const sim::GpuConfig &config,
                           std::span<const std::uint8_t> key,
                           unsigned samples, unsigned lines,
                           std::uint64_t plaintext_seed,
                           ThreadPool *pool = nullptr);

    /**
     * Prefix-shared batch collection: run @p warmup_launches AES
     * kernels once on a machine seeded from @p config (plaintexts from
     * a warm-up-tagged stream below @p plaintext_seed), snapshot the
     * quiescent machine, then collect each trial on a fork of that
     * snapshot reseeded Rng::deriveSeed(config.seed, trial + 1) with
     * plaintext Rng::stream(plaintext_seed, trial). Trial randomness
     * matches collectSamplesParallel(); the shared prefix adds warm
     * cache/DRAM/clock-phase state every trial inherits identically.
     *
     * CollectMode::Replay produces byte-identical observations by
     * re-simulating the warm-up prefix per trial instead of forking —
     * the determinism cross-check. @p warmup_launches == 0 falls back
     * to collectSamplesParallel() exactly (mode is then irrelevant).
     *
     * Deterministic for any worker count, like every collect API here.
     */
    static std::vector<EncryptionObservation>
    collectSamplesShared(const sim::GpuConfig &config,
                         std::span<const std::uint8_t> key,
                         unsigned samples, unsigned lines,
                         std::uint64_t plaintext_seed,
                         unsigned warmup_launches,
                         CollectMode mode = CollectMode::Fork,
                         ThreadPool *pool = nullptr);

    /**
     * The warmed-up machine snapshot collectSamplesShared() forks:
     * exposed so callers (benches, tests) can build it once and
     * inspect or share it.
     */
    static sim::MachineSnapshot
    warmedSnapshot(const sim::GpuConfig &config,
                   std::span<const std::uint8_t> key, unsigned lines,
                   std::uint64_t plaintext_seed,
                   unsigned warmup_launches);

    /** Ground truth: the last round key (for evaluating attacks). */
    aes::Block lastRoundKey() const;

    /** The GPU under the hood. */
    const sim::Gpu &gpu() const { return device; }

  private:
    sim::Gpu device;
    std::vector<std::uint8_t> secretKey;
};

/** Extract one measurement series from a set of observations. */
std::vector<double>
measurementSeries(std::span<const EncryptionObservation> observations,
                  MeasurementVector which);

} // namespace rcoal::attack

#endif // RCOAL_ATTACK_ENCRYPTION_SERVICE_HPP
