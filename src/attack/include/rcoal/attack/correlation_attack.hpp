/**
 * @file
 * Correlation timing attacks on GPU AES (Jiang et al. baseline and the
 * paper's defense-aware generalizations).
 *
 * The attack recovers the AES-128 last round key byte-by-byte: for every
 * guess m of key byte j it computes, from the observed ciphertexts, the
 * number of last-round coalesced accesses the GPU *would* generate if m
 * were correct (Eq. 3 + the coalescing model), then correlates that
 * estimation vector with the measured timing across plaintext samples.
 * The guess with the highest correlation wins.
 *
 * The coalescing model the attacker assumes is itself a
 * CoalescingPolicy: the baseline attack assumes num-subwarp = 1; the
 * FSS attack (Algorithm 1) assumes the FSS partition; the FSS+RTS / RSS
 * / RSS+RTS attacks simulate the corresponding randomized partitions on
 * the attacker's side (Section IV-E).
 */

#ifndef RCOAL_ATTACK_CORRELATION_ATTACK_HPP
#define RCOAL_ATTACK_CORRELATION_ATTACK_HPP

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "rcoal/attack/encryption_service.hpp"
#include "rcoal/core/partitioner.hpp"

namespace rcoal::attack {

/** Attack parameters. */
struct AttackConfig
{
    /** The attacker's model of the deployed coalescing mechanism. */
    core::CoalescingPolicy assumedPolicy{};

    /** Threads per warp (N). */
    unsigned warpSize = 32;

    /** Table elements per memory block (R = 256/elementsPerBlock^-1). */
    unsigned elementsPerBlock = 16;

    /** What the attacker correlates against. */
    MeasurementVector measurement = MeasurementVector::LastRoundTime;

    /**
     * Randomized attack models redraw the partition per plaintext and
     * average the estimate over this many draws (1 = the paper's
     * single-simulation attacker).
     */
    unsigned drawsPerEstimate = 1;

    /** Attacker-side RNG seed. */
    std::uint64_t seed = 0xa77ac4;
};

/** Result of attacking one key byte. */
struct ByteAttackResult
{
    std::array<double, 256> correlation{}; ///< Per-guess correlation.
    std::uint8_t bestGuess = 0;
    double bestCorrelation = 0.0;
    double correctGuessCorrelation = 0.0; ///< Filled by the evaluator.
    std::uint8_t rankOfCorrect = 0;        ///< 0 = recovered.
};

/** Result of attacking the full 16-byte last round key. */
struct KeyAttackResult
{
    std::array<ByteAttackResult, 16> bytes{};
    aes::Block recoveredLastRoundKey{};
    unsigned bytesRecovered = 0;     ///< vs. ground truth.
    double avgCorrectCorrelation = 0.0; ///< Fig. 15's metric.

    /** True when every byte matched the true last round key. */
    bool
    fullKeyRecovered() const
    {
        return bytesRecovered == 16;
    }
};

/**
 * The correlation timing attack engine.
 */
class CorrelationAttack
{
  public:
    explicit CorrelationAttack(AttackConfig config);

    const AttackConfig &config() const { return cfg; }

    /**
     * Estimate the number of last-round coalesced accesses for one
     * plaintext sample, assuming key byte @p j equals @p guess
     * (the generalized Algorithm 1). Lines are grouped into warps of
     * warpSize sequentially; each warp is partitioned according to the
     * assumed policy and per-subwarp distinct memory blocks are summed.
     */
    double estimateLastRoundAccesses(
        std::span<const aes::Block> ciphertext_lines, unsigned j,
        std::uint8_t guess, Rng &rng) const;

    /**
     * Attack key byte @p j given the collected observations.
     *
     * The 256 candidate guesses are independent: each draws its
     * attacker RNG as Rng::stream(cfg.seed, j * 256 + guess), so the
     * per-guess correlations are identical whether the guesses run
     * serially or spread over @p pool (nullptr = serial).
     */
    ByteAttackResult
    attackByte(std::span<const EncryptionObservation> observations,
               unsigned j, ThreadPool *pool = nullptr) const;

    /**
     * Attack all 16 bytes and evaluate against the true last round key.
     *
     * With a @p pool, all 16 x 256 (byte, guess) correlation tasks are
     * flattened into one parallel loop; the result is bit-identical to
     * the serial run (same per-task RNG stream derivation).
     */
    KeyAttackResult
    attackKey(std::span<const EncryptionObservation> observations,
              const aes::Block &true_last_round_key,
              ThreadPool *pool = nullptr) const;

  private:
    /** Correlation of guess @p m for byte @p j against @p measured. */
    double guessCorrelation(
        std::span<const EncryptionObservation> observations,
        std::span<const double> measured, unsigned j, unsigned m) const;

    /** Rank/recovery bookkeeping shared by the serial/parallel paths. */
    static void evaluateByte(ByteAttackResult &byte_result,
                             std::uint8_t truth);

    AttackConfig cfg;
    core::SubwarpPartitioner partitioner;
    /** Cached partition for deterministic attack models. */
    std::optional<core::SubwarpPartition> fixedPartition;
};

/**
 * Convenience for Fig. 7b-style evaluation: the average, over the 16 key
 * bytes, of the correlation obtained for the *correct* guess.
 */
double averageCorrectCorrelation(const KeyAttackResult &result);

/**
 * Estimated number of timing samples a successful attack needs, given
 * the achieved average correct-guess correlation (Eq. 4 with success
 * rate @p alpha). Returns +inf when the correlation is in the noise.
 */
double estimatedSamplesToRecover(const KeyAttackResult &result,
                                 double alpha = 0.99);

} // namespace rcoal::attack

#endif // RCOAL_ATTACK_CORRELATION_ATTACK_HPP
