/**
 * @file
 * The attack, mounted against the serving frontend instead of a
 * dedicated GPU.
 *
 * In the one-shot harness (EncryptionService) every attacker probe runs
 * alone on a cold device, so the measured last-round window is exactly
 * the probe's own. Behind rcoal::serve the probe is batched with
 * co-tenant requests and its kernel contends with co-resident kernels
 * for DRAM and the interconnect — both dilute the timing channel. These
 * helpers run the served experiment and convert its probe completions
 * into the observation format the correlation attack consumes, so the
 * identical attack code evaluates both worlds.
 */

#ifndef RCOAL_ATTACK_SERVED_ATTACK_HPP
#define RCOAL_ATTACK_SERVED_ATTACK_HPP

#include <span>
#include <vector>

#include "rcoal/attack/encryption_service.hpp"
#include "rcoal/serve/server.hpp"

namespace rcoal::attack {

/**
 * Observations of the probe requests in @p report, ordered by probe
 * request id — i.e. by plaintext stream index, matching the solo
 * harness's observation order.
 */
std::vector<EncryptionObservation>
probeObservations(const serve::ServeReport &report);

/**
 * Same conversion over a raw completion list — the shape rcoal::fleet
 * reports (FleetReport::completed), where probes from many replicas
 * interleave in fleet completion order.
 */
std::vector<EncryptionObservation>
probeObservations(const std::vector<serve::CompletedRequest> &completed);

/** One served attack experiment: the attacker's view plus the
 * operator's view of the same run. */
struct ServedSampleSet
{
    std::vector<EncryptionObservation> observations;
    serve::ServeReport report;
};

/**
 * Run the serving scenario (@p gpu, @p serve_config, @p spec) with
 * secret @p key and collect the probe observations. Single-threaded
 * and deterministic; parallelize across scenarios, not within one.
 * An optional @p telemetry hook is forwarded to the server (see
 * serve::ServeTelemetry) so benches can watch the run live.
 *
 * Optional @p warm_boot forwards a warm-boot snapshot to
 * EncryptionServer::run (meaningful only when
 * serve_config.warmBootKernels > 0): the scenario then starts from the
 * restored machine instead of re-simulating the boot launches.
 */
ServedSampleSet
collectSamplesServed(const sim::GpuConfig &gpu,
                     const serve::ServeConfig &serve_config,
                     std::span<const std::uint8_t> key,
                     const serve::WorkloadSpec &spec,
                     const serve::ServeTelemetry *telemetry = nullptr,
                     const sim::MachineSnapshot *warm_boot = nullptr);

/**
 * The strong attacker's outlier control: clamp (winsorize) the
 * @p which series of @p observations to median +- @p k_mad median
 * absolute deviations.
 *
 * Against a serving frontend a minority of probes come back wildly
 * slow — they were batched with, or ran beside, a co-tenant — and a
 * single such measurement carries enough leverage to drown the
 * correlation an attacker could still extract from the clean majority.
 * Clamping restores that residual channel, so leakage-under-load
 * numbers measure the dilution itself rather than Pearson's outlier
 * sensitivity. Under saturation the median itself is contaminated and
 * clamping recovers nothing; no-load series are nearly untouched (only
 * genuine signal tails graze the bound).
 */
void winsorizeObservations(std::vector<EncryptionObservation> &observations,
                           MeasurementVector which, double k_mad = 3.0);

} // namespace rcoal::attack

#endif // RCOAL_ATTACK_SERVED_ATTACK_HPP
