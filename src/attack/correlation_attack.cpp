/**
 * @file
 * CorrelationAttack implementation.
 */

#include "rcoal/attack/correlation_attack.hpp"

#include <algorithm>
#include <bit>

#include "rcoal/aes/sbox.hpp"
#include "rcoal/common/logging.hpp"
#include "rcoal/common/stats.hpp"

namespace rcoal::attack {

CorrelationAttack::CorrelationAttack(AttackConfig attack_config)
    : cfg(std::move(attack_config)),
      partitioner(cfg.assumedPolicy, cfg.warpSize)
{
    RCOAL_ASSERT(cfg.elementsPerBlock > 0 &&
                     256 % cfg.elementsPerBlock == 0,
                 "elementsPerBlock must divide 256");
    RCOAL_ASSERT(cfg.drawsPerEstimate >= 1,
                 "need at least one draw per estimate");
    RCOAL_ASSERT(256 / cfg.elementsPerBlock <= 64,
                 "more than 64 memory blocks per table is unsupported");
    if (!cfg.assumedPolicy.isRandomized()) {
        // Deterministic models (baseline, plain FSS) always produce the
        // same partition; draw it once.
        Rng rng(cfg.seed);
        fixedPartition = partitioner.draw(rng);
    }
}

double
CorrelationAttack::estimateLastRoundAccesses(
    std::span<const aes::Block> ciphertext_lines, unsigned j,
    std::uint8_t guess, Rng &rng) const
{
    RCOAL_ASSERT(j < 16, "key byte index %u out of range", j);
    const unsigned lines =
        static_cast<unsigned>(ciphertext_lines.size());
    const unsigned n = cfg.warpSize;
    const auto &inv_sbox = aes::invSbox();

    // Memory block of each line's T4 lookup index (Eq. 3): the attacker
    // only needs the block, elementsPerBlock consecutive elements share
    // one (>> 4 for the paper's 16-element blocks).
    const unsigned shift = static_cast<unsigned>(
        std::countr_zero(cfg.elementsPerBlock));
    std::vector<std::uint8_t> block_of_line(lines);
    for (unsigned line = 0; line < lines; ++line) {
        const std::uint8_t c = ciphertext_lines[line][j];
        block_of_line[line] = static_cast<std::uint8_t>(
            inv_sbox[c ^ guess] >> shift);
    }

    double total = 0.0;
    for (unsigned draw = 0; draw < cfg.drawsPerEstimate; ++draw) {
        std::uint64_t accesses = 0;
        for (unsigned warp_first = 0; warp_first < lines;
             warp_first += n) {
            const unsigned lanes = std::min(n, lines - warp_first);
            std::optional<core::SubwarpPartition> drawn;
            if (!fixedPartition)
                drawn = partitioner.draw(rng);
            const core::SubwarpPartition &partition =
                fixedPartition ? *fixedPartition : *drawn;
            // One bit per memory block per subwarp; 256 /
            // elementsPerBlock <= 64 blocks fit a 64-bit mask.
            std::array<std::uint64_t, 32> mask{};
            RCOAL_ASSERT(partition.numSubwarps() <= mask.size(),
                         "too many subwarps for the mask array");
            for (unsigned t = 0; t < lanes; ++t) {
                const SubwarpId sid = partition.subwarpOf(t);
                mask[sid] |= std::uint64_t{1}
                             << block_of_line[warp_first + t];
            }
            for (unsigned s = 0; s < partition.numSubwarps(); ++s)
                accesses += std::popcount(mask[s]);
        }
        total += static_cast<double>(accesses);
    }
    return total / cfg.drawsPerEstimate;
}

double
CorrelationAttack::guessCorrelation(
    std::span<const EncryptionObservation> observations,
    std::span<const double> measured, unsigned j, unsigned m) const
{
    // Counter-based attacker RNG per (byte, guess) task: per the
    // paper's attack the per-plaintext randomization is simulated
    // independently of the guess, and the stream derivation makes the
    // task independent of scheduling, so serial and pooled recovery
    // produce identical correlation tables.
    Rng rng = Rng::stream(cfg.seed, j * 256ull + m);
    std::vector<double> estimated;
    estimated.reserve(observations.size());
    for (const auto &obs : observations) {
        estimated.push_back(estimateLastRoundAccesses(
            obs.ciphertext, j, static_cast<std::uint8_t>(m), rng));
    }
    return pearsonCorrelation(estimated, measured);
}

void
CorrelationAttack::evaluateByte(ByteAttackResult &byte_result,
                                std::uint8_t truth)
{
    byte_result.correctGuessCorrelation = byte_result.correlation[truth];
    unsigned rank = 0;
    for (unsigned m = 0; m < 256; ++m) {
        if (m != truth &&
            byte_result.correlation[m] > byte_result.correlation[truth])
            ++rank;
    }
    byte_result.rankOfCorrect =
        static_cast<std::uint8_t>(std::min(rank, 255u));
}

ByteAttackResult
CorrelationAttack::attackByte(
    std::span<const EncryptionObservation> observations, unsigned j,
    ThreadPool *pool) const
{
    RCOAL_ASSERT(!observations.empty(), "no observations to attack");
    const std::vector<double> measured =
        measurementSeries(observations, cfg.measurement);

    ByteAttackResult result;
    const auto guess_task = [&](std::size_t m) {
        result.correlation[m] = guessCorrelation(
            observations, measured, j, static_cast<unsigned>(m));
    };
    if (pool != nullptr) {
        pool->parallelFor(256, guess_task);
    } else {
        for (std::size_t m = 0; m < 256; ++m)
            guess_task(m);
    }

    const auto best = std::max_element(result.correlation.begin(),
                                       result.correlation.end());
    result.bestGuess = static_cast<std::uint8_t>(
        best - result.correlation.begin());
    result.bestCorrelation = *best;
    return result;
}

KeyAttackResult
CorrelationAttack::attackKey(
    std::span<const EncryptionObservation> observations,
    const aes::Block &true_last_round_key, ThreadPool *pool) const
{
    RCOAL_ASSERT(!observations.empty(), "no observations to attack");
    const std::vector<double> measured =
        measurementSeries(observations, cfg.measurement);

    // Flatten all 16 bytes x 256 guesses into one task list so a pool
    // sees maximum width (per-byte batches would leave workers idle at
    // every byte boundary).
    KeyAttackResult result;
    const auto guess_task = [&](std::size_t idx) {
        const auto j = static_cast<unsigned>(idx / 256);
        const auto m = static_cast<unsigned>(idx % 256);
        result.bytes[j].correlation[m] =
            guessCorrelation(observations, measured, j, m);
    };
    if (pool != nullptr) {
        pool->parallelFor(16 * 256, guess_task);
    } else {
        for (std::size_t idx = 0; idx < 16 * 256; ++idx)
            guess_task(idx);
    }

    double corr_sum = 0.0;
    for (unsigned j = 0; j < 16; ++j) {
        ByteAttackResult &byte_result = result.bytes[j];
        const auto best = std::max_element(byte_result.correlation.begin(),
                                           byte_result.correlation.end());
        byte_result.bestGuess = static_cast<std::uint8_t>(
            best - byte_result.correlation.begin());
        byte_result.bestCorrelation = *best;
        evaluateByte(byte_result, true_last_round_key[j]);
        result.recoveredLastRoundKey[j] = byte_result.bestGuess;
        if (byte_result.bestGuess == true_last_round_key[j])
            ++result.bytesRecovered;
        corr_sum += byte_result.correctGuessCorrelation;
    }
    result.avgCorrectCorrelation = corr_sum / 16.0;
    return result;
}

double
averageCorrectCorrelation(const KeyAttackResult &result)
{
    return result.avgCorrectCorrelation;
}

double
estimatedSamplesToRecover(const KeyAttackResult &result, double alpha)
{
    return samplesForSuccessfulAttack(result.avgCorrectCorrelation,
                                      alpha);
}

} // namespace rcoal::attack
