/**
 * @file
 * SubwarpPartitioner implementation.
 */

#include "rcoal/core/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rcoal/common/logging.hpp"

namespace rcoal::core {

SubwarpPartitioner::SubwarpPartitioner(CoalescingPolicy policy,
                                       unsigned warp_size)
    : pol(policy), n(warp_size)
{
    RCOAL_ASSERT(warp_size >= 1, "warp size must be positive");
    pol.validate(warp_size);
}

std::vector<unsigned>
SubwarpPartitioner::fixedSizes() const
{
    const unsigned m = pol.numSubwarps;
    std::vector<unsigned> sizes(m, n / m);
    for (unsigned i = 0; i < n % m; ++i)
        ++sizes[i];
    return sizes;
}

std::vector<unsigned>
SubwarpPartitioner::sampleSkewedSizes(Rng &rng) const
{
    const unsigned m = pol.numSubwarps;
    // A composition of n into m positive parts corresponds to a choice of
    // m-1 distinct cut points among the n-1 gaps between consecutive
    // threads; sampling cut points uniformly makes every composition
    // equally likely and guarantees no subwarp is empty.
    const auto cuts = rng.sampleDistinctSorted(m - 1, n - 1);
    std::vector<unsigned> sizes;
    sizes.reserve(m);
    std::uint64_t prev = 0;
    for (std::uint64_t cut : cuts) {
        sizes.push_back(static_cast<unsigned>(cut + 1 - prev));
        prev = cut + 1;
    }
    sizes.push_back(static_cast<unsigned>(n - prev));
    return sizes;
}

std::vector<unsigned>
SubwarpPartitioner::sampleNormalSizes(Rng &rng) const
{
    const unsigned m = pol.numSubwarps;
    const double mean = static_cast<double>(n) / m;
    std::vector<unsigned> sizes(m);
    long total = 0;
    for (unsigned i = 0; i < m; ++i) {
        const double v = std::round(rng.normal(mean, pol.normalSigma));
        const long clamped = std::max(1L, static_cast<long>(v));
        sizes[i] = static_cast<unsigned>(
            std::min<long>(clamped, static_cast<long>(n)));
        total += sizes[i];
    }
    // Rebalance to sum exactly n while keeping every size >= 1.
    while (total > static_cast<long>(n)) {
        const unsigned i = static_cast<unsigned>(rng.below(m));
        if (sizes[i] > 1) {
            --sizes[i];
            --total;
        }
    }
    while (total < static_cast<long>(n)) {
        const unsigned i = static_cast<unsigned>(rng.below(m));
        ++sizes[i];
        ++total;
    }
    return sizes;
}

SubwarpPartition
SubwarpPartitioner::partitionFromSizes(std::vector<unsigned> sizes,
                                       Rng &rng) const
{
    if (!pol.randomThreads)
        return SubwarpPartition::fromSizes(sizes);

    // RTS: assign the available sids to the threads in random order.
    std::vector<SubwarpId> slots;
    slots.reserve(n);
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        for (unsigned i = 0; i < sizes[s]; ++i)
            slots.push_back(static_cast<SubwarpId>(s));
    }
    rng.shuffle(slots);
    return {std::move(slots), static_cast<unsigned>(sizes.size())};
}

SubwarpPartition
SubwarpPartitioner::draw(Rng &rng) const
{
    switch (pol.mechanism) {
      case Mechanism::Baseline:
        return SubwarpPartition::single(n);
      case Mechanism::Disabled:
        // One thread per subwarp: coalescing degenerates to one access
        // per active thread, matching disabled coalescing exactly.
        return partitionFromSizes(std::vector<unsigned>(n, 1), rng);
      case Mechanism::Fss:
        return partitionFromSizes(fixedSizes(), rng);
      case Mechanism::Rss: {
        auto sizes = pol.sizing == RssSizing::Skewed
                         ? sampleSkewedSizes(rng)
                         : sampleNormalSizes(rng);
        return partitionFromSizes(std::move(sizes), rng);
      }
    }
    panic("invalid mechanism");
}

} // namespace rcoal::core
