/**
 * @file
 * Pending Request Table (PRT) of the modified memory coalescing unit.
 *
 * Mirrors Fig. 11 of the paper: each entry logs a thread's memory
 * request (tid, base address, offset, size) plus the subwarp-id (sid)
 * field RCoal adds so the coalescer knows which threads to merge. The
 * simulator's LD/ST unit allocates entries when a warp memory instruction
 * issues and retires them as coalesced accesses complete.
 */

#ifndef RCOAL_CORE_PENDING_REQUEST_TABLE_HPP
#define RCOAL_CORE_PENDING_REQUEST_TABLE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/common/types.hpp"

namespace rcoal::core {

/** One PRT entry (Fig. 11). */
struct PrtEntry
{
    bool valid = false;
    ThreadId tid = 0;
    Addr baseAddr = 0;       ///< Block-aligned base of the access.
    std::uint32_t offset = 0;///< Byte offset of the request in the block.
    std::uint32_t size = 0;  ///< Request size in bytes.
    SubwarpId sid = 0;       ///< RCoal addition: subwarp-id field.
    bool pending = false;    ///< True while the access is in flight.
};

/**
 * Fixed-capacity pending request table.
 */
class PendingRequestTable
{
  public:
    /** @p entries is the hardware table capacity. */
    explicit PendingRequestTable(std::size_t entries);

    /** Table capacity. */
    std::size_t capacity() const { return table.size(); }

    /** Number of valid entries. */
    std::size_t occupancy() const { return used; }

    /** Number of free entries. */
    std::size_t freeEntries() const { return capacity() - used; }

    /**
     * Allocate an entry; returns its index or nullopt when full.
     */
    std::optional<std::size_t> allocate(ThreadId tid, Addr base_addr,
                                        std::uint32_t offset,
                                        std::uint32_t size, SubwarpId sid);

    /** Mark an entry's access as issued to the memory system. */
    void markPending(std::size_t index);

    /** Retire (free) an entry once its data returned. */
    void release(std::size_t index);

    /** Access an entry (must be valid). */
    const PrtEntry &entry(std::size_t index) const;

    /**
     * Indices of all valid entries with the given sid, ascending.
     * Allocates the result vector; hot paths use forEachOfSubwarp().
     */
    std::vector<std::size_t> entriesOfSubwarp(SubwarpId sid) const;

    /**
     * Visit every valid entry with the given sid, allocation-free, via
     * the per-sid intrusive list (most recently allocated first).
     * @p fn is called as fn(std::size_t index, const PrtEntry &).
     */
    template <typename Fn>
    void
    forEachOfSubwarp(SubwarpId sid, Fn &&fn) const
    {
        if (sid >= sidHead.size())
            return;
        for (std::uint32_t i = sidHead[sid]; i != kNone; i = sidNext[i])
            fn(static_cast<std::size_t>(i), table[i]);
    }

    /** Hardware cost of the sid field in bits (Section IV-D). */
    static std::size_t sidFieldBits(unsigned warp_size);

    /**
     * Return the table to its freshly-constructed state. Requires the
     * table to be empty; rebuilds the pristine free-list order so a
     * quiescent table is byte-identical to a new one (entry indices are
     * pure IDs with no observable effect, so canonicalizing the LIFO
     * order is behavior-preserving).
     */
    void reset();

    /** Serialize the full table state (field-wise, padding-free). */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState(); capacity must match. */
    void restoreState(common::ArenaReader &r);

  private:
    /** Unlink @p index from its sid's intrusive list. */
    void unlinkFromSid(std::size_t index);

    static constexpr std::uint32_t kNone = ~std::uint32_t{0};

    std::vector<PrtEntry> table;
    std::vector<std::size_t> freeList; ///< LIFO of free entry indices.
    std::size_t used = 0;
    /**
     * Per-sid doubly-linked intrusive lists over the table, so
     * subwarp-scoped walks touch only that subwarp's entries instead of
     * scanning the whole table. sidHead grows on demand with the
     * largest sid seen; sidNext/sidPrev parallel the table.
     */
    std::vector<std::uint32_t> sidHead;
    std::vector<std::uint32_t> sidNext;
    std::vector<std::uint32_t> sidPrev;
};

} // namespace rcoal::core

#endif // RCOAL_CORE_PENDING_REQUEST_TABLE_HPP
