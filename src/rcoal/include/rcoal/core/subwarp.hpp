/**
 * @file
 * Subwarp partition: the sid <-> tid mapping the modified MCU coalesces
 * by (Fig. 11 of the paper).
 */

#ifndef RCOAL_CORE_SUBWARP_HPP
#define RCOAL_CORE_SUBWARP_HPP

#include <vector>

#include "rcoal/common/types.hpp"

namespace rcoal::core {

/**
 * A concrete assignment of every warp thread to a subwarp.
 *
 * Invariants (enforced by validate()):
 *  - sidOfThread has one entry per thread, each < numSubwarps;
 *  - every subwarp is non-empty (the paper's skewed distribution
 *    explicitly guarantees this, Section V-B3).
 */
class SubwarpPartition
{
  public:
    /** Build from an explicit per-thread sid vector. */
    SubwarpPartition(std::vector<SubwarpId> sid_of_thread,
                     unsigned num_subwarps);

    /** The in-order single-subwarp partition (the baseline). */
    static SubwarpPartition single(unsigned warp_size);

    /**
     * In-order partition with the given subwarp sizes: the first
     * sizes[0] threads form subwarp 0, and so on.
     */
    static SubwarpPartition fromSizes(const std::vector<unsigned> &sizes);

    /** Number of threads in the warp. */
    unsigned warpSize() const
    {
        return static_cast<unsigned>(sid.size());
    }

    /** Number of subwarps M. */
    unsigned numSubwarps() const { return m; }

    /** Subwarp of thread @p tid. */
    SubwarpId subwarpOf(ThreadId tid) const;

    /** Per-thread sid vector (index = tid). */
    const std::vector<SubwarpId> &sidOfThread() const { return sid; }

    /** Thread ids belonging to subwarp @p s, in increasing tid order. */
    std::vector<ThreadId> threadsOf(SubwarpId s) const;

    /** Size of each subwarp, indexed by sid. */
    std::vector<unsigned> sizes() const;

    /**
     * True when threads are assigned to subwarps in tid order (i.e. no
     * RTS shuffling): sid values are non-decreasing across tids.
     */
    bool isInOrder() const;

    /** Panics if an invariant is violated. */
    void validate() const;

    bool operator==(const SubwarpPartition &other) const = default;

  private:
    std::vector<SubwarpId> sid;
    unsigned m;
};

} // namespace rcoal::core

#endif // RCOAL_CORE_SUBWARP_HPP
