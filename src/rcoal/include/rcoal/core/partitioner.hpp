/**
 * @file
 * Subwarp partition sampling for each defense mechanism.
 *
 * The partitioner turns a CoalescingPolicy into concrete SubwarpPartition
 * draws. Per Section IV-D of the paper, the hardware fixes the sid<->tid
 * mapping once at the beginning of an application execution (a kernel
 * launch), so the simulator calls draw() once per warp per launch.
 */

#ifndef RCOAL_CORE_PARTITIONER_HPP
#define RCOAL_CORE_PARTITIONER_HPP

#include <vector>

#include "rcoal/common/rng.hpp"
#include "rcoal/core/policy.hpp"
#include "rcoal/core/subwarp.hpp"

namespace rcoal::core {

/**
 * Draws SubwarpPartitions according to a CoalescingPolicy.
 */
class SubwarpPartitioner
{
  public:
    /** @p warp_size is N (32 in the paper's configuration). */
    SubwarpPartitioner(CoalescingPolicy policy, unsigned warp_size);

    /** The policy being realized. */
    const CoalescingPolicy &policy() const { return pol; }

    /** Warp size N. */
    unsigned warpSize() const { return n; }

    /**
     * Draw a partition. Deterministic policies (Baseline, Disabled, FSS
     * without RTS) ignore the RNG and always return the same partition.
     */
    SubwarpPartition draw(Rng &rng) const;

    /**
     * FSS subwarp sizes: N/M each; when M does not divide N the first
     * N mod M subwarps get one extra thread.
     */
    std::vector<unsigned> fixedSizes() const;

    /**
     * Sample skewed RSS sizes: uniform over all compositions of N into
     * M positive parts (Section V-B3), via M-1 distinct cut points.
     */
    std::vector<unsigned> sampleSkewedSizes(Rng &rng) const;

    /**
     * Sample "normal" RSS sizes: iid Normal(N/M, sigma) rounded to
     * integers, clamped to >= 1, then rebalanced to sum exactly N.
     */
    std::vector<unsigned> sampleNormalSizes(Rng &rng) const;

  private:
    SubwarpPartition partitionFromSizes(std::vector<unsigned> sizes,
                                        Rng &rng) const;

    CoalescingPolicy pol;
    unsigned n;
};

} // namespace rcoal::core

#endif // RCOAL_CORE_PARTITIONER_HPP
