/**
 * @file
 * The RCoal_Score security/performance trade-off metric (Eq. 7).
 */

#ifndef RCOAL_CORE_RCOAL_SCORE_HPP
#define RCOAL_CORE_RCOAL_SCORE_HPP

namespace rcoal::core {

/**
 * Security strength S: the square of the inverse of the average
 * correlation observed by the corresponding attack (Section VI-C).
 * Returns +inf when the correlation is (numerically) zero.
 */
double securityStrength(double average_correlation);

/**
 * RCoal_Score = S^a / execution_time^b (Eq. 7).
 *
 * @param security S as computed by securityStrength().
 * @param execution_time execution time (any consistent unit; the paper
 *        uses time normalized to the baseline).
 * @param a exponent weighting security.
 * @param b exponent weighting performance.
 */
double rcoalScore(double security, double execution_time, double a,
                  double b);

} // namespace rcoal::core

#endif // RCOAL_CORE_RCOAL_SCORE_HPP
