/**
 * @file
 * Intra-warp memory access coalescing at subwarp granularity.
 *
 * The coalescer merges the per-thread memory requests of one warp memory
 * instruction into as few block-sized accesses as possible, considering
 * only threads within the same subwarp together (Section II-A, Fig. 2).
 */

#ifndef RCOAL_CORE_COALESCER_HPP
#define RCOAL_CORE_COALESCER_HPP

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rcoal/common/types.hpp"
#include "rcoal/core/subwarp.hpp"

namespace rcoal::core {

/** One thread's memory request within a warp instruction. */
struct LaneRequest
{
    ThreadId tid = 0;    ///< Lane within the warp.
    Addr addr = 0;       ///< Byte address.
    std::uint32_t size = 4; ///< Request size in bytes.
    bool active = true;  ///< False for threads masked off by divergence.
};

/**
 * Fixed-capacity inline lane list. A coalesced access serves at most
 * one lane per warp thread, and the simulator caps the warp size at
 * this capacity (GpuConfig::validate(), mirroring PrtIndexList), so
 * the coalescing hot path never touches the heap.
 */
struct LaneList
{
    static constexpr std::size_t kCapacity = 32;

    void push_back(ThreadId tid)
    {
        assert(count < kCapacity && "coalesced lane list overflow");
        lanes[count++] = tid;
    }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    const ThreadId *begin() const { return lanes.data(); }
    const ThreadId *end() const { return lanes.data() + count; }

    std::array<ThreadId, kCapacity> lanes{};
    std::uint32_t count = 0;
};

/** One coalesced memory access produced by the coalescer. */
struct CoalescedAccess
{
    Addr blockAddr = 0;  ///< Block-aligned base address.
    SubwarpId sid = 0;   ///< Subwarp that generated the access.
    LaneList threads;    ///< Lanes served by this access.
};

/**
 * Subwarp-aware coalescer.
 *
 * Stateless with respect to timing; the simulator owns request timing via
 * the PendingRequestTable. Accesses are emitted grouped by subwarp in
 * increasing sid order, and by block address within a subwarp, which
 * matches hardware that scans the PRT one subwarp at a time.
 */
class Coalescer
{
  public:
    /** @p block_size is the coalescing granularity in bytes (power of 2). */
    explicit Coalescer(std::uint32_t block_size);

    /** Coalescing granularity in bytes. */
    std::uint32_t blockSize() const { return blockBytes; }

    /** Block-align an address. */
    Addr blockAlign(Addr addr) const { return addr & ~Addr{blockBytes - 1}; }

    /**
     * Coalesce one warp instruction's requests under @p partition.
     * Requests crossing a block boundary generate one access per touched
     * block. Inactive lanes are ignored.
     */
    std::vector<CoalescedAccess>
    coalesce(std::span<const LaneRequest> requests,
             const SubwarpPartition &partition) const;

    /**
     * As coalesce(), but reusing @p out (cleared first): a caller that
     * keeps its output buffer alive pays no allocation once the buffer
     * has grown to its working size.
     */
    void coalesceInto(std::span<const LaneRequest> requests,
                      const SubwarpPartition &partition,
                      std::vector<CoalescedAccess> &out) const;

    /** Count-only variant (faster; used by attack-side modeling). */
    unsigned countAccesses(std::span<const LaneRequest> requests,
                           const SubwarpPartition &partition) const;

  private:
    /**
     * Unbounded fallback for inputs overflowing coalesceInto()'s inline
     * scratch; emits the identical access list via struct scanning.
     */
    void coalesceSlow(std::span<const LaneRequest> requests,
                      const SubwarpPartition &partition,
                      std::vector<CoalescedAccess> &out) const;

    std::uint32_t blockBytes;
};

} // namespace rcoal::core

#endif // RCOAL_CORE_COALESCER_HPP
