/**
 * @file
 * Coalescing-defense policy description.
 *
 * A CoalescingPolicy selects one of the paper's mechanisms and its
 * parameters:
 *  - Baseline:  one subwarp per warp (the attackable GPGPU-Sim default).
 *  - Disabled:  no coalescing at all (every active thread issues its own
 *               access) - the heavy-handed defense of Section III.
 *  - FSS:       fixed-sized subwarps, num-subwarp = M.
 *  - RSS:       random-sized subwarps (skewed or normal sizing).
 * The RTS overlay (random thread-to-subwarp allocation) applies on top of
 * FSS or RSS, yielding FSS+RTS and RSS+RTS.
 */

#ifndef RCOAL_CORE_POLICY_HPP
#define RCOAL_CORE_POLICY_HPP

#include <string>

namespace rcoal::core {

/** Top-level mechanism selector. */
enum class Mechanism
{
    Baseline, ///< Single subwarp, in-order threads (num-subwarp = 1).
    Disabled, ///< Coalescing disabled entirely (32 accesses per warp).
    Fss,      ///< Fixed-sized subwarps.
    Rss,      ///< Random-sized subwarps.
};

/** Subwarp size distribution used by RSS (Section IV-B / Fig. 9). */
enum class RssSizing
{
    Skewed, ///< Uniform over all compositions of N into M positive parts.
    Normal, ///< iid Normal(N/M, sigma), rounded and rebalanced to sum N.
};

/**
 * Full policy description. Plain data; validated by validate().
 */
struct CoalescingPolicy
{
    Mechanism mechanism = Mechanism::Baseline;

    /** Number of subwarps M (ignored for Baseline/Disabled). */
    unsigned numSubwarps = 1;

    /** RTS overlay: randomize the thread elements of each subwarp. */
    bool randomThreads = false;

    /** Sizing distribution (RSS only). */
    RssSizing sizing = RssSizing::Skewed;

    /** Standard deviation for RssSizing::Normal. */
    double normalSigma = 1.0;

    /** Baseline policy (num-subwarp = 1, no randomization). */
    static CoalescingPolicy baseline();

    /** Coalescing disabled. */
    static CoalescingPolicy disabled();

    /** FSS with M subwarps; @p rts adds the RTS overlay. */
    static CoalescingPolicy fss(unsigned m, bool rts = false);

    /** RSS with M subwarps; @p rts adds the RTS overlay. */
    static CoalescingPolicy rss(unsigned m, bool rts = false,
                                RssSizing sizing = RssSizing::Skewed);

    /** Human-readable name, e.g. "FSS+RTS(M=8)". */
    std::string name() const;

    /** Panics if the policy is internally inconsistent for @p warp_size. */
    void validate(unsigned warp_size) const;

    /** True when any randomness is involved (RSS sizing or RTS). */
    bool isRandomized() const;

    bool operator==(const CoalescingPolicy &other) const = default;
};

} // namespace rcoal::core

#endif // RCOAL_CORE_POLICY_HPP
