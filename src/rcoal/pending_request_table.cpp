/**
 * @file
 * PendingRequestTable implementation.
 */

#include "rcoal/core/pending_request_table.hpp"

#include <algorithm>
#include <bit>

#include "rcoal/common/logging.hpp"

namespace rcoal::core {

PendingRequestTable::PendingRequestTable(std::size_t entries)
    : table(entries), sidNext(entries, kNone), sidPrev(entries, kNone)
{
    RCOAL_ASSERT(entries > 0, "PRT must have at least one entry");
    RCOAL_ASSERT(entries < kNone, "PRT too large for 32-bit links");
    freeList.reserve(entries);
    for (std::size_t i = entries; i-- > 0;)
        freeList.push_back(i);
}

std::optional<std::size_t>
PendingRequestTable::allocate(ThreadId tid, Addr base_addr,
                              std::uint32_t offset, std::uint32_t size,
                              SubwarpId sid)
{
    if (freeList.empty())
        return std::nullopt;
    const std::size_t i = freeList.back();
    freeList.pop_back();
    RCOAL_ASSERT(!table[i].valid, "free list returned a live entry");
    table[i] = {true, tid, base_addr, offset, size, sid, false};
    ++used;
    // Link at the head of the sid's intrusive list (O(1)).
    if (sid >= sidHead.size())
        sidHead.resize(static_cast<std::size_t>(sid) + 1, kNone);
    const std::uint32_t head = sidHead[sid];
    sidNext[i] = head;
    sidPrev[i] = kNone;
    if (head != kNone)
        sidPrev[head] = static_cast<std::uint32_t>(i);
    sidHead[sid] = static_cast<std::uint32_t>(i);
    return i;
}

void
PendingRequestTable::markPending(std::size_t index)
{
    RCOAL_ASSERT(index < table.size() && table[index].valid,
                 "markPending on invalid entry %zu", index);
    table[index].pending = true;
}

void
PendingRequestTable::unlinkFromSid(std::size_t index)
{
    const std::uint32_t next = sidNext[index];
    const std::uint32_t prev = sidPrev[index];
    if (prev != kNone)
        sidNext[prev] = next;
    else
        sidHead[table[index].sid] = next;
    if (next != kNone)
        sidPrev[next] = prev;
    sidNext[index] = kNone;
    sidPrev[index] = kNone;
}

void
PendingRequestTable::release(std::size_t index)
{
    RCOAL_ASSERT(index < table.size() && table[index].valid,
                 "release of invalid entry %zu", index);
    unlinkFromSid(index);
    table[index] = PrtEntry{};
    freeList.push_back(index);
    --used;
}

const PrtEntry &
PendingRequestTable::entry(std::size_t index) const
{
    RCOAL_ASSERT(index < table.size() && table[index].valid,
                 "access to invalid entry %zu", index);
    return table[index];
}

std::vector<std::size_t>
PendingRequestTable::entriesOfSubwarp(SubwarpId sid) const
{
    std::vector<std::size_t> out;
    forEachOfSubwarp(sid, [&out](std::size_t i, const PrtEntry &) {
        out.push_back(i);
    });
    // The list is most-recent-first; callers expect table order.
    std::sort(out.begin(), out.end());
    return out;
}

void
PendingRequestTable::reset()
{
    RCOAL_ASSERT(used == 0, "PRT reset with %zu live entries", used);
    table.assign(table.size(), PrtEntry{});
    freeList.clear();
    for (std::size_t i = table.size(); i-- > 0;)
        freeList.push_back(i);
    sidHead.clear();
    sidNext.assign(table.size(), kNone);
    sidPrev.assign(table.size(), kNone);
}

void
PendingRequestTable::saveState(common::ArenaWriter &w) const
{
    w.pod(static_cast<std::uint64_t>(table.size()));
    for (const PrtEntry &e : table) {
        w.pod(static_cast<std::uint8_t>(e.valid));
        w.pod(e.tid);
        w.pod(e.baseAddr);
        w.pod(e.offset);
        w.pod(e.size);
        w.pod(e.sid);
        w.pod(static_cast<std::uint8_t>(e.pending));
    }
    w.podVector(freeList);
    w.pod(static_cast<std::uint64_t>(used));
    w.podVector(sidHead);
    w.podVector(sidNext);
    w.podVector(sidPrev);
}

void
PendingRequestTable::restoreState(common::ArenaReader &r)
{
    const auto entries = r.take<std::uint64_t>();
    RCOAL_ASSERT(entries == table.size(),
                 "PRT capacity mismatch: snapshot has %llu, table has %zu",
                 static_cast<unsigned long long>(entries), table.size());
    for (PrtEntry &e : table) {
        e.valid = r.take<std::uint8_t>() != 0;
        r.pod(e.tid);
        r.pod(e.baseAddr);
        r.pod(e.offset);
        r.pod(e.size);
        r.pod(e.sid);
        e.pending = r.take<std::uint8_t>() != 0;
    }
    r.podVector(freeList);
    used = static_cast<std::size_t>(r.take<std::uint64_t>());
    r.podVector(sidHead);
    r.podVector(sidNext);
    r.podVector(sidPrev);
}

std::size_t
PendingRequestTable::sidFieldBits(unsigned warp_size)
{
    // ceil(log2(warp_size)) bits per thread to name up to warp_size
    // subwarps (5 bits for a 32-thread warp, Section IV-D).
    return static_cast<std::size_t>(
        std::bit_width(static_cast<unsigned>(warp_size - 1)));
}

} // namespace rcoal::core
