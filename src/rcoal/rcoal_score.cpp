/**
 * @file
 * RCoal_Score implementation.
 */

#include "rcoal/core/rcoal_score.hpp"

#include <cmath>
#include <limits>

#include "rcoal/common/logging.hpp"

namespace rcoal::core {

double
securityStrength(double average_correlation)
{
    const double r = std::abs(average_correlation);
    if (r < 1e-12)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (r * r);
}

double
rcoalScore(double security, double execution_time, double a, double b)
{
    RCOAL_ASSERT(execution_time > 0.0, "execution time must be positive");
    RCOAL_ASSERT(security >= 0.0, "security strength must be non-negative");
    return std::pow(security, a) / std::pow(execution_time, b);
}

} // namespace rcoal::core
