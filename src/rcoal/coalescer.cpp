/**
 * @file
 * Coalescer implementation.
 */

#include "rcoal/core/coalescer.hpp"

#include <algorithm>
#include <tuple>
#include <set>

#include "rcoal/common/logging.hpp"

namespace rcoal::core {

Coalescer::Coalescer(std::uint32_t block_size) : blockBytes(block_size)
{
    RCOAL_ASSERT(block_size > 0 && (block_size & (block_size - 1)) == 0,
                 "block size must be a power of two, got %u", block_size);
}

std::vector<CoalescedAccess>
Coalescer::coalesce(std::span<const LaneRequest> requests,
                    const SubwarpPartition &partition) const
{
    // Warp-sized inputs produce at most a few dozen accesses, so a
    // linear scan over the output beats a map (no node allocations on
    // the simulator's hottest path).
    std::vector<CoalescedAccess> out;
    out.reserve(requests.size());
    for (const LaneRequest &req : requests) {
        if (!req.active)
            continue;
        const SubwarpId sid = partition.subwarpOf(req.tid);
        RCOAL_ASSERT(req.size > 0, "zero-size request from tid %u",
                     req.tid);
        const Addr first = blockAlign(req.addr);
        const Addr last = blockAlign(req.addr + req.size - 1);
        for (Addr block = first; block <= last; block += blockBytes) {
            CoalescedAccess *slot = nullptr;
            for (auto &existing : out) {
                if (existing.sid == sid && existing.blockAddr == block) {
                    slot = &existing;
                    break;
                }
            }
            if (slot == nullptr) {
                out.push_back(CoalescedAccess{block, sid, {}});
                slot = &out.back();
            }
            slot->threads.push_back(req.tid);
        }
    }
    // Hardware scans the PRT one subwarp at a time: emit grouped by sid,
    // then by block address (also keeps output deterministic).
    std::sort(out.begin(), out.end(),
              [](const CoalescedAccess &a, const CoalescedAccess &b) {
                  return std::tie(a.sid, a.blockAddr) <
                         std::tie(b.sid, b.blockAddr);
              });
    return out;
}

unsigned
Coalescer::countAccesses(std::span<const LaneRequest> requests,
                         const SubwarpPartition &partition) const
{
    std::set<std::pair<SubwarpId, Addr>> blocks;
    for (const LaneRequest &req : requests) {
        if (!req.active)
            continue;
        const SubwarpId sid = partition.subwarpOf(req.tid);
        const Addr first = blockAlign(req.addr);
        const Addr last = blockAlign(req.addr + req.size - 1);
        for (Addr block = first; block <= last; block += blockBytes)
            blocks.insert({sid, block});
    }
    return static_cast<unsigned>(blocks.size());
}

} // namespace rcoal::core
