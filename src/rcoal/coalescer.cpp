/**
 * @file
 * Coalescer implementation.
 */

#include "rcoal/core/coalescer.hpp"

#include <algorithm>
#include <tuple>
#include <set>

#include "rcoal/common/logging.hpp"

namespace rcoal::core {

Coalescer::Coalescer(std::uint32_t block_size) : blockBytes(block_size)
{
    RCOAL_ASSERT(block_size > 0 && (block_size & (block_size - 1)) == 0,
                 "block size must be a power of two, got %u", block_size);
}

std::vector<CoalescedAccess>
Coalescer::coalesce(std::span<const LaneRequest> requests,
                    const SubwarpPartition &partition) const
{
    std::vector<CoalescedAccess> out;
    coalesceInto(requests, partition, out);
    return out;
}

void
Coalescer::coalesceInto(std::span<const LaneRequest> requests,
                        const SubwarpPartition &partition,
                        std::vector<CoalescedAccess> &out) const
{
    // Hot path: dedup against compact parallel key arrays instead of
    // scanning CoalescedAccess structs (whose inline lane lists make
    // each element span a cache line or more), sort 4-byte indices
    // instead of whole structs, and write each output element exactly
    // once in its final position. Fully divergent warps under
    // saturation hit the worst case (one access per lane) millions of
    // times per run.
    constexpr std::size_t kMaxAccesses = 128;
    constexpr std::size_t kMaxLanes = 256;
    std::array<Addr, kMaxAccesses> keyBlock;
    std::array<SubwarpId, kMaxAccesses> keySid;
    std::array<std::uint32_t, kMaxLanes> laneAcc;
    std::array<ThreadId, kMaxLanes> laneTid;
    std::size_t n = 0;
    std::size_t lanes = 0;
    for (const LaneRequest &req : requests) {
        if (!req.active)
            continue;
        const SubwarpId sid = partition.subwarpOf(req.tid);
        RCOAL_ASSERT(req.size > 0, "zero-size request from tid %u",
                     req.tid);
        const Addr first = blockAlign(req.addr);
        const Addr last = blockAlign(req.addr + req.size - 1);
        for (Addr block = first; block <= last; block += blockBytes) {
            std::size_t i = 0;
            while (i < n && !(keySid[i] == sid && keyBlock[i] == block))
                ++i;
            if (i == n) {
                if (n == kMaxAccesses || lanes == kMaxLanes) {
                    coalesceSlow(requests, partition, out);
                    return;
                }
                keyBlock[n] = block;
                keySid[n] = sid;
                ++n;
            } else if (lanes == kMaxLanes) {
                coalesceSlow(requests, partition, out);
                return;
            }
            laneAcc[lanes] = static_cast<std::uint32_t>(i);
            laneTid[lanes] = req.tid;
            ++lanes;
        }
    }
    // Hardware scans the PRT one subwarp at a time: emit grouped by sid,
    // then by block address (also keeps output deterministic). Keys are
    // unique, so the order is total.
    std::array<std::uint32_t, kMaxAccesses> order;
    for (std::size_t i = 0; i < n; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n),
              [&](std::uint32_t a, std::uint32_t b) {
                  return std::tie(keySid[a], keyBlock[a]) <
                         std::tie(keySid[b], keyBlock[b]);
              });
    std::array<std::uint32_t, kMaxAccesses> rank;
    for (std::size_t k = 0; k < n; ++k)
        rank[order[k]] = static_cast<std::uint32_t>(k);
    out.clear();
    out.reserve(n);
    for (std::size_t k = 0; k < n; ++k)
        out.push_back(CoalescedAccess{keyBlock[order[k]], keySid[order[k]],
                                      {}});
    // Lane entries were recorded in request order, so per-access lane
    // lists come out in the same order the struct-scanning path built.
    for (std::size_t j = 0; j < lanes; ++j)
        out[rank[laneAcc[j]]].threads.push_back(laneTid[j]);
}

void
Coalescer::coalesceSlow(std::span<const LaneRequest> requests,
                        const SubwarpPartition &partition,
                        std::vector<CoalescedAccess> &out) const
{
    // Unbounded fallback for inputs that overflow coalesceInto()'s
    // inline scratch (many-block requests in stress tests); emits the
    // identical access list.
    out.clear();
    out.reserve(requests.size());
    for (const LaneRequest &req : requests) {
        if (!req.active)
            continue;
        const SubwarpId sid = partition.subwarpOf(req.tid);
        RCOAL_ASSERT(req.size > 0, "zero-size request from tid %u",
                     req.tid);
        const Addr first = blockAlign(req.addr);
        const Addr last = blockAlign(req.addr + req.size - 1);
        for (Addr block = first; block <= last; block += blockBytes) {
            CoalescedAccess *slot = nullptr;
            for (auto &existing : out) {
                if (existing.sid == sid && existing.blockAddr == block) {
                    slot = &existing;
                    break;
                }
            }
            if (slot == nullptr) {
                out.push_back(CoalescedAccess{block, sid, {}});
                slot = &out.back();
            }
            slot->threads.push_back(req.tid);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const CoalescedAccess &a, const CoalescedAccess &b) {
                  return std::tie(a.sid, a.blockAddr) <
                         std::tie(b.sid, b.blockAddr);
              });
}

unsigned
Coalescer::countAccesses(std::span<const LaneRequest> requests,
                         const SubwarpPartition &partition) const
{
    std::set<std::pair<SubwarpId, Addr>> blocks;
    for (const LaneRequest &req : requests) {
        if (!req.active)
            continue;
        const SubwarpId sid = partition.subwarpOf(req.tid);
        const Addr first = blockAlign(req.addr);
        const Addr last = blockAlign(req.addr + req.size - 1);
        for (Addr block = first; block <= last; block += blockBytes)
            blocks.insert({sid, block});
    }
    return static_cast<unsigned>(blocks.size());
}

} // namespace rcoal::core
