/**
 * @file
 * CoalescingPolicy helpers.
 */

#include "rcoal/core/policy.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::core {

CoalescingPolicy
CoalescingPolicy::baseline()
{
    return {};
}

CoalescingPolicy
CoalescingPolicy::disabled()
{
    CoalescingPolicy p;
    p.mechanism = Mechanism::Disabled;
    return p;
}

CoalescingPolicy
CoalescingPolicy::fss(unsigned m, bool rts)
{
    CoalescingPolicy p;
    p.mechanism = Mechanism::Fss;
    p.numSubwarps = m;
    p.randomThreads = rts;
    return p;
}

CoalescingPolicy
CoalescingPolicy::rss(unsigned m, bool rts, RssSizing sizing)
{
    CoalescingPolicy p;
    p.mechanism = Mechanism::Rss;
    p.numSubwarps = m;
    p.randomThreads = rts;
    p.sizing = sizing;
    return p;
}

std::string
CoalescingPolicy::name() const
{
    switch (mechanism) {
      case Mechanism::Baseline:
        return "Baseline";
      case Mechanism::Disabled:
        return "NoCoalescing";
      case Mechanism::Fss:
        return strprintf("FSS%s(M=%u)", randomThreads ? "+RTS" : "",
                         numSubwarps);
      case Mechanism::Rss:
        return strprintf("RSS%s(M=%u%s)", randomThreads ? "+RTS" : "",
                         numSubwarps,
                         sizing == RssSizing::Normal ? ",normal" : "");
    }
    panic("invalid mechanism");
}

void
CoalescingPolicy::validate(unsigned warp_size) const
{
    switch (mechanism) {
      case Mechanism::Baseline:
      case Mechanism::Disabled:
        return;
      case Mechanism::Fss:
      case Mechanism::Rss:
        if (numSubwarps < 1 || numSubwarps > warp_size) {
            fatal("num-subwarp must be in [1, %u], got %u", warp_size,
                  numSubwarps);
        }
        if (mechanism == Mechanism::Rss &&
            sizing == RssSizing::Normal && normalSigma < 0.0) {
            fatal("normalSigma must be non-negative");
        }
        return;
    }
    panic("invalid mechanism");
}

bool
CoalescingPolicy::isRandomized() const
{
    if (randomThreads)
        return true;
    return mechanism == Mechanism::Rss && numSubwarps > 1;
}

} // namespace rcoal::core
