/**
 * @file
 * SubwarpPartition implementation.
 */

#include "rcoal/core/subwarp.hpp"

#include <array>
#include <cstdint>
#include <numeric>

#include "rcoal/common/logging.hpp"

namespace rcoal::core {

SubwarpPartition::SubwarpPartition(std::vector<SubwarpId> sid_of_thread,
                                   unsigned num_subwarps)
    : sid(std::move(sid_of_thread)), m(num_subwarps)
{
    validate();
}

SubwarpPartition
SubwarpPartition::single(unsigned warp_size)
{
    return {std::vector<SubwarpId>(warp_size, 0), 1};
}

SubwarpPartition
SubwarpPartition::fromSizes(const std::vector<unsigned> &sizes)
{
    std::vector<SubwarpId> sid;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        for (unsigned i = 0; i < sizes[s]; ++i)
            sid.push_back(static_cast<SubwarpId>(s));
    }
    return {std::move(sid), static_cast<unsigned>(sizes.size())};
}

SubwarpId
SubwarpPartition::subwarpOf(ThreadId tid) const
{
    RCOAL_ASSERT(tid < sid.size(), "tid %u out of range", tid);
    return sid[tid];
}

std::vector<ThreadId>
SubwarpPartition::threadsOf(SubwarpId s) const
{
    std::vector<ThreadId> out;
    for (ThreadId tid = 0; tid < sid.size(); ++tid) {
        if (sid[tid] == s)
            out.push_back(tid);
    }
    return out;
}

std::vector<unsigned>
SubwarpPartition::sizes() const
{
    std::vector<unsigned> out(m, 0);
    for (SubwarpId s : sid)
        ++out[s];
    return out;
}

bool
SubwarpPartition::isInOrder() const
{
    for (std::size_t i = 1; i < sid.size(); ++i) {
        if (sid[i] < sid[i - 1])
            return false;
    }
    return true;
}

void
SubwarpPartition::validate() const
{
    RCOAL_ASSERT(!sid.empty(), "empty partition");
    RCOAL_ASSERT(m >= 1 && m <= sid.size(),
                 "numSubwarps %u invalid for warp of %zu threads", m,
                 sid.size());
    // Constructed on the simulator's hot path: track non-emptiness with
    // a stack bitmask for the common (m <= 128) case.
    if (m <= 128) {
        std::array<std::uint64_t, 2> seen{};
        for (SubwarpId s : sid) {
            RCOAL_ASSERT(s < m, "sid %u out of range (M=%u)", s, m);
            seen[s >> 6] |= std::uint64_t{1} << (s & 63);
        }
        for (unsigned s = 0; s < m; ++s) {
            RCOAL_ASSERT(seen[s >> 6] & (std::uint64_t{1} << (s & 63)),
                         "subwarp %u is empty", s);
        }
        return;
    }
    std::vector<unsigned> count(m, 0);
    for (SubwarpId s : sid) {
        RCOAL_ASSERT(s < m, "sid %u out of range (M=%u)", s, m);
        ++count[s];
    }
    for (unsigned s = 0; s < m; ++s)
        RCOAL_ASSERT(count[s] > 0, "subwarp %u is empty", s);
}

} // namespace rcoal::core
