/**
 * @file
 * Reference AES implementation.
 *
 * State layout: the 16-byte block maps linearly onto the FIPS-197 state
 * in column-major order, i.e. byte i of the block is state element
 * (row = i % 4, column = i / 4). All transforms below use that layout.
 */

#include "rcoal/aes/aes.hpp"

#include "rcoal/aes/galois.hpp"
#include "rcoal/aes/sbox.hpp"
#include "rcoal/common/logging.hpp"

namespace rcoal::aes {

void
subBytes(Block &state)
{
    for (auto &b : state)
        b = subByte(b);
}

void
invSubBytes(Block &state)
{
    for (auto &b : state)
        b = invSubByte(b);
}

namespace {

inline std::size_t
idx(unsigned row, unsigned col)
{
    return 4 * col + row;
}

} // namespace

void
shiftRows(Block &state)
{
    const Block src = state;
    for (unsigned r = 1; r < 4; ++r) {
        for (unsigned c = 0; c < 4; ++c)
            state[idx(r, c)] = src[idx(r, (c + r) % 4)];
    }
}

void
invShiftRows(Block &state)
{
    const Block src = state;
    for (unsigned r = 1; r < 4; ++r) {
        for (unsigned c = 0; c < 4; ++c)
            state[idx(r, (c + r) % 4)] = src[idx(r, c)];
    }
}

void
mixColumns(Block &state)
{
    for (unsigned c = 0; c < 4; ++c) {
        const std::uint8_t a0 = state[idx(0, c)];
        const std::uint8_t a1 = state[idx(1, c)];
        const std::uint8_t a2 = state[idx(2, c)];
        const std::uint8_t a3 = state[idx(3, c)];
        state[idx(0, c)] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3;
        state[idx(1, c)] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3;
        state[idx(2, c)] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3);
        state[idx(3, c)] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2);
    }
}

void
invMixColumns(Block &state)
{
    for (unsigned c = 0; c < 4; ++c) {
        const std::uint8_t a0 = state[idx(0, c)];
        const std::uint8_t a1 = state[idx(1, c)];
        const std::uint8_t a2 = state[idx(2, c)];
        const std::uint8_t a3 = state[idx(3, c)];
        state[idx(0, c)] =
            gfMul(a0, 0x0e) ^ gfMul(a1, 0x0b) ^ gfMul(a2, 0x0d) ^
            gfMul(a3, 0x09);
        state[idx(1, c)] =
            gfMul(a0, 0x09) ^ gfMul(a1, 0x0e) ^ gfMul(a2, 0x0b) ^
            gfMul(a3, 0x0d);
        state[idx(2, c)] =
            gfMul(a0, 0x0d) ^ gfMul(a1, 0x09) ^ gfMul(a2, 0x0e) ^
            gfMul(a3, 0x0b);
        state[idx(3, c)] =
            gfMul(a0, 0x0b) ^ gfMul(a1, 0x0d) ^ gfMul(a2, 0x09) ^
            gfMul(a3, 0x0e);
    }
}

void
addRoundKey(Block &state, const Block &round_key)
{
    for (std::size_t i = 0; i < state.size(); ++i)
        state[i] ^= round_key[i];
}

Aes::Aes(std::span<const std::uint8_t> key)
    : ks(key, keySizeForLength(key.size()))
{
}

Block
Aes::encryptBlock(const Block &plaintext) const
{
    Block state = plaintext;
    addRoundKey(state, ks.roundKey(0));
    const unsigned nr = ks.rounds();
    for (unsigned round = 1; round < nr; ++round) {
        subBytes(state);
        shiftRows(state);
        mixColumns(state);
        addRoundKey(state, ks.roundKey(round));
    }
    subBytes(state);
    shiftRows(state);
    addRoundKey(state, ks.roundKey(nr));
    return state;
}

Block
Aes::decryptBlock(const Block &ciphertext) const
{
    Block state = ciphertext;
    const unsigned nr = ks.rounds();
    addRoundKey(state, ks.roundKey(nr));
    invShiftRows(state);
    invSubBytes(state);
    for (unsigned round = nr - 1; round >= 1; --round) {
        addRoundKey(state, ks.roundKey(round));
        invMixColumns(state);
        invShiftRows(state);
        invSubBytes(state);
    }
    addRoundKey(state, ks.roundKey(0));
    return state;
}

std::vector<Block>
Aes::encryptEcb(std::span<const Block> plaintext) const
{
    std::vector<Block> out;
    out.reserve(plaintext.size());
    for (const Block &block : plaintext)
        out.push_back(encryptBlock(block));
    return out;
}

} // namespace rcoal::aes
