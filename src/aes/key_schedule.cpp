/**
 * @file
 * AES key expansion (FIPS-197 section 5.2) and AES-128 inversion.
 */

#include "rcoal/aes/key_schedule.hpp"

#include "rcoal/aes/sbox.hpp"
#include "rcoal/common/logging.hpp"

namespace rcoal::aes {

namespace {

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

std::uint32_t
subWord(std::uint32_t w)
{
    return (static_cast<std::uint32_t>(subByte(w >> 24)) << 24) |
           (static_cast<std::uint32_t>(subByte((w >> 16) & 0xff)) << 16) |
           (static_cast<std::uint32_t>(subByte((w >> 8) & 0xff)) << 8) |
           static_cast<std::uint32_t>(subByte(w & 0xff));
}

/** Round constants Rcon[1..10] in the high byte. */
constexpr std::array<std::uint32_t, 11> kRcon = {
    0x00000000, // unused index 0
    0x01000000, 0x02000000, 0x04000000, 0x08000000, 0x10000000,
    0x20000000, 0x40000000, 0x80000000, 0x1b000000, 0x36000000,
};

} // namespace

unsigned
keyWords(KeySize size)
{
    switch (size) {
      case KeySize::Aes128:
        return 4;
      case KeySize::Aes192:
        return 6;
      case KeySize::Aes256:
        return 8;
    }
    panic("invalid key size");
}

unsigned
numRounds(KeySize size)
{
    return keyWords(size) + 6;
}

unsigned
keyBytes(KeySize size)
{
    return keyWords(size) * 4;
}

KeySize
keySizeForLength(std::size_t bytes)
{
    switch (bytes) {
      case 16:
        return KeySize::Aes128;
      case 24:
        return KeySize::Aes192;
      case 32:
        return KeySize::Aes256;
      default:
        fatal("unsupported AES key length: %zu bytes", bytes);
    }
}

KeySchedule::KeySchedule(std::span<const std::uint8_t> key, KeySize key_size)
    : size(key_size), nr(numRounds(key_size))
{
    const unsigned nk = keyWords(size);
    RCOAL_ASSERT(key.size() == keyBytes(size),
                 "AES key must be %u bytes, got %zu", keyBytes(size),
                 key.size());

    const unsigned total = 4 * (nr + 1);
    w.resize(total);
    for (unsigned i = 0; i < nk; ++i) {
        w[i] = (static_cast<std::uint32_t>(key[4 * i]) << 24) |
               (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
               (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
               static_cast<std::uint32_t>(key[4 * i + 3]);
    }
    for (unsigned i = nk; i < total; ++i) {
        std::uint32_t temp = w[i - 1];
        if (i % nk == 0)
            temp = subWord(rotWord(temp)) ^ kRcon[i / nk];
        else if (nk > 6 && i % nk == 4)
            temp = subWord(temp);
        w[i] = w[i - nk] ^ temp;
    }
}

Block
KeySchedule::roundKey(unsigned round) const
{
    RCOAL_ASSERT(round <= nr, "round %u out of range (Nr=%u)", round, nr);
    Block out{};
    for (unsigned c = 0; c < 4; ++c) {
        const std::uint32_t word = w[4 * round + c];
        out[4 * c] = static_cast<std::uint8_t>(word >> 24);
        out[4 * c + 1] = static_cast<std::uint8_t>(word >> 16);
        out[4 * c + 2] = static_cast<std::uint8_t>(word >> 8);
        out[4 * c + 3] = static_cast<std::uint8_t>(word);
    }
    return out;
}

Block
invertFromLastRoundKey(const Block &last_round_key)
{
    // AES-128: 44 schedule words; we know w[40..43] and walk backwards
    // using w[i-4] = w[i] ^ f(w[i-1]).
    std::array<std::uint32_t, 44> w{};
    for (unsigned c = 0; c < 4; ++c) {
        w[40 + c] =
            (static_cast<std::uint32_t>(last_round_key[4 * c]) << 24) |
            (static_cast<std::uint32_t>(last_round_key[4 * c + 1]) << 16) |
            (static_cast<std::uint32_t>(last_round_key[4 * c + 2]) << 8) |
            static_cast<std::uint32_t>(last_round_key[4 * c + 3]);
    }
    for (unsigned i = 43; i >= 4; --i) {
        std::uint32_t temp = w[i - 1];
        if (i % 4 == 0)
            temp = subWord(rotWord(temp)) ^ kRcon[i / 4];
        w[i - 4] = w[i] ^ temp;
    }

    Block key{};
    for (unsigned c = 0; c < 4; ++c) {
        key[4 * c] = static_cast<std::uint8_t>(w[c] >> 24);
        key[4 * c + 1] = static_cast<std::uint8_t>(w[c] >> 16);
        key[4 * c + 2] = static_cast<std::uint8_t>(w[c] >> 8);
        key[4 * c + 3] = static_cast<std::uint8_t>(w[c]);
    }
    return key;
}

} // namespace rcoal::aes
