/**
 * @file
 * T-table AES implementation.
 */

#include "rcoal/aes/ttable.hpp"

#include "rcoal/aes/galois.hpp"
#include "rcoal/aes/sbox.hpp"
#include "rcoal/common/logging.hpp"

namespace rcoal::aes {

namespace {

inline std::uint32_t
ror32(std::uint32_t x, int k)
{
    return (x >> k) | (x << (32 - k));
}

struct Tables
{
    std::array<std::array<std::uint32_t, 256>, 5> t;

    Tables()
    {
        for (int i = 0; i < 256; ++i) {
            const std::uint8_t s = subByte(static_cast<std::uint8_t>(i));
            const std::uint32_t s2 = gfMul(s, 2);
            const std::uint32_t s3 = gfMul(s, 3);
            const std::uint32_t te0 =
                (s2 << 24) | (static_cast<std::uint32_t>(s) << 16) |
                (static_cast<std::uint32_t>(s) << 8) | s3;
            t[0][static_cast<std::size_t>(i)] = te0;
            t[1][static_cast<std::size_t>(i)] = ror32(te0, 8);
            t[2][static_cast<std::size_t>(i)] = ror32(te0, 16);
            t[3][static_cast<std::size_t>(i)] = ror32(te0, 24);
            t[4][static_cast<std::size_t>(i)] =
                (static_cast<std::uint32_t>(s) << 24) |
                (static_cast<std::uint32_t>(s) << 16) |
                (static_cast<std::uint32_t>(s) << 8) | s;
        }
    }
};

const Tables &
tables()
{
    static const Tables instance;
    return instance;
}

inline std::uint32_t
loadWord(const Block &block, unsigned word)
{
    return (static_cast<std::uint32_t>(block[4 * word]) << 24) |
           (static_cast<std::uint32_t>(block[4 * word + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * word + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * word + 3]);
}

inline void
storeWord(Block &block, unsigned word, std::uint32_t value)
{
    block[4 * word] = static_cast<std::uint8_t>(value >> 24);
    block[4 * word + 1] = static_cast<std::uint8_t>(value >> 16);
    block[4 * word + 2] = static_cast<std::uint8_t>(value >> 8);
    block[4 * word + 3] = static_cast<std::uint8_t>(value);
}

} // namespace

const std::array<std::uint32_t, 256> &
TTableAes::table(unsigned id)
{
    RCOAL_ASSERT(id <= kLastRoundTable, "table id %u out of range", id);
    return tables().t[id];
}

TTableAes::TTableAes(std::span<const std::uint8_t> key)
    : ks(key, keySizeForLength(key.size()))
{
}

TTableAes::TTableAes(KeySchedule schedule) : ks(std::move(schedule)) {}

template <bool Traced>
Block
TTableAes::encryptImpl(const Block &plaintext,
                       std::vector<TableLookup> *trace) const
{
    const auto &tb = tables().t;
    const auto &w = ks.words();
    const unsigned nr = ks.rounds();

    std::array<std::uint32_t, 4> s{};
    for (unsigned i = 0; i < 4; ++i)
        s[i] = loadWord(plaintext, i) ^ w[i];

    const auto record = [&](unsigned round, unsigned tab, std::uint8_t ix) {
        if constexpr (Traced) {
            trace->push_back({static_cast<std::uint8_t>(round),
                              static_cast<std::uint8_t>(tab), ix});
        }
    };

    std::array<std::uint32_t, 4> t{};
    for (unsigned round = 1; round < nr; ++round) {
        for (unsigned i = 0; i < 4; ++i) {
            const std::uint8_t b0 =
                static_cast<std::uint8_t>(s[i] >> 24);
            const std::uint8_t b1 =
                static_cast<std::uint8_t>(s[(i + 1) % 4] >> 16);
            const std::uint8_t b2 =
                static_cast<std::uint8_t>(s[(i + 2) % 4] >> 8);
            const std::uint8_t b3 =
                static_cast<std::uint8_t>(s[(i + 3) % 4]);
            record(round, 0, b0);
            record(round, 1, b1);
            record(round, 2, b2);
            record(round, 3, b3);
            t[i] = tb[0][b0] ^ tb[1][b1] ^ tb[2][b2] ^ tb[3][b3] ^
                   w[4 * round + i];
        }
        s = t;
    }

    // Last round: T4 lookups, one per output byte, issued in ciphertext
    // byte order so trace position j corresponds to ciphertext byte j.
    Block out{};
    for (unsigned i = 0; i < 4; ++i) {
        const std::uint8_t b0 = static_cast<std::uint8_t>(s[i] >> 24);
        const std::uint8_t b1 =
            static_cast<std::uint8_t>(s[(i + 1) % 4] >> 16);
        const std::uint8_t b2 =
            static_cast<std::uint8_t>(s[(i + 2) % 4] >> 8);
        const std::uint8_t b3 = static_cast<std::uint8_t>(s[(i + 3) % 4]);
        record(nr, kLastRoundTable, b0);
        record(nr, kLastRoundTable, b1);
        record(nr, kLastRoundTable, b2);
        record(nr, kLastRoundTable, b3);
        const std::uint32_t word = (tb[4][b0] & 0xff000000u) ^
                                   (tb[4][b1] & 0x00ff0000u) ^
                                   (tb[4][b2] & 0x0000ff00u) ^
                                   (tb[4][b3] & 0x000000ffu) ^
                                   w[4 * nr + i];
        storeWord(out, i, word);
    }
    return out;
}

Block
TTableAes::encryptBlock(const Block &plaintext) const
{
    return encryptImpl<false>(plaintext, nullptr);
}

Block
TTableAes::encryptBlockTraced(const Block &plaintext,
                              std::vector<TableLookup> &trace) const
{
    trace.reserve(trace.size() + ks.rounds() * kLookupsPerRound);
    return encryptImpl<true>(plaintext, &trace);
}

} // namespace rcoal::aes
