/**
 * @file
 * GF(2^8) arithmetic implementation.
 */

#include "rcoal/aes/galois.hpp"

namespace rcoal::aes {

std::uint8_t
gfXtime(std::uint8_t a)
{
    const std::uint16_t shifted = static_cast<std::uint16_t>(a) << 1;
    return static_cast<std::uint8_t>(
        (shifted & 0xff) ^ ((a & 0x80) ? 0x1b : 0x00));
}

std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t result = 0;
    while (b) {
        if (b & 1)
            result ^= a;
        a = gfXtime(a);
        b >>= 1;
    }
    return result;
}

std::uint8_t
gfInv(std::uint8_t a)
{
    if (a == 0)
        return 0;
    // a^254 = a^-1 in GF(2^8)*: square-and-multiply over the fixed
    // exponent 254 = 0b11111110.
    std::uint8_t result = 1;
    std::uint8_t base = a;
    std::uint8_t exp = 254;
    while (exp) {
        if (exp & 1)
            result = gfMul(result, base);
        base = gfMul(base, base);
        exp >>= 1;
    }
    return result;
}

} // namespace rcoal::aes
