/**
 * @file
 * AES key expansion and its inverse.
 *
 * The baseline timing attack recovers the *last round key*; the key
 * expansion is invertible (Neve & Seifert), so the original cipher key
 * follows immediately. invertFromLastRoundKey() implements that step for
 * AES-128 and is exercised by the end-to-end attack demo.
 */

#ifndef RCOAL_AES_KEY_SCHEDULE_HPP
#define RCOAL_AES_KEY_SCHEDULE_HPP

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace rcoal::aes {

/** A 128-bit block or round key, as 16 bytes. */
using Block = std::array<std::uint8_t, 16>;

/** Supported AES key sizes. */
enum class KeySize
{
    Aes128,
    Aes192,
    Aes256,
};

/** Number of 32-bit words in the cipher key (Nk). */
unsigned keyWords(KeySize size);

/** Number of rounds (Nr): 10, 12 or 14. */
unsigned numRounds(KeySize size);

/** Key length in bytes. */
unsigned keyBytes(KeySize size);

/** KeySize for a raw key length of 16/24/32 bytes; fatal() otherwise. */
KeySize keySizeForLength(std::size_t bytes);

/**
 * Expanded AES key schedule.
 */
class KeySchedule
{
  public:
    /**
     * Expand a cipher key. @p key must hold keyBytes(size) bytes.
     */
    KeySchedule(std::span<const std::uint8_t> key, KeySize size);

    /** Key size this schedule was built for. */
    KeySize keySize() const { return size; }

    /** Number of rounds. */
    unsigned rounds() const { return nr; }

    /**
     * Round key for round @p round in [0, rounds()] as 16 bytes
     * (round 0 is the initial AddRoundKey whitening key).
     */
    Block roundKey(unsigned round) const;

    /** Raw schedule words w[0 .. 4*(Nr+1)-1], big-endian packed. */
    const std::vector<std::uint32_t> &words() const { return w; }

  private:
    KeySize size;
    unsigned nr;
    std::vector<std::uint32_t> w;
};

/**
 * Recover the original AES-128 cipher key from the round-10 (last round)
 * key by running the key expansion backwards.
 */
Block invertFromLastRoundKey(const Block &last_round_key);

} // namespace rcoal::aes

#endif // RCOAL_AES_KEY_SCHEDULE_HPP
