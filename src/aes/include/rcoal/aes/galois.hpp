/**
 * @file
 * GF(2^8) arithmetic with the AES reduction polynomial
 * x^8 + x^4 + x^3 + x + 1 (0x11b).
 */

#ifndef RCOAL_AES_GALOIS_HPP
#define RCOAL_AES_GALOIS_HPP

#include <cstdint>

namespace rcoal::aes {

/** Multiply two field elements in GF(2^8) / 0x11b. */
std::uint8_t gfMul(std::uint8_t a, std::uint8_t b);

/** Multiplicative inverse in GF(2^8); gfInv(0) == 0 by AES convention. */
std::uint8_t gfInv(std::uint8_t a);

/** xtime: multiplication by x (i.e. 0x02). */
std::uint8_t gfXtime(std::uint8_t a);

} // namespace rcoal::aes

#endif // RCOAL_AES_GALOIS_HPP
