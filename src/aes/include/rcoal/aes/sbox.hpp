/**
 * @file
 * The AES S-box and its inverse.
 *
 * Both tables are derived at first use from GF(2^8) arithmetic (the
 * multiplicative inverse followed by the FIPS-197 affine transform)
 * rather than transcribed, eliminating transcription risk; the unit tests
 * pin well-known entries and the FIPS-197 vectors validate the rest.
 */

#ifndef RCOAL_AES_SBOX_HPP
#define RCOAL_AES_SBOX_HPP

#include <array>
#include <cstdint>

namespace rcoal::aes {

/** Forward S-box (SubBytes). */
const std::array<std::uint8_t, 256> &sbox();

/** Inverse S-box (InvSubBytes). */
const std::array<std::uint8_t, 256> &invSbox();

/** Shorthand: forward S-box lookup. */
inline std::uint8_t
subByte(std::uint8_t x)
{
    return sbox()[x];
}

/** Shorthand: inverse S-box lookup. */
inline std::uint8_t
invSubByte(std::uint8_t x)
{
    return invSbox()[x];
}

} // namespace rcoal::aes

#endif // RCOAL_AES_SBOX_HPP
