/**
 * @file
 * GPU-style T-table AES with table-lookup tracing.
 *
 * CUDA AES implementations replace the per-round transforms with lookups
 * into four 1 KiB tables (Te0..Te3) plus a last-round table (T4). The
 * timing attack of Jiang et al. exploits exactly those lookups: the index
 * of the j-th last-round T4 lookup satisfies
 *     index = InvSbox[ciphertext[j] ^ lastRoundKey[j]]      (Eq. 3)
 * This class encrypts blocks the same way and optionally records every
 * table lookup (round, table, index) in issue order, which the workloads
 * module converts into the memory addresses the simulated GPU coalesces.
 */

#ifndef RCOAL_AES_TTABLE_HPP
#define RCOAL_AES_TTABLE_HPP

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "rcoal/aes/key_schedule.hpp"

namespace rcoal::aes {

/** Table identifier of the last-round table (T4). */
inline constexpr unsigned kLastRoundTable = 4;

/** Number of table lookups a thread performs per round. */
inline constexpr unsigned kLookupsPerRound = 16;

/** One recorded T-table lookup. */
struct TableLookup
{
    std::uint8_t round; ///< 1-based round number (1..Nr).
    std::uint8_t table; ///< 0..3 for Te0..Te3; kLastRoundTable for T4.
    std::uint8_t index; ///< Table index (the state byte).
};

/**
 * T-table AES cipher. Produces ciphertext byte-identical to the
 * reference Aes class (enforced by tests).
 */
class TTableAes
{
  public:
    /** Construct from a raw key; key length selects 128/192/256. */
    explicit TTableAes(std::span<const std::uint8_t> key);

    /** Construct from an already expanded schedule. */
    explicit TTableAes(KeySchedule schedule);

    /** Encrypt one block. */
    Block encryptBlock(const Block &plaintext) const;

    /**
     * Encrypt one block, appending every table lookup to @p trace in
     * issue order. Each round contributes kLookupsPerRound entries, and
     * the j-th last-round entry (j in 0..15) is the T4 lookup whose
     * result becomes ciphertext byte j.
     */
    Block encryptBlockTraced(const Block &plaintext,
                             std::vector<TableLookup> &trace) const;

    /** Number of rounds. */
    unsigned rounds() const { return ks.rounds(); }

    /** The expanded key schedule. */
    const KeySchedule &schedule() const { return ks; }

    /** Read-only access to Te0..Te3 and T4 (id = kLastRoundTable). */
    static const std::array<std::uint32_t, 256> &table(unsigned id);

  private:
    template <bool Traced>
    Block encryptImpl(const Block &plaintext,
                      std::vector<TableLookup> *trace) const;

    KeySchedule ks;
};

} // namespace rcoal::aes

#endif // RCOAL_AES_TTABLE_HPP
