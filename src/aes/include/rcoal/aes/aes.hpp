/**
 * @file
 * Reference AES implementation (FIPS-197).
 *
 * This is the straightforward transform-by-transform implementation used
 * as ground truth: the GPU-style T-table implementation (ttable.hpp) must
 * produce byte-identical ciphertext, and the FIPS-197 appendix vectors
 * pin both.
 */

#ifndef RCOAL_AES_AES_HPP
#define RCOAL_AES_AES_HPP

#include <span>
#include <vector>

#include "rcoal/aes/key_schedule.hpp"

namespace rcoal::aes {

/**
 * Reference AES cipher (ECB mode on explicit 16-byte blocks).
 */
class Aes
{
  public:
    /** Construct from a raw key; key length selects 128/192/256. */
    explicit Aes(std::span<const std::uint8_t> key);

    /** Encrypt one 16-byte block. */
    Block encryptBlock(const Block &plaintext) const;

    /** Decrypt one 16-byte block. */
    Block decryptBlock(const Block &ciphertext) const;

    /** Encrypt a sequence of blocks (ECB). */
    std::vector<Block> encryptEcb(std::span<const Block> plaintext) const;

    /** The expanded key schedule. */
    const KeySchedule &schedule() const { return ks; }

  private:
    KeySchedule ks;
};

/** State-level transforms, exposed for unit testing. @{ */
void subBytes(Block &state);
void invSubBytes(Block &state);
void shiftRows(Block &state);
void invShiftRows(Block &state);
void mixColumns(Block &state);
void invMixColumns(Block &state);
void addRoundKey(Block &state, const Block &round_key);
/** @} */

} // namespace rcoal::aes

#endif // RCOAL_AES_AES_HPP
