/**
 * @file
 * S-box construction from GF(2^8) arithmetic.
 */

#include "rcoal/aes/sbox.hpp"

#include "rcoal/aes/galois.hpp"

namespace rcoal::aes {

namespace {

std::uint8_t
rotl8(std::uint8_t x, int k)
{
    return static_cast<std::uint8_t>((x << k) | (x >> (8 - k)));
}

std::array<std::uint8_t, 256>
buildSbox()
{
    std::array<std::uint8_t, 256> table{};
    for (int i = 0; i < 256; ++i) {
        const std::uint8_t inv = gfInv(static_cast<std::uint8_t>(i));
        // FIPS-197 affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63.
        const std::uint8_t affine =
            static_cast<std::uint8_t>(inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^
                                      rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63);
        table[static_cast<std::size_t>(i)] = affine;
    }
    return table;
}

std::array<std::uint8_t, 256>
buildInvSbox()
{
    const auto &fwd = sbox();
    std::array<std::uint8_t, 256> table{};
    for (int i = 0; i < 256; ++i)
        table[fwd[static_cast<std::size_t>(i)]] =
            static_cast<std::uint8_t>(i);
    return table;
}

} // namespace

const std::array<std::uint8_t, 256> &
sbox()
{
    static const std::array<std::uint8_t, 256> table = buildSbox();
    return table;
}

const std::array<std::uint8_t, 256> &
invSbox()
{
    static const std::array<std::uint8_t, 256> table = buildInvSbox();
    return table;
}

} // namespace rcoal::aes
