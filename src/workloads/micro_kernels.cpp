/**
 * @file
 * Microbenchmark kernel builders.
 */

#include "rcoal/workloads/micro_kernels.hpp"

#include <functional>

#include "rcoal/common/logging.hpp"
#include "rcoal/sim/simt_stack.hpp"

namespace rcoal::workloads {

namespace {

std::vector<core::LaneRequest>
lanesFor(unsigned warp_size, const std::function<Addr(unsigned)> &addr_of)
{
    std::vector<core::LaneRequest> lanes(warp_size);
    for (unsigned t = 0; t < warp_size; ++t) {
        lanes[t].tid = t;
        lanes[t].addr = addr_of(t);
        lanes[t].size = 4;
        lanes[t].active = true;
    }
    return lanes;
}

} // namespace

std::unique_ptr<sim::KernelSource>
makeStreamingKernel(unsigned warps, unsigned loads_per_warp,
                    unsigned warp_size, Addr base)
{
    std::vector<std::vector<sim::WarpInstruction>> traces(warps);
    for (unsigned w = 0; w < warps; ++w) {
        for (unsigned i = 0; i < loads_per_warp; ++i) {
            const Addr instr_base =
                base + (Addr{w} * loads_per_warp + i) * warp_size * 4;
            traces[w].push_back(sim::WarpInstruction::load(
                lanesFor(warp_size,
                         [&](unsigned t) { return instr_base + t * 4; }),
                sim::AccessTag::Generic));
        }
        traces[w].push_back(sim::WarpInstruction::alu(1, true));
    }
    return std::make_unique<sim::VectorKernel>(std::move(traces),
                                               "streaming");
}

std::unique_ptr<sim::KernelSource>
makeRandomKernel(unsigned warps, unsigned loads_per_warp,
                 unsigned warp_size, unsigned table_words, Rng &rng,
                 Addr base)
{
    std::vector<std::vector<sim::WarpInstruction>> traces(warps);
    for (unsigned w = 0; w < warps; ++w) {
        for (unsigned i = 0; i < loads_per_warp; ++i) {
            traces[w].push_back(sim::WarpInstruction::load(
                lanesFor(warp_size,
                         [&](unsigned) {
                             return base + rng.below(table_words) * 4;
                         }),
                sim::AccessTag::Generic));
        }
        traces[w].push_back(sim::WarpInstruction::alu(1, true));
    }
    return std::make_unique<sim::VectorKernel>(std::move(traces),
                                               "random");
}

std::unique_ptr<sim::KernelSource>
makeStridedKernel(unsigned warps, unsigned loads_per_warp,
                  unsigned warp_size, std::uint32_t stride_bytes,
                  Addr base)
{
    std::vector<std::vector<sim::WarpInstruction>> traces(warps);
    for (unsigned w = 0; w < warps; ++w) {
        for (unsigned i = 0; i < loads_per_warp; ++i) {
            const Addr instr_base =
                base + (Addr{w} * loads_per_warp + i) * warp_size *
                           stride_bytes;
            traces[w].push_back(sim::WarpInstruction::load(
                lanesFor(warp_size,
                         [&](unsigned t) {
                             return instr_base + Addr{t} * stride_bytes;
                         }),
                sim::AccessTag::Generic));
        }
        traces[w].push_back(sim::WarpInstruction::alu(1, true));
    }
    return std::make_unique<sim::VectorKernel>(std::move(traces),
                                               "strided");
}

std::unique_ptr<sim::KernelSource>
makeDivergentKernel(unsigned warps, unsigned warp_size, Rng &rng,
                    Addr base)
{
    RCOAL_ASSERT(warp_size <= 64, "SIMT stack supports up to 64 lanes");
    std::vector<std::vector<sim::WarpInstruction>> traces(warps);
    for (unsigned w = 0; w < warps; ++w) {
        // Per-lane data decides the branch direction.
        std::vector<std::uint64_t> lane_value(warp_size);
        sim::LaneMask taken = 0;
        for (unsigned t = 0; t < warp_size; ++t) {
            lane_value[t] = rng.below(1024);
            if (lane_value[t] % 2 == 0)
                taken |= sim::LaneMask{1} << t;
        }

        // Drive the SIMT stack exactly as the hardware would: branch,
        // run the taken side, switch at the post-dominator, run the
        // else side, reconverge.
        sim::SimtStack stack(warp_size);
        const auto masked_load = [&](Addr instr_base,
                                     sim::AccessTag tag) {
            std::vector<core::LaneRequest> lanes(warp_size);
            for (unsigned t = 0; t < warp_size; ++t) {
                lanes[t].tid = t;
                lanes[t].addr = instr_base + lane_value[t] * 4;
                lanes[t].size = 4;
                lanes[t].active = stack.isActive(t);
            }
            traces[w].push_back(sim::WarpInstruction::load(lanes, tag));
            traces[w].push_back(sim::WarpInstruction::alu(1, true));
        };

        constexpr std::uint64_t kReconvPc = 100;
        const std::uint64_t entry_pc =
            stack.diverge(taken, /*taken_pc=*/10, /*fallthrough_pc=*/20,
                          kReconvPc);
        if (entry_pc == 10) {
            masked_load(base, sim::AccessTag::Generic); // if-side
            const std::uint64_t next = stack.reconverge(kReconvPc);
            if (next == 20)
                masked_load(base + 0x10000, sim::AccessTag::Generic);
            stack.reconverge(kReconvPc);
        } else {
            masked_load(base + 0x10000, sim::AccessTag::Generic);
            stack.reconverge(kReconvPc);
        }
        // Reconverged: full-warp load.
        masked_load(base + 0x20000, sim::AccessTag::Generic);
    }
    return std::make_unique<sim::VectorKernel>(std::move(traces),
                                               "divergent");
}

} // namespace rcoal::workloads
