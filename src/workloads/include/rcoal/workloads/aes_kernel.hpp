/**
 * @file
 * The AES-128 encryption kernel as seen by the simulated GPU.
 *
 * Mirrors the CUDA implementation the paper attacks (Section II-B): the
 * plaintext is divided across threads, one 16-byte line per thread, with
 * a sequential, deterministic line-to-thread mapping; 32 threads form a
 * warp; each thread performs per-round T-table lookups that the
 * coalescing unit merges. The builder encrypts each line with the
 * traced T-table cipher and converts the lookup traces into lockstep
 * warp instructions:
 *
 *   load plaintext line (16 B/lane)
 *   per round: 16 table-lookup loads (4 B/lane) + a join ALU op
 *   store ciphertext line (16 B/lane)
 *
 * Last-round lookups carry AccessTag::LastRoundLookup so the simulator
 * reports the quantities the attack correlates.
 */

#ifndef RCOAL_WORKLOADS_AES_KERNEL_HPP
#define RCOAL_WORKLOADS_AES_KERNEL_HPP

#include <array>
#include <span>
#include <vector>

#include "rcoal/aes/ttable.hpp"
#include "rcoal/common/rng.hpp"
#include "rcoal/sim/kernel.hpp"

namespace rcoal::workloads {

/** Memory layout of the AES kernel's data structures. */
struct AesMemoryLayout
{
    /** Base addresses of Te0..Te3 and T4 (index 4). */
    std::array<Addr, 5> tableBase{};

    Addr plaintextBase = 0;
    Addr ciphertextBase = 0;

    /** Bytes per table element (32-bit words in T-table AES). */
    std::uint32_t elementBytes = 4;

    /**
     * Standard layout: five 1 KiB tables packed contiguously from
     * 0x1000, plaintext at 0x4'0000, ciphertext at 0x8'0000. With
     * 256-byte partition interleaving each table spans 4 partitions.
     */
    static AesMemoryLayout standard();
};

/**
 * KernelSource for one AES-128 ECB encryption over a set of plaintext
 * lines. Also exposes the functionally computed ciphertext, which the
 * attack harness hands to the attacker.
 */
class AesGpuKernel : public sim::KernelSource
{
  public:
    /**
     * @param plaintext_lines one 16-byte block per line.
     * @param key AES key (16/24/32 bytes).
     * @param warp_size threads per warp (32 in the paper).
     * @param layout memory layout of tables and buffers.
     * @param alu_latency latency of the per-round combine ALU batch.
     */
    AesGpuKernel(std::span<const aes::Block> plaintext_lines,
                 std::span<const std::uint8_t> key, unsigned warp_size,
                 const AesMemoryLayout &layout = AesMemoryLayout::standard(),
                 unsigned alu_latency = 8);

    unsigned numWarps() const override;
    const std::vector<sim::WarpInstruction> &
    trace(WarpId warp) const override;
    std::string name() const override { return "aes128-ecb"; }

    /** Ciphertext of every line (functional result). */
    const std::vector<aes::Block> &ciphertext() const { return cipher; }

    /** Number of plaintext lines. */
    unsigned numLines() const
    {
        return static_cast<unsigned>(cipher.size());
    }

  private:
    std::vector<std::vector<sim::WarpInstruction>> traces;
    std::vector<aes::Block> cipher;
};

/** Generate @p lines random plaintext lines. */
std::vector<aes::Block> randomPlaintext(unsigned lines, Rng &rng);

/** Generate a random AES-128 key. */
std::array<std::uint8_t, 16> randomKey128(Rng &rng);

} // namespace rcoal::workloads

#endif // RCOAL_WORKLOADS_AES_KERNEL_HPP
