/**
 * @file
 * Synthetic microbenchmark kernels for substrate validation.
 *
 * These exercise the memory system with known access patterns so the
 * tests can check coalescing counts, DRAM row behaviour and bandwidth
 * shapes independently of AES.
 */

#ifndef RCOAL_WORKLOADS_MICRO_KERNELS_HPP
#define RCOAL_WORKLOADS_MICRO_KERNELS_HPP

#include <memory>

#include "rcoal/common/rng.hpp"
#include "rcoal/sim/kernel.hpp"

namespace rcoal::workloads {

/**
 * Streaming kernel: each thread of each warp reads consecutive 4-byte
 * words; perfectly coalesced under the baseline policy.
 *
 * @param warps number of warps.
 * @param loads_per_warp load instructions per warp.
 * @param warp_size threads per warp.
 * @param base base address of the streamed buffer.
 */
std::unique_ptr<sim::KernelSource>
makeStreamingKernel(unsigned warps, unsigned loads_per_warp,
                    unsigned warp_size, Addr base = 0x10'0000);

/**
 * Random-access kernel: each lane reads a uniformly random 4-byte word
 * from a table of @p table_words words; the GPU-unfriendly pattern.
 */
std::unique_ptr<sim::KernelSource>
makeRandomKernel(unsigned warps, unsigned loads_per_warp,
                 unsigned warp_size, unsigned table_words, Rng &rng,
                 Addr base = 0x20'0000);

/**
 * Strided kernel: lane t of each load reads at stride * t; stride in
 * bytes controls how many coalesced accesses each load produces.
 */
std::unique_ptr<sim::KernelSource>
makeStridedKernel(unsigned warps, unsigned loads_per_warp,
                  unsigned warp_size, std::uint32_t stride_bytes,
                  Addr base = 0x30'0000);

/**
 * Divergent kernel: a data-dependent branch splits each warp with the
 * immediate-post-dominator SIMT stack (Table I's divergence model).
 * Lanes with (lane_value % 2 == 0) take the if-side (one load from
 * @p base), the rest the else-side (one load from @p base + 0x10000);
 * both sides then reconverge and issue a final full-warp load. Lane
 * values are drawn from @p rng, so the divergence pattern varies per
 * warp. Per warp: one if-side load, one else-side load (each partially
 * masked) and one reconverged load.
 */
std::unique_ptr<sim::KernelSource>
makeDivergentKernel(unsigned warps, unsigned warp_size, Rng &rng,
                    Addr base = 0x40'0000);

} // namespace rcoal::workloads

#endif // RCOAL_WORKLOADS_MICRO_KERNELS_HPP
