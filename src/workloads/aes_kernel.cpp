/**
 * @file
 * AES GPU kernel construction.
 */

#include "rcoal/workloads/aes_kernel.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::workloads {

AesMemoryLayout
AesMemoryLayout::standard()
{
    AesMemoryLayout layout;
    constexpr Addr table_bytes = 256 * 4;
    for (unsigned t = 0; t < 5; ++t)
        layout.tableBase[t] = 0x1000 + t * table_bytes;
    layout.plaintextBase = 0x4'0000;
    layout.ciphertextBase = 0x8'0000;
    return layout;
}

AesGpuKernel::AesGpuKernel(std::span<const aes::Block> plaintext_lines,
                           std::span<const std::uint8_t> key,
                           unsigned warp_size,
                           const AesMemoryLayout &layout,
                           unsigned alu_latency)
{
    RCOAL_ASSERT(!plaintext_lines.empty(), "no plaintext lines");
    RCOAL_ASSERT(warp_size > 0, "warp size must be positive");

    const aes::TTableAes ttable(key);
    const unsigned rounds = ttable.rounds();
    const unsigned lines = static_cast<unsigned>(plaintext_lines.size());
    const unsigned warps = (lines + warp_size - 1) / warp_size;

    // Encrypt every line, keeping the per-line lookup trace.
    cipher.reserve(lines);
    std::vector<std::vector<aes::TableLookup>> lookups(lines);
    for (unsigned line = 0; line < lines; ++line) {
        cipher.push_back(
            ttable.encryptBlockTraced(plaintext_lines[line],
                                      lookups[line]));
        RCOAL_ASSERT(lookups[line].size() ==
                         static_cast<std::size_t>(rounds) *
                             aes::kLookupsPerRound,
                     "unexpected trace length");
    }

    traces.resize(warps);
    for (unsigned w = 0; w < warps; ++w) {
        auto &trace_out = traces[w];
        const unsigned line0 = w * warp_size;
        const unsigned lanes_in_warp =
            std::min(warp_size, lines - line0);

        const auto make_lanes =
            [&](auto addr_of) {
                std::vector<core::LaneRequest> lanes(warp_size);
                for (unsigned t = 0; t < warp_size; ++t) {
                    lanes[t].tid = t;
                    if (t < lanes_in_warp) {
                        auto [addr, size] = addr_of(line0 + t);
                        lanes[t].addr = addr;
                        lanes[t].size = size;
                        lanes[t].active = true;
                    } else {
                        lanes[t].active = false;
                    }
                }
                return lanes;
            };

        // 1. Load this thread's plaintext line (one 16-byte vector load).
        trace_out.push_back(sim::WarpInstruction::load(
            make_lanes([&](unsigned line) {
                return std::pair<Addr, std::uint32_t>{
                    layout.plaintextBase + Addr{line} * 16, 16};
            }),
            sim::AccessTag::PlaintextLoad));
        trace_out.push_back(sim::WarpInstruction::alu(alu_latency, true));

        // 2. Rounds of table lookups. All threads execute the same
        // static instruction, so lookup k of every lane uses the same
        // table; the per-lane index comes from its own trace.
        for (unsigned round = 1; round <= rounds; ++round) {
            const bool last = round == rounds;
            for (unsigned k = 0; k < aes::kLookupsPerRound; ++k) {
                const std::size_t pos =
                    static_cast<std::size_t>(round - 1) *
                        aes::kLookupsPerRound + k;
                // Table id is static across lanes; take it from the
                // first line of this warp.
                const unsigned table = lookups[line0][pos].table;
                trace_out.push_back(sim::WarpInstruction::load(
                    make_lanes([&](unsigned line) {
                        const aes::TableLookup &lk = lookups[line][pos];
                        RCOAL_ASSERT(lk.table == table,
                                     "divergent table in lockstep trace");
                        return std::pair<Addr, std::uint32_t>{
                            layout.tableBase[table] +
                                Addr{lk.index} * layout.elementBytes,
                            layout.elementBytes};
                    }),
                    last ? sim::AccessTag::LastRoundLookup
                         : sim::AccessTag::RoundLookup));
            }
            // Combine/XOR work consuming all of this round's loads.
            trace_out.push_back(
                sim::WarpInstruction::alu(alu_latency, true));
        }

        // 3. Store the ciphertext line.
        trace_out.push_back(sim::WarpInstruction::store(
            make_lanes([&](unsigned line) {
                return std::pair<Addr, std::uint32_t>{
                    layout.ciphertextBase + Addr{line} * 16, 16};
            }),
            sim::AccessTag::CiphertextStore));
    }
}

unsigned
AesGpuKernel::numWarps() const
{
    return static_cast<unsigned>(traces.size());
}

const std::vector<sim::WarpInstruction> &
AesGpuKernel::trace(WarpId warp) const
{
    RCOAL_ASSERT(warp < traces.size(), "warp %u out of range", warp);
    return traces[warp];
}

std::vector<aes::Block>
randomPlaintext(unsigned lines, Rng &rng)
{
    std::vector<aes::Block> out(lines);
    for (auto &block : out) {
        for (auto &byte : block)
            byte = static_cast<std::uint8_t>(rng.below(256));
    }
    return out;
}

std::array<std::uint8_t, 16>
randomKey128(Rng &rng)
{
    std::array<std::uint8_t, 16> key{};
    for (auto &byte : key)
        byte = static_cast<std::uint8_t>(rng.below(256));
    return key;
}

} // namespace rcoal::workloads
