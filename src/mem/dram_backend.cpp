/**
 * @file
 * DRAM backend personalities.
 *
 * The GDDR6/HBM2 timing sets are representative datasheet-class numbers
 * expressed in command-clock cycles at the partition's memory clock —
 * chosen to exercise the structural differences (long bank-group
 * windows, pseudo-channels, bigger refresh) rather than to model one
 * specific part. GDDR5 passes GpuConfig::timing through untouched so
 * the default machine reproduces the paper's Table I model bit for bit.
 */

#include "rcoal/mem/dram_backend.hpp"

#include <cstring>

#include "rcoal/common/logging.hpp"

namespace rcoal::mem {

BackendTiming
Gddr5Backend::timing(const sim::GpuConfig &cfg) const
{
    BackendTiming t;
    t.base = cfg.timing;
    t.tCCDLong = cfg.timing.tCCD;
    t.tRRDLong = cfg.timing.tRRD;
    t.burstCycles = cfg.burstCycles;
    t.bankGroups = cfg.bankGroups;
    t.pseudoChannels = 1;
    t.bankGroupAware = false;
    return t;
}

BackendTiming
Gddr6Backend::timing(const sim::GpuConfig &cfg) const
{
    BackendTiming t;
    t.base.tCL = 16;
    t.base.tRP = 14;
    t.base.tRC = 48;
    t.base.tRAS = 32;
    t.base.tCCD = 2; // Short: different bank group.
    t.base.tRCD = 14;
    t.base.tRRD = 4; // Short: different bank group.
    t.base.tREFI = 3900;
    t.base.tRFC = 140;
    t.tCCDLong = 4;
    t.tRRDLong = 6;
    t.burstCycles = 2;
    t.bankGroups = cfg.bankGroups;
    t.pseudoChannels = 1;
    t.bankGroupAware = true;
    return t;
}

BackendTiming
Hbm2Backend::timing(const sim::GpuConfig &cfg) const
{
    BackendTiming t;
    t.base.tCL = 14;
    t.base.tRP = 14;
    t.base.tRC = 45;
    t.base.tRAS = 33;
    t.base.tCCD = 2; // Short: different bank group.
    t.base.tRCD = 14;
    t.base.tRRD = 4; // Short: different bank group.
    t.base.tREFI = 1950;
    t.base.tRFC = 160; // Larger banks refresh longer.
    t.tCCDLong = 3;
    t.tRRDLong = 6;
    t.burstCycles = 2;
    t.bankGroups = cfg.bankGroups;
    t.pseudoChannels = 2; // Legacy-mode pseudo-channel split.
    t.bankGroupAware = true;
    return t;
}

std::unique_ptr<DramBackend>
makeDramBackend(sim::DramBackendKind kind)
{
    switch (kind) {
      case sim::DramBackendKind::Gddr5:
        return std::make_unique<Gddr5Backend>();
      case sim::DramBackendKind::Gddr6:
        return std::make_unique<Gddr6Backend>();
      case sim::DramBackendKind::Hbm2:
        return std::make_unique<Hbm2Backend>();
    }
    panic("unknown DramBackendKind %u", static_cast<unsigned>(kind));
}

const char *
dramBackendKindName(sim::DramBackendKind kind)
{
    switch (kind) {
      case sim::DramBackendKind::Gddr5:
        return "gddr5";
      case sim::DramBackendKind::Gddr6:
        return "gddr6";
      case sim::DramBackendKind::Hbm2:
        return "hbm2";
    }
    return "unknown";
}

bool
parseDramBackendKind(const char *text, sim::DramBackendKind &out)
{
    if (text == nullptr)
        return false;
    if (std::strcmp(text, "gddr5") == 0) {
        out = sim::DramBackendKind::Gddr5;
        return true;
    }
    if (std::strcmp(text, "gddr6") == 0) {
        out = sim::DramBackendKind::Gddr6;
        return true;
    }
    if (std::strcmp(text, "hbm2") == 0) {
        out = sim::DramBackendKind::Hbm2;
        return true;
    }
    return false;
}

trace::DramProtocolChecker::Params
checkerParamsFor(const sim::GpuConfig &cfg)
{
    const auto backend = makeDramBackend(cfg.dramBackend);
    const BackendTiming t = backend->timing(cfg);
    trace::DramProtocolChecker::Params params;
    params.banks = cfg.banksPerPartition;
    params.tCL = t.base.tCL;
    params.tRP = t.base.tRP;
    params.tRC = t.base.tRC;
    params.tRAS = t.base.tRAS;
    params.tCCD = t.base.tCCD;
    params.tRCD = t.base.tRCD;
    params.tRRD = t.base.tRRD;
    params.tRFC = t.base.tRFC;
    params.burstCycles = t.burstCycles;
    params.tCCDLong = t.tCCDLong;
    params.tRRDLong = t.tRRDLong;
    params.bankGroups = t.bankGroups;
    params.pseudoChannels = t.pseudoChannels;
    params.bankGroupAware = t.bankGroupAware;
    return params;
}

} // namespace rcoal::mem
