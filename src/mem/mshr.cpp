/**
 * @file
 * MshrTable implementation.
 */

#include "rcoal/mem/mshr.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::mem {

MshrTable::MshrTable(std::size_t entries) : capacity(entries)
{
    RCOAL_ASSERT(entries > 0, "MSHR table needs at least one entry");
}

bool
MshrTable::isPending(Addr block_addr) const
{
    return table.contains(block_addr);
}

bool
MshrTable::canAllocate() const
{
    return table.size() < capacity;
}

void
MshrTable::allocate(Addr block_addr, sim::MemoryAccess access)
{
    RCOAL_ASSERT(!isPending(block_addr),
                 "MSHR double-allocate for block %llx",
                 static_cast<unsigned long long>(block_addr));
    RCOAL_ASSERT(canAllocate(), "MSHR table full");
    table[block_addr].push_back(std::move(access));
}

std::size_t
MshrTable::merge(Addr block_addr, sim::MemoryAccess access)
{
    auto it = table.find(block_addr);
    RCOAL_ASSERT(it != table.end(), "MSHR merge without pending entry");
    it->second.push_back(std::move(access));
    ++mergeCount;
    return it->second.size();
}

std::vector<sim::MemoryAccess>
MshrTable::complete(Addr block_addr)
{
    auto it = table.find(block_addr);
    RCOAL_ASSERT(it != table.end(), "MSHR complete without pending entry");
    std::vector<sim::MemoryAccess> waiting = std::move(it->second);
    table.erase(it);
    return waiting;
}

void
MshrTable::reset()
{
    RCOAL_ASSERT(table.empty(), "MSHR reset with %zu entries in flight",
                 table.size());
    mergeCount = 0;
}

void
MshrTable::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(table.empty(),
                 "MSHR snapshot with %zu entries in flight", table.size());
    w.pod(mergeCount);
}

void
MshrTable::restoreState(common::ArenaReader &r)
{
    RCOAL_ASSERT(table.empty(),
                 "MSHR restore with %zu entries in flight", table.size());
    r.pod(mergeCount);
}

} // namespace rcoal::mem
