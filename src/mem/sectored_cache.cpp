/**
 * @file
 * SectoredCache implementation.
 */

#include "rcoal/mem/sectored_cache.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::mem {

SectoredCache::SectoredCache(const sim::CacheGeometry &geometry)
    : geom(geometry)
{
    RCOAL_ASSERT(geom.lineBytes > 0 && geom.ways > 0 &&
                     geom.sectorBytes > 0,
                 "cache geometry must be positive");
    RCOAL_ASSERT(geom.lineBytes % geom.sectorBytes == 0,
                 "line size %u not a multiple of sector size %u",
                 geom.lineBytes, geom.sectorBytes);
    RCOAL_ASSERT(geom.lineBytes / geom.sectorBytes <= 32,
                 "at most 32 sectors per line (validity is a 32-bit mask)");
    const std::size_t total_lines = geom.sizeBytes / geom.lineBytes;
    RCOAL_ASSERT(total_lines >= geom.ways,
                 "cache too small for its associativity");
    numSets = total_lines / geom.ways;
    lines.resize(numSets * geom.ways);
    setAge.assign(numSets, 1); // 0 stays "never touched".
}

std::uint32_t
SectoredCache::maskFor(Addr addr, std::uint32_t bytes) const
{
    RCOAL_ASSERT(bytes > 0, "zero-byte cache access");
    const std::uint32_t offset =
        static_cast<std::uint32_t>(addr % geom.lineBytes);
    RCOAL_ASSERT(offset + bytes <= geom.lineBytes,
                 "access [%u, +%u) straddles a %u-byte line", offset,
                 bytes, geom.lineBytes);
    const std::uint32_t first = offset / geom.sectorBytes;
    const std::uint32_t last = (offset + bytes - 1) / geom.sectorBytes;
    const std::uint32_t count = last - first + 1;
    const std::uint32_t span =
        count >= 32 ? ~std::uint32_t{0} : ((1u << count) - 1u);
    return span << first;
}

SectoredCache::Line *
SectoredCache::findLine(std::uint64_t line_tag, std::size_t set)
{
    Line *base = &lines[set * geom.ways];
    for (std::uint32_t w = 0; w < geom.ways; ++w) {
        if (base[w].sectorMask != 0 && base[w].tag == line_tag)
            return &base[w];
    }
    return nullptr;
}

const SectoredCache::Line *
SectoredCache::findLine(std::uint64_t line_tag, std::size_t set) const
{
    const Line *base = &lines[set * geom.ways];
    for (std::uint32_t w = 0; w < geom.ways; ++w) {
        if (base[w].sectorMask != 0 && base[w].tag == line_tag)
            return &base[w];
    }
    return nullptr;
}

AccessOutcome
SectoredCache::access(Addr addr, std::uint32_t bytes)
{
    const std::uint64_t line_tag = lineOf(addr);
    const std::size_t set = setOf(line_tag);
    const std::uint32_t needed = maskFor(addr, bytes);
    Line *line = findLine(line_tag, set);
    if (line == nullptr) {
        ++missCount;
        return AccessOutcome::LineMiss;
    }
    if ((line->sectorMask & needed) != needed) {
        ++missCount;
        ++sectorMissCount;
        return AccessOutcome::SectorMiss;
    }
    line->age = setAge[set]++;
    ++hitCount;
    return AccessOutcome::Hit;
}

void
SectoredCache::fill(Addr addr, std::uint32_t bytes)
{
    const std::uint64_t line_tag = lineOf(addr);
    const std::size_t set = setOf(line_tag);
    const std::uint32_t sectors = maskFor(addr, bytes);
    ++fillCount;
    Line *line = findLine(line_tag, set);
    if (line == nullptr) {
        // Allocate-on-fill: pick an invalid way, else the LRU way.
        Line *base = &lines[set * geom.ways];
        Line *victim = nullptr;
        for (std::uint32_t w = 0; w < geom.ways; ++w) {
            if (base[w].sectorMask == 0) {
                victim = &base[w];
                break;
            }
            if (victim == nullptr || base[w].age < victim->age)
                victim = &base[w];
        }
        if (victim->sectorMask != 0)
            ++evictionCount;
        victim->tag = line_tag;
        victim->sectorMask = 0;
        line = victim;
    }
    line->sectorMask |= sectors;
    line->age = setAge[set]++;
}

bool
SectoredCache::contains(Addr addr, std::uint32_t bytes) const
{
    const std::uint64_t line_tag = lineOf(addr);
    const Line *line = findLine(line_tag, setOf(line_tag));
    if (line == nullptr)
        return false;
    const std::uint32_t needed = maskFor(addr, bytes);
    return (line->sectorMask & needed) == needed;
}

void
SectoredCache::clear()
{
    for (Line &line : lines)
        line = Line{};
    // setAge keeps counting: stamps only compare within a set and the
    // counter is monotone, so continuing is correct and cheaper.
}

void
SectoredCache::reserve()
{
    RCOAL_ASSERT(canReserve(), "streaming reservation overflow (%u)",
                 outstandingFills);
    ++outstandingFills;
}

void
SectoredCache::release()
{
    RCOAL_ASSERT(outstandingFills > 0,
                 "streaming reservation release underflow");
    --outstandingFills;
}

void
SectoredCache::resetAll()
{
    lines.assign(lines.size(), Line{});
    setAge.assign(numSets, 1);
    outstandingFills = 0;
    hitCount = 0;
    missCount = 0;
    sectorMissCount = 0;
    fillCount = 0;
    evictionCount = 0;
}

void
SectoredCache::saveState(common::ArenaWriter &w) const
{
    w.pod(static_cast<std::uint64_t>(lines.size()));
    for (const Line &line : lines) {
        w.pod(line.tag);
        w.pod(line.sectorMask);
        w.pod(line.age);
    }
    w.podVector(setAge);
    w.pod(outstandingFills);
    w.pod(hitCount);
    w.pod(missCount);
    w.pod(sectorMissCount);
    w.pod(fillCount);
    w.pod(evictionCount);
}

void
SectoredCache::restoreState(common::ArenaReader &r)
{
    const auto count = r.take<std::uint64_t>();
    RCOAL_ASSERT(count == lines.size(),
                 "cache geometry mismatch: snapshot has %llu lines, "
                 "cache has %zu",
                 static_cast<unsigned long long>(count), lines.size());
    for (Line &line : lines) {
        r.pod(line.tag);
        r.pod(line.sectorMask);
        r.pod(line.age);
    }
    r.podVector(setAge);
    RCOAL_ASSERT(setAge.size() == numSets, "set-age size mismatch");
    r.pod(outstandingFills);
    r.pod(hitCount);
    r.pod(missCount);
    r.pod(sectorMissCount);
    r.pod(fillCount);
    r.pod(evictionCount);
}

} // namespace rcoal::mem
