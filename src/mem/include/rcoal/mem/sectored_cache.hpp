/**
 * @file
 * Sectored set-associative cache (Accel-Sim style).
 *
 * A line is divided into fixed-size sectors (4 x 32 B for a 128 B line)
 * and validity is tracked per sector: a lookup hits only when every
 * sector the access touches is valid, and a fill validates only the
 * sectors the response actually carries. This is the structure modern
 * GPU L1/L2 caches use — it keeps miss traffic at the 32 B granularity
 * the DRAM bursts serve instead of fetching whole lines.
 *
 * Tag-array only: the simulator never carries data values.
 *
 * Replacement is age-based pseudo-LRU over an inline fixed-capacity way
 * array (no per-access allocation — the per-set std::list the previous
 * Cache used allocated on every fill, which showed up on the serve hot
 * path). A monotone per-set age counter stamps every touch; the victim
 * is the valid way with the smallest stamp, which for the ways' touch
 * order is exactly LRU.
 *
 * The streaming-L1 policy ("allocate-on-fill with bounded reservations")
 * is expressed through the reservation interface: a miss does not
 * allocate a line — it takes a reservation, travels to memory, and the
 * returning fill both releases the reservation and allocates. Bounding
 * the outstanding reservations models the finite fill/WB buffering of a
 * streaming L1 without ever blocking a line behind an in-flight fill.
 */

#ifndef RCOAL_MEM_SECTORED_CACHE_HPP
#define RCOAL_MEM_SECTORED_CACHE_HPP

#include <cstdint>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/common/types.hpp"
#include "rcoal/sim/config.hpp"

namespace rcoal::mem {

/** Result of one cache lookup. */
enum class AccessOutcome : std::uint8_t
{
    Hit = 0,        ///< Line resident and every touched sector valid.
    SectorMiss = 1, ///< Line resident but a touched sector is invalid.
    LineMiss = 2,   ///< Tag not resident.
};

/**
 * Blocking-free sectored cache with inline age-counter LRU.
 */
class SectoredCache
{
  public:
    explicit SectoredCache(const sim::CacheGeometry &geometry);

    /**
     * Look up the @p bytes at @p addr (which must not straddle a line);
     * on a full hit the line's age stamp is refreshed. Counters are
     * updated (hits / misses / sectorMisses).
     */
    AccessOutcome access(Addr addr, std::uint32_t bytes);

    /**
     * Fill the sectors covering [@p addr, @p addr + @p bytes): allocate
     * the line if absent (evicting the set's LRU way when full) and OR
     * in the sector validity. Refreshes the age stamp.
     */
    void fill(Addr addr, std::uint32_t bytes);

    /** True when every touched sector is valid (no LRU update). */
    bool contains(Addr addr, std::uint32_t bytes) const;

    /** Invalidate everything (reservations are unaffected). */
    void clear();

    /**
     * Return the cache to its freshly-constructed state: lines,
     * per-set age stamps, reservations, and every counter. Unlike
     * clear(), which deliberately keeps the counters and ages, this is
     * the machine-reset path (reset-vs-fresh byte identity).
     */
    void resetAll();

    /** Serialize lines, ages, reservations, and counters. */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(common::ArenaReader &r);

    unsigned hitLatency() const { return geom.hitLatency; }

    // Streaming reservations (allocate-on-fill bound).
    /** True when another miss may be put in flight. */
    bool canReserve() const
    {
        return outstandingFills < geom.streamingReservations;
    }
    /** Take a fill reservation (must canReserve()). */
    void reserve();
    /** Release a reservation (the fill arrived or was merged away). */
    void release();
    /** In-flight fills currently holding a reservation. */
    std::uint32_t reservedFills() const { return outstandingFills; }

    // Counters.
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    /** Of misses(), those where the line was resident (sector-granular). */
    std::uint64_t sectorMisses() const { return sectorMissCount; }
    std::uint64_t fills() const { return fillCount; }
    std::uint64_t evictions() const { return evictionCount; }

    std::size_t sets() const { return numSets; }
    std::size_t ways() const { return geom.ways; }

  private:
    /**
     * One way. Invalid <=> sectorMask == 0 (allocate-on-fill means a
     * resident line always carries at least one valid sector).
     */
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint32_t sectorMask = 0;
        std::uint64_t age = 0; ///< Per-set touch stamp (monotone).
    };

    std::uint64_t lineOf(Addr addr) const { return addr / geom.lineBytes; }
    std::size_t setOf(std::uint64_t line) const { return line % numSets; }
    /** Sector-validity mask the span [addr, addr+bytes) requires. */
    std::uint32_t maskFor(Addr addr, std::uint32_t bytes) const;
    Line *findLine(std::uint64_t line_tag, std::size_t set);
    const Line *findLine(std::uint64_t line_tag, std::size_t set) const;

    sim::CacheGeometry geom;
    std::size_t numSets;
    std::vector<Line> lines;      ///< numSets x ways, set-major.
    std::vector<std::uint64_t> setAge; ///< Next touch stamp per set.
    std::uint32_t outstandingFills = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t sectorMissCount = 0;
    std::uint64_t fillCount = 0;
    std::uint64_t evictionCount = 0;
};

} // namespace rcoal::mem

#endif // RCOAL_MEM_SECTORED_CACHE_HPP
