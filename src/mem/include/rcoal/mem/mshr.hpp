/**
 * @file
 * Miss Status Handling Registers, shared by the L1 (per SM) and L2
 * (per partition) front ends: merges concurrent misses to the same
 * block so only one request travels down the hierarchy.
 */

#ifndef RCOAL_MEM_MSHR_HPP
#define RCOAL_MEM_MSHR_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/common/types.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::mem {

/**
 * MSHR table keyed by block address.
 */
class MshrTable
{
  public:
    explicit MshrTable(std::size_t entries);

    /** True when a miss to @p block_addr is already outstanding. */
    bool isPending(Addr block_addr) const;

    /** True when a new block entry can be allocated. */
    bool canAllocate() const;

    /**
     * Allocate an entry for @p block_addr and remember @p access as its
     * primary request. Must not already be pending.
     */
    void allocate(Addr block_addr, sim::MemoryAccess access);

    /**
     * Merge @p access into the pending entry for @p block_addr
     * (must be pending). Returns the number of requests now waiting.
     */
    std::size_t merge(Addr block_addr, sim::MemoryAccess access);

    /**
     * The fill for @p block_addr arrived: pop and return all waiting
     * requests (primary first) and free the entry.
     */
    std::vector<sim::MemoryAccess> complete(Addr block_addr);

    std::size_t occupancy() const { return table.size(); }
    std::uint64_t merges() const { return mergeCount; }

    /**
     * Return to the freshly-constructed state. Requires no outstanding
     * entries (mergeCount is the only state that survives a drain —
     * before the reset audit it leaked across machine resets).
     */
    void reset();

    /** Serialize at quiescence (no outstanding entries). */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(common::ArenaReader &r);

  private:
    std::size_t capacity;
    std::unordered_map<Addr, std::vector<sim::MemoryAccess>> table;
    std::uint64_t mergeCount = 0;
};

} // namespace rcoal::mem

#endif // RCOAL_MEM_MSHR_HPP
