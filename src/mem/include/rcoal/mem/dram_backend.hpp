/**
 * @file
 * Pluggable DRAM backend: the timing/structure personality a
 * DramPartition runs with.
 *
 * The partition's FR-FCFS scheduler, bank state machine and refresh
 * logic are device-agnostic; what differs between GDDR5, GDDR6 and HBM2
 * is the timing set and the channel structure:
 *
 *  - GDDR5 (the paper's Hynix part, Table I): one unified data bus per
 *    partition, no bank-group command spacing. Timing comes verbatim
 *    from GpuConfig::timing so the default machine stays byte-identical
 *    to the historical model.
 *  - GDDR6: bank-group-aware column/ACT spacing — consecutive commands
 *    to the SAME bank group need the long tCCD_L/tRRD_L windows while
 *    different-group commands get the short ones.
 *  - HBM2: a channel split into pseudo-channels, each with its own data
 *    bus, plus bank-group spacing; higher tRFC for the larger banks.
 *
 * All three are validated by the same parameterized DramProtocolChecker
 * (checkerParamsFor()) and all three preserve the cycle-skipping
 * contract: DramPartition::nextEventCycle() folds the backend's extra
 * constraints into its lower bound.
 */

#ifndef RCOAL_MEM_DRAM_BACKEND_HPP
#define RCOAL_MEM_DRAM_BACKEND_HPP

#include <memory>

#include "rcoal/sim/config.hpp"
#include "rcoal/trace/dram_checker.hpp"

namespace rcoal::mem {

/**
 * The resolved timing/structure personality of one backend, in
 * memory-clock cycles. `base.tCCD`/`base.tRRD` are the SHORT
 * (different-bank-group) windows; the Long fields apply between
 * commands to the same bank group. When bankGroupAware is false the
 * long windows are ignored and the model degenerates to the flat
 * per-bank spacing GDDR5 always used.
 */
struct BackendTiming
{
    sim::DramTiming base{};
    unsigned tCCDLong = 2;     ///< Column-to-column, same bank group.
    unsigned tRRDLong = 6;     ///< ACT-to-ACT, same bank group.
    unsigned burstCycles = 2;  ///< Data-bus occupancy per access.
    unsigned bankGroups = 4;   ///< Groups per partition (bank % groups).
    unsigned pseudoChannels = 1; ///< Independent data buses.
    bool bankGroupAware = false; ///< Enforce the Long windows.
};

/**
 * One DRAM device personality.
 */
class DramBackend
{
  public:
    virtual ~DramBackend() = default;

    virtual sim::DramBackendKind kind() const = 0;

    /** Stable lowercase name ("gddr5", "gddr6", "hbm2"). */
    virtual const char *name() const = 0;

    /** Resolve the timing set for @p cfg. */
    virtual BackendTiming timing(const sim::GpuConfig &cfg) const = 0;
};

/** GDDR5: GpuConfig::timing verbatim, flat channel (the seed model). */
class Gddr5Backend final : public DramBackend
{
  public:
    sim::DramBackendKind kind() const override
    {
        return sim::DramBackendKind::Gddr5;
    }
    const char *name() const override { return "gddr5"; }
    BackendTiming timing(const sim::GpuConfig &cfg) const override;
};

/** GDDR6: bank-group-aware tCCD_L/tRRD_L, slower core timing. */
class Gddr6Backend final : public DramBackend
{
  public:
    sim::DramBackendKind kind() const override
    {
        return sim::DramBackendKind::Gddr6;
    }
    const char *name() const override { return "gddr6"; }
    BackendTiming timing(const sim::GpuConfig &cfg) const override;
};

/** HBM2: two pseudo-channels per partition, bank-group spacing. */
class Hbm2Backend final : public DramBackend
{
  public:
    sim::DramBackendKind kind() const override
    {
        return sim::DramBackendKind::Hbm2;
    }
    const char *name() const override { return "hbm2"; }
    BackendTiming timing(const sim::GpuConfig &cfg) const override;
};

/** Construct the backend selected by @p kind. */
std::unique_ptr<DramBackend> makeDramBackend(sim::DramBackendKind kind);

/** Stable lowercase name for @p kind (matches DramBackend::name()). */
const char *dramBackendKindName(sim::DramBackendKind kind);

/**
 * Parse @p text ("gddr5" / "gddr6" / "hbm2", case-sensitive) into
 * @p out; false when the name is unknown.
 */
bool parseDramBackendKind(const char *text, sim::DramBackendKind &out);

/**
 * Protocol-checker parameterization for @p cfg's backend: the referee
 * enforces exactly the windows the partition schedules against,
 * including the bank-group and pseudo-channel structure.
 */
trace::DramProtocolChecker::Params
checkerParamsFor(const sim::GpuConfig &cfg);

} // namespace rcoal::mem

#endif // RCOAL_MEM_DRAM_BACKEND_HPP
