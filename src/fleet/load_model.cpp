/**
 * @file
 * TenantLoadModel implementation.
 */

#include "rcoal/fleet/load_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "rcoal/common/logging.hpp"
#include "rcoal/common/rng.hpp"
#include "rcoal/serve/load_generator.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::fleet {

void
TenantLoadConfig::validate() const
{
    if (tenants == 0)
        return; // Disabled: nothing else matters.
    if (baseMeanGapCycles <= 0.0) {
        fatal("tenant load baseMeanGapCycles must be positive (got %g)",
              baseMeanGapCycles);
    }
    if (zipfExponent < 0.0)
        fatal("tenant load zipfExponent must be >= 0 (got %g)",
              zipfExponent);
    if (diurnalAmplitude < 0.0 || diurnalAmplitude >= 1.0) {
        fatal("tenant load diurnalAmplitude must be in [0, 1) (got %g): "
              "an amplitude of 1 stalls arrivals entirely at the trough",
              diurnalAmplitude);
    }
    if (diurnalAmplitude > 0.0 && diurnalPeriodCycles == 0)
        fatal("tenant load diurnalPeriodCycles must be positive");
    if (burstProbability < 0.0 || burstProbability > 1.0) {
        fatal("tenant load burstProbability must be in [0, 1] (got %g)",
              burstProbability);
    }
    if (burstProbability > 0.0 &&
        (burstLength == 0 || burstRateFactor <= 0.0)) {
        fatal("tenant load bursts need burstLength > 0 and a positive "
              "burstRateFactor");
    }
    if (lineChoices.empty())
        fatal("tenant load needs at least one request size");
    if (idStride == 0)
        fatal("tenant load idStride must be positive (got 0)");
}

TenantLoadModel::TenantLoadModel(TenantLoadConfig config)
    : cfg(std::move(config))
{
    cfg.validate();
    tenantsState.resize(cfg.tenants);
    for (unsigned rank = 0; rank < cfg.tenants; ++rank) {
        Tenant &t = tenantsState[rank];
        // Tenant 0 on the wire is reserved for probes/single-tenant
        // traffic; background tenants are 1-based.
        t.tenantId = rank + 1;
        t.baseMeanGap = meanGapOfRank(rank);
        t.seed = Rng::deriveSeed(cfg.seed, t.tenantId);
    }
}

double
TenantLoadModel::meanGapOfRank(unsigned rank) const
{
    return cfg.baseMeanGapCycles *
           std::pow(static_cast<double>(rank + 1), cfg.zipfExponent);
}

double
TenantLoadModel::diurnalMultiplier(Cycle at) const
{
    if (cfg.diurnalAmplitude <= 0.0)
        return 1.0;
    const double phase =
        2.0 * std::numbers::pi *
        (static_cast<double>(at % cfg.diurnalPeriodCycles) /
         static_cast<double>(cfg.diurnalPeriodCycles));
    return 1.0 + cfg.diurnalAmplitude * std::sin(phase);
}

void
TenantLoadModel::scheduleNext(Tenant &t)
{
    // Request k of tenant t owns stream (tenant seed, k): draw 1 is the
    // interarrival gap, draw 2 the burst trigger, draw 3 the size, the
    // rest its plaintext. The diurnal multiplier is evaluated at the
    // previous scheduled arrival — a pure function of the schedule, so
    // the process is identical however coarsely it is polled.
    Rng rng = Rng::stream(t.seed, t.nextIndex);
    double mean = t.baseMeanGap / diurnalMultiplier(t.nextArrival);
    if (t.burstLeft > 0)
        mean /= cfg.burstRateFactor;
    t.nextArrival += serve::detail::exponentialGap(rng.uniform01(), mean);
}

void
TenantLoadModel::emitOne(Tenant &t, std::vector<serve::Request> &out)
{
    Rng rng = Rng::stream(t.seed, t.nextIndex);
    (void)rng.uniform01(); // The gap draw.
    const bool burst_trigger = rng.chance(cfg.burstProbability);
    const unsigned lines = cfg.lineChoices[static_cast<std::size_t>(
        rng.below(cfg.lineChoices.size()))];

    serve::Request request;
    request.id =
        cfg.firstId + (t.tenantId - 1) * cfg.idStride + t.nextIndex;
    request.arrival = t.nextArrival; // Scheduled, not polled.
    request.tenant = t.tenantId;
    request.plaintext = workloads::randomPlaintext(lines, rng);
    request.isProbe = false;
    request.clientId = -1;
    out.push_back(std::move(request));
    ++issuedCount;

    // Burst bookkeeping precedes the next gap draw so an episode
    // accelerates the gaps that follow its trigger.
    if (t.burstLeft > 0)
        --t.burstLeft;
    else if (burst_trigger)
        t.burstLeft = cfg.burstLength;
    ++t.nextIndex;
    scheduleNext(t);
}

void
TenantLoadModel::poll(Cycle now, std::vector<serve::Request> &out)
{
    for (Tenant &t : tenantsState) {
        if (!t.primed) {
            scheduleNext(t);
            t.primed = true;
        }
    }
    // Merge across tenants in global arrival order (ties to the lowest
    // tenant id): the emitted sequence — not just each tenant's own
    // subsequence — must be identical however coarsely the model is
    // polled, or downstream routing would depend on the poll interval.
    while (true) {
        Tenant *due = nullptr;
        for (Tenant &t : tenantsState) {
            if (t.nextArrival > now)
                continue;
            if (due == nullptr || t.nextArrival < due->nextArrival)
                due = &t;
        }
        if (due == nullptr)
            break;
        emitOne(*due, out);
    }
}

Cycle
TenantLoadModel::nextEventCycle()
{
    Cycle bound = kInvalidCycle;
    for (Tenant &t : tenantsState) {
        if (!t.primed) {
            scheduleNext(t);
            t.primed = true;
        }
        bound = std::min(bound, t.nextArrival);
    }
    return bound;
}

} // namespace rcoal::fleet
