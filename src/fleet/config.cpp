/**
 * @file
 * FleetConfig validation and description.
 */

#include "rcoal/fleet/config.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"

namespace rcoal::fleet {

const char *
routingPolicyName(RoutingPolicy policy)
{
    switch (policy) {
      case RoutingPolicy::RoundRobin:
        return "RR";
      case RoutingPolicy::JoinShortestQueue:
        return "JSQ";
      case RoutingPolicy::TenantAffinity:
        return "Affinity";
    }
    return "?";
}

unsigned
FleetConfig::resolvedInitialActive() const
{
    if (initialActiveReplicas != 0)
        return std::min(initialActiveReplicas, numReplicas);
    if (autoscaler.enabled)
        return std::min(autoscaler.minReplicas, numReplicas);
    return numReplicas;
}

void
FleetConfig::validate(const sim::GpuConfig &gpu,
                      const serve::ServeConfig &serve) const
{
    serve.validate(gpu);
    if (numReplicas == 0)
        fatal("fleet numReplicas must be positive (got 0)");
    if (initialActiveReplicas > numReplicas) {
        fatal("fleet initialActiveReplicas (%u) exceeds the provisioned "
              "pool of %u replicas",
              initialActiveReplicas, numReplicas);
    }
    if (maxSimCycles == 0)
        fatal("fleet maxSimCycles must be positive (got 0)");
    if (autoscaler.enabled) {
        if (autoscaler.evalIntervalCycles == 0) {
            fatal("autoscaler evalIntervalCycles must be positive "
                  "(got 0)");
        }
        if (autoscaler.minReplicas == 0 ||
            autoscaler.minReplicas > numReplicas) {
            fatal("autoscaler minReplicas (%u) must be in [1, %u]",
                  autoscaler.minReplicas, numReplicas);
        }
        if (autoscaler.queueDepthSlo <= 0.0) {
            fatal("autoscaler queueDepthSlo must be positive (got %g)",
                  autoscaler.queueDepthSlo);
        }
        if (autoscaler.scaleDownQueueDepth >= autoscaler.queueDepthSlo) {
            fatal("autoscaler scaleDownQueueDepth (%g) must be below "
                  "queueDepthSlo (%g): without a hysteresis band the "
                  "fleet flaps",
                  autoscaler.scaleDownQueueDepth,
                  autoscaler.queueDepthSlo);
        }
    }
}

std::string
FleetConfig::describe() const
{
    std::string out = strprintf(
        "fleet: %u replicas (%u active), routing %s", numReplicas,
        resolvedInitialActive(), routingPolicyName(routing));
    if (autoscaler.enabled) {
        out += strprintf(", autoscaler slo %g every %llu cycles",
                         autoscaler.queueDepthSlo,
                         static_cast<unsigned long long>(
                             autoscaler.evalIntervalCycles));
    }
    return out;
}

} // namespace rcoal::fleet
