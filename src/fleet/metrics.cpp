/**
 * @file
 * FleetReport::describe.
 */

#include "rcoal/fleet/metrics.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::fleet {

namespace {

/** One "latency" line; an empty series says so instead of fake zeros. */
std::string
latencyLine(const char *label, const serve::LatencySummary &summary)
{
    if (summary.count == 0)
        return strprintf("  latency %s no samples\n", label);
    return strprintf("  latency %s p50 %.0f p95 %.0f p99 %.0f "
                     "p999 %.0f mean %.0f max %.0f cycles (n=%zu)\n",
                     label, summary.p50, summary.p95, summary.p99,
                     summary.p999, summary.mean, summary.max,
                     summary.count);
}

} // namespace

std::string
FleetReport::describe() const
{
    std::string out;
    out += strprintf("fleet completed %zu requests across %zu replicas "
                     "in %llu cycles (%.1f req/s, %.2f active "
                     "replicas avg)\n",
                     completed.size(), replicas.size(),
                     static_cast<unsigned long long>(totalCycles),
                     throughputReqPerSec, meanActiveReplicas);
    out += latencyLine("all  ", allLatency);
    out += latencyLine("probe", probeLatency);
    out += strprintf("  admitted %llu rejected %llu; autoscaler "
                     "actions %zu\n",
                     static_cast<unsigned long long>(admitted),
                     static_cast<unsigned long long>(rejected),
                     autoscalerActions.size());
    for (const ReplicaReport &r : replicas) {
        out += strprintf("  replica %u (%s): completed %zu "
                         "(%zu probes), admitted %llu rejected %llu, "
                         "kernels %llu, queue mean %.2f max %zu, "
                         "active %llu cycles\n",
                         r.replica, r.finalState.c_str(), r.completed,
                         r.probeCompleted,
                         static_cast<unsigned long long>(r.admitted),
                         static_cast<unsigned long long>(r.rejected),
                         static_cast<unsigned long long>(
                             r.kernelsLaunched),
                         r.meanQueueDepth, r.maxQueueDepth,
                         static_cast<unsigned long long>(
                             r.activeCycles));
        out += latencyLine("  all  ", r.allLatency);
    }
    for (const AutoscalerAction &a : autoscalerActions) {
        out += strprintf("  autoscale @%llu: %u -> %u replicas "
                         "(mean depth %.2f)\n",
                         static_cast<unsigned long long>(a.cycle),
                         a.fromReplicas, a.toReplicas,
                         a.meanQueueDepth);
    }
    return out;
}

} // namespace rcoal::fleet
