/**
 * @file
 * QueueDepthAutoscaler implementation.
 */

#include "rcoal/fleet/autoscaler.hpp"

#include <algorithm>
#include <string>

#include "rcoal/common/logging.hpp"

namespace rcoal::fleet {

QueueDepthAutoscaler::QueueDepthAutoscaler(
    const AutoscalerConfig &config, telemetry::MetricRegistry &registry,
    unsigned num_replicas)
    : cfg(config),
      reg(registry),
      numReplicas(num_replicas),
      nextEval(config.evalIntervalCycles),
      sloGauge(registry.gauge(
          "rcoal_fleet_autoscaler_depth_slo",
          "Mean queue depth per active replica the fleet scales to")),
      desiredGauge(registry.gauge(
          "rcoal_fleet_autoscaler_desired_replicas",
          "Active replica count the autoscaler last asked for"))
{
    RCOAL_ASSERT(cfg.enabled, "autoscaler constructed while disabled");
    sloGauge.set(cfg.queueDepthSlo);
    desiredGauge.set(0.0);
}

unsigned
QueueDepthAutoscaler::evaluate(Cycle now, unsigned active_replicas)
{
    RCOAL_ASSERT(now == nextEval,
                 "autoscaler evaluated at %llu, grid expected %llu",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(nextEval));
    nextEval += cfg.evalIntervalCycles;
    RCOAL_ASSERT(active_replicas >= 1, "autoscaler with empty fleet");

    // The scaler's entire world view comes back out of the registry —
    // the gauges the fleet published and the SLO an operator could
    // retune live.
    double depth_sum = 0.0;
    for (unsigned r = 0; r < active_replicas; ++r) {
        depth_sum += reg.readValue(
            "rcoal_fleet_queue_depth",
            {{"replica", std::to_string(r)}});
    }
    const double mean_depth =
        depth_sum / static_cast<double>(active_replicas);
    const double slo = reg.readValue("rcoal_fleet_autoscaler_depth_slo");

    unsigned desired = active_replicas;
    if (mean_depth > slo)
        desired = std::min(active_replicas + 1, numReplicas);
    else if (mean_depth < cfg.scaleDownQueueDepth)
        desired = std::max(active_replicas - 1, cfg.minReplicas);

    if (desired != active_replicas && actedYet &&
        now - lastActionCycle < cfg.cooldownCycles) {
        desired = active_replicas; // Cooling down.
    }
    if (desired != active_replicas) {
        lastActionCycle = now;
        actedYet = true;
        log.push_back(AutoscalerAction{now, active_replicas, desired,
                                       mean_depth});
    }
    desiredGauge.set(static_cast<double>(desired));
    return desired;
}

} // namespace rcoal::fleet
