/**
 * @file
 * FleetServer implementation: the multi-replica event loop.
 */

#include "rcoal/fleet/fleet.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "rcoal/common/logging.hpp"
#include "rcoal/common/rng.hpp"
#include "rcoal/fleet/autoscaler.hpp"
#include "rcoal/fleet/replica.hpp"
#include "rcoal/fleet/router.hpp"
#include "rcoal/serve/load_generator.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/sampler.hpp"

namespace rcoal::fleet {

namespace {

/** Fleet-layer instruments; null when telemetry is off. */
struct FleetCells
{
    std::vector<telemetry::Gauge *> queueDepth; ///< Per replica.
    telemetry::Gauge *activeReplicas = nullptr;
    telemetry::Counter *admitted = nullptr;
    telemetry::Counter *rejected = nullptr;
    telemetry::Counter *completed = nullptr;
    telemetry::Counter *probeCompleted = nullptr;
    telemetry::Counter *kernelsLaunched = nullptr;
};

/** Register (or look up) the per-replica depth gauges in @p reg. */
std::vector<telemetry::Gauge *>
depthGauges(telemetry::MetricRegistry &reg, unsigned num_replicas)
{
    std::vector<telemetry::Gauge *> out;
    out.reserve(num_replicas);
    for (unsigned r = 0; r < num_replicas; ++r) {
        out.push_back(&reg.gauge(
            "rcoal_fleet_queue_depth",
            "Requests waiting in a replica's admission queue",
            {{"replica", std::to_string(r)}}));
    }
    return out;
}

} // namespace

FleetServer::FleetServer(const sim::GpuConfig &gpu,
                         const serve::ServeConfig &serve,
                         const FleetConfig &fleet,
                         std::span<const std::uint8_t> key)
    : gpuConfig(gpu),
      serveConfig(serve),
      fleetConfig(fleet),
      secretKey(key.begin(), key.end())
{
    fleetConfig.validate(gpuConfig, serveConfig);
}

FleetReport
FleetServer::run(const FleetWorkloadSpec &spec,
                 const FleetTelemetry *telemetry) const
{
    RCOAL_ASSERT(spec.probeSamples > 0, "fleet workload without probes");
    spec.tenants.validate();
    const unsigned num_replicas = fleetConfig.numReplicas;
    const int pin = spec.pinProbesToReplica;
    if (pin >= 0 && static_cast<unsigned>(pin) >= num_replicas) {
        fatal("probes pinned to replica %d but the fleet has %u",
              pin, num_replicas);
    }
    const unsigned initial_active = fleetConfig.resolvedInitialActive();
    if (pin >= 0 && static_cast<unsigned>(pin) >= initial_active) {
        fatal("probes pinned to replica %d, which is not active at "
              "start (%u active)",
              pin, initial_active);
    }
    if (pin >= 0 && fleetConfig.autoscaler.enabled &&
        static_cast<unsigned>(pin) >= fleetConfig.autoscaler.minReplicas) {
        fatal("probes pinned to replica %d, which the autoscaler may "
              "drain (minReplicas %u); pin below minReplicas",
              pin, fleetConfig.autoscaler.minReplicas);
    }

    // Replica i's machine draws its subwarp randomness from an
    // independently derived seed, so replicas behave like distinct
    // physical devices of the same SKU.
    std::vector<std::unique_ptr<Replica>> replicas;
    replicas.reserve(num_replicas);
    for (unsigned r = 0; r < num_replicas; ++r) {
        sim::GpuConfig replica_gpu = gpuConfig;
        replica_gpu.seed = Rng::deriveSeed(gpuConfig.seed, r);
        replicas.push_back(std::make_unique<Replica>(
            r, replica_gpu, serveConfig, secretKey,
            /*active=*/r < initial_active));
    }
    unsigned active_count = initial_active;

    serve::ClosedLoopGenerator probes(
        /*clients=*/1, spec.probeThinkCycles, spec.probeLines,
        spec.probeSeed, /*first_id=*/0, /*probes=*/true);
    TenantLoadModel tenants(spec.tenants);
    Router router(fleetConfig.routing);

    // The autoscaler reads its inputs and its SLO from a metric
    // registry; with no sampler attached the fleet brings its own, so
    // scaling works (and stays deterministic) without observers.
    telemetry::TelemetrySampler *sampler =
        telemetry != nullptr ? telemetry->sampler : nullptr;
    telemetry::FleetLeakageAuditor *auditor =
        telemetry != nullptr ? telemetry->auditor : nullptr;
    spans::SpanCollector *span_collector =
        telemetry != nullptr ? telemetry->spans : nullptr;
    if (span_collector != nullptr) {
        // One collector for the whole fleet; the replica index is the
        // launch-slot namespace, so co-numbered launches on different
        // machines cannot collide.
        for (auto &replica_ptr : replicas) {
            replica_ptr->scheduler().setSpanCollector(
                span_collector, replica_ptr->index());
        }
    }
    telemetry::MetricRegistry own_registry;
    telemetry::MetricRegistry &reg =
        sampler != nullptr ? sampler->registry() : own_registry;

    FleetCells cells;
    cells.queueDepth = depthGauges(reg, num_replicas);
    std::unique_ptr<QueueDepthAutoscaler> autoscaler;
    if (fleetConfig.autoscaler.enabled) {
        autoscaler = std::make_unique<QueueDepthAutoscaler>(
            fleetConfig.autoscaler, reg, num_replicas);
    }

    FleetReport report;
    unsigned probe_completions = 0;
    std::uint64_t completed_count = 0;
    std::uint64_t active_cycle_sum = 0;
    std::vector<serve::Request> arrivals;
    std::vector<Replica *> routable;
    serve::StreamingLatency all_latency;
    serve::StreamingLatency probe_latency;

    if (sampler != nullptr) {
        cells.activeReplicas =
            &reg.gauge("rcoal_fleet_active_replicas",
                       "Replicas currently routable");
        cells.admitted =
            &reg.counter("rcoal_fleet_admitted_total",
                         "Requests admitted fleet-wide");
        cells.rejected =
            &reg.counter("rcoal_fleet_rejected_total",
                         "Requests rejected fleet-wide");
        cells.completed =
            &reg.counter("rcoal_fleet_completed_total",
                         "Requests completed fleet-wide");
        cells.probeCompleted =
            &reg.counter("rcoal_fleet_probe_completed_total",
                         "Probe requests completed fleet-wide");
        cells.kernelsLaunched =
            &reg.counter("rcoal_fleet_kernels_launched_total",
                         "Batch kernels launched fleet-wide");
        sampler->addCollector([&](Cycle) {
            std::uint64_t admitted_sum = 0;
            std::uint64_t rejected_sum = 0;
            std::uint64_t launched_sum = 0;
            for (unsigned r = 0; r < num_replicas; ++r) {
                Replica &replica = *replicas[r];
                cells.queueDepth[r]->set(
                    static_cast<double>(replica.queue().size()));
                admitted_sum += replica.queue().admitted();
                rejected_sum += replica.queue().rejected();
                launched_sum += replica.scheduler().kernelsLaunched();
            }
            cells.activeReplicas->set(
                static_cast<double>(active_count));
            cells.admitted->set(admitted_sum);
            cells.rejected->set(rejected_sum);
            cells.completed->set(completed_count);
            cells.probeCompleted->set(probe_completions);
            cells.kernelsLaunched->set(launched_sum);
        });
        sampler->track("fleet_active_replicas", [&active_count] {
            return static_cast<double>(active_count);
        });
        sampler->track("fleet_queue_depth", [&replicas] {
            std::size_t sum = 0;
            for (const auto &replica : replicas)
                sum += replica->queue().size();
            return static_cast<double>(sum);
        });
        if (auditor != nullptr) {
            sampler->track("fleet_leakage_correlation", [auditor] {
                return auditor->fleetCorrelation();
            });
        }
        sampler->alignAfter(0);
    }

    const bool skipping =
        replicas.front()->scheduler().gpu().cycleSkippingEnabled();

    Cycle now = 0;
    while (true) {
        // 1. Retire finished batches on every in-service replica, in
        //    replica order; notify the probe client and the auditors.
        for (auto &replica_ptr : replicas) {
            Replica &replica = *replica_ptr;
            if (!replica.inService())
                continue;
            for (serve::CompletedRequest &done :
                 replica.scheduler().collectCompleted(now)) {
                const auto latency =
                    static_cast<double>(done.latencyCycles());
                all_latency.observe(latency);
                replica.observeCompletion(done);
                ++completed_count;
                if (done.isProbe) {
                    probe_latency.observe(latency);
                    if (auditor != nullptr) {
                        auditor->observe(
                            replica.index(),
                            static_cast<double>(
                                done.kernelPredictedLastRoundAccesses),
                            done.kernelLastRoundTime);
                    }
                    probes.onCompletion(done.clientId, now);
                    ++probe_completions;
                }
                report.completedReplica.push_back(replica.index());
                report.completed.push_back(std::move(done));
            }
            if (replica.state() == ReplicaState::Draining &&
                replica.drained()) {
                replica.setIdle(now);
            }
        }
        if (probe_completions >= spec.probeSamples)
            break;

        // 2. New arrivals are routed, then pass per-replica admission.
        arrivals.clear();
        probes.poll(now, arrivals);
        tenants.poll(now, arrivals);
        if (!arrivals.empty()) {
            routable.clear();
            for (auto &replica_ptr : replicas) {
                if (replica_ptr->routable())
                    routable.push_back(replica_ptr.get());
            }
            for (serve::Request &request : arrivals) {
                Replica &target =
                    (request.isProbe && pin >= 0)
                        ? *replicas[static_cast<unsigned>(pin)]
                        : router.route(request, routable);
                RCOAL_ASSERT(target.routable(),
                             "request routed to %s replica %u",
                             replicaStateName(target.state()),
                             target.index());
                const int client = request.clientId;
                if (span_collector != nullptr) {
                    request.spanId = span_collector->openRequest();
                    // Route stage: frontend arrival -> routed cycle,
                    // component/detail = chosen replica.
                    span_collector->stampRequest(
                        request.spanId, spans::SpanStage::Route,
                        request.arrival, now, target.index(),
                        static_cast<std::uint16_t>(target.index()));
                }
                const std::uint32_t span_id = request.spanId;
                if (target.queue().tryPush(std::move(request)))
                    continue;
                if (span_collector != nullptr)
                    span_collector->abandon(span_id);
                // Same contract as serve: a rejected closed-loop
                // client must be handed its request back or it waits
                // forever.
                if (client >= 0)
                    probes.onRejection(client, std::move(request), now);
            }
        }

        // 3. Autoscaling on its evaluation grid: publish the depth
        //    gauges, let the scaler read them (and the SLO) back from
        //    the registry, then grow into the lowest idle replica or
        //    drain the highest active one.
        if (autoscaler != nullptr && now == autoscaler->nextEvalCycle()) {
            for (unsigned r = 0; r < num_replicas; ++r) {
                cells.queueDepth[r]->set(static_cast<double>(
                    replicas[r]->queue().size()));
            }
            const unsigned desired =
                autoscaler->evaluate(now, active_count);
            while (active_count < desired)
                replicas[active_count++]->activate(now);
            while (active_count > desired)
                replicas[--active_count]->startDraining(now);
        }

        // 4. Launch batches wherever a gang is free; draining replicas
        //    keep launching until their queue is empty.
        for (auto &replica_ptr : replicas) {
            Replica &replica = *replica_ptr;
            if (!replica.inService())
                continue;
            while (replica.scheduler().gangFree()) {
                std::vector<serve::Request> batch =
                    replica.batcher().formBatch(replica.queue(), now);
                if (batch.empty())
                    break;
                replica.scheduler().launchBatch(std::move(batch), now);
            }
        }

        // 5. Occupancy accounting for this cycle, then advance every
        //    machine together — idle replicas too, so a replica's
        //    device state depends only on the cycle count, never on
        //    when the autoscaler last used it.
        for (auto &replica_ptr : replicas)
            replica_ptr->recordOccupancy(1);
        active_cycle_sum += active_count;

        for (auto &replica_ptr : replicas)
            replica_ptr->scheduler().tick();
        ++now;
        if (now > fleetConfig.maxSimCycles) {
            fatal("fleet simulation still running after %llu cycles "
                  "(%u/%u probes done) — livelocked workload?",
                  static_cast<unsigned long long>(now),
                  probe_completions, spec.probeSamples);
        }
        if (sampler != nullptr && now >= sampler->nextSampleCycle())
            sampler->sampleAt(now);

        // 6. Event-driven sleep across the whole fleet. The candidate
        //    window ends at the earliest event any machine or frontend
        //    component can see; every machine then skips to ONE common
        //    landing cycle — the minimum of the per-machine memory-
        //    clock cutoffs — so the fleet clock never fragments.
        if (!skipping)
            continue;
        bool untaken = false;
        Cycle target = fleetConfig.maxSimCycles + 1;
        for (auto &replica_ptr : replicas) {
            const sim::GpuMachine &machine =
                replica_ptr->scheduler().gpu();
            if (machine.anyCompletedUntaken()) {
                untaken = true;
                break;
            }
            target = std::min(target, machine.nextEventCycle());
        }
        if (untaken || target <= now + 1)
            continue;
        target = std::min(target, probes.nextEventCycle());
        target = std::min(target, tenants.nextEventCycle());
        for (auto &replica_ptr : replicas) {
            Replica &replica = *replica_ptr;
            if (replica.inService() &&
                replica.scheduler().gangFree()) {
                target = std::min(target,
                                  replica.batcher().earliestLaunch(
                                      replica.queue(), now));
            }
        }
        if (sampler != nullptr)
            target = std::min(target, sampler->nextSampleCycle());
        if (autoscaler != nullptr)
            target = std::min(target, autoscaler->nextEvalCycle());
        target = std::min(target, fleetConfig.maxSimCycles + 1);
        if (target <= now + 1)
            continue;

        Cycle landing = target - 1;
        for (auto &replica_ptr : replicas) {
            landing = std::min(
                landing,
                replica_ptr->scheduler().gpu().skipStopCycle(target));
        }
        if (landing <= now)
            continue;
        const Cycle skipped = landing - now;
        for (auto &replica_ptr : replicas) {
            sim::GpuMachine &machine = replica_ptr->scheduler().gpu();
            machine.skipTo(landing + 1);
            RCOAL_ASSERT(machine.now() == landing,
                         "replica %u landed at %llu, fleet at %llu",
                         replica_ptr->index(),
                         static_cast<unsigned long long>(machine.now()),
                         static_cast<unsigned long long>(landing));
            replica_ptr->recordOccupancy(skipped);
        }
        active_cycle_sum += static_cast<std::uint64_t>(active_count) *
                            skipped;
        now = landing;
    }

    report.totalCycles = now;
    report.replicas.reserve(num_replicas);
    for (const auto &replica_ptr : replicas) {
        ReplicaReport rr = replica_ptr->report(now);
        report.admitted += rr.admitted;
        report.rejected += rr.rejected;
        report.replicas.push_back(std::move(rr));
    }
    report.allLatency = all_latency.summary();
    report.probeLatency = probe_latency.summary();
    if (autoscaler != nullptr)
        report.autoscalerActions = autoscaler->actions();
    if (now > 0) {
        report.meanActiveReplicas =
            static_cast<double>(active_cycle_sum) /
            static_cast<double>(now);
        const double seconds = static_cast<double>(now) /
                               (gpuConfig.coreClockMhz * 1e6);
        report.throughputReqPerSec =
            static_cast<double>(report.completed.size()) / seconds;
    }

    if (sampler != nullptr) {
        sampler->collect(now);
        sampler->detachSources();
    }
    return report;
}

} // namespace rcoal::fleet
