/**
 * @file
 * Multi-tenant load model: the traffic a fleet actually faces.
 *
 * Three stacked effects on top of the per-tenant exponential arrival
 * process:
 *  - heavy-tailed per-tenant rates: tenant t's mean interarrival gap is
 *    baseMeanGapCycles * (t+1)^zipfExponent, so a few tenants dominate
 *    the load the way production multi-tenant traffic does;
 *  - a diurnal wave: every tenant's instantaneous rate is modulated by
 *    1 + amplitude * sin(2*pi*t/period) evaluated at the previous
 *    arrival, a deterministic stand-in for day/night load;
 *  - bursts: after any arrival a tenant may enter a burst episode of
 *    burstLength requests whose gaps shrink by burstRateFactor (flash
 *    crowds, retry storms).
 *
 * Everything is counter-based: request k of tenant t draws all of its
 * randomness from Rng::stream(deriveSeed(seed, t), k), and requests are
 * stamped with their scheduled arrival cycle — the model inherits both
 * reproducibility contracts of the single-tenant generators, so fleet
 * results are byte-identical across thread counts and cycle-skipping
 * modes.
 */

#ifndef RCOAL_FLEET_LOAD_MODEL_HPP
#define RCOAL_FLEET_LOAD_MODEL_HPP

#include <vector>

#include "rcoal/common/types.hpp"
#include "rcoal/serve/request.hpp"

namespace rcoal::fleet {

/** Shape of the background tenant population offered to the fleet. */
struct TenantLoadConfig
{
    /** Background tenants; 0 offers no background load at all. */
    unsigned tenants = 4;

    /**
     * Mean interarrival gap of the heaviest tenant (tenant rank 0) in
     * core cycles; must be positive when tenants > 0.
     */
    double baseMeanGapCycles = 2000.0;

    /**
     * Rate skew: tenant rank t arrives (t+1)^zipfExponent times slower
     * than rank 0. 0 gives a uniform population.
     */
    double zipfExponent = 1.0;

    /** Diurnal modulation depth in [0, 1). 0 disables the wave. */
    double diurnalAmplitude = 0.0;

    /** Period of the diurnal wave in core cycles. */
    Cycle diurnalPeriodCycles = 2'000'000;

    /** Per-arrival chance to enter a burst episode. 0 disables. */
    double burstProbability = 0.0;

    /** Requests per burst episode. */
    unsigned burstLength = 8;

    /** Gap divisor while bursting; > 1 means faster arrivals. */
    double burstRateFactor = 4.0;

    /** Request sizes (plaintext lines), drawn uniformly per request. */
    std::vector<unsigned> lineChoices = {32, 64, 96, 128};

    /** Root of every tenant's randomness streams. */
    std::uint64_t seed = 777;

    /** Id of tenant rank 0's first request. */
    std::uint64_t firstId = 1'000'000'000;

    /** Id space reserved per tenant (ids must never collide). */
    std::uint64_t idStride = 1'000'000'000;

    /** Panics (fatal) on inconsistent parameters. */
    void validate() const;
};

/**
 * The deterministic multi-tenant arrival process.
 */
class TenantLoadModel
{
  public:
    explicit TenantLoadModel(TenantLoadConfig config);

    /**
     * Append every request with a scheduled arrival at or before cycle
     * @p now, stamped with that scheduled arrival (not the poll cycle)
     * and carrying its tenant id (1-based; 0 is reserved for probes and
     * single-tenant traffic).
     */
    void poll(Cycle now, std::vector<serve::Request> &out);

    /**
     * Cycle of the earliest next arrival over all tenants
     * (kInvalidCycle when disabled). Primes lazily like poll() would,
     * so consulting the bound never perturbs the arrival sequence.
     */
    Cycle nextEventCycle();

    /** Requests emitted so far. */
    std::uint64_t issued() const { return issuedCount; }

    /** Configured mean gap of tenant rank @p rank (for tests). */
    double meanGapOfRank(unsigned rank) const;

    const TenantLoadConfig &config() const { return cfg; }

  private:
    struct Tenant
    {
        std::uint64_t tenantId = 0; ///< 1-based wire identity.
        double baseMeanGap = 0.0;   ///< Rank-skewed mean gap.
        std::uint64_t seed = 0;     ///< deriveSeed(root, tenantId).
        std::uint64_t nextIndex = 0;
        Cycle nextArrival = 0;
        unsigned burstLeft = 0;
        bool primed = false;
    };

    /** Diurnal rate multiplier at cycle @p at (>= 1 - amplitude > 0). */
    double diurnalMultiplier(Cycle at) const;

    /** Draw tenant @p t's next gap and advance its schedule. */
    void scheduleNext(Tenant &t);

    /** Emit tenant @p t's due request and schedule its successor. */
    void emitOne(Tenant &t, std::vector<serve::Request> &out);

    TenantLoadConfig cfg;
    std::vector<Tenant> tenantsState;
    std::uint64_t issuedCount = 0;
};

} // namespace rcoal::fleet

#endif // RCOAL_FLEET_LOAD_MODEL_HPP
