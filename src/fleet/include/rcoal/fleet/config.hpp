/**
 * @file
 * Configuration of rcoal::fleet: how many GpuMachine+serve replicas the
 * deployment runs, how the router spreads requests over them, and how
 * the queue-depth autoscaler grows and shrinks the active set.
 */

#ifndef RCOAL_FLEET_CONFIG_HPP
#define RCOAL_FLEET_CONFIG_HPP

#include <string>

#include "rcoal/common/types.hpp"
#include "rcoal/serve/config.hpp"
#include "rcoal/sim/config.hpp"

namespace rcoal::fleet {

/** How the frontend picks a replica for an arriving request. */
enum class RoutingPolicy
{
    /** Cycle through the active replicas in index order. */
    RoundRobin,

    /**
     * Send each request to the active replica with the fewest queued
     * requests (ties to the lowest index). Best latency under skewed
     * load; spreads any one tenant — including the attacker — across
     * the whole fleet.
     */
    JoinShortestQueue,

    /**
     * Hash the request's tenant id onto the active set, so a tenant's
     * requests co-locate on one replica (cache/affinity benefits in a
     * real deployment). The attacker's probes all share a tenant and
     * therefore a replica — the policy an attacker prefers.
     */
    TenantAffinity,
};

/** Short display name ("RR", "JSQ", "Affinity"). */
const char *routingPolicyName(RoutingPolicy policy);

/**
 * Queue-depth autoscaler knobs. The autoscaler runs on a fixed
 * evaluation grid in virtual time and reads both its inputs (per-replica
 * queue-depth gauges) and its SLO (the depth target gauge) from the
 * telemetry registry — the same numbers an operator's dashboard shows.
 */
struct AutoscalerConfig
{
    bool enabled = false;

    /** Evaluation grid: decisions at multiples of this cycle count. */
    Cycle evalIntervalCycles = 50'000;

    /**
     * The SLO: mean queue depth per active replica the deployment is
     * willing to run at. Published as the gauge
     * rcoal_fleet_autoscaler_depth_slo; evaluations read it back from
     * the registry. Above it the fleet scales up.
     */
    double queueDepthSlo = 8.0;

    /**
     * Mean depth below which a replica is surplus; scaling down only
     * happens under this. Must be < queueDepthSlo (hysteresis band).
     */
    double scaleDownQueueDepth = 1.0;

    /** Minimum cycles between two scaling actions. */
    Cycle cooldownCycles = 200'000;

    /** The active set never shrinks below this many replicas. */
    unsigned minReplicas = 1;
};

/**
 * Fleet-level knobs. Per-replica serving behaviour (queue capacity,
 * batching, SM gangs) stays in serve::ServeConfig; the GPU itself in
 * sim::GpuConfig. Replica i's machine reseeds the GPU config with
 * Rng::deriveSeed(gpu.seed, i), so replicas draw independent subwarp
 * randomness while the whole fleet remains a pure function of its
 * configuration.
 */
struct FleetConfig
{
    /** Replicas provisioned (the autoscaler works within this pool). */
    unsigned numReplicas = 2;

    RoutingPolicy routing = RoutingPolicy::RoundRobin;

    /**
     * Replicas active at simulation start; 0 means "all provisioned"
     * (or AutoscalerConfig::minReplicas when the autoscaler is on,
     * letting scale-up be observed from a cold fleet).
     */
    unsigned initialActiveReplicas = 0;

    AutoscalerConfig autoscaler;

    /** Hard wall for one fleet simulation (livelock guard). */
    Cycle maxSimCycles = 500'000'000;

    /** Replicas active at cycle 0 after defaulting rules. */
    unsigned resolvedInitialActive() const;

    /** Panics (fatal) on inconsistent parameters. */
    void validate(const sim::GpuConfig &gpu,
                  const serve::ServeConfig &serve) const;

    /** One-line human-readable summary. */
    std::string describe() const;
};

} // namespace rcoal::fleet

#endif // RCOAL_FLEET_CONFIG_HPP
