/**
 * @file
 * One serving replica inside the fleet: a GpuMachine wrapped by the
 * serve-layer admission queue, batcher and kernel scheduler, plus the
 * per-replica accounting the fleet report aggregates.
 *
 * The replica does not own a simulation loop — FleetServer drives every
 * replica's machine on one shared virtual clock (see fleet.cpp), which
 * is what keeps a multi-replica run bit-reproducible with cycle
 * skipping on or off.
 */

#ifndef RCOAL_FLEET_REPLICA_HPP
#define RCOAL_FLEET_REPLICA_HPP

#include <span>

#include "rcoal/fleet/metrics.hpp"
#include "rcoal/serve/batcher.hpp"
#include "rcoal/serve/request_queue.hpp"
#include "rcoal/serve/scheduler.hpp"

namespace rcoal::fleet {

/** Lifecycle of a replica under the autoscaler. */
enum class ReplicaState
{
    Active,   ///< Routable: receives new requests.
    Draining, ///< Not routable; finishes its queue and resident work.
    Idle,     ///< Empty and unplugged; ticks but serves nothing.
};

/** Short display name ("active", "draining", "idle"). */
const char *replicaStateName(ReplicaState state);

class Replica
{
  public:
    /**
     * @param index position in the fleet (stable identity).
     * @param gpu the device config; its seed must already be derived
     *        per replica by the caller (FleetServer does).
     * @param serve per-replica frontend knobs.
     * @param key the service's secret AES key.
     * @param active start Active (routable) or Idle (warm standby the
     *        autoscaler can grow into).
     */
    Replica(unsigned index, const sim::GpuConfig &gpu,
            const serve::ServeConfig &serve,
            std::span<const std::uint8_t> key, bool active = true);

    unsigned index() const { return idx; }
    ReplicaState state() const { return lifecycle; }

    /** True when the router may send new requests here. */
    bool routable() const { return lifecycle == ReplicaState::Active; }

    /** True when the replica participates in serving at all. */
    bool inService() const { return lifecycle != ReplicaState::Idle; }

    /** Queue empty and no kernel resident — safe to go idle. */
    bool drained() const
    {
        return queue_.empty() && !scheduler_.anyResident();
    }

    void activate(Cycle now);
    void startDraining(Cycle now);
    void setIdle(Cycle now);

    serve::RequestQueue &queue() { return queue_; }
    const serve::RequestQueue &queue() const { return queue_; }
    serve::Batcher &batcher() { return batcher_; }
    serve::KernelScheduler &scheduler() { return scheduler_; }
    const serve::KernelScheduler &scheduler() const { return scheduler_; }

    /** Fold @p cycles cycles of the current occupancy into the means
     * (1 for a stepped cycle, the window length for a skipped one). */
    void recordOccupancy(Cycle cycles);

    /** Account one completed request served by this replica. */
    void observeCompletion(const serve::CompletedRequest &done);

    /** Cycles spent Active so far (advanced with recordOccupancy). */
    Cycle activeCycles() const { return activeCycleCount; }

    /** Snapshot the per-replica report after @p total_cycles. */
    ReplicaReport report(Cycle total_cycles) const;

  private:
    unsigned idx;
    ReplicaState lifecycle = ReplicaState::Active;
    serve::RequestQueue queue_;
    serve::Batcher batcher_;
    serve::KernelScheduler scheduler_;

    serve::StreamingLatency allLatency;
    serve::StreamingLatency probeLatency;
    std::size_t completedCount = 0;
    std::size_t probeCompletedCount = 0;
    std::uint64_t depthSum = 0;
    std::size_t maxDepth = 0;
    Cycle activeCycleCount = 0;
};

} // namespace rcoal::fleet

#endif // RCOAL_FLEET_REPLICA_HPP
