/**
 * @file
 * Fleet-level reporting: per-replica summaries, the fleet aggregate,
 * and the autoscaler's action log.
 */

#ifndef RCOAL_FLEET_METRICS_HPP
#define RCOAL_FLEET_METRICS_HPP

#include <string>
#include <vector>

#include "rcoal/serve/metrics.hpp"

namespace rcoal::fleet {

/** One scaling decision the autoscaler took. */
struct AutoscalerAction
{
    Cycle cycle = 0;
    unsigned fromReplicas = 0;
    unsigned toReplicas = 0;
    /** Mean queue depth per active replica that triggered it. */
    double meanQueueDepth = 0.0;
};

/** What one replica did over the run. */
struct ReplicaReport
{
    unsigned replica = 0;
    /** Lifecycle state at the end of the run. */
    std::string finalState;

    std::size_t completed = 0;
    std::size_t probeCompleted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t kernelsLaunched = 0;

    serve::LatencySummary allLatency;
    serve::LatencySummary probeLatency;

    double meanQueueDepth = 0.0;
    std::size_t maxQueueDepth = 0;

    /** Cycles the replica spent Active. */
    Cycle activeCycles = 0;
};

/** Everything one fleet simulation produced. */
struct FleetReport
{
    /** Every completed request fleet-wide, in completion order (ties
     * broken by replica index). */
    std::vector<serve::CompletedRequest> completed;

    /** completedReplica[i] is the replica that served completed[i]. */
    std::vector<unsigned> completedReplica;

    std::vector<ReplicaReport> replicas;

    serve::LatencySummary allLatency;   ///< Fleet-wide, every request.
    serve::LatencySummary probeLatency; ///< Fleet-wide, probes only.

    Cycle totalCycles = 0;
    double throughputReqPerSec = 0.0;

    std::uint64_t admitted = 0; ///< Summed over replicas.
    std::uint64_t rejected = 0;

    std::vector<AutoscalerAction> autoscalerActions;

    /** Time-averaged number of Active replicas. */
    double meanActiveReplicas = 0.0;

    /** Multi-line human-readable dump (fleet line + one per replica). */
    std::string describe() const;
};

} // namespace rcoal::fleet

#endif // RCOAL_FLEET_METRICS_HPP
