/**
 * @file
 * Queue-depth autoscaler: sizes the active replica set from the same
 * telemetry an operator's dashboard shows.
 *
 * Everything the scaler consumes goes through the MetricRegistry: the
 * fleet publishes per-replica queue-depth gauges
 * (rcoal_fleet_queue_depth{replica="i"}) before each evaluation, the
 * SLO itself lives in the rcoal_fleet_autoscaler_depth_slo gauge, and
 * evaluate() reads both back with MetricRegistry::readValue. Decisions
 * land on a fixed virtual-time grid with a cooldown, so a fleet run's
 * scaling history is exactly reproducible.
 */

#ifndef RCOAL_FLEET_AUTOSCALER_HPP
#define RCOAL_FLEET_AUTOSCALER_HPP

#include <vector>

#include "rcoal/fleet/config.hpp"
#include "rcoal/fleet/metrics.hpp"
#include "rcoal/telemetry/registry.hpp"

namespace rcoal::fleet {

class QueueDepthAutoscaler
{
  public:
    /**
     * Registers the SLO gauge (set from @p config.queueDepthSlo) and
     * the desired-replicas gauge in @p registry. The per-replica depth
     * gauges are the fleet's to publish; the scaler only reads them.
     */
    QueueDepthAutoscaler(const AutoscalerConfig &config,
                         telemetry::MetricRegistry &registry,
                         unsigned num_replicas);

    /** The next evaluation-grid cycle (a skip bound for the fleet). */
    Cycle nextEvalCycle() const { return nextEval; }

    /**
     * Evaluate at cycle @p now (must equal nextEvalCycle()): read the
     * depth gauges of the @p active_replicas lowest-indexed replicas
     * and the SLO gauge back from the registry, and return the desired
     * active count in [minReplicas, num_replicas]. Applies the
     * cooldown; logs an action whenever the desired count changes.
     */
    unsigned evaluate(Cycle now, unsigned active_replicas);

    const std::vector<AutoscalerAction> &actions() const
    {
        return log;
    }

  private:
    AutoscalerConfig cfg;
    telemetry::MetricRegistry &reg;
    unsigned numReplicas;
    Cycle nextEval;
    Cycle lastActionCycle = 0;
    bool actedYet = false;
    std::vector<AutoscalerAction> log;

    telemetry::Gauge &sloGauge;
    telemetry::Gauge &desiredGauge;
};

} // namespace rcoal::fleet

#endif // RCOAL_FLEET_AUTOSCALER_HPP
