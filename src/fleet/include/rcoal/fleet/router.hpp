/**
 * @file
 * Request router: picks a replica for every arriving request under a
 * pluggable policy. Deterministic — routing is a pure function of the
 * router's own state and the candidate set, never of wall time.
 */

#ifndef RCOAL_FLEET_ROUTER_HPP
#define RCOAL_FLEET_ROUTER_HPP

#include <vector>

#include "rcoal/fleet/config.hpp"
#include "rcoal/serve/request.hpp"

namespace rcoal::fleet {

class Replica;

class Router
{
  public:
    explicit Router(RoutingPolicy policy);

    /**
     * Pick the replica for @p request from @p routable (the Active
     * replicas in ascending index order; must be non-empty). Queue
     * depths are read live, so a burst of simultaneous arrivals sees
     * the pushes of the requests routed before it.
     */
    Replica &route(const serve::Request &request,
                   const std::vector<Replica *> &routable);

    RoutingPolicy policy() const { return routingPolicy; }

  private:
    RoutingPolicy routingPolicy;
    /** Round-robin position; survives active-set changes. */
    std::uint64_t rrCursor = 0;
};

} // namespace rcoal::fleet

#endif // RCOAL_FLEET_ROUTER_HPP
