/**
 * @file
 * FleetServer: N GpuMachine+serve replicas behind one deterministic
 * router, driven on a single shared virtual clock.
 *
 * The fleet loop generalizes rcoal::serve's event loop to many
 * machines. Replicas never run ahead of the shared clock: when cycle
 * skipping is on, the loop takes the minimum of every machine's
 * skipStopCycle() (plus the frontend's arrival, batching, sampling and
 * autoscaling bounds) and skips all machines to exactly that common
 * cycle. That is what makes a fleet run's output byte-identical with
 * skipping on or off — and, since every loop is single-threaded and
 * all randomness is counter-based, across any RCOAL_THREADS setting.
 */

#ifndef RCOAL_FLEET_FLEET_HPP
#define RCOAL_FLEET_FLEET_HPP

#include <span>
#include <vector>

#include "rcoal/fleet/config.hpp"
#include "rcoal/fleet/load_model.hpp"
#include "rcoal/fleet/metrics.hpp"

namespace rcoal::spans {
class SpanCollector;
} // namespace rcoal::spans

namespace rcoal::telemetry {
class FleetLeakageAuditor;
class TelemetrySampler;
} // namespace rcoal::telemetry

namespace rcoal::fleet {

/**
 * Traffic offered to the fleet: the attacker's closed-loop probe client
 * plus the multi-tenant background population.
 */
struct FleetWorkloadSpec
{
    /** Run until this many probe requests completed. */
    unsigned probeSamples = 64;

    /** Plaintext lines per probe. */
    unsigned probeLines = 32;

    /** Root of the probe plaintext streams (matches the solo harness). */
    std::uint64_t probeSeed = 2024;

    /** Probe client think time between completions. */
    Cycle probeThinkCycles = 200;

    /**
     * Replica the attacker pins probes to, bypassing the router
     * (modeling an attacker who can steer placement); -1 sprays probes
     * through the configured routing policy like any other request.
     * A pinned replica must stay routable, so it must be below the
     * autoscaler's minReplicas (replica 0 always qualifies).
     */
    int pinProbesToReplica = -1;

    /** Background tenant population (tenants = 0 disables). */
    TenantLoadConfig tenants;
};

/**
 * Live observability for one fleet run; both optional, but the auditor
 * requires the sampler (its instruments live in the sampler's
 * registry). Must outlive run(); run-local callbacks are detached
 * before it returns, mirroring serve::ServeTelemetry.
 */
struct FleetTelemetry
{
    telemetry::TelemetrySampler *sampler = nullptr;
    telemetry::FleetLeakageAuditor *auditor = nullptr;

    /**
     * Optional fleet-wide span tracing: one collector shared by every
     * replica (launch slots disambiguated by replica index), so a
     * request's Route stamp and its in-kernel stage stamps land in one
     * slab regardless of placement. Detached before run() returns.
     */
    spans::SpanCollector *spans = nullptr;
};

/**
 * Runs one fleet scenario to completion.
 */
class FleetServer
{
  public:
    /**
     * @param gpu the per-replica device config; replica i reseeds it
     *        with Rng::deriveSeed(gpu.seed, i).
     * @param serve per-replica frontend knobs (validated against gpu).
     * @param fleet fleet sizing, routing and autoscaling.
     * @param key the service's secret AES key (shared by all replicas,
     *        as one deployment's replicas share one keystore).
     */
    FleetServer(const sim::GpuConfig &gpu,
                const serve::ServeConfig &serve, const FleetConfig &fleet,
                std::span<const std::uint8_t> key);

    /**
     * Simulate until @p spec.probeSamples probe requests completed and
     * return the fleet-wide report. fatal()s past
     * FleetConfig::maxSimCycles (livelock guard).
     */
    FleetReport run(const FleetWorkloadSpec &spec,
                    const FleetTelemetry *telemetry = nullptr) const;

  private:
    sim::GpuConfig gpuConfig;
    serve::ServeConfig serveConfig;
    FleetConfig fleetConfig;
    std::vector<std::uint8_t> secretKey;
};

} // namespace rcoal::fleet

#endif // RCOAL_FLEET_FLEET_HPP
