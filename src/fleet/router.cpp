/**
 * @file
 * Router implementation.
 */

#include "rcoal/fleet/router.hpp"

#include "rcoal/common/logging.hpp"
#include "rcoal/common/rng.hpp"
#include "rcoal/fleet/replica.hpp"

namespace rcoal::fleet {

Router::Router(RoutingPolicy policy) : routingPolicy(policy) {}

Replica &
Router::route(const serve::Request &request,
              const std::vector<Replica *> &routable)
{
    RCOAL_ASSERT(!routable.empty(), "routing with no active replicas");
    switch (routingPolicy) {
      case RoutingPolicy::RoundRobin: {
        const std::size_t pick =
            static_cast<std::size_t>(rrCursor++ % routable.size());
        return *routable[pick];
      }
      case RoutingPolicy::JoinShortestQueue: {
        Replica *best = routable.front();
        for (Replica *candidate : routable) {
            if (candidate->queue().size() < best->queue().size())
                best = candidate;
        }
        return *best;
      }
      case RoutingPolicy::TenantAffinity: {
        // One SplitMix64 step scrambles the tenant id so consecutive
        // tenants do not land on consecutive replicas. The mapping is
        // stable while the active set is; a scaling action re-shards
        // (as consistent-hashing-free production routers do).
        SplitMix64 hash(request.tenant ^ 0x7e3f'5ca1'b06d'9e24ull);
        const std::size_t pick =
            static_cast<std::size_t>(hash.next() % routable.size());
        return *routable[pick];
      }
    }
    fatal("unknown routing policy %d",
          static_cast<int>(routingPolicy));
}

} // namespace rcoal::fleet
