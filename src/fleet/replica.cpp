/**
 * @file
 * Replica implementation.
 */

#include "rcoal/fleet/replica.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"

namespace rcoal::fleet {

const char *
replicaStateName(ReplicaState state)
{
    switch (state) {
      case ReplicaState::Active:
        return "active";
      case ReplicaState::Draining:
        return "draining";
      case ReplicaState::Idle:
        return "idle";
    }
    return "?";
}

Replica::Replica(unsigned index, const sim::GpuConfig &gpu,
                 const serve::ServeConfig &serve,
                 std::span<const std::uint8_t> key, bool active)
    : idx(index),
      lifecycle(active ? ReplicaState::Active : ReplicaState::Idle),
      queue_(serve.queueCapacity),
      batcher_(serve),
      scheduler_(gpu, serve, key)
{
}

void
Replica::activate([[maybe_unused]] Cycle now)
{
    RCOAL_ASSERT(lifecycle != ReplicaState::Active,
                 "replica %u activated twice", idx);
    lifecycle = ReplicaState::Active;
}

void
Replica::startDraining([[maybe_unused]] Cycle now)
{
    RCOAL_ASSERT(lifecycle == ReplicaState::Active,
                 "replica %u drained while %s", idx,
                 replicaStateName(lifecycle));
    lifecycle = ReplicaState::Draining;
}

void
Replica::setIdle([[maybe_unused]] Cycle now)
{
    RCOAL_ASSERT(lifecycle == ReplicaState::Draining,
                 "replica %u idled while %s", idx,
                 replicaStateName(lifecycle));
    RCOAL_ASSERT(drained(), "replica %u idled with work pending", idx);
    lifecycle = ReplicaState::Idle;
}

void
Replica::recordOccupancy(Cycle cycles)
{
    depthSum += queue_.size() * cycles;
    maxDepth = std::max(maxDepth, queue_.size());
    if (lifecycle == ReplicaState::Active)
        activeCycleCount += cycles;
}

void
Replica::observeCompletion(const serve::CompletedRequest &done)
{
    const auto latency = static_cast<double>(done.latencyCycles());
    allLatency.observe(latency);
    ++completedCount;
    if (done.isProbe) {
        probeLatency.observe(latency);
        ++probeCompletedCount;
    }
}

ReplicaReport
Replica::report(Cycle total_cycles) const
{
    ReplicaReport out;
    out.replica = idx;
    out.finalState = replicaStateName(lifecycle);
    out.completed = completedCount;
    out.probeCompleted = probeCompletedCount;
    out.admitted = queue_.admitted();
    out.rejected = queue_.rejected();
    out.kernelsLaunched = scheduler_.kernelsLaunched();
    out.allLatency = allLatency.summary();
    out.probeLatency = probeLatency.summary();
    out.maxQueueDepth = maxDepth;
    out.activeCycles = activeCycleCount;
    if (total_cycles > 0) {
        out.meanQueueDepth = static_cast<double>(depthSum) /
                             static_cast<double>(total_cycles);
    }
    return out;
}

} // namespace rcoal::fleet
