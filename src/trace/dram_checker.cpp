#include "rcoal/trace/dram_checker.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::trace {

DramProtocolChecker::DramProtocolChecker(const Params &params, Mode mode)
    : p(params), mode(mode), banks(params.banks),
      busBusyUntil(params.pseudoChannels, 0),
      lastActivateGroup(params.bankGroups, kInvalidCycle),
      lastReadGroup(params.bankGroups, kInvalidCycle),
      lastReadAnyPc(params.pseudoChannels, kInvalidCycle)
{
    RCOAL_ASSERT(p.banks > 0, "checker needs at least one bank");
    RCOAL_ASSERT(p.burstCycles > 0, "checker needs a non-zero burst");
    RCOAL_ASSERT(p.bankGroups > 0 && p.pseudoChannels > 0,
                 "checker needs positive bankGroups/pseudoChannels");
    RCOAL_ASSERT(p.banks % p.pseudoChannels == 0,
                 "banks (%u) must split evenly across pseudo-channels (%u)",
                 p.banks, p.pseudoChannels);
}

void
DramProtocolChecker::report(const char *rule, Cycle now,
                            const std::string &detail)
{
    if (mode == Mode::Panic) {
        panic("DRAM protocol violation [%s] at mem cycle %llu: %s", rule,
              static_cast<unsigned long long>(now), detail.c_str());
    }
    found.push_back({rule, detail, now});
}

void
DramProtocolChecker::onActivate(unsigned bank, std::uint64_t row, Cycle now)
{
    ++checked;
    RCOAL_ASSERT(bank < banks.size(), "ACT to bank %u of %zu", bank,
                 banks.size());
    BankState &b = banks[bank];

    if (b.openRow >= 0) {
        report("act-open-row", now,
               strprintf("ACT bank %u row %llu while row %lld is open", bank,
                         static_cast<unsigned long long>(row),
                         static_cast<long long>(b.openRow)));
    }
    if (!elapsed(now, b.lastActivate, p.tRC)) {
        report("tRC", now,
               strprintf("ACT bank %u only %llu cycles after previous ACT "
                         "(tRC=%u)",
                         bank,
                         static_cast<unsigned long long>(now - b.lastActivate),
                         p.tRC));
    }
    if (!elapsed(now, b.lastPrecharge, p.tRP)) {
        report("tRP", now,
               strprintf("ACT bank %u only %llu cycles after PRE (tRP=%u)",
                         bank,
                         static_cast<unsigned long long>(now -
                                                         b.lastPrecharge),
                         p.tRP));
    }
    if (!elapsed(now, lastActivateAny, p.tRRD)) {
        report("tRRD", now,
               strprintf("ACT bank %u only %llu cycles after ACT to another "
                         "bank (tRRD=%u)",
                         bank,
                         static_cast<unsigned long long>(now -
                                                         lastActivateAny),
                         p.tRRD));
    }
    if (p.bankGroupAware &&
        !elapsed(now, lastActivateGroup[groupOf(bank)], p.tRRDLong)) {
        report("tRRD_L", now,
               strprintf("ACT bank %u only %llu cycles after ACT in the "
                         "same bank group (tRRD_L=%u)",
                         bank,
                         static_cast<unsigned long long>(
                             now - lastActivateGroup[groupOf(bank)]),
                         p.tRRDLong));
    }
    if (!elapsed(now, lastRefresh, p.tRFC)) {
        report("tRFC", now,
               strprintf("ACT bank %u inside refresh window (tRFC=%u)", bank,
                         p.tRFC));
    }

    b.openRow = static_cast<std::int64_t>(row);
    b.lastActivate = now;
    lastActivateAny = now;
    lastActivateGroup[groupOf(bank)] = now;
}

void
DramProtocolChecker::onRead(unsigned bank, std::uint64_t row, Cycle now,
                            Cycle burst_start, unsigned burst_cycles)
{
    ++checked;
    RCOAL_ASSERT(bank < banks.size(), "RD to bank %u of %zu", bank,
                 banks.size());
    BankState &b = banks[bank];

    if (b.openRow < 0) {
        report("rd-closed-bank", now,
               strprintf("RD bank %u row %llu with no open row", bank,
                         static_cast<unsigned long long>(row)));
    } else if (b.openRow != static_cast<std::int64_t>(row)) {
        report("rd-row-mismatch", now,
               strprintf("RD bank %u row %llu but row %lld is open", bank,
                         static_cast<unsigned long long>(row),
                         static_cast<long long>(b.openRow)));
    }
    if (!elapsed(now, b.lastActivate, p.tRCD)) {
        report("tRCD", now,
               strprintf("RD bank %u only %llu cycles after ACT (tRCD=%u)",
                         bank,
                         static_cast<unsigned long long>(now -
                                                         b.lastActivate),
                         p.tRCD));
    }
    if (!elapsed(now, b.lastRead, p.tCCD)) {
        report("tCCD", now,
               strprintf("RD bank %u only %llu cycles after previous RD "
                         "(tCCD=%u)",
                         bank,
                         static_cast<unsigned long long>(now - b.lastRead),
                         p.tCCD));
    }
    if (p.bankGroupAware) {
        if (!elapsed(now, lastReadGroup[groupOf(bank)], p.tCCDLong)) {
            report("tCCD_L", now,
                   strprintf("RD bank %u only %llu cycles after RD in the "
                             "same bank group (tCCD_L=%u)",
                             bank,
                             static_cast<unsigned long long>(
                                 now - lastReadGroup[groupOf(bank)]),
                             p.tCCDLong));
        }
        if (!elapsed(now, lastReadAnyPc[pcOf(bank)], p.tCCD)) {
            report("tCCD_S", now,
                   strprintf("RD bank %u only %llu cycles after any RD in "
                             "its pseudo-channel (tCCD_S=%u)",
                             bank,
                             static_cast<unsigned long long>(
                                 now - lastReadAnyPc[pcOf(bank)]),
                             p.tCCD));
        }
    }
    if (burst_start < now + p.tCL) {
        report("tCL", now,
               strprintf("RD bank %u burst at %llu, before CAS latency "
                         "elapses at %llu",
                         bank, static_cast<unsigned long long>(burst_start),
                         static_cast<unsigned long long>(now + p.tCL)));
    }
    if (burst_start < busBusyUntil[pcOf(bank)]) {
        report("bus-overlap", now,
               strprintf("RD bank %u burst at %llu overlaps data bus busy "
                         "until %llu",
                         bank, static_cast<unsigned long long>(burst_start),
                         static_cast<unsigned long long>(
                             busBusyUntil[pcOf(bank)])));
    }
    if (!elapsed(now, lastRefresh, p.tRFC)) {
        report("tRFC", now,
               strprintf("RD bank %u inside refresh window (tRFC=%u)", bank,
                         p.tRFC));
    }

    b.lastRead = now;
    b.burstEnd = std::max(b.burstEnd, burst_start + burst_cycles);
    busBusyUntil[pcOf(bank)] =
        std::max(busBusyUntil[pcOf(bank)], burst_start + burst_cycles);
    lastReadGroup[groupOf(bank)] = now;
    lastReadAnyPc[pcOf(bank)] = now;
}

void
DramProtocolChecker::onPrecharge(unsigned bank, std::uint64_t row, Cycle now)
{
    (void)row; // Informational; the open-row check is what matters.
    ++checked;
    RCOAL_ASSERT(bank < banks.size(), "PRE to bank %u of %zu", bank,
                 banks.size());
    BankState &b = banks[bank];

    if (b.openRow < 0) {
        report("pre-closed-bank", now,
               strprintf("PRE bank %u with no open row", bank));
    }
    if (!elapsed(now, b.lastActivate, p.tRAS)) {
        report("tRAS", now,
               strprintf("PRE bank %u only %llu cycles after ACT (tRAS=%u)",
                         bank,
                         static_cast<unsigned long long>(now -
                                                         b.lastActivate),
                         p.tRAS));
    }
    if (now < b.burstEnd) {
        report("rd-to-pre", now,
               strprintf("PRE bank %u while its read burst runs until %llu",
                         bank,
                         static_cast<unsigned long long>(b.burstEnd)));
    }

    b.openRow = -1;
    b.lastPrecharge = now;
}

void
DramProtocolChecker::onRefresh(Cycle now)
{
    ++checked;

    for (Cycle busy : busBusyUntil) {
        if (now < busy) {
            report("ref-bus-busy", now,
                   strprintf("REF while data bus busy until %llu",
                             static_cast<unsigned long long>(busy)));
        }
    }
    if (!elapsed(now, lastRefresh, p.tRFC)) {
        report("tRFC", now, "REF inside the previous refresh window");
    }
    for (unsigned i = 0; i < banks.size(); ++i) {
        BankState &b = banks[i];
        if (b.openRow >= 0 && !elapsed(now, b.lastActivate, p.tRAS)) {
            report("ref-tRAS", now,
                   strprintf("REF closes bank %u only %llu cycles after ACT "
                             "(tRAS=%u)",
                             i,
                             static_cast<unsigned long long>(
                                 now - b.lastActivate),
                             p.tRAS));
        }
        if (now < b.burstEnd) {
            report("ref-burst", now,
                   strprintf("REF while bank %u read burst runs until %llu",
                             i,
                             static_cast<unsigned long long>(b.burstEnd)));
        }
        // Refresh closes every row; treat it as a precharge for tRP via
        // lastPrecharge so a post-refresh ACT still honours tRP.
        if (b.openRow >= 0) {
            b.openRow = -1;
            b.lastPrecharge = now;
        }
    }
    lastRefresh = now;
}

void
DramProtocolChecker::replay(std::span<const TraceEvent> events)
{
    for (const TraceEvent &e : events) {
        switch (e.kind) {
          case EventKind::DramActivate:
            onActivate(static_cast<unsigned>(e.a), e.b, e.cycle);
            break;
          case EventKind::DramPrecharge:
            onPrecharge(static_cast<unsigned>(e.a), e.b, e.cycle);
            break;
          case EventKind::DramRead:
            onRead(static_cast<unsigned>(e.a), e.b, e.cycle, e.c,
                   p.burstCycles);
            break;
          case EventKind::DramRefresh:
            onRefresh(e.cycle);
            break;
          default:
            break; // Non-DRAM events interleave freely; skip them.
        }
    }
}

void
DramProtocolChecker::reset()
{
    banks.assign(p.banks, BankState{});
    lastActivateAny = kInvalidCycle;
    lastRefresh = kInvalidCycle;
    busBusyUntil.assign(p.pseudoChannels, 0);
    lastActivateGroup.assign(p.bankGroups, kInvalidCycle);
    lastReadGroup.assign(p.bankGroups, kInvalidCycle);
    lastReadAnyPc.assign(p.pseudoChannels, kInvalidCycle);
    checked = 0;
    found.clear();
}

void
DramProtocolChecker::saveState(common::ArenaWriter &w) const
{
    w.pod(static_cast<std::uint64_t>(banks.size()));
    for (const BankState &bank : banks) {
        w.pod(bank.openRow);
        w.pod(bank.lastActivate);
        w.pod(bank.lastRead);
        w.pod(bank.lastPrecharge);
        w.pod(bank.burstEnd);
    }
    w.pod(lastActivateAny);
    w.pod(lastRefresh);
    w.podVector(busBusyUntil);
    w.podVector(lastActivateGroup);
    w.podVector(lastReadGroup);
    w.podVector(lastReadAnyPc);
    w.pod(checked);
    w.pod(static_cast<std::uint64_t>(found.size()));
    for (const DramProtocolViolation &v : found) {
        w.string(v.rule);
        w.string(v.detail);
        w.pod(v.cycle);
    }
}

void
DramProtocolChecker::restoreState(common::ArenaReader &r)
{
    const auto count = r.take<std::uint64_t>();
    RCOAL_ASSERT(count == banks.size(),
                 "checker bank-count mismatch: snapshot has %llu, "
                 "checker has %zu",
                 static_cast<unsigned long long>(count), banks.size());
    for (BankState &bank : banks) {
        r.pod(bank.openRow);
        r.pod(bank.lastActivate);
        r.pod(bank.lastRead);
        r.pod(bank.lastPrecharge);
        r.pod(bank.burstEnd);
    }
    r.pod(lastActivateAny);
    r.pod(lastRefresh);
    r.podVector(busBusyUntil);
    r.podVector(lastActivateGroup);
    r.podVector(lastReadGroup);
    r.podVector(lastReadAnyPc);
    r.pod(checked);
    found.resize(static_cast<std::size_t>(r.take<std::uint64_t>()));
    for (DramProtocolViolation &v : found) {
        r.string(v.rule);
        r.string(v.detail);
        r.pod(v.cycle);
    }
}

} // namespace rcoal::trace
