#include "rcoal/trace/sink.hpp"

#include <algorithm>
#include <utility>

#include "rcoal/common/logging.hpp"

namespace rcoal::trace {

TraceSink::TraceSink(std::string name, ClockDomain domain,
                     std::size_t capacity)
    : sinkName(std::move(name)), clockDomain(domain), ring(capacity)
{
    RCOAL_ASSERT(capacity > 0, "trace sink '%s' needs a non-empty ring",
                 sinkName.c_str());
}

std::size_t
TraceSink::size() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(recorded, ring.size()));
}

std::vector<TraceEvent>
TraceSink::snapshot() const
{
    // Oldest retained event sits at `next` once the ring has wrapped,
    // at 0 before that.
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::size_t start = recorded > ring.size() ? next : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

void
TraceSink::clear()
{
    next = 0;
    recorded = 0;
    overwritten = 0;
}

} // namespace rcoal::trace
