#include "rcoal/trace/chrome_trace.hpp"

#include <fstream>

#include "rcoal/common/logging.hpp"
#include "rcoal/trace/tracer.hpp"

namespace rcoal::trace {

namespace {

/// Trace timestamp (µs) of @p cycle in @p domain on the core timeline.
double
toTraceTime(Cycle cycle, ClockDomain domain, double core_per_mem)
{
    const auto c = static_cast<double>(cycle);
    return domain == ClockDomain::Memory ? c * core_per_mem : c;
}

void
writeEvent(std::ofstream &out, bool &first, const std::string &json)
{
    if (!first)
        out << ",\n";
    first = false;
    out << "  " << json;
}

} // namespace

void
writeChromeTrace(const std::string &path, const Tracer &tracer,
                 unsigned dram_burst_cycles)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file '%s'", path.c_str());

    const double ratio = tracer.coreCyclesPerMemCycle();

    out << "{\n\"traceEvents\": [\n";
    bool first = true;

    // Thread-name metadata: one trace thread per sink, all in pid 1.
    int tid = 1;
    for (const auto &sink : tracer.sinks()) {
        writeEvent(out, first,
                   strprintf("{\"name\": \"thread_name\", \"ph\": \"M\", "
                             "\"pid\": 1, \"tid\": %d, \"args\": "
                             "{\"name\": \"%s\"}}",
                             tid, sink->name().c_str()));
        ++tid;
    }

    tid = 1;
    for (const auto &sink : tracer.sinks()) {
        const ClockDomain domain = sink->domain();
        for (const TraceEvent &e : sink->snapshot()) {
            const char *name = eventKindName(e.kind);
            const double ts = toTraceTime(e.cycle, domain, ratio);
            const std::string args = strprintf(
                "{\"a\": %llu, \"b\": %llu, \"c\": %llu, "
                "\"component\": %u}",
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b),
                static_cast<unsigned long long>(e.c),
                static_cast<unsigned>(e.component));

            if (e.kind == EventKind::DramRead && dram_burst_cycles > 0) {
                // Span the data burst: starts at the burst cycle (arg c),
                // runs for the configured burst length.
                const double start = toTraceTime(e.c, domain, ratio);
                const double dur =
                    toTraceTime(dram_burst_cycles, domain, ratio);
                writeEvent(out, first,
                           strprintf("{\"name\": \"%s\", \"ph\": \"X\", "
                                     "\"pid\": 1, \"tid\": %d, "
                                     "\"ts\": %.3f, \"dur\": %.3f, "
                                     "\"args\": %s}",
                                     name, tid, start, dur, args.c_str()));
            } else if (e.kind == EventKind::DramRefresh) {
                // Span the tRFC window recorded in arg a.
                const double dur = toTraceTime(e.a, domain, ratio);
                writeEvent(out, first,
                           strprintf("{\"name\": \"%s\", \"ph\": \"X\", "
                                     "\"pid\": 1, \"tid\": %d, "
                                     "\"ts\": %.3f, \"dur\": %.3f, "
                                     "\"args\": %s}",
                                     name, tid, ts, dur, args.c_str()));
            } else {
                writeEvent(out, first,
                           strprintf("{\"name\": \"%s\", \"ph\": \"i\", "
                                     "\"pid\": 1, \"tid\": %d, "
                                     "\"ts\": %.3f, \"s\": \"t\", "
                                     "\"args\": %s}",
                                     name, tid, ts, args.c_str()));
            }
        }
        ++tid;
    }

    out << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
    if (!out)
        fatal("failed writing trace output file '%s'", path.c_str());
}

} // namespace rcoal::trace
