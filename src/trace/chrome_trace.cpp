#include "rcoal/trace/chrome_trace.hpp"

#include "rcoal/common/logging.hpp"
#include "rcoal/trace/tracer.hpp"

namespace rcoal::trace {

namespace {

/// Trace timestamp (µs) of @p cycle in @p domain on the core timeline.
double
toTraceTime(Cycle cycle, ClockDomain domain, double core_per_mem)
{
    const auto c = static_cast<double>(cycle);
    return domain == ClockDomain::Memory ? c * core_per_mem : c;
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
    : filePath(path), out(path)
{
    if (!out)
        fatal("cannot open trace output file '%s'", path.c_str());
    out << "{\n\"traceEvents\": [\n";
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    if (!closed && out.is_open()) {
        out << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
        closed = true;
    }
}

void
ChromeTraceWriter::event(const std::string &json)
{
    RCOAL_ASSERT(!closed, "ChromeTraceWriter: event after close()");
    if (!first)
        out << ",\n";
    first = false;
    out << "  " << json;
}

void
ChromeTraceWriter::threadName(int pid, int tid, const std::string &name)
{
    event(strprintf("{\"name\": \"thread_name\", \"ph\": \"M\", "
                    "\"pid\": %d, \"tid\": %d, \"args\": "
                    "{\"name\": \"%s\"}}",
                    pid, tid, name.c_str()));
}

void
ChromeTraceWriter::instant(const std::string &name, int pid, int tid,
                           double ts, const std::string &args_json)
{
    event(strprintf("{\"name\": \"%s\", \"ph\": \"i\", \"pid\": %d, "
                    "\"tid\": %d, \"ts\": %.3f, \"s\": \"t\", "
                    "\"args\": %s}",
                    name.c_str(), pid, tid, ts, args_json.c_str()));
}

void
ChromeTraceWriter::complete(const std::string &name, int pid, int tid,
                            double ts, double dur,
                            const std::string &args_json)
{
    event(strprintf("{\"name\": \"%s\", \"ph\": \"X\", \"pid\": %d, "
                    "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, "
                    "\"args\": %s}",
                    name.c_str(), pid, tid, ts, dur, args_json.c_str()));
}

void
ChromeTraceWriter::close()
{
    RCOAL_ASSERT(!closed, "ChromeTraceWriter: double close()");
    out << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
    closed = true;
    out.flush();
    if (!out)
        fatal("failed writing trace output file '%s'", filePath.c_str());
}

void
writeChromeTrace(const std::string &path, const Tracer &tracer,
                 unsigned dram_burst_cycles)
{
    ChromeTraceWriter writer(path);
    const double ratio = tracer.coreCyclesPerMemCycle();

    // Thread-name metadata: one trace thread per sink, all in pid 1.
    int tid = 1;
    for (const auto &sink : tracer.sinks()) {
        writer.threadName(1, tid, sink->name());
        ++tid;
    }

    tid = 1;
    for (const auto &sink : tracer.sinks()) {
        const ClockDomain domain = sink->domain();
        for (const TraceEvent &e : sink->snapshot()) {
            const char *name = eventKindName(e.kind);
            const double ts = toTraceTime(e.cycle, domain, ratio);
            const std::string args = strprintf(
                "{\"a\": %llu, \"b\": %llu, \"c\": %llu, "
                "\"component\": %u}",
                static_cast<unsigned long long>(e.a),
                static_cast<unsigned long long>(e.b),
                static_cast<unsigned long long>(e.c),
                static_cast<unsigned>(e.component));

            if (e.kind == EventKind::DramRead && dram_burst_cycles > 0) {
                // Span the data burst: starts at the burst cycle (arg c),
                // runs for the configured burst length.
                const double start = toTraceTime(e.c, domain, ratio);
                const double dur =
                    toTraceTime(dram_burst_cycles, domain, ratio);
                writer.complete(name, 1, tid, start, dur, args);
            } else if (e.kind == EventKind::DramRefresh) {
                // Span the tRFC window recorded in arg a.
                const double dur = toTraceTime(e.a, domain, ratio);
                writer.complete(name, 1, tid, ts, dur, args);
            } else {
                writer.instant(name, 1, tid, ts, args);
            }
        }
        ++tid;
    }

    writer.close();
}

} // namespace rcoal::trace
