#include "rcoal/trace/event.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::trace {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::SmIssue:
        return "sm.issue";
      case EventKind::SmStall:
        return "sm.stall";
      case EventKind::McuCoalesce:
        return "mcu.coalesce";
      case EventKind::XbarInject:
        return "xbar.inject";
      case EventKind::XbarGrant:
        return "xbar.grant";
      case EventKind::DramActivate:
        return "dram.act";
      case EventKind::DramPrecharge:
        return "dram.pre";
      case EventKind::DramRead:
        return "dram.rd";
      case EventKind::DramRefresh:
        return "dram.ref";
      case EventKind::KernelLaunch:
        return "kernel.launch";
      case EventKind::KernelRetire:
        return "kernel.retire";
      case EventKind::ServeAdmit:
        return "serve.admit";
      case EventKind::ServeReject:
        return "serve.reject";
      case EventKind::ServeBatch:
        return "serve.batch";
      case EventKind::ServeLaunch:
        return "serve.launch";
      case EventKind::ServeComplete:
        return "serve.complete";
      case EventKind::CacheAccess:
        return "cache.access";
    }
    panic("eventKindName: unknown EventKind %u",
          static_cast<unsigned>(kind));
}

} // namespace rcoal::trace
