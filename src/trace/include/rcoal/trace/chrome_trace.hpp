/**
 * @file
 * Chrome trace-event JSON exporter.
 *
 * Serializes a Tracer's retained events into the Chrome trace-event
 * format (the JSON-array flavour), loadable directly in Perfetto
 * (ui.perfetto.dev) or chrome://tracing. Mapping:
 *
 *  - one trace "thread" per sink, named after it;
 *  - 1 core cycle = 1 microsecond of trace time; memory-domain sinks
 *    are placed on the same timeline via the tracer's
 *    coreCyclesPerMemCycle ratio;
 *  - DramRead and DramRefresh become duration ("X") events spanning
 *    the data burst / tRFC window; everything else is an instant ("i").
 */

#ifndef RCOAL_TRACE_CHROME_TRACE_HPP
#define RCOAL_TRACE_CHROME_TRACE_HPP

#include <string>

namespace rcoal::trace {

class Tracer;

/**
 * Write @p tracer's events to @p path as Chrome trace-event JSON.
 *
 * @param dram_burst_cycles duration given to DramRead span events
 *        (memory cycles); 0 renders reads as instants.
 *
 * Calls fatal() when the file cannot be written.
 */
void writeChromeTrace(const std::string &path, const Tracer &tracer,
                      unsigned dram_burst_cycles = 0);

} // namespace rcoal::trace

#endif // RCOAL_TRACE_CHROME_TRACE_HPP
