/**
 * @file
 * Chrome trace-event JSON exporter.
 *
 * Serializes a Tracer's retained events into the Chrome trace-event
 * format (the JSON-array flavour), loadable directly in Perfetto
 * (ui.perfetto.dev) or chrome://tracing. Mapping:
 *
 *  - one trace "thread" per sink, named after it;
 *  - 1 core cycle = 1 microsecond of trace time; memory-domain sinks
 *    are placed on the same timeline via the tracer's
 *    coreCyclesPerMemCycle ratio;
 *  - DramRead and DramRefresh become duration ("X") events spanning
 *    the data burst / tRFC window; everything else is an instant ("i").
 *
 * ChromeTraceWriter is the reusable emission layer underneath: it owns
 * the file, the JSON framing and the event-separator state, and other
 * exporters (rcoal::spans' per-request track renderer) build on it
 * instead of re-deriving the format.
 */

#ifndef RCOAL_TRACE_CHROME_TRACE_HPP
#define RCOAL_TRACE_CHROME_TRACE_HPP

#include <fstream>
#include <string>

namespace rcoal::trace {

class Tracer;

/**
 * Incremental Chrome trace-event JSON emitter. Construction opens the
 * file and writes the header; close() writes the footer and verifies
 * the stream (fatal() on failure). Events appear in emission order.
 */
class ChromeTraceWriter
{
  public:
    /** Opens @p path and writes the JSON header; fatal() on failure. */
    explicit ChromeTraceWriter(const std::string &path);

    /** Closes the file if close() was not called (without the fatal
     *  stream check — destructors must not abort). */
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** "M" metadata event naming trace thread (@p pid, @p tid). */
    void threadName(int pid, int tid, const std::string &name);

    /** "i" instant event. @p args_json must be a JSON object literal. */
    void instant(const std::string &name, int pid, int tid, double ts,
                 const std::string &args_json);

    /** "X" complete (duration) event. */
    void complete(const std::string &name, int pid, int tid, double ts,
                  double dur, const std::string &args_json);

    /** Write the footer and flush; fatal() when the stream failed. */
    void close();

  private:
    void event(const std::string &json);

    std::string filePath;
    std::ofstream out;
    bool first = true;
    bool closed = false;
};

/**
 * Write @p tracer's events to @p path as Chrome trace-event JSON.
 *
 * @param dram_burst_cycles duration given to DramRead span events
 *        (memory cycles); 0 renders reads as instants.
 *
 * Calls fatal() when the file cannot be written.
 */
void writeChromeTrace(const std::string &path, const Tracer &tracer,
                      unsigned dram_burst_cycles = 0);

} // namespace rcoal::trace

#endif // RCOAL_TRACE_CHROME_TRACE_HPP
