/**
 * @file
 * Per-component ring-buffer trace sink.
 *
 * A sink is a fixed-capacity ring: recording never allocates after
 * construction and never blocks the simulation — when the ring is full
 * the oldest events are overwritten (and counted as dropped), keeping
 * the most recent window, which is the part a timeline viewer or a
 * post-mortem wants.
 */

#ifndef RCOAL_TRACE_SINK_HPP
#define RCOAL_TRACE_SINK_HPP

#include <string>
#include <vector>

#include "rcoal/trace/event.hpp"

namespace rcoal::trace {

/** Clock domain a sink's cycle stamps are expressed in. */
enum class ClockDomain
{
    Core,   ///< Core/interconnect clock.
    Memory, ///< DRAM command clock.
};

/**
 * One component's event ring.
 */
class TraceSink
{
  public:
    /**
     * @param name exporter-visible component name ("sm3", "dram0", ...).
     * @param domain clock domain of the recorded cycle stamps.
     * @param capacity ring size in events (must be > 0).
     */
    TraceSink(std::string name, ClockDomain domain, std::size_t capacity);

    /** Record one event (overwrites the oldest when full). */
    void record(EventKind kind, Cycle cycle, std::uint64_t a,
                std::uint64_t b, std::uint64_t c)
    {
        if (recorded >= ring.size())
            ++overwritten; // The slot still holds a retained event.
        TraceEvent &slot = ring[next];
        slot.cycle = cycle;
        slot.a = a;
        slot.b = b;
        slot.c = c;
        slot.kind = kind;
        slot.component = componentId;
        next = next + 1 == ring.size() ? 0 : next + 1;
        ++recorded;
    }

    /** Component index stamped on every event this sink records. */
    void setComponentId(std::uint16_t id) { componentId = id; }

    const std::string &name() const { return sinkName; }
    ClockDomain domain() const { return clockDomain; }
    std::size_t capacity() const { return ring.size(); }

    /** Events currently held (min(recorded, capacity)). */
    std::size_t size() const;

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t totalRecorded() const { return recorded; }

    /**
     * Events lost to ring overwrite. Tracked by an explicit counter
     * (not derived from totalRecorded - size) so clear() — and
     * therefore GpuMachine::reset(), which clears every attached
     * sink — provably zeroes drop accounting along with the other
     * per-kernel counters.
     */
    std::uint64_t dropped() const { return overwritten; }

    /** Chronological copy of the retained events (oldest first). */
    std::vector<TraceEvent> snapshot() const;

    /** Forget everything recorded so far. */
    void clear();

  private:
    std::string sinkName;
    ClockDomain clockDomain;
    std::vector<TraceEvent> ring;
    std::size_t next = 0;        ///< Next write position.
    std::uint64_t recorded = 0;
    std::uint64_t overwritten = 0; ///< Events lost to ring overwrite.
    std::uint16_t componentId = 0;
};

} // namespace rcoal::trace

#endif // RCOAL_TRACE_SINK_HPP
