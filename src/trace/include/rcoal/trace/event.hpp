/**
 * @file
 * Structured trace events: the fixed-size records every instrumented
 * component (SM, MCU/coalescer, crossbar, DRAM, serve frontend) drops
 * into its ring-buffer sink.
 *
 * The schema is deliberately flat — one kind tag, a component index, a
 * cycle stamp and three kind-specific integer arguments — so recording
 * is a handful of stores and the exporter/checker can consume events
 * without any per-kind allocation.
 */

#ifndef RCOAL_TRACE_EVENT_HPP
#define RCOAL_TRACE_EVENT_HPP

#include <cstdint>

#include "rcoal/common/types.hpp"

namespace rcoal::trace {

/**
 * What happened. Argument meaning per kind (a, b, c):
 *
 *  - SmIssue:        warp id, pc, op (0 = ALU, 1 = load, 2 = store)
 *  - SmStall:        reason (0 = PRT full, 1 = ICN backpressure), warp id
 *  - McuCoalesce:    warp id, coalesced accesses, subwarps (M)
 *  - XbarInject:     input port, output port, access id
 *  - XbarGrant:      input port, output port, access id
 *  - DramActivate:   bank, row
 *  - DramPrecharge:  bank, row being closed
 *  - DramRead:       bank, row, burst start cycle
 *  - DramRefresh:    tRFC duration
 *  - KernelLaunch:   launch id, first SM, SM count
 *  - KernelRetire:   launch id, total cycles
 *  - ServeAdmit:     request id, lines, is-probe
 *  - ServeReject:    request id, lines
 *  - ServeBatch:     requests in batch, total lines
 *  - ServeLaunch:    launch id, gang, requests in batch
 *  - ServeComplete:  request id, latency cycles, gang
 *  - CacheAccess:    level (1 = L1, 2 = L2), outcome (0 = hit,
 *                    1 = sector miss, 2 = line miss), access id
 */
enum class EventKind : std::uint8_t
{
    SmIssue = 0,
    SmStall,
    McuCoalesce,
    XbarInject,
    XbarGrant,
    DramActivate,
    DramPrecharge,
    DramRead,
    DramRefresh,
    KernelLaunch,
    KernelRetire,
    ServeAdmit,
    ServeReject,
    ServeBatch,
    ServeLaunch,
    ServeComplete,
    CacheAccess,
};

/** Number of distinct EventKind values. */
inline constexpr std::size_t kNumEventKinds = 17;

/** Short stable name for @p kind ("dram.act", "serve.admit", ...). */
const char *eventKindName(EventKind kind);

/**
 * One recorded event. `cycle` is in the emitting component's clock
 * domain (core or memory — the owning sink knows which).
 */
struct TraceEvent
{
    Cycle cycle = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    EventKind kind = EventKind::SmIssue;
    std::uint16_t component = 0; ///< SM / partition / port index.
};

} // namespace rcoal::trace

/**
 * Compile-time gate for the hot-path trace hooks. Off by default: the
 * macro expands to nothing, so an untraced build pays zero cost (no
 * branch, no sink pointer test). Configure with -DRCOAL_TRACE=ON (CMake
 * option) to compile the hooks in; recording then happens only when a
 * sink is attached (one pointer test otherwise).
 */
#ifndef RCOAL_TRACE_ENABLED
#define RCOAL_TRACE_ENABLED 0
#endif

#if RCOAL_TRACE_ENABLED
#define RCOAL_TRACE(sink, kind_, cycle_, a_, b_, c_)                         \
    do {                                                                     \
        auto *rcoal_trace_sink_ = (sink);                                    \
        if (rcoal_trace_sink_ != nullptr) {                                  \
            rcoal_trace_sink_->record(                                       \
                ::rcoal::trace::EventKind::kind_,                            \
                static_cast<::rcoal::Cycle>(cycle_),                         \
                static_cast<std::uint64_t>(a_),                              \
                static_cast<std::uint64_t>(b_),                              \
                static_cast<std::uint64_t>(c_));                             \
        }                                                                    \
    } while (0)
#else
#define RCOAL_TRACE(sink, kind_, cycle_, a_, b_, c_)                         \
    do {                                                                     \
    } while (0)
#endif

#endif // RCOAL_TRACE_EVENT_HPP
