/**
 * @file
 * DRAM protocol checker: validates a partition's command stream against
 * its own timing rules.
 *
 * The simulator's timing credibility rests on DRAM commands respecting
 * the GDDR5 constraints of Table I; a silent bookkeeping rewind (a bank
 * deadline assigned backwards) corrupts every leakage figure downstream.
 * The checker is the independent referee: it watches the ACT/RD/PRE/REF
 * stream — online via the DramPartition test-mode hook, or offline by
 * replaying recorded trace events — and flags every command that arrives
 * inside a closed timing window:
 *
 *   ACT: bank precharged, >= tRC since last ACT (same bank), >= tRP
 *        since last PRE, >= tRRD since last ACT (any bank), outside tRFC.
 *   RD:  row open and matching, >= tRCD since ACT, >= tCCD since last
 *        RD (same bank), burst starts >= tCL after the command and never
 *        overlaps another burst on the shared data bus, outside tRFC.
 *   PRE: row open, >= tRAS since ACT, not before the bank's last read
 *        burst has drained (the read-to-precharge window).
 *   REF: data bus quiet, every open bank >= tRAS past its ACT, outside
 *        the previous tRFC window.
 */

#ifndef RCOAL_TRACE_DRAM_CHECKER_HPP
#define RCOAL_TRACE_DRAM_CHECKER_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/trace/event.hpp"

namespace rcoal::trace {

/** One detected protocol violation. */
struct DramProtocolViolation
{
    std::string rule;   ///< Constraint name ("tRCD", "bus-overlap", ...).
    std::string detail; ///< Human-readable description.
    Cycle cycle = 0;    ///< Memory cycle of the offending command.
};

/**
 * Replays one partition's command stream and checks every constraint.
 */
class DramProtocolChecker
{
  public:
    /**
     * The timing rules to enforce (memory-clock cycles). With
     * bankGroupAware set (GDDR6/HBM2 personalities), tCCD/tRRD become
     * the *short* different-bank-group windows and three extra rules
     * apply: same-group column commands >= tCCDLong apart (tCCD_L),
     * any two column commands in a pseudo-channel >= tCCD apart
     * (tCCD_S), and same-group ACTs >= tRRDLong apart (tRRD_L). The
     * data bus splits into pseudoChannels independent buses (banks are
     * divided contiguously across them).
     */
    struct Params
    {
        unsigned banks = 16;
        unsigned tCL = 12;
        unsigned tRP = 12;
        unsigned tRC = 40;
        unsigned tRAS = 28;
        unsigned tCCD = 2;
        unsigned tRCD = 12;
        unsigned tRRD = 6;
        unsigned tRFC = 83;
        unsigned burstCycles = 2;
        unsigned tCCDLong = 2;
        unsigned tRRDLong = 6;
        unsigned bankGroups = 4;
        unsigned pseudoChannels = 1;
        bool bankGroupAware = false;
    };

    /** What to do on a violation. */
    enum class Mode
    {
        Panic,   ///< panic() with the rule and command (test-mode trip).
        Collect, ///< Record into violations() and keep going.
    };

    explicit DramProtocolChecker(const Params &params,
                                 Mode mode = Mode::Panic);

    // Online hooks — called by DramPartition at command-issue points.
    void onActivate(unsigned bank, std::uint64_t row, Cycle now);
    void onRead(unsigned bank, std::uint64_t row, Cycle now,
                Cycle burst_start, unsigned burst_cycles);
    void onPrecharge(unsigned bank, std::uint64_t row, Cycle now);
    void onRefresh(Cycle now);

    /**
     * Offline replay of recorded Dram* trace events (other kinds are
     * ignored). Read bursts use Params::burstCycles for occupancy.
     */
    void replay(std::span<const TraceEvent> events);

    /** Commands checked so far. */
    std::uint64_t commandsChecked() const { return checked; }

    /** Violations found (Collect mode; Panic mode never returns one). */
    const std::vector<DramProtocolViolation> &violations() const
    {
        return found;
    }

    /** True when no command has violated a constraint. */
    bool clean() const { return found.empty(); }

    /** Return to the freshly-constructed state (same params/mode). */
    void reset();

    /** Serialize the full tracking state, verdicts included. */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState(); params must match. */
    void restoreState(common::ArenaReader &r);

  private:
    struct BankState
    {
        std::int64_t openRow = -1;
        Cycle lastActivate = kInvalidCycle; ///< kInvalidCycle = never.
        Cycle lastRead = kInvalidCycle;
        Cycle lastPrecharge = kInvalidCycle;
        Cycle burstEnd = 0; ///< End of the bank's last read burst.
    };

    void report(const char *rule, Cycle now, const std::string &detail);

    /** now >= past + window, treating "never" as satisfied. */
    static bool elapsed(Cycle now, Cycle past, unsigned window)
    {
        return past == kInvalidCycle || now >= past + window;
    }

    unsigned groupOf(unsigned bank) const { return bank % p.bankGroups; }
    unsigned pcOf(unsigned bank) const
    {
        return bank / (p.banks / p.pseudoChannels);
    }

    Params p;
    Mode mode;
    std::vector<BankState> banks;
    Cycle lastActivateAny = kInvalidCycle;
    Cycle lastRefresh = kInvalidCycle;
    std::vector<Cycle> busBusyUntil;      ///< Data-bus horizon per PC.
    std::vector<Cycle> lastActivateGroup; ///< Per bank group (aware).
    std::vector<Cycle> lastReadGroup;     ///< Per bank group (aware).
    std::vector<Cycle> lastReadAnyPc;     ///< Per pseudo-channel (aware).
    std::uint64_t checked = 0;
    std::vector<DramProtocolViolation> found;
};

} // namespace rcoal::trace

#endif // RCOAL_TRACE_DRAM_CHECKER_HPP
