/**
 * @file
 * Tracer: the registry of a machine's trace sinks.
 *
 * One Tracer serves one simulated machine (plus its serving frontend).
 * Components own only a raw TraceSink pointer — null means untraced —
 * so the simulator has no tracer dependency on its hot path; the
 * machine wires sinks in when tracing is enabled.
 *
 * Not thread-safe by design: a Tracer belongs to one single-threaded
 * simulation, matching the engine's scenario-per-worker parallelism.
 */

#ifndef RCOAL_TRACE_TRACER_HPP
#define RCOAL_TRACE_TRACER_HPP

#include <memory>
#include <string>
#include <vector>

#include "rcoal/trace/sink.hpp"

namespace rcoal::trace {

/**
 * Owns the sinks of one traced machine.
 */
class Tracer
{
  public:
    /** @param capacity_per_sink ring size of every sink it creates. */
    explicit Tracer(std::size_t capacity_per_sink = 1 << 16);

    /**
     * The sink named @p name, created on first use with @p domain and
     * component id @p component. Returned references stay valid for the
     * tracer's lifetime.
     */
    TraceSink &sink(const std::string &name,
                    ClockDomain domain = ClockDomain::Core,
                    std::uint16_t component = 0);

    /** Sink named @p name, or nullptr when never created. */
    const TraceSink *find(const std::string &name) const;

    /** All sinks, in creation order. */
    const std::vector<std::unique_ptr<TraceSink>> &sinks() const
    {
        return all;
    }

    /**
     * Core cycles per memory cycle; the exporter uses it to place
     * memory-domain events on the core-cycle timeline.
     */
    void setCoreCyclesPerMemCycle(double ratio);
    double coreCyclesPerMemCycle() const { return memRatio; }

    /** Total events recorded across all sinks. */
    std::uint64_t totalRecorded() const;

    /** Total events lost to ring overwrite across all sinks. */
    std::uint64_t totalDropped() const;

  private:
    std::size_t capacity;
    double memRatio = 1.0;
    std::vector<std::unique_ptr<TraceSink>> all;
};

} // namespace rcoal::trace

#endif // RCOAL_TRACE_TRACER_HPP
