#include "rcoal/trace/tracer.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::trace {

Tracer::Tracer(std::size_t capacity_per_sink) : capacity(capacity_per_sink)
{
    RCOAL_ASSERT(capacity > 0, "tracer sinks need a non-empty ring");
}

TraceSink &
Tracer::sink(const std::string &name, ClockDomain domain,
             std::uint16_t component)
{
    for (const auto &existing : all) {
        if (existing->name() == name)
            return *existing;
    }
    all.push_back(std::make_unique<TraceSink>(name, domain, capacity));
    all.back()->setComponentId(component);
    return *all.back();
}

const TraceSink *
Tracer::find(const std::string &name) const
{
    for (const auto &existing : all) {
        if (existing->name() == name)
            return existing.get();
    }
    return nullptr;
}

void
Tracer::setCoreCyclesPerMemCycle(double ratio)
{
    RCOAL_ASSERT(ratio > 0.0, "clock ratio must be positive, got %f", ratio);
    memRatio = ratio;
}

std::uint64_t
Tracer::totalRecorded() const
{
    std::uint64_t total = 0;
    for (const auto &s : all)
        total += s->totalRecorded();
    return total;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t total = 0;
    for (const auto &s : all)
        total += s->dropped();
    return total;
}

} // namespace rcoal::trace
