/**
 * @file
 * Kernel-level simulation statistics.
 */

#ifndef RCOAL_SIM_STATS_HPP
#define RCOAL_SIM_STATS_HPP

#include <array>
#include <cstdint>
#include <string>

#include "rcoal/common/types.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::sim {

/** Per-tag access statistics. */
struct TagStats
{
    std::uint64_t accesses = 0; ///< Coalesced accesses generated.
    std::uint64_t laneRequests = 0; ///< Pre-coalescing lane requests.
    Cycle firstIssue = kInvalidCycle; ///< First issue cycle of the tag.
    Cycle lastComplete = 0;     ///< Last completion cycle of the tag.

    /** Issue-to-completion window; 0 when the tag never appeared. */
    Cycle window() const
    {
        return firstIssue == kInvalidCycle ? 0 : lastComplete - firstIssue;
    }
};

/**
 * Statistics for one kernel launch.
 */
struct KernelStats
{
    Cycle cycles = 0;               ///< Total core cycles.
    std::uint64_t warpInstructions = 0;
    std::uint64_t memInstructions = 0;
    std::uint64_t coalescedAccesses = 0; ///< Loads + stores.
    std::uint64_t loadAccesses = 0;
    std::uint64_t storeAccesses = 0;

    std::array<TagStats, kNumAccessTags> perTag{};

    // DRAM behaviour.
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    std::uint64_t dramActivates = 0;
    std::uint64_t dramPrecharges = 0;
    std::uint64_t dramRefreshes = 0;

    // Optional hierarchy (all zero when disabled). Sector misses are
    // the subset of misses whose line was resident but lacked a valid
    // sector; mshrMerges counts L1 merges, l2MshrMerges the L2's.
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l1SectorMisses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l2SectorMisses = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t l2MshrMerges = 0;

    // Stall diagnostics.
    std::uint64_t prtStallCycles = 0;
    std::uint64_t icnStallCycles = 0;

    /** Stats for one tag. */
    TagStats &tagStats(AccessTag tag)
    {
        return perTag[static_cast<std::size_t>(tag)];
    }
    const TagStats &
    tagStats(AccessTag tag) const
    {
        return perTag[static_cast<std::size_t>(tag)];
    }

    /** Convenience: last-round coalesced accesses (the attack's U). */
    std::uint64_t
    lastRoundAccesses() const
    {
        return tagStats(AccessTag::LastRoundLookup).accesses;
    }

    /** Convenience: last-round execution window in core cycles. */
    Cycle
    lastRoundCycles() const
    {
        return tagStats(AccessTag::LastRoundLookup).window();
    }

    /**
     * Fold @p other into this, counter-wise: plain sums for counts and
     * cycles, min/max for per-tag issue/complete horizons. Used to keep
     * machine-cumulative telemetry totals across retired launches.
     */
    void accumulate(const KernelStats &other);

    /** Multi-line human-readable dump. */
    std::string describe() const;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_STATS_HPP
