/**
 * @file
 * Top-level GPU: SMs + interconnect + memory partitions + clocking.
 */

#ifndef RCOAL_SIM_GPU_HPP
#define RCOAL_SIM_GPU_HPP

#include "rcoal/sim/config.hpp"
#include "rcoal/sim/kernel.hpp"
#include "rcoal/sim/stats.hpp"

namespace rcoal::sim {

/**
 * The simulated GPU, one-shot flavour. Construct once per configuration;
 * every launch() builds a fresh machine state (cold caches, empty
 * queues), draws new subwarp partitions per warp (Section IV-D: the
 * sid<->tid mapping is fixed at the beginning of each application
 * execution), runs the kernel to completion over all SMs, and returns
 * its statistics.
 *
 * This is a single-tenant convenience over GpuMachine, which is the
 * actual timing model and additionally supports several co-resident
 * kernels on disjoint SM ranges (see gpu_machine.hpp and rcoal::serve).
 */
class Gpu
{
  public:
    explicit Gpu(GpuConfig config);

    /** The active configuration. */
    const GpuConfig &config() const { return cfg; }

    /** Run @p kernel to completion and return its statistics. */
    KernelStats launch(const KernelSource &kernel);

    /** Number of launches performed so far. */
    std::uint64_t launchCount() const { return launches; }

  private:
    GpuConfig cfg;
    /** Per-launch RNG streams derive from (cfg.seed, launch index). */
    std::uint64_t launches = 0;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_GPU_HPP
