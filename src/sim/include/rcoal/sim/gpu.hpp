/**
 * @file
 * Top-level GPU: SMs + interconnect + memory partitions + clocking.
 */

#ifndef RCOAL_SIM_GPU_HPP
#define RCOAL_SIM_GPU_HPP

#include <memory>
#include <vector>

#include "rcoal/common/rng.hpp"
#include "rcoal/core/partitioner.hpp"
#include "rcoal/sim/address_mapping.hpp"
#include "rcoal/sim/config.hpp"
#include "rcoal/sim/kernel.hpp"
#include "rcoal/sim/stats.hpp"

namespace rcoal::sim {

/**
 * The simulated GPU. Construct once per configuration; every launch()
 * builds a fresh machine state (cold caches, empty queues), draws new
 * subwarp partitions per warp (Section IV-D: the sid<->tid mapping is
 * fixed at the beginning of each application execution), runs the kernel
 * to completion, and returns its statistics.
 */
class Gpu
{
  public:
    explicit Gpu(GpuConfig config);

    /** The active configuration. */
    const GpuConfig &config() const { return cfg; }

    /** Run @p kernel to completion and return its statistics. */
    KernelStats launch(const KernelSource &kernel);

    /** Number of launches performed so far. */
    std::uint64_t launchCount() const { return launches; }

  private:
    GpuConfig cfg;
    core::SubwarpPartitioner partitioner;
    /** Per-launch RNG streams derive from (cfg.seed, launch index). */
    std::uint64_t launches = 0;

    /** Hard cap to catch simulator deadlock; far above any real run. */
    static constexpr Cycle kMaxCycles = 2'000'000'000;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_GPU_HPP
