/**
 * @file
 * Slab storage for in-flight MemoryAccess records and the fixed-capacity
 * ring buffer the hot-path queues are built from.
 *
 * A MemoryAccess is ~200 bytes (the inline PrtIndexList alone is 132);
 * before the slab every queue hop — LD/ST queue, crossbar input and
 * output ports, DRAM pending queue, response backlog — copied or moved
 * the full struct. With the slab a packet in motion is a 32-bit slot
 * index: the struct is written once at issue and read again only at the
 * points that actually consume its fields (L2 lookup, DRAM address
 * decode, response finalization).
 *
 * Slot numbers are pure identifiers: nothing may order or key on them
 * (ordering and traces use MemoryAccess::id), so the allocator's LIFO
 * recycling order is unobservable. The slab is never serialized — every
 * snapshot point requires a quiescent machine, where the slab is empty
 * by construction (asserted).
 */

#ifndef RCOAL_SIM_ACCESS_SLAB_HPP
#define RCOAL_SIM_ACCESS_SLAB_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "rcoal/common/logging.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::sim {

/** Sentinel for "no slot". */
inline constexpr std::uint32_t kInvalidSlot = ~std::uint32_t{0};

/**
 * Growable pool of MemoryAccess records addressed by 32-bit slot index.
 *
 * allocate() may grow the underlying storage: references obtained from
 * at() are invalidated by a later allocate(), so never hold one across
 * an allocation (slot indices stay stable and are the durable handle).
 */
class AccessSlab
{
  public:
    explicit AccessSlab(std::size_t initial_capacity = 256)
    {
        storage.reserve(initial_capacity);
    }

    /** Store @p access and return its slot. */
    std::uint32_t
    allocate(MemoryAccess access)
    {
        if (freeList.empty()) {
            RCOAL_ASSERT(storage.size() < kInvalidSlot,
                         "access slab exhausted");
            storage.push_back(std::move(access));
            ++live;
            return static_cast<std::uint32_t>(storage.size() - 1);
        }
        const std::uint32_t slot = freeList.back();
        freeList.pop_back();
        storage[slot] = std::move(access);
        ++live;
        return slot;
    }

    /** The record in @p slot (must be live). */
    MemoryAccess &
    at(std::uint32_t slot)
    {
        RCOAL_ASSERT(slot < storage.size(), "slab slot %u out of range",
                     slot);
        return storage[slot];
    }

    const MemoryAccess &
    at(std::uint32_t slot) const
    {
        RCOAL_ASSERT(slot < storage.size(), "slab slot %u out of range",
                     slot);
        return storage[slot];
    }

    /** Release @p slot for reuse. */
    void
    free(std::uint32_t slot)
    {
        RCOAL_ASSERT(slot < storage.size(), "slab slot %u out of range",
                     slot);
        RCOAL_ASSERT(live > 0, "slab free with no live slots");
        freeList.push_back(slot);
        --live;
    }

    /** Move the record out of @p slot and release the slot. */
    MemoryAccess
    take(std::uint32_t slot)
    {
        MemoryAccess access = std::move(at(slot));
        free(slot);
        return access;
    }

    /** Slots currently allocated. */
    std::size_t liveCount() const { return live; }

    /** True when no slot is allocated (the quiescent-machine state). */
    bool empty() const { return live == 0; }

  private:
    std::vector<MemoryAccess> storage;
    std::vector<std::uint32_t> freeList; ///< LIFO of recycled slots.
    std::size_t live = 0;
};

/**
 * Fixed-capacity FIFO ring buffer.
 *
 * Replaces the std::deque hops of the per-tick queues: contiguous
 * storage (one or two cache lines for the slot-index queues), no
 * allocation after construction, and indexed access for the FR-FCFS
 * scans that walk the DRAM queue every memory cycle. removeAt() erases
 * from the middle by shifting the tail forward, preserving FIFO order
 * and — unlike a tombstone scheme — the exact capacity/backpressure
 * behaviour of the deques it replaces.
 */
template <typename T>
class SlotRing
{
  public:
    SlotRing() = default;

    explicit SlotRing(std::size_t capacity) { reset(capacity); }

    /** Discard contents and (re)size to @p capacity elements. */
    void
    reset(std::size_t capacity)
    {
        storage.assign(capacity, T{});
        head = 0;
        count = 0;
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == storage.size(); }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return storage.size(); }

    T &
    front()
    {
        RCOAL_ASSERT(count > 0, "front of empty ring");
        return storage[head];
    }

    const T &
    front() const
    {
        RCOAL_ASSERT(count > 0, "front of empty ring");
        return storage[head];
    }

    /** The @p i-th element counted from the front. */
    T &
    operator[](std::size_t i)
    {
        RCOAL_ASSERT(i < count, "ring index %zu out of range", i);
        return storage[wrap(head + i)];
    }

    const T &
    operator[](std::size_t i) const
    {
        RCOAL_ASSERT(i < count, "ring index %zu out of range", i);
        return storage[wrap(head + i)];
    }

    void
    push_back(T value)
    {
        RCOAL_ASSERT(!full(), "push onto full ring");
        storage[wrap(head + count)] = std::move(value);
        ++count;
    }

    void
    pop_front()
    {
        RCOAL_ASSERT(count > 0, "pop from empty ring");
        head = wrap(head + 1);
        --count;
    }

    /** Erase the @p i-th element, shifting later elements forward. */
    void
    removeAt(std::size_t i)
    {
        RCOAL_ASSERT(i < count, "ring removeAt %zu out of range", i);
        for (std::size_t k = i; k + 1 < count; ++k)
            storage[wrap(head + k)] = std::move(storage[wrap(head + k + 1)]);
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i >= storage.size() ? i - storage.size() : i;
    }

    std::vector<T> storage;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_ACCESS_SLAB_HPP
