/**
 * @file
 * Kernel abstraction: per-warp instruction traces.
 *
 * Workloads compile to lockstep warp instruction traces rather than a
 * functional ISA: an instruction is either an ALU batch (fixed latency,
 * optionally a join that waits for all outstanding loads) or a memory
 * instruction carrying one request per active lane. This captures
 * exactly what the paper's evaluation needs - the address streams the
 * coalescer sees and the dependence structure that shapes timing -
 * without interpreting CUDA.
 */

#ifndef RCOAL_SIM_KERNEL_HPP
#define RCOAL_SIM_KERNEL_HPP

#include <string>
#include <vector>

#include "rcoal/core/coalescer.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::sim {

/** One lockstep warp instruction. */
struct WarpInstruction
{
    enum class Op : std::uint8_t
    {
        Alu,   ///< Compute for `latency` cycles.
        Load,  ///< One read request per active lane.
        Store, ///< One write request per active lane (fire-and-forget).
    };

    Op op = Op::Alu;

    /** ALU latency in core cycles (Op::Alu only). */
    unsigned latency = 1;

    /**
     * Op::Alu only: this instruction consumes loaded data and must wait
     * until every outstanding load of this warp has returned.
     */
    bool waitAllLoads = false;

    /** Semantic tag for statistics (memory ops). */
    AccessTag tag = AccessTag::Generic;

    /** Per-lane requests (memory ops); lanes may be inactive. */
    std::vector<core::LaneRequest> lanes;

    /** Build an ALU instruction. */
    static WarpInstruction alu(unsigned latency, bool wait_all_loads = false);

    /** Build a load instruction. */
    static WarpInstruction load(std::vector<core::LaneRequest> lanes,
                                AccessTag tag);

    /** Build a store instruction. */
    static WarpInstruction store(std::vector<core::LaneRequest> lanes,
                                 AccessTag tag);
};

/**
 * A kernel launch: a set of warps, each with an instruction trace.
 */
class KernelSource
{
  public:
    virtual ~KernelSource() = default;

    /** Number of warps in the launch. */
    virtual unsigned numWarps() const = 0;

    /** Instruction trace of warp @p warp. */
    virtual const std::vector<WarpInstruction> &trace(WarpId warp) const = 0;

    /** Display name. */
    virtual std::string name() const { return "kernel"; }
};

/**
 * Trivial KernelSource that owns explicit traces; used by tests and
 * microbenchmark workloads.
 */
class VectorKernel : public KernelSource
{
  public:
    VectorKernel(std::vector<std::vector<WarpInstruction>> warp_traces,
                 std::string kernel_name = "kernel");

    unsigned numWarps() const override;
    const std::vector<WarpInstruction> &trace(WarpId warp) const override;
    std::string name() const override { return kernelName; }

  private:
    std::vector<std::vector<WarpInstruction>> traces;
    std::string kernelName;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_KERNEL_HPP
