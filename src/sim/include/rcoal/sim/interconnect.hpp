/**
 * @file
 * Crossbar interconnect between SMs and memory partitions.
 *
 * Table I: one crossbar per direction at the core clock. The model is a
 * fixed-traversal-latency crossbar with bounded per-port queues, one
 * ejection per output port per cycle, and round-robin arbitration among
 * inputs contending for the same output.
 */

#ifndef RCOAL_SIM_INTERCONNECT_HPP
#define RCOAL_SIM_INTERCONNECT_HPP

#include <deque>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::trace {
class TraceSink;
} // namespace rcoal::trace

namespace rcoal::sim {

/**
 * One direction of the interconnect (e.g. SMs -> partitions).
 */
class Crossbar
{
  public:
    /**
     * @param num_inputs number of injection ports.
     * @param num_outputs number of ejection ports.
     * @param latency traversal latency in cycles.
     * @param queue_depth per-port queue capacity.
     */
    Crossbar(unsigned num_inputs, unsigned num_outputs, unsigned latency,
             std::size_t queue_depth);

    /** True when input port @p input can take another packet. */
    bool canInject(unsigned input) const;

    /** Inject a packet at @p now destined for output port @p output. */
    void inject(unsigned input, unsigned output, MemoryAccess access,
                Cycle now);

    /**
     * Advance one cycle: for every output port with queue space, move at
     * most one ready packet (injected at least `latency` cycles ago)
     * from an input queue, arbitrating round-robin among inputs.
     */
    void tick(Cycle now);

    /**
     * Conservative lower bound on the next cycle (>= now + 1) at which a
     * tick() could move a packet: the earliest readyAt among input-queue
     * heads whose destination has queue space. kInvalidCycle when no
     * tick can ever move anything from the current state. Ejections and
     * injections are driven by the machine/SMs, so they need no bound
     * here; only the state `tick` itself mutates counts.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account for @p cycles skipped ticks during which (provably) no
     * packet could move: only the rotating arbitration pointer advances.
     */
    void advanceIdleCycles(Cycle cycles);

    /** True when output port @p output has a packet to eject. */
    bool outputReady(unsigned output) const;

    /** Pop the packet at output port @p output (must be outputReady). */
    MemoryAccess popOutput(unsigned output);

    /** True when no packets are anywhere in the crossbar. */
    bool idle() const;

    /** Total packets moved input -> output so far. */
    std::uint64_t packetsTransferred() const { return transferred; }

    /** Packets currently resident in input + output queues. */
    std::size_t queuedPackets() const;

    /** Attach a sink for inject/grant trace events (core domain). */
    void setTraceSink(trace::TraceSink *s) { traceSink = s; }

    /** Return to the freshly-constructed state (must be idle()). */
    void reset();

    /** Serialize at quiescence (must be idle()). */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState() (must be idle()). */
    void restoreState(common::ArenaReader &r);

  private:
    struct Packet
    {
        MemoryAccess access;
        unsigned dest = 0;
        Cycle readyAt = 0;
    };

    unsigned numInputs;
    unsigned numOutputs;
    unsigned latency;
    std::size_t queueDepth;
    std::vector<std::deque<Packet>> inputQueues;
    std::vector<std::deque<MemoryAccess>> outputQueues;
    unsigned rrPointer = 0; ///< Rotating input priority.
    std::uint64_t transferred = 0;
    trace::TraceSink *traceSink = nullptr;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_INTERCONNECT_HPP
