/**
 * @file
 * Crossbar interconnect between SMs and memory partitions.
 *
 * Table I: one crossbar per direction at the core clock. The model is a
 * fixed-traversal-latency crossbar with bounded per-port queues, one
 * ejection per output port per cycle, and round-robin arbitration among
 * inputs contending for the same output.
 *
 * Packets live in an AccessSlab and travel as 32-bit slot indices; the
 * value-based inject()/popOutput() API copies through a fallback slab so
 * standalone users (tests, microbenches) see the historical behaviour
 * unchanged. Arbitration is driven by per-output bitmasks of the inputs
 * whose queue head targets that output, so a tick is a handful of
 * find-first-set steps instead of an inputs x outputs scan.
 */

#ifndef RCOAL_SIM_INTERCONNECT_HPP
#define RCOAL_SIM_INTERCONNECT_HPP

#include <memory>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/sim/access_slab.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::trace {
class TraceSink;
} // namespace rcoal::trace

namespace rcoal::sim {

/**
 * One direction of the interconnect (e.g. SMs -> partitions).
 */
class Crossbar
{
  public:
    /**
     * @param num_inputs number of injection ports (at most 64).
     * @param num_outputs number of ejection ports (at most 64).
     * @param latency traversal latency in cycles.
     * @param queue_depth per-port queue capacity.
     * @param slab shared packet storage; when null the crossbar owns a
     *        private slab (standalone/test use via the value API).
     */
    Crossbar(unsigned num_inputs, unsigned num_outputs, unsigned latency,
             std::size_t queue_depth, AccessSlab *slab = nullptr);

    /** True when input port @p input can take another packet. */
    bool canInject(unsigned input) const;

    /** Inject a packet at @p now destined for output port @p output. */
    void inject(unsigned input, unsigned output, MemoryAccess access,
                Cycle now);

    /** Inject slab slot @p slot (must be live in the shared slab). */
    void injectSlot(unsigned input, unsigned output, std::uint32_t slot,
                    Cycle now);

    /**
     * Advance one cycle: for every output port with queue space, move at
     * most one ready packet (injected at least `latency` cycles ago)
     * from an input queue, arbitrating round-robin among inputs.
     */
    void tick(Cycle now);

    /**
     * Conservative lower bound on the next cycle (>= now + 1) at which a
     * tick() could move a packet: the earliest readyAt among input-queue
     * heads whose destination has queue space. kInvalidCycle when no
     * tick can ever move anything from the current state. Ejections and
     * injections are driven by the machine/SMs, so they need no bound
     * here; only the state `tick` itself mutates counts.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account for @p cycles skipped ticks during which (provably) no
     * packet could move: only the rotating arbitration pointer advances.
     */
    void advanceIdleCycles(Cycle cycles);

    /** True when output port @p output has a packet to eject. */
    bool outputReady(unsigned output) const;

    /**
     * Bit per output port, set iff that port has a packet to eject —
     * lets the machine's ejection loops iterate set bits instead of
     * polling every port every cycle.
     */
    std::uint64_t outputsReadyMask() const { return outputsNonEmpty; }

    /** Pop the packet at output port @p output (must be outputReady). */
    MemoryAccess popOutput(unsigned output);

    /** Pop the slab slot at output port @p output (must be outputReady). */
    std::uint32_t popOutputSlot(unsigned output);

    /** True when no packets are anywhere in the crossbar. */
    bool idle() const;

    /** Total packets moved input -> output so far. */
    std::uint64_t packetsTransferred() const { return transferred; }

    /** Packets currently resident in input + output queues. */
    std::size_t queuedPackets() const;

    /** Attach a sink for inject/grant trace events (core domain). */
    void setTraceSink(trace::TraceSink *s)
    {
        traceSink = s;
        sleepUntil = 0;
    }

    /** Return to the freshly-constructed state (must be idle()). */
    void reset();

    /** Serialize at quiescence (must be idle()). */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState() (must be idle()). */
    void restoreState(common::ArenaReader &r);

  private:
    struct Packet
    {
        std::uint32_t slot = kInvalidSlot;
        std::uint32_t dest = 0;
        Cycle readyAt = 0;
    };

    /**
     * Re-derive headTarget membership after input @p in's head popped;
     * @p freed_output is the popped head's target (the only mask that
     * could hold the input's bit).
     */
    void refreshHead(unsigned in, unsigned freed_output);

    unsigned numInputs;
    unsigned numOutputs;
    unsigned latency;
    std::size_t queueDepth;
    AccessSlab *slab;                   ///< Shared or ownSlab.get().
    std::unique_ptr<AccessSlab> ownSlab; ///< Fallback for the value API.
    std::vector<SlotRing<Packet>> inputQueues;
    std::vector<SlotRing<std::uint32_t>> outputQueues;
    /**
     * Bit i of headTargets[out] is set iff input i's queue head is
     * destined for output `out`. Maintained at inject (head appears),
     * grant (head pops), and only there — each input contributes exactly
     * its head, so the masks partition the non-empty inputs.
     */
    std::vector<std::uint64_t> headTargets;
    /**
     * Packets resident across all port queues, maintained at
     * inject/eject so queuedPackets()/idle() are O(1) instead of
     * rescanning every queue (asserted against the scan in debug).
     */
    std::size_t resident = 0;
    /// Bit per output port, set iff its queue is non-empty (see
    /// outputsReadyMask()); maintained at grant and ejection.
    std::uint64_t outputsNonEmpty = 0;
    /// Bit per output port, set iff some input's head targets it
    /// (headTargets[out] != 0) — arbitration iterates these set bits
    /// instead of walking every output port every core cycle.
    std::uint64_t headsNonEmpty = 0;
    unsigned rrPointer = 0; ///< Rotating input priority.
    std::uint64_t transferred = 0;
    /**
     * Memo: tick() cannot grant before this cycle (it still advances
     * rrPointer, exactly as a grantless tick would). Set when a tick
     * grants nothing, to that tick's nextEventCycle(); invalidated by
     * ejections (backpressure may clear) and clamped by injections (a
     * new packet matures latency cycles later). Purely derived state —
     * never serialized, reset to 0 on restore.
     */
    Cycle sleepUntil = 0;
    trace::TraceSink *traceSink = nullptr;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_INTERCONNECT_HPP
