/**
 * @file
 * First-order energy model (GPUWattch-style accounting).
 *
 * The paper motivates RCoal's cost in both time and *data movement*:
 * disabling coalescing multiplies DRAM traffic by 2.7x, and energy
 * follows traffic. This model turns KernelStats into an energy
 * breakdown using per-event costs in the range published for
 * GDDR5-era GPUs (GPUWattch / Micron power notes): it is meant for
 * relative comparisons between coalescing policies, not absolute
 * calibration.
 */

#ifndef RCOAL_SIM_ENERGY_HPP
#define RCOAL_SIM_ENERGY_HPP

#include <string>

#include "rcoal/sim/config.hpp"
#include "rcoal/sim/stats.hpp"

namespace rcoal::sim {

/** Per-event energy costs in picojoules. */
struct EnergyCoefficients
{
    double dramPerByte = 20.0;      ///< DRAM array + I/O, pJ/byte.
    double dramActivate = 900.0;    ///< ACT+PRE pair amortized, pJ.
    double interconnectPerFlit = 50.0; ///< Crossbar traversal, pJ.
    double l1PerAccess = 25.0;      ///< L1 lookup, pJ.
    double l2PerAccess = 60.0;      ///< L2 lookup, pJ.
    double smPerInstruction = 120.0; ///< Warp instruction issue+exec.
    double staticPerCycleSm = 30.0; ///< Leakage/clock per SM-cycle, pJ.
};

/** Energy breakdown of one kernel launch, picojoules. */
struct EnergyBreakdown
{
    double dramDynamic = 0.0;
    double dramActivate = 0.0;
    double interconnect = 0.0;
    double caches = 0.0;
    double core = 0.0;
    double leakage = 0.0;

    /** Sum of every component. */
    double total() const;

    /** Nanojoules, for display. */
    double totalNanojoules() const { return total() / 1000.0; }

    /** Multi-line human-readable dump. */
    std::string describe() const;
};

/**
 * Estimate the energy of a launch from its statistics.
 */
EnergyBreakdown
estimateEnergy(const KernelStats &stats, const GpuConfig &config,
               const EnergyCoefficients &coefficients = {});

} // namespace rcoal::sim

#endif // RCOAL_SIM_ENERGY_HPP
