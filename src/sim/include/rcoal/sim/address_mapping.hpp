/**
 * @file
 * Global address space to memory-partition/bank/row mapping.
 *
 * Per Table I, the global linear address space is interleaved among the
 * memory partitions in chunks of 256 bytes. Within a partition,
 * consecutive chunks are spread across banks to maximize bank-level
 * parallelism, and rows span rowBytes of partition-local space per bank.
 */

#ifndef RCOAL_SIM_ADDRESS_MAPPING_HPP
#define RCOAL_SIM_ADDRESS_MAPPING_HPP

#include <cstdint>

#include "rcoal/common/types.hpp"
#include "rcoal/sim/config.hpp"

namespace rcoal::sim {

/** Decoded DRAM coordinates of a global address. */
struct DramLocation
{
    unsigned partition = 0;
    unsigned bank = 0;      ///< Bank within the partition.
    unsigned bankGroup = 0; ///< Bank group of the bank.
    std::uint64_t row = 0;  ///< Row within the bank.
    std::uint32_t column = 0; ///< Byte offset within the row.

    bool operator==(const DramLocation &other) const = default;
};

/**
 * Address decoder.
 */
class AddressMapping
{
  public:
    explicit AddressMapping(const GpuConfig &config);

    /** Memory partition servicing @p addr. */
    unsigned partitionOf(Addr addr) const;

    /** Full DRAM coordinates of @p addr. */
    DramLocation decode(Addr addr) const;

  private:
    std::uint32_t interleave;
    unsigned partitions;
    unsigned banks;
    unsigned groups;
    std::uint32_t rowBytes;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_ADDRESS_MAPPING_HPP
