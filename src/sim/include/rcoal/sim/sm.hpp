/**
 * @file
 * Streaming multiprocessor model.
 *
 * Each SM hosts a set of resident warps, issues up to issueWidth warp
 * instructions per cycle (one per warp scheduler, loose round-robin),
 * and owns the LD/ST path: the RCoal coalescer, the pending request
 * table with the sid field, the optional L1/MSHR, and the injection port
 * into the request crossbar.
 *
 * Warp state is split structure-of-arrays: the per-cycle issue scan
 * reads only dense parallel arrays (readyAt, pc, trace length,
 * memoized memory-instruction demand), with per-scheduler bitmasks of
 * issuable slots so the scan is find-first-set over a word instead of a
 * strided walk. The cold remainder (trace pointer, subwarp partition,
 * cached coalesce result) lives in a side vector touched only when an
 * instruction actually issues. In-flight accesses live in an
 * AccessSlab and move between the LD/ST queue, the crossbar, and the
 * local-response queue as 32-bit slot indices.
 */

#ifndef RCOAL_SIM_SM_HPP
#define RCOAL_SIM_SM_HPP

#include <memory>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/core/coalescer.hpp"
#include "rcoal/core/pending_request_table.hpp"
#include "rcoal/core/subwarp.hpp"
#include "rcoal/mem/mshr.hpp"
#include "rcoal/mem/sectored_cache.hpp"
#include "rcoal/sim/access_slab.hpp"
#include "rcoal/sim/address_mapping.hpp"
#include "rcoal/sim/interconnect.hpp"
#include "rcoal/sim/kernel.hpp"
#include "rcoal/sim/stats.hpp"

namespace rcoal::spans {
class SpanCollector;
} // namespace rcoal::spans

namespace rcoal::sim {

/**
 * One streaming multiprocessor.
 */
class StreamingMultiprocessor
{
  public:
    /**
     * @param config GPU configuration.
     * @param sm_id this SM's index (also its crossbar port).
     * @param request_xbar SM -> partition crossbar.
     * @param mapping address decoder (for routing).
     * @param access_id_counter shared unique-id source for accesses.
     * @param slab shared packet storage; when null the SM owns a
     *        private slab (standalone/test use).
     *
     * The statistics sink is bound per launch via beginLaunch(); an SM
     * belongs to exactly one resident kernel at a time, so the machine
     * rebinds it whenever it allocates the SM to a new launch.
     */
    StreamingMultiprocessor(const GpuConfig &config, unsigned sm_id,
                            Crossbar *request_xbar,
                            const AddressMapping *mapping,
                            std::uint64_t *access_id_counter,
                            AccessSlab *slab = nullptr);

    /**
     * Allocate this SM to a launch: bind its statistics sink, the
     * machine-visible launch slot stamped on every access it emits, and
     * the launch's outstanding-store counter (stores are fire-and-forget
     * from the SM's perspective; the machine decrements the counter when
     * the DRAM retires them, which is what lets it declare a launch
     * complete only once its writes drained).
     *
     * Requires the previous launch to have been reset().
     */
    void beginLaunch(KernelStats *launch_stats, std::uint32_t launch_slot,
                     std::uint64_t *pending_writes);

    /**
     * Return the SM to the free pool after its launch retired: all warps
     * finished and every queue drained (asserted). Scheduling state is
     * cleared so the next beginLaunch() starts from a cold core, matching
     * the one-launch-per-Gpu semantics the single-kernel path always had.
     */
    void reset();

    /**
     * Machine-level reset on top of reset(): additionally discard what
     * deliberately survives launch retirement — the warm L1 and the
     * MSHR merge counter — so the SM is byte-identical to a fresh one.
     */
    void hardReset();

    /**
     * Serialize all state that survives launch retirement (PRT, warm
     * L1, MSHR counters, scheduler/scan residue). Only legal between
     * launches (no resident warps, every queue drained).
     */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState(); configuration must match. */
    void restoreState(common::ArenaReader &r);

    /** Make a warp resident with its per-launch subwarp partition. */
    void assignWarp(WarpId warp_id,
                    const std::vector<WarpInstruction> *warp_trace,
                    core::SubwarpPartition partition);

    /** Advance one core cycle: drain LD/ST, then issue instructions. */
    void tick(Cycle now);

    /**
     * Conservative lower bound (>= now + 1) on the next core cycle at
     * which a tick() could change SM state, evaluated after this cycle's
     * tick and response deliveries. now + 1 whenever this cycle was
     * eventful (issue, queue movement, response) or the LD/ST head could
     * inject next cycle; otherwise the earliest warp wake-up / local
     * response / trailing-ALU horizon. kInvalidCycle for an idle SM.
     *
     * Stall counters are the one per-cycle side effect a frozen window
     * repeats; the machine replays them via applySkippedCycles(), so
     * they do not pin the bound (except under an attached trace sink,
     * where the per-cycle SmStall events must really be emitted).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account for @p cycles skipped ticks during which the SM state was
     * frozen: replay this tick's stall-counter deltas once per skipped
     * cycle (each stepped cycle would have repeated them exactly).
     */
    void applySkippedCycles(Cycle cycles);

    /** A load response arrived from the memory system. */
    void deliverResponse(MemoryAccess access, Cycle now);

    /** A load response arrived as slab slot @p slot (freed here). */
    void deliverResponseSlot(std::uint32_t slot, Cycle now);

    /**
     * True when every resident warp has retired (including the latency
     * of a trailing ALU batch) and all queues have drained.
     */
    bool done(Cycle now) const;

    /** Number of resident warps. */
    std::size_t residentWarps() const { return warpsCold.size(); }

    /** Live PRT fill (entries holding an in-flight or pending lane). */
    std::size_t prtOccupancy() const { return prt.occupancy(); }

    /** PRT capacity (config.prtEntries). */
    std::size_t prtCapacity() const { return prt.capacity(); }

    const mem::SectoredCache *l1Cache() const { return l1.get(); }

    /** Attach a sink for issue/stall/coalesce events (core domain). */
    void setTraceSink(trace::TraceSink *s) { traceSink = s; }

    /**
     * Attach a span collector (rcoal::spans); the SM stamps coalesce
     * and PRT-residency stages for warps whose launches registered a
     * span map. @p ns is the machine namespace (fleet replica index).
     */
    void
    setSpanCollector(spans::SpanCollector *c, std::uint32_t ns)
    {
        spanCollector = c;
        spanNamespace = ns;
    }

  private:
    /**
     * Warp state not touched by the per-cycle issue scan: read when an
     * instruction issues (or a memory instruction is first coalesced),
     * which is orders of magnitude rarer than the scan's stalled
     * retries in the saturated regime.
     */
    struct WarpCold
    {
        WarpId id = 0;
        const std::vector<WarpInstruction> *trace = nullptr;
        core::SubwarpPartition partition;
        /**
         * Coalesce result cached across stall retries of the current
         * memory instruction (recomputing it every stalled cycle
         * dominated the simulator profile). Valid iff pendingPc == pc.
         */
        std::vector<core::CoalescedAccess> pendingCoalesce;
        std::size_t pendingPc = ~std::size_t{0};
        unsigned pendingActiveLanes = 0;
    };

    struct LocalResponse
    {
        Cycle ready = 0;
        std::uint32_t slot = kInvalidSlot;
    };

    bool warpFinished(std::size_t slot) const
    {
        return warpPc[slot] >= warpTraceLen[slot] &&
               warpOutstanding[slot] == 0;
    }

    /** Clear warp @p slot's issuable bit once its trace is exhausted. */
    void retireFromScan(std::size_t slot)
    {
        if (useMasks) {
            issuableMask[slot % cfg.issueWidth] &=
                ~(std::uint64_t{1} << (slot / cfg.issueWidth));
        }
    }

    /**
     * Try to issue one instruction from warp @p slot; true on success.
     * The fast precheck rejects time-blocked warps and — via the
     * memoized demand arrays — memory instructions whose resource
     * stall persists, without touching the cold warp state or trace.
     */
    bool tryIssue(std::size_t slot, Cycle now);

    /** Issue a memory instruction; false when resources are exhausted. */
    bool issueMemory(std::size_t slot, const WarpInstruction &instr,
                     Cycle now);

    /** Advance the LD/ST queue head toward the memory system. */
    void drainLdst(Cycle now);

    /** Run the per-scheduler issue scan and refresh scanGate/scanWake. */
    void scanWarps(Cycle now);

    /** Finish one load access: free PRT, wake warp, record stats. */
    void finalizeLoad(const MemoryAccess &access, Cycle now);

    const GpuConfig &cfg;
    unsigned id;
    KernelStats *stats = nullptr;          ///< Bound by beginLaunch().
    std::uint32_t launchSlot = 0;          ///< Stamped on every access.
    std::uint64_t *pendingWrites = nullptr; ///< Launch's in-flight stores.
    Crossbar *reqXbar;
    const AddressMapping *map;
    std::uint64_t *nextAccessId;
    AccessSlab *slab;                    ///< Shared or ownSlab.get().
    std::unique_ptr<AccessSlab> ownSlab; ///< Fallback for standalone use.

    core::Coalescer coalescer;
    core::PendingRequestTable prt;
    /** Partition used for unprotected instructions (selective RCoal). */
    core::SubwarpPartition baselinePartition;
    SlotRing<std::uint32_t> ldstQueue; ///< Slab slots awaiting injection.
    std::size_t ldstQueueCapacity;

    std::unique_ptr<mem::SectoredCache> l1;
    std::unique_ptr<mem::MshrTable> mshr;
    /** L1-hit responses waiting their hit latency (ready ascending). */
    SlotRing<LocalResponse> localResponses;
    /**
     * Memoized L1 lookup for the LD/ST queue head: the tag probe (and
     * its hit/miss accounting) runs once per access id, so structural
     * stalls retrying the head — ICN backpressure, MSHR or reservation
     * exhaustion — cannot inflate the miss counters or re-age the set.
     */
    std::uint64_t l1LookupId = ~std::uint64_t{0};
    mem::AccessOutcome l1LookupOutcome = mem::AccessOutcome::Hit;

    /**
     * Structure-of-arrays warp scoreboard, indexed by warp slot. The
     * issue scan and response path read these; WarpCold holds the rest.
     * pendingMem[slot] flags a memoized memory instruction parked at
     * the current pc, with its demand mirrored in pendingCount (LD/ST
     * queue entries), pendingPrt (PRT entries), pendingLoad — so the
     * per-cycle stalled retry never leaves the arrays.
     */
    std::vector<Cycle> warpReadyAt;
    std::vector<std::uint32_t> warpPc;
    std::vector<std::uint32_t> warpTraceLen;
    std::vector<std::uint32_t> warpOutstanding;
    std::vector<WarpId> warpIds;
    std::vector<std::uint8_t> pendingMem;
    std::vector<std::uint8_t> pendingLoad;
    std::vector<std::uint32_t> pendingCount;
    std::vector<std::uint32_t> pendingPrt;
    std::vector<WarpCold> warpsCold;

    /**
     * Bit k of issuableMask[sched] is set iff warp slot
     * sched + k * issueWidth still has instructions to issue
     * (pc < trace length). Maintained at assignWarp and at the issue
     * that exhausts a trace; the scan iterates set bits instead of
     * probing every slot. Usable while each scheduler owns at most 64
     * slots (useMasks); the scalar walk remains as fallback.
     */
    std::vector<std::uint64_t> issuableMask;
    bool useMasks;

    /** Dense warp-id -> slot map (kNoSlot = not resident on this SM). */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
    std::vector<std::uint32_t> warpIndex;
    std::vector<std::size_t> rrPointer; ///< Per-scheduler round robin.
    std::size_t unfinishedWarps = 0;    ///< Cached for O(1) done().
    Cycle busyUntil = 0;                ///< Max readyAt across warps.

    /**
     * Issue-scan gate: the next cycle the per-scheduler warp scan must
     * run under per-cycle stepping. A scan with side effects (an issue
     * or a stall counter bump) re-arms it to now + 1; a quiet scan arms
     * it to the earliest warp wake-up (kInvalidCycle when every pending
     * warp is event-blocked). Every event that could unblock a silent
     * issue failure — a queue pop, a load completion, a new warp —
     * resets it to 0 so the next tick rescans.
     */
    Cycle scanGate = 0;
    /**
     * Earliest time-blocked warp wake-up as of the last scan: the
     * state-change lower bound nextEventCycle() uses. Deliberately NOT
     * scanGate — a stalling scan re-arms scanGate to now + 1 every
     * cycle, but its only effect is the stall counters, which skipping
     * replays in bulk.
     */
    Cycle scanWake = 0;
    bool tickChanged = false;       ///< This tick moved/issued something.
    bool responseSinceTick = false; ///< Delivery since this tick started.
    bool scanIssued = false;        ///< This tick's scan issued a warp.
    /**
     * Stalls THIS SM recorded during the current tick. KernelStats is
     * shared by every SM in a launch, so replaying a skipped window
     * from a counter diff would fold sibling SMs' stalls (and earlier
     * siblings' replays) into this SM's delta; per-SM tick counts are
     * the only safe basis for bulk replay.
     */
    std::uint64_t prtStallsTick = 0;
    std::uint64_t icnStallsTick = 0;

    std::vector<int> laneScratch;       ///< tid -> lane index scratch.
    trace::TraceSink *traceSink = nullptr;
    spans::SpanCollector *spanCollector = nullptr;
    std::uint32_t spanNamespace = 0;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_SM_HPP
