/**
 * @file
 * Set-associative cache and MSHR table.
 *
 * The paper's evaluation *disables* L1/L2 caching and MSHR-based request
 * merging (Section VII) to isolate the intra-warp coalescing channel;
 * both are implemented here so the memory hierarchy is complete and so
 * the ablation bench can measure their interaction with RCoal.
 */

#ifndef RCOAL_SIM_CACHE_HPP
#define RCOAL_SIM_CACHE_HPP

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "rcoal/common/types.hpp"
#include "rcoal/sim/config.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::sim {

/**
 * Blocking-free set-associative cache with true-LRU replacement.
 * Tag-array only: the simulator never carries data values.
 */
class Cache
{
  public:
    explicit Cache(const CacheGeometry &geometry);

    /**
     * Look up @p addr; on hit the line's LRU position is refreshed.
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Insert the line holding @p addr, evicting LRU if needed. */
    void fill(Addr addr);

    /** True when the line holding @p addr is resident (no LRU update). */
    bool contains(Addr addr) const;

    /** Invalidate everything. */
    void clear();

    unsigned hitLatency() const { return geom.hitLatency; }
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

  private:
    struct Set
    {
        /** Lines in LRU order: front = most recent. */
        std::list<std::uint64_t> lines;
    };

    std::uint64_t lineOf(Addr addr) const { return addr / geom.lineBytes; }
    std::size_t setOf(std::uint64_t line) const { return line % numSets; }

    CacheGeometry geom;
    std::size_t numSets;
    std::vector<Set> sets;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

/**
 * Miss Status Handling Registers: merges concurrent requests to the same
 * block so only one travels to memory.
 */
class MshrTable
{
  public:
    explicit MshrTable(std::size_t entries);

    /** True when a miss to @p block_addr is already outstanding. */
    bool isPending(Addr block_addr) const;

    /** True when a new block entry can be allocated. */
    bool canAllocate() const;

    /**
     * Allocate an entry for @p block_addr and remember @p access as its
     * primary request. Must not already be pending.
     */
    void allocate(Addr block_addr, MemoryAccess access);

    /**
     * Merge @p access into the pending entry for @p block_addr
     * (must be pending). Returns the number of requests now waiting.
     */
    std::size_t merge(Addr block_addr, MemoryAccess access);

    /**
     * The fill for @p block_addr arrived: pop and return all waiting
     * requests (primary first) and free the entry.
     */
    std::vector<MemoryAccess> complete(Addr block_addr);

    std::size_t occupancy() const { return table.size(); }
    std::uint64_t merges() const { return mergeCount; }

  private:
    std::size_t capacity;
    std::unordered_map<Addr, std::vector<MemoryAccess>> table;
    std::uint64_t mergeCount = 0;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_CACHE_HPP
