/**
 * @file
 * Simulated GPU configuration (Table I of the paper).
 */

#ifndef RCOAL_SIM_CONFIG_HPP
#define RCOAL_SIM_CONFIG_HPP

#include <cstdint>
#include <string>

#include "rcoal/core/policy.hpp"

namespace rcoal::sim {

/**
 * GDDR5 timing parameters in memory-clock cycles (Hynix part, Table I).
 */
struct DramTiming
{
    unsigned tCL = 12;  ///< CAS latency (READ to data).
    unsigned tRP = 12;  ///< Precharge to ACT.
    unsigned tRC = 40;  ///< ACT to ACT, same bank.
    unsigned tRAS = 28; ///< ACT to PRE, same bank.
    unsigned tCCD = 2;  ///< Column command to column command.
    unsigned tRCD = 12; ///< ACT to READ/WRITE.
    unsigned tRRD = 6;  ///< ACT to ACT, different banks.
    unsigned tREFI = 1755; ///< Refresh interval (all banks).
    unsigned tRFC = 83;    ///< Refresh cycle duration.

    bool operator==(const DramTiming &other) const = default;
};

/** Warp scheduler selection policy. */
enum class SchedulerPolicy
{
    LooseRoundRobin, ///< Rotate through ready warps (the default).
    GreedyThenOldest, ///< Stick with the last warp; fall back to oldest.
};

/**
 * Which DRAM device personality the memory partitions run with.
 * Gddr5 consumes GpuConfig::timing verbatim (the paper's Table I
 * machine); Gddr6/Hbm2 bring their own timing sets plus bank-group /
 * pseudo-channel structure (see rcoal::mem::DramBackend).
 */
enum class DramBackendKind : std::uint8_t
{
    Gddr5 = 0,
    Gddr6,
    Hbm2,
};

/**
 * Sectored set-associative cache geometry (used when caches are
 * enabled). Lines are divided into sectorBytes-sized sectors with
 * per-sector validity; streamingReservations bounds the in-flight
 * allocate-on-fill misses of a streaming L1 (ignored by the L2).
 */
struct CacheGeometry
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t lineBytes = 128;
    std::uint32_t ways = 4;
    unsigned hitLatency = 4; ///< Core cycles.
    std::uint32_t sectorBytes = 32;
    std::uint32_t streamingReservations = 32;

    bool operator==(const CacheGeometry &other) const = default;
};

/**
 * Full GPU configuration. Defaults reproduce the paper's simulated
 * machine (Table I): 15 SMs, 32-thread warps with two schedulers per SM,
 * 6 GDDR5 memory controllers with FR-FCFS scheduling, 256-byte
 * partition interleaving, and caches/MSHRs disabled (Section VII).
 */
struct GpuConfig
{
    // Core features.
    unsigned numSms = 15;
    unsigned warpSize = 32;
    unsigned issueWidth = 2;      ///< Warp schedulers per SM (16x2 SIMT).
    unsigned maxWarpsPerSm = 48;
    unsigned aluLatency = 4;      ///< Default ALU op latency, core cycles.
    SchedulerPolicy scheduler = SchedulerPolicy::LooseRoundRobin;

    // Clocks (MHz). Interconnect runs at the core clock.
    double coreClockMhz = 1400.0;
    double memClockMhz = 924.0;

    // Coalescing.
    std::uint32_t coalesceBlockBytes = 64;
    /**
     * PRT capacity per SM LD/ST unit. 256 entries keep 8 fully-divergent
     * warp loads in flight, which makes execution time track the
     * coalesced-access count (the linear relationship of Fig. 5) instead
     * of being bound by load round-trip latency.
     */
    std::size_t prtEntries = 256;

    // Interconnect (one crossbar per direction).
    unsigned icnLatency = 8;      ///< Traversal latency, core cycles.
    std::size_t icnQueueDepth = 16;

    // Memory system.
    unsigned numPartitions = 6;
    std::uint32_t partitionInterleaveBytes = 256;
    unsigned banksPerPartition = 16;
    unsigned bankGroups = 4;
    std::uint32_t rowBytes = 2048;
    std::size_t dramQueueDepth = 32;
    unsigned burstCycles = 2;     ///< Data-bus occupancy per access.
    DramTiming timing{};
    /**
     * DRAM device personality (rcoal::mem::DramBackend). Gddr5 keeps
     * the historical Table I model byte-identical; Gddr6/Hbm2 swap in
     * their own timing and channel structure. Selectable per bench run
     * via --dram-backend.
     */
    DramBackendKind dramBackend = DramBackendKind::Gddr5;
    /**
     * Periodic all-bank refresh (tREFI/tRFC). Off by default: refresh
     * adds low-frequency timing noise that is irrelevant to the
     * coalescing channel and the paper's GPGPU-Sim configuration; turn
     * it on for substrate studies.
     */
    bool refreshEnabled = false;

    // Optional bandwidth-saving features (paper disables them).
    bool l1Enabled = false;
    bool l2Enabled = false;
    bool mshrEnabled = false;
    std::size_t mshrEntries = 32;   ///< Per-SM L1 MSHR blocks.
    std::size_t l2MshrEntries = 64; ///< Per-partition L2 MSHR blocks.
    CacheGeometry l1{};
    CacheGeometry l2{128 * 1024, 128, 8, 8};

    // The defense under evaluation.
    core::CoalescingPolicy policy{};

    /**
     * Section VII future work: apply the randomized-coalescing policy
     * only to memory instructions whose AccessTag bit is set in
     * protectedTagMask; everything else coalesces with the baseline
     * single-subwarp partition. Requires software support to identify
     * the vulnerable code (here: the semantic trace tags).
     */
    bool selectiveRCoal = false;

    /** Bit i protects AccessTag i (default: last-round lookups only). */
    std::uint32_t protectedTagMask = 1u << 3; // LastRoundLookup

    /**
     * Event-driven idle-cycle skipping. When on, GpuMachine::runUntilDone
     * consults each component's nextEventCycle() lower bound and
     * fast-forwards over provably idle stretches instead of ticking every
     * core cycle. Timing is exact either way — cross-check tests enforce
     * byte-identical KernelStats/traces/attack results — so this is purely
     * a simulator-throughput switch. Force the legacy per-cycle loop with
     * cycleSkipping=false, RCOAL_CYCLE_SKIPPING=0, or a bench driver's
     * --no-cycle-skipping flag.
     */
    bool cycleSkipping = true;

    /** Master seed for all simulator randomness. */
    std::uint64_t seed = 1;

    /**
     * Field-wise equality, seed included. Snapshot restore compares
     * with the seed masked out: the seed is the one field a fork may
     * legitimately change (GpuMachine::reseed).
     */
    bool operator==(const GpuConfig &other) const = default;

    /** The paper's baseline configuration. */
    static GpuConfig paperBaseline();

    /** Panics on inconsistent parameters. */
    void validate() const;

    /** Multi-line human-readable dump (used by the Table I bench). */
    std::string describe() const;
};

/**
 * Process-wide override for GpuConfig::cycleSkipping: 0 forces the legacy
 * per-cycle loop, 1 forces skipping, -1 (default) clears the override.
 * Bench CLIs set this from --no-cycle-skipping.
 */
void setCycleSkippingOverride(int forced);

/**
 * Resolve the effective cycle-skipping setting for a machine being
 * constructed: the process-wide override wins, then the
 * RCOAL_CYCLE_SKIPPING environment variable (0/off/false disables),
 * then @p config_flag.
 */
bool resolveCycleSkipping(bool config_flag);

} // namespace rcoal::sim

#endif // RCOAL_SIM_CONFIG_HPP
