/**
 * @file
 * SIMT reconvergence stack with immediate-post-dominator based branch
 * divergence handling (Table I: "immediate post dominator based branch
 * divergence handling").
 *
 * The workloads in this reproduction (AES, streaming kernels) never
 * diverge, but the stack is part of the baseline GPU the paper
 * simulates: it produces the per-instruction active masks that the
 * trace model consumes, and lets divergent kernels be expressed
 * faithfully. Masks are 64-bit, supporting warps up to 64 lanes.
 */

#ifndef RCOAL_SIM_SIMT_STACK_HPP
#define RCOAL_SIM_SIMT_STACK_HPP

#include <cstdint>
#include <vector>

#include "rcoal/common/types.hpp"

namespace rcoal::sim {

/** A lane activity mask (bit t = lane t active). */
using LaneMask = std::uint64_t;

/** Mask with the low @p lanes bits set. */
LaneMask fullMask(unsigned lanes);

/**
 * Per-warp SIMT stack.
 *
 * Usage: on a divergent branch at pc with reconvergence point (the
 * immediate post-dominator) rpc, call diverge(); the stack first
 * executes the taken side, and reconverge(rpc) pops back to the other
 * side and finally restores the pre-branch mask at rpc.
 */
class SimtStack
{
  public:
    /** @param warp_size lanes per warp (<= 64). */
    explicit SimtStack(unsigned warp_size);

    /** Currently active lanes. */
    LaneMask activeMask() const;

    /** PC the active entry is expected to resume at (kInvalidPc if
     * top-level). */
    std::uint64_t reconvergencePc() const;

    /** Number of stack entries above the top-level frame. */
    std::size_t depth() const { return entries.size() - 1; }

    /** True when @p lane is active. */
    bool isActive(ThreadId lane) const;

    /**
     * Execute a divergent branch: lanes in @p taken_mask take the
     * branch (resuming at @p taken_pc), the rest fall through to
     * @p fallthrough_pc. Both masks must partition the current active
     * mask; fully-uniform branches (one side empty) do not push.
     *
     * @param taken_mask lanes taking the branch.
     * @param taken_pc target of the branch.
     * @param fallthrough_pc pc of the not-taken side.
     * @param reconv_pc the immediate post-dominator both sides meet at.
     * @return the pc execution continues at (taken_pc if diverged or
     *         all lanes take; fallthrough_pc if no lane takes).
     */
    std::uint64_t diverge(LaneMask taken_mask, std::uint64_t taken_pc,
                          std::uint64_t fallthrough_pc,
                          std::uint64_t reconv_pc);

    /**
     * The warp reached @p pc. If a stack entry reconverges here and has
     * a deferred side, switch to it and return its resume pc; when the
     * last side finishes, the entry pops (restoring the joined mask)
     * and execution continues at @p pc (returned).
     */
    std::uint64_t reconverge(std::uint64_t pc);

    /** Permanently disable lanes (thread exit). */
    void exitLanes(LaneMask lanes);

    /** Marker for "no reconvergence pending". */
    static constexpr std::uint64_t kNoReconvergence = ~std::uint64_t{0};

  private:
    struct Entry
    {
        LaneMask mask;            ///< Active lanes of this entry.
        std::uint64_t reconvPc;   ///< Where this entry pops.
        LaneMask pendingMask;     ///< Deferred (else) side, 0 if none.
        std::uint64_t pendingPc;  ///< Resume pc of the deferred side.
    };

    unsigned warpSize;
    std::vector<Entry> entries; ///< Bottom = full warp; top = active.
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_SIMT_STACK_HPP
