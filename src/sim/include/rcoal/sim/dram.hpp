/**
 * @file
 * GDDR5 memory partition model with FR-FCFS scheduling.
 *
 * Each partition owns a request queue, per-bank row-buffer state, and a
 * shared data bus. Scheduling is First-Ready First-Come-First-Served:
 * row-buffer hits are serviced ahead of older row misses. Timing follows
 * the Hynix GDDR5 parameters of Table I (tCL, tRP, tRC, tRAS, tCCD,
 * tRCD, tRRD), expressed in memory-clock cycles; the GPU top level
 * converts between clock domains.
 */

#ifndef RCOAL_SIM_DRAM_HPP
#define RCOAL_SIM_DRAM_HPP

#include <deque>
#include <vector>

#include "rcoal/sim/address_mapping.hpp"
#include "rcoal/sim/memory_access.hpp"
#include "rcoal/sim/stats.hpp"

namespace rcoal::sim {

/**
 * One GDDR5 memory partition (memory controller + devices).
 */
class DramPartition
{
  public:
    /**
     * @param config GPU configuration (timing, queue depth, banks).
     * @param partition_id this partition's index.
     * @param stats kernel statistics sink (row hits/misses, ACT/PRE).
     */
    DramPartition(const GpuConfig &config, unsigned partition_id,
                  KernelStats *stats);

    /** True when the request queue has room. */
    bool canAccept() const { return queue.size() < queueDepth; }

    /** Enqueue an access (must canAccept()); @p now is the memory cycle. */
    void enqueue(MemoryAccess access, const DramLocation &loc, Cycle now);

    /** Advance one memory cycle: issue up to one READ/WRITE, ACT, PRE. */
    void tick(Cycle now);

    /**
     * True when a serviced access is ready to be picked up at memory
     * cycle @p now.
     */
    bool hasCompleted(Cycle now) const;

    /** Pop one completed access (must hasCompleted()). */
    MemoryAccess popCompleted(Cycle now);

    /** True when no requests are queued, in flight, or completed. */
    bool idle() const { return queue.empty() && completed.empty(); }

    /** Number of queued (unserviced) requests. */
    std::size_t queuedRequests() const { return queue.size(); }

  private:
    struct Request
    {
        MemoryAccess access;
        DramLocation loc;
        Cycle arrival = 0;
        bool neededActivate = false; ///< Row was not open on arrival path.
        Cycle completion = kInvalidCycle; ///< Data available (mem cycles).
    };

    struct Bank
    {
        std::int64_t openRow = -1;   ///< -1 = precharged.
        Cycle nextRead = 0;          ///< Earliest next column command.
        Cycle nextActivate = 0;      ///< Earliest next ACT (tRP / tRC).
        Cycle prechargeAllowed = 0;  ///< tRAS from last ACT.
    };

    bool tryIssueColumn(Cycle now);
    bool tryIssueActivate(Cycle now);
    bool tryIssuePrecharge(Cycle now);
    void maybeRefresh(Cycle now);

    unsigned id;
    DramTiming timing;
    unsigned burstCycles;
    std::size_t queueDepth;
    KernelStats *stats;

    std::deque<Request> queue;        ///< Age-ordered, oldest first.
    std::vector<Request> completed;   ///< Serviced, awaiting pickup.
    std::vector<Bank> banks;
    Cycle busFreeAt = 0;              ///< Data bus reservation horizon.
    Cycle nextActivateAny = 0;        ///< tRRD across banks.
    bool refreshEnabled = false;
    Cycle nextRefreshAt = 0;          ///< Next all-bank refresh.
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_DRAM_HPP
