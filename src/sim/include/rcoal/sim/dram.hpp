/**
 * @file
 * Memory partition model with FR-FCFS scheduling.
 *
 * Each partition owns a request queue, per-bank row-buffer state, and a
 * data bus per pseudo-channel. Scheduling is First-Ready
 * First-Come-First-Served: row-buffer hits are serviced ahead of older
 * row misses. Timing comes from a pluggable rcoal::mem::DramBackend
 * personality — GDDR5 (the Hynix parameters of Table I, the default),
 * GDDR6, or HBM2 — expressed in memory-clock cycles; the GPU top level
 * converts between clock domains. Bank-group-aware personalities add
 * long same-group column/ACT windows (tCCD_L/tRRD_L) on top of the
 * per-bank constraints, and HBM2 splits the banks across two
 * pseudo-channels with independent data buses.
 */

#ifndef RCOAL_SIM_DRAM_HPP
#define RCOAL_SIM_DRAM_HPP

#include <algorithm>
#include <memory>
#include <vector>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/mem/dram_backend.hpp"
#include "rcoal/sim/access_slab.hpp"
#include "rcoal/sim/address_mapping.hpp"
#include "rcoal/sim/memory_access.hpp"
#include "rcoal/sim/stats.hpp"

namespace rcoal::trace {
class DramProtocolChecker;
class TraceSink;
} // namespace rcoal::trace

namespace rcoal::sim {

/**
 * One memory partition (memory controller + devices).
 */
class DramPartition
{
  public:
    /**
     * @param config GPU configuration (backend kind, queue depth, banks).
     * @param partition_id this partition's index.
     * @param stats kernel statistics sink (row hits/misses, ACT/PRE).
     * @param slab shared packet storage; when null the partition owns a
     *        private slab (standalone/test use via the value API).
     */
    DramPartition(const GpuConfig &config, unsigned partition_id,
                  KernelStats *stats, AccessSlab *slab = nullptr);

    /** True when the request queue has room. */
    bool canAccept() const { return !queue.full(); }

    /** Enqueue an access (must canAccept()); @p now is the memory cycle. */
    void enqueue(MemoryAccess access, const DramLocation &loc, Cycle now);

    /** Enqueue slab slot @p slot (must canAccept()). */
    void enqueueSlot(std::uint32_t slot, const DramLocation &loc,
                     Cycle now);

    /** Advance one memory cycle: issue up to one READ/WRITE, ACT, PRE. */
    void tick(Cycle now);

    /**
     * Conservative lower bound (>= now + 1, memory-clock domain) on the
     * next cycle at which a tick() could change partition state: burst
     * retirement, a column/ACT/PRE issue becoming legal, or a refresh
     * becoming due/unblocked. kInvalidCycle when the partition is idle
     * and refresh is off. Under the legacy-timing test seam the bound
     * degenerates to now + 1 (no skipping guarantees).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * True when a serviced access is ready to be picked up at memory
     * cycle @p now.
     */
    bool hasCompleted(Cycle now) const;

    /** Pop one completed access (must hasCompleted()). */
    MemoryAccess popCompleted(Cycle now);

    /** Pop one completed access's slab slot (must hasCompleted()). */
    std::uint32_t popCompletedSlot(Cycle now);

    /** True when no requests are queued, in flight, or completed. */
    bool idle() const { return queue.empty() && completed.empty(); }

    /** Number of queued (unserviced) requests. */
    std::size_t queuedRequests() const { return queue.size(); }

    /**
     * Per-bank command counters, telemetry-grade: unlike the KernelStats
     * sink (machine-wide, per-launch attribution impossible for shared
     * structures), these resolve row behaviour to the individual bank.
     */
    struct BankCounters
    {
        std::uint64_t rowHits = 0;
        std::uint64_t rowMisses = 0;
        std::uint64_t activates = 0;
        std::uint64_t precharges = 0;
    };

    /** Counters for each of this partition's banks. */
    const std::vector<BankCounters> &bankCounters() const
    {
        return bankStats;
    }

    /** All-bank refreshes issued by this partition. */
    std::uint64_t refreshes() const { return refreshCount; }

    /** The backend timing personality this partition runs with. */
    const mem::BackendTiming &backendTiming() const { return bt; }

    /**
     * Attach a protocol checker; every subsequent ACT/RD/PRE/REF is
     * validated as it issues. Null detaches. Not gated by RCOAL_TRACE:
     * checking is a test-mode feature of every build.
     */
    void setChecker(trace::DramProtocolChecker *c)
    {
        checker = c;
        sleepUntil = 0;
    }

    /** Attach a sink for ACT/PRE/RD/REF trace events (memory domain). */
    void setTraceSink(trace::TraceSink *s)
    {
        traceSink = s;
        sleepUntil = 0;
    }

    /**
     * Return to the freshly-constructed state (must be idle()): bank
     * rows and timing deadlines, bank-group/pseudo-channel windows,
     * the refresh schedule, and the per-bank counters. Before the
     * reset audit none of this was restored between machine resets.
     */
    void reset();

    /** Serialize the full timing state at quiescence (must be idle()). */
    void saveState(common::ArenaWriter &w) const;

    /** Restore state saved by saveState() (must be idle()). */
    void restoreState(common::ArenaReader &r);

    /**
     * Test-only: reproduce the pre-fix timing bookkeeping (plain
     * `nextRead` assignment, no read-to-precharge protection, no
     * bank-group window bookkeeping, refresh that fires regardless of
     * tRAS or in-flight bursts) so regression tests can demonstrate the
     * protocol checker catches it on every backend.
     */
    void enableLegacyTimingForTest()
    {
        legacyTiming = true;
        sleepUntil = 0;
    }

  private:
    /**
     * One queued request: the access itself stays in the slab; the
     * controller scans only this ~48-byte record, so the per-memory-cycle
     * FR-FCFS walks touch a couple of contiguous cache lines instead of
     * chasing a deque of ~200-byte structs.
     */
    struct Request
    {
        std::uint32_t slot = kInvalidSlot; ///< Slab slot of the access.
        DramLocation loc;
        Cycle arrival = 0;
        bool neededActivate = false; ///< Row was not open on arrival path.
        Cycle completion = kInvalidCycle; ///< Data available (mem cycles).
    };

    struct Bank
    {
        std::int64_t openRow = -1;   ///< -1 = precharged.
        Cycle nextRead = 0;          ///< Earliest next column command.
        Cycle nextActivate = 0;      ///< Earliest next ACT (tRP / tRC).
        Cycle prechargeAllowed = 0;  ///< tRAS from last ACT.
    };

    void issueColumnAt(Request &req, Cycle now);
    void issueActivateAt(Request &req, Cycle now);
    void issuePrechargeAt(Request &req, Cycle now);
    /**
     * Fused FR-FCFS step (non-legacy hot path): one walk of the queue
     * selects this cycle's column, ACT, and precharge winners — the
     * same winners the three per-class scans pick, proven in the
     * implementation. Returns true when any command issued.
     */
    bool issueCommands(Cycle now);
    /// Per-class scans; retained as the legacy-timing seam's path and
    /// as the readable specification the fused walk is checked against.
    bool tryIssueColumn(Cycle now);
    bool tryIssueActivate(Cycle now);
    bool tryIssuePrecharge(Cycle now);
    bool maybeRefresh(Cycle now);
    bool refreshDue(Cycle now) const;

    /**
     * Conservative lower bound (>= now + 1) on the next memory cycle at
     * which tick() itself could do work: retire a burst, fire a
     * refresh, or legally issue a command. This is nextEventCycle()
     * minus the completed-backlog term (draining `completed` is the
     * machine's work, not tick()'s), and it is what the sleepUntil memo
     * caches: a tick that did nothing proves every tick before the
     * bound is a no-op, so their queue scans can be skipped outright.
     */
    Cycle workBound(Cycle now) const;

    unsigned groupOf(unsigned bank) const { return bank % bt.bankGroups; }
    unsigned pcOf(unsigned bank) const { return bank / banksPerPc; }

    /**
     * Monotone deadline update: a bank timing deadline may only move
     * forward. Plain assignment here is how the pre-fix rewind slipped
     * in (see enableLegacyTimingForTest()).
     */
    static void raiseTo(Cycle &deadline, Cycle candidate)
    {
        deadline = std::max(deadline, candidate);
    }

    unsigned id;
    mem::BackendTiming bt;
    std::size_t queueDepth;
    KernelStats *stats;
    AccessSlab *slab;                    ///< Shared or ownSlab.get().
    std::unique_ptr<AccessSlab> ownSlab; ///< Fallback for the value API.

    SlotRing<Request> queue;          ///< Age-ordered, oldest first.
    std::vector<Request> completed;   ///< Serviced, awaiting pickup.
    std::vector<Bank> banks;
    std::vector<BankCounters> bankStats; ///< Parallel to `banks`.
    std::uint64_t refreshCount = 0;
    unsigned banksPerPc = 0;          ///< Banks per pseudo-channel.
    std::vector<Cycle> busFreeAt;     ///< Data-bus horizon per PC.
    Cycle nextActivateAny = 0;        ///< tRRD across banks.
    /// Bank-group windows; stay 0 unless the backend is group-aware,
    /// which keeps the GDDR5 path byte-identical to the scalar model.
    std::vector<Cycle> nextColumnGroup;   ///< tCCD_L per bank group.
    std::vector<Cycle> nextActivateGroup; ///< tRRD_L per bank group.
    std::vector<Cycle> nextColumnAnyPc;   ///< tCCD_S per pseudo-channel.
    bool refreshEnabled = false;
    Cycle nextRefreshAt = 0;          ///< Next all-bank refresh.
    /**
     * Memo: tick() is a provable no-op before this memory cycle (see
     * workBound()). Purely derived state — never serialized, reset to 0
     * by anything that could create work or change observers (enqueue,
     * restore, checker/sink attach, the legacy-timing seam, which also
     * disables the memo entirely).
     */
    Cycle sleepUntil = 0;
    /**
     * Exact min completion among serviced queued requests
     * (kInvalidCycle when none): gates the per-tick retire walk.
     * Derived state — maintained at column issue, recomputed by the
     * retire walk, never serialized (requires an idle partition).
     */
    Cycle earliestCompletion = kInvalidCycle;

    trace::DramProtocolChecker *checker = nullptr; ///< Optional referee.
    trace::TraceSink *traceSink = nullptr;         ///< Optional recorder.
    bool legacyTiming = false; ///< Test seam: pre-fix bookkeeping.
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_DRAM_HPP
