/**
 * @file
 * In-flight memory access representation and semantic tags.
 */

#ifndef RCOAL_SIM_MEMORY_ACCESS_HPP
#define RCOAL_SIM_MEMORY_ACCESS_HPP

#include <array>
#include <cassert>
#include <cstdint>

#include "rcoal/common/types.hpp"
#include "rcoal/trace/event.hpp" // RCOAL_TRACE_ENABLED gate

namespace rcoal::sim {

/**
 * Semantic tag attached to memory instructions so statistics can
 * separate the access classes the attack analysis cares about
 * (in particular the last-round T4 lookups).
 */
enum class AccessTag : std::uint8_t
{
    Generic = 0,
    PlaintextLoad,
    RoundLookup,     ///< Te0..Te3 lookups, rounds 1..Nr-1.
    LastRoundLookup, ///< T4 lookups in the last round.
    CiphertextStore,
};

/** Number of distinct AccessTag values. */
inline constexpr std::size_t kNumAccessTags = 5;

/** Short name for an AccessTag. */
const char *accessTagName(AccessTag tag);

/**
 * Fixed-capacity inline list of the PRT entry indices a load access must
 * release on completion.
 *
 * A coalesced access carries at most one PRT entry per lane of the
 * subwarp it came from, so warpSize bounds the per-access demand;
 * GpuConfig::validate() enforces warpSize <= kCapacity. Storing the
 * indices inline (instead of the std::vector this replaced) removes one
 * heap allocation per coalesced access from the memory hot path —
 * millions per serve run.
 */
class PrtIndexList
{
  public:
    /** Hard per-access bound (= the largest supported warp size). */
    static constexpr std::size_t kCapacity = 32;

    void
    push_back(std::size_t index)
    {
        assert(count < kCapacity && "PRT index list overflow");
        assert(index <= ~std::uint32_t{0} && "PRT index out of range");
        entries[count++] = static_cast<std::uint32_t>(index);
    }

    void clear() { count = 0; }
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    const std::uint32_t *begin() const { return entries.data(); }
    const std::uint32_t *end() const { return entries.data() + count; }

  private:
    std::array<std::uint32_t, kCapacity> entries{};
    std::uint32_t count = 0;
};

/**
 * One coalesced memory access travelling through the memory system.
 * Created by the SM's LD/ST unit, routed through the interconnect to a
 * memory partition, serviced by DRAM, and (for loads) returned to the SM.
 */
struct MemoryAccess
{
    std::uint64_t id = 0;     ///< Unique, monotonically increasing.
    Addr blockAddr = 0;       ///< Block-aligned address.
    std::uint32_t bytes = 0;  ///< Access size (the coalescing block).
    bool isWrite = false;
    AccessTag tag = AccessTag::Generic;

    unsigned smId = 0;        ///< Originating SM.
    /**
     * Originating launch slot on the machine. Lets the shared memory
     * system (DRAM write completions, L2 hit/miss counters) attribute
     * statistics to the right kernel when several are co-resident.
     */
    std::uint32_t launchSlot = 0;
    WarpId warpId = 0;        ///< Originating warp (global id).
    SubwarpId sid = 0;        ///< Subwarp that generated the access.
    PrtIndexList prtIndices;  ///< PRT entries to release (loads only).

    Cycle issueCycle = 0;     ///< Core cycle the access left the LD/ST.

#if RCOAL_TRACE_ENABLED
    /**
     * Span-stamp scratch (rcoal::spans): entry cycle of the current
     * crossbar leg (core clock), and the memory cycle the first DRAM
     * command (precharge/activate/column) issued on this access's
     * behalf — kInvalidCycle until then. The DramService span
     * deliberately starts at first command, not queue entry: FR-FCFS
     * queue wait is cross-request contention (visible upstream in
     * PrtResidency), while first-command-to-data-return isolates the
     * device-service slice the access count serializes. Compiled out
     * with tracing so the TRACE=OFF hot path keeps its access size.
     */
    Cycle spanXbarInject = 0;
    Cycle spanDramStart = 0;
#endif
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_MEMORY_ACCESS_HPP
