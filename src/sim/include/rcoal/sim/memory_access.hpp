/**
 * @file
 * In-flight memory access representation and semantic tags.
 */

#ifndef RCOAL_SIM_MEMORY_ACCESS_HPP
#define RCOAL_SIM_MEMORY_ACCESS_HPP

#include <cstdint>
#include <vector>

#include "rcoal/common/types.hpp"

namespace rcoal::sim {

/**
 * Semantic tag attached to memory instructions so statistics can
 * separate the access classes the attack analysis cares about
 * (in particular the last-round T4 lookups).
 */
enum class AccessTag : std::uint8_t
{
    Generic = 0,
    PlaintextLoad,
    RoundLookup,     ///< Te0..Te3 lookups, rounds 1..Nr-1.
    LastRoundLookup, ///< T4 lookups in the last round.
    CiphertextStore,
};

/** Number of distinct AccessTag values. */
inline constexpr std::size_t kNumAccessTags = 5;

/** Short name for an AccessTag. */
const char *accessTagName(AccessTag tag);

/**
 * One coalesced memory access travelling through the memory system.
 * Created by the SM's LD/ST unit, routed through the interconnect to a
 * memory partition, serviced by DRAM, and (for loads) returned to the SM.
 */
struct MemoryAccess
{
    std::uint64_t id = 0;     ///< Unique, monotonically increasing.
    Addr blockAddr = 0;       ///< Block-aligned address.
    std::uint32_t bytes = 0;  ///< Access size (the coalescing block).
    bool isWrite = false;
    AccessTag tag = AccessTag::Generic;

    unsigned smId = 0;        ///< Originating SM.
    /**
     * Originating launch slot on the machine. Lets the shared memory
     * system (DRAM write completions, L2 hit/miss counters) attribute
     * statistics to the right kernel when several are co-resident.
     */
    std::uint32_t launchSlot = 0;
    WarpId warpId = 0;        ///< Originating warp (global id).
    SubwarpId sid = 0;        ///< Subwarp that generated the access.
    std::vector<std::size_t> prtIndices; ///< PRT entries to release.

    Cycle issueCycle = 0;     ///< Core cycle the access left the LD/ST.
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_MEMORY_ACCESS_HPP
