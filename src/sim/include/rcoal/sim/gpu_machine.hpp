/**
 * @file
 * Persistent GPU machine with concurrent-kernel residency.
 *
 * Gpu::launch() models the paper's one-shot victim: one kernel, a cold
 * machine, run to completion. A serving system needs the opposite shape:
 * a machine that stays up, hosts several kernels at once on disjoint SM
 * subsets, and lets them contend for the shared interconnect and DRAM
 * partitions — the contention is simulated, not approximated. GpuMachine
 * is that machine; Gpu::launch() is now a thin single-tenant wrapper over
 * it, so both paths share one timing model.
 *
 * Usage: launch() kernels on free SM ranges, tick() the machine one core
 * cycle at a time, poll done(), then take() the per-launch statistics
 * (which also frees the launch's SMs for the next kernel).
 */

#ifndef RCOAL_SIM_GPU_MACHINE_HPP
#define RCOAL_SIM_GPU_MACHINE_HPP

#include <atomic>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rcoal/common/rng.hpp"
#include "rcoal/core/partitioner.hpp"
#include "rcoal/mem/mshr.hpp"
#include "rcoal/mem/sectored_cache.hpp"
#include "rcoal/sim/address_mapping.hpp"
#include "rcoal/sim/config.hpp"
#include "rcoal/sim/dram.hpp"
#include "rcoal/sim/interconnect.hpp"
#include "rcoal/sim/kernel.hpp"
#include "rcoal/sim/sm.hpp"
#include "rcoal/sim/snapshot.hpp"
#include "rcoal/sim/stats.hpp"
#include "rcoal/trace/dram_checker.hpp"
#include "rcoal/trace/tracer.hpp"

namespace rcoal::telemetry {
class TelemetrySampler;
} // namespace rcoal::telemetry

namespace rcoal::sim {

/** A contiguous range of SMs a launch runs on. */
struct SmRange
{
    unsigned first = 0;
    unsigned count = 0;
};

/**
 * Process-wide simulator throughput counters, accumulated by every
 * GpuMachine on destruction. Benches report them (sim_cycles,
 * skipped_cycles, sim_cycles_per_second) in BENCH_engine.json so the
 * perf trajectory is tracked across PRs.
 */
struct SimCycleCounters
{
    std::atomic<std::uint64_t> simulated{0}; ///< Core cycles advanced.
    std::atomic<std::uint64_t> skipped{0};   ///< Of those, fast-forwarded.
};

/** The process-wide counter instance. */
SimCycleCounters &simCycleCounters();

/**
 * The persistent multi-kernel GPU.
 */
class GpuMachine
{
  public:
    using LaunchId = std::uint64_t;

    explicit GpuMachine(GpuConfig config);

    /** Folds this machine's cycle totals into simCycleCounters(). */
    ~GpuMachine();

    GpuMachine(const GpuMachine &) = delete;
    GpuMachine &operator=(const GpuMachine &) = delete;

    /** The active configuration. */
    const GpuConfig &config() const { return cfg; }

    /** Current core cycle. */
    Cycle now() const { return nowCycle; }

    /** True when @p range is valid and none of its SMs host a kernel. */
    bool rangeFree(SmRange range) const;

    /** SMs currently allocated to resident kernels. */
    unsigned busySms() const;

    /**
     * Make @p kernel resident on @p range (which must be free) and
     * return its launch id. The kernel draws its per-warp subwarp
     * partitions from Rng::stream(config.seed, @p rng_stream_index), so
     * a launch's randomness is a pure function of (config, index)
     * regardless of machine history. @p kernel must stay alive until the
     * launch completes (the SMs execute its traces in place).
     */
    LaunchId launchStream(const KernelSource &kernel, SmRange range,
                          std::uint64_t rng_stream_index);

    /** launchStream() with the machine's own launch counter as index. */
    LaunchId launch(const KernelSource &kernel, SmRange range);

    /** Advance the whole machine one core cycle. */
    void tick();

    /**
     * Conservative lower bound (> now()) on the next core cycle at
     * which any core-clock component — SM, crossbar, L2 hit queue,
     * response backlog — could change state, evaluated right after a
     * tick(). kInvalidCycle when only DRAM-side (memory-clock) events
     * remain; skipTo() enforces that bound itself, so callers pass the
     * core bound (clamped to a finite ceiling) straight in.
     */
    Cycle nextEventCycle() const;

    /**
     * Fast-forward the machine so the next tick() executes core cycle
     * @p target — or an earlier cycle if a DRAM memory-clock event
     * intervenes. Only legal when the cycles jumped over are provably
     * uneventful, i.e. @p target must not exceed nextEventCycle(). The
     * clock-domain state (memCycle/memAccum) is advanced by replaying
     * the exact per-cycle accumulator arithmetic of tick(), and frozen
     * per-cycle effects (SM stall counters, crossbar arbitration
     * rotation) are applied in bulk. Returns the cycles skipped.
     */
    Cycle skipTo(Cycle target);

    /**
     * The core cycle skipTo(@p target) would stop at — its memory-clock
     * cutoff applied — without mutating any state. A caller driving
     * several machines on one clock (rcoal::fleet) queries every
     * machine, takes the minimum, and then skips them all to exactly
     * that common cycle, so no machine ever runs ahead of the shared
     * clock. Returns now() when no cycle can be skipped.
     */
    Cycle skipStopCycle(Cycle target) const;

    /** True when cycle skipping resolved on for this machine. */
    bool cycleSkippingEnabled() const { return skipEnabled; }

    /** Core cycles fast-forwarded so far (a subset of now()). */
    Cycle skippedCycles() const { return skippedTotal; }

    /** True when some completed launch still awaits take(). */
    bool anyCompletedUntaken() const;

    /** True when @p id has retired (all warps done, stores drained). */
    bool done(LaunchId id) const;

    /**
     * The core cycle completed launch @p id actually finished at (not
     * the cycle a caller happened to poll done()). Valid until take().
     */
    Cycle finishCycle(LaunchId id) const;

    /** tick() until @p id completes. */
    void runUntilDone(LaunchId id);

    /**
     * Collect the statistics of completed launch @p id and free its SM
     * range for reuse. cycles counts from launch to completion.
     */
    KernelStats take(LaunchId id);

    /**
     * Machine-level memory-system counters (DRAM row behaviour,
     * refreshes). Shared structures cannot be attributed to a single
     * tenant, so they accumulate here across all launches.
     */
    const KernelStats &memoryStats() const { return memStats; }

    /** Number of launches started so far. */
    std::uint64_t launchCount() const { return launchCounter; }

    /** True while any launch is resident. */
    bool anyResident() const { return !active.empty(); }

    /**
     * Attach (or with nullptr detach) a tracer: creates per-component
     * sinks ("sm0..", "xbar.req", "xbar.resp", "dram0..", "machine"),
     * sets the tracer's clock ratio, and wires every component. The
     * tracer must outlive the machine or be detached first.
     */
    void setTracer(trace::Tracer *t);

    /**
     * Attach (or with nullptr detach) a span collector (rcoal::spans):
     * wires every SM's warp-level stamp points and enables the
     * machine's crossbar/DRAM stage stamps. @p span_namespace
     * disambiguates launch slots when several machines (fleet
     * replicas) share one collector. Collector state rides along in
     * snapshot()/restore() and is cleared by reset().
     */
    void setSpanCollector(spans::SpanCollector *c,
                          std::uint32_t span_namespace = 0);

    spans::SpanCollector *spanCollectorPtr() const
    {
        return spanCollector;
    }

    /**
     * Create one protocol checker per DRAM partition and validate every
     * command as it issues. Independent of RCOAL_TRACE: checking is a
     * test-mode feature of every build.
     */
    void enableDramChecking(trace::DramProtocolChecker::Mode mode =
                                trace::DramProtocolChecker::Mode::Panic);

    /** The per-partition checkers (empty until enableDramChecking()). */
    const std::vector<std::unique_ptr<trace::DramProtocolChecker>> &
    dramCheckers() const
    {
        return checkers;
    }

    /**
     * Attach (or with nullptr detach) a telemetry sampler.  The machine
     * registers its instruments (cycle/launch counters, SM stall and
     * PRT-fill gauges, crossbar contention, per-bank DRAM counters) in
     * the sampler's registry with a pull collector, re-anchors the
     * sampler after now(), and from then on:
     *  - tick() fires the sampler exactly at each due sample cycle;
     *  - nextEventCycle() never exceeds nextSampleCycle(), so no
     *    cycle-skip path can jump over a sample point.
     * Together these make sampled telemetry land on identical cycles —
     * and identical values — with cycle skipping on or off.
     *
     * Cycle-skipping throughput counters (skippedCycles) are deliberately
     * NOT exported: they are the one machine quantity that legitimately
     * differs between the two modes.
     *
     * The sampler must outlive the machine or be detached first.
     */
    void setTelemetry(telemetry::TelemetrySampler *sampler);

    /**
     * Counter totals accumulated across launches: retired launches'
     * stats plus the live stats of still-resident ones. Monotone over
     * time, which is what the telemetry counters require.
     */
    KernelStats cumulativeStats() const;

    /** Launches retired (taken) so far. */
    std::uint64_t retiredLaunchCount() const { return retiredLaunches; }

    /** Sum of live PRT occupancy across all SMs. */
    std::size_t prtOccupancy() const;

    /**
     * True when no kernel is resident and every component has drained:
     * the only machine states snapshot(), restore(), and reset()
     * accept. Between launches a machine is always quiescent.
     */
    bool quiescent() const;

    /**
     * Serialize the full mutable state into a fresh arena. Requires
     * quiescent(). The snapshot captures the warm memory hierarchy,
     * DRAM timing horizons, clock-domain phase, counters, and the
     * current seed — everything a fork needs to continue bit-exactly.
     */
    MachineSnapshot snapshot() const;

    /**
     * Overwrite this machine's state from @p snap. The machine must be
     * quiescent, structurally identical to the snapshot's config (all
     * fields except the seed), and have no telemetry sampler attached.
     * Adopts the snapshot's seed; call reseed() afterwards to diverge.
     */
    void restore(const MachineSnapshot &snap);

    /** Construct a new machine and restore() @p snap into it. */
    static std::unique_ptr<GpuMachine> fork(const MachineSnapshot &snap);

    /**
     * Replace the master seed. Launch randomness is a pure function of
     * (seed, launch stream index), so reseeding a forked machine gives
     * it an independent stream while keeping the warmed-up state.
     */
    void reseed(std::uint64_t seed);

    /**
     * Return to the freshly-constructed state: counters, clocks, warm
     * caches, DRAM timing, checkers, attached trace sinks, and an
     * attached telemetry sampler's recording. Requires quiescent().
     * Gated by the reset-vs-fresh byte-identity audit test.
     */
    void reset();

  private:
    /** Book-keeping for one resident (or completed-but-untaken) launch. */
    struct LaunchState
    {
        LaunchId id = 0;
        SmRange range;
        std::unique_ptr<KernelStats> stats; ///< Stable per-launch sink.
        std::uint64_t pendingWrites = 0;    ///< Stores not yet retired.
        Cycle startCycle = 0;
        Cycle endCycle = 0; ///< Cycle the work drained (once completed).
        bool completed = false;
    };

    /** Per-partition L2 front end (only populated when L2 is enabled). */
    struct L2Frontend
    {
        std::unique_ptr<mem::SectoredCache> cache;
        /** L2 MSHRs (populated when MSHR merging is enabled). */
        std::unique_ptr<mem::MshrTable> mshr;
        /** Hit responses' slab slots waiting out the hit latency. */
        std::deque<std::pair<Cycle, std::uint32_t>> pendingHits;
    };

    /** Stats sink for @p slot; nullptr once the launch was taken. */
    KernelStats *statsForSlot(std::uint32_t slot);

    /** Mark @p launch completed if all of its work has drained. */
    void checkCompletion(LaunchState &launch);

    GpuConfig cfg;
    core::SubwarpPartitioner partitioner;
    AddressMapping mapping;
    /**
     * The machine-wide packet store: every in-flight MemoryAccess lives
     * here and moves between the SMs, both crossbars, the L2 front ends
     * and the DRAM queues as a 32-bit slot index. Empty whenever the
     * machine is quiescent (asserted at snapshot/reset), so it is never
     * serialized.
     */
    AccessSlab slab;
    Crossbar reqXbar;
    Crossbar respXbar;
    std::vector<std::unique_ptr<StreamingMultiprocessor>> sms;
    std::vector<std::unique_ptr<DramPartition>> drams;
    std::vector<L2Frontend> l2;
    /** DRAM completions the response crossbar could not yet take. */
    std::vector<std::deque<std::uint32_t>> respBacklog;

    KernelStats memStats; ///< Machine-level DRAM counters.
    std::unordered_map<std::uint32_t, LaunchState> active;
    std::vector<bool> smBusy; ///< SM -> allocated to a launch.

    std::vector<std::unique_ptr<trace::DramProtocolChecker>> checkers;
    trace::DramProtocolChecker::Mode checkerMode =
        trace::DramProtocolChecker::Mode::Panic;
    trace::TraceSink *machineSink = nullptr; ///< Launch/retire events.
    /** Every sink setTracer() wired, so reset() can clear them. */
    std::vector<trace::TraceSink *> attachedSinks;
    spans::SpanCollector *spanCollector = nullptr;
    std::uint32_t spanNamespace = 0;
    telemetry::TelemetrySampler *telemetrySampler = nullptr;
    KernelStats retiredTotals; ///< Sum of all taken launches' stats.
    std::uint64_t retiredLaunches = 0;

    std::uint64_t launchCounter = 0;
    std::uint64_t accessIds = 0;
    Cycle nowCycle = 0;
    Cycle memCycle = 0;
    double memAccum = 0.0;
    bool skipEnabled = true;  ///< resolveCycleSkipping() at construction.
    Cycle skippedTotal = 0;   ///< Core cycles fast-forwarded.

    /** Hard cap to catch simulator deadlock; far above any real run. */
    static constexpr Cycle kMaxCycles = 2'000'000'000;
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_GPU_MACHINE_HPP
