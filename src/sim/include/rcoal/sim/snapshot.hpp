/**
 * @file
 * MachineSnapshot: a quiescent GpuMachine's full mutable state.
 *
 * A snapshot pairs the machine's configuration with a StateArena
 * holding every mutable field serialized at a quiescent point (no
 * resident kernels, every queue and bus drained — in practice a
 * cycle-skip quiescence point, where the live state is minimal). The
 * arena is immutable and shared by reference count, so forking N
 * machines from one warmed-up prefix costs one serialization plus N
 * restores: copy-on-write at snapshot granularity. Prefix-shared
 * sample collection (EncryptionService::collectSamplesShared) and the
 * serve warm-boot path both build on this.
 *
 * Byte equality of two snapshots is state equality of the machines
 * that produced them; the reset-vs-fresh audit test uses exactly that.
 */

#ifndef RCOAL_SIM_SNAPSHOT_HPP
#define RCOAL_SIM_SNAPSHOT_HPP

#include <memory>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/sim/config.hpp"

namespace rcoal::sim {

/**
 * One machine snapshot. Cheap to copy (the arena is shared) and safe
 * to restore concurrently from many threads.
 */
struct MachineSnapshot
{
    GpuConfig config;
    std::shared_ptr<const common::StateArena> arena;

    /** Exact state equality with @p other (arena byte equality). */
    bool
    byteEqual(const MachineSnapshot &other) const
    {
        return arena != nullptr && other.arena != nullptr &&
               arena->byteEqual(*other.arena);
    }
};

} // namespace rcoal::sim

#endif // RCOAL_SIM_SNAPSHOT_HPP
