/**
 * @file
 * KernelStats implementation.
 */

#include "rcoal/sim/stats.hpp"

#include <sstream>

#include "rcoal/common/logging.hpp"

namespace rcoal::sim {

const char *
accessTagName(AccessTag tag)
{
    switch (tag) {
      case AccessTag::Generic:
        return "generic";
      case AccessTag::PlaintextLoad:
        return "plaintext-load";
      case AccessTag::RoundLookup:
        return "round-lookup";
      case AccessTag::LastRoundLookup:
        return "last-round-lookup";
      case AccessTag::CiphertextStore:
        return "ciphertext-store";
    }
    return "unknown";
}

std::string
KernelStats::describe() const
{
    std::ostringstream out;
    out << strprintf("cycles: %llu (last-round window: %llu)\n",
                     static_cast<unsigned long long>(cycles),
                     static_cast<unsigned long long>(lastRoundCycles()));
    out << strprintf("warp instructions: %llu (%llu memory)\n",
                     static_cast<unsigned long long>(warpInstructions),
                     static_cast<unsigned long long>(memInstructions));
    out << strprintf("coalesced accesses: %llu (%llu loads, %llu stores)\n",
                     static_cast<unsigned long long>(coalescedAccesses),
                     static_cast<unsigned long long>(loadAccesses),
                     static_cast<unsigned long long>(storeAccesses));
    for (std::size_t i = 0; i < kNumAccessTags; ++i) {
        const auto &ts = perTag[i];
        if (ts.accesses == 0)
            continue;
        out << strprintf("  tag %-18s: %llu accesses from %llu lane "
                         "requests, window %llu\n",
                         accessTagName(static_cast<AccessTag>(i)),
                         static_cast<unsigned long long>(ts.accesses),
                         static_cast<unsigned long long>(ts.laneRequests),
                         static_cast<unsigned long long>(ts.window()));
    }
    out << strprintf("DRAM: %llu row hits, %llu row misses, %llu ACT, "
                     "%llu PRE\n",
                     static_cast<unsigned long long>(dramRowHits),
                     static_cast<unsigned long long>(dramRowMisses),
                     static_cast<unsigned long long>(dramActivates),
                     static_cast<unsigned long long>(dramPrecharges));
    if (l1Hits + l1Misses + l2Hits + l2Misses + mshrMerges +
        l2MshrMerges) {
        out << strprintf("hierarchy: L1 %llu/%llu (%llu sector), "
                         "L2 %llu/%llu (%llu sector), "
                         "MSHR merges %llu L1 + %llu L2\n",
                         static_cast<unsigned long long>(l1Hits),
                         static_cast<unsigned long long>(l1Misses),
                         static_cast<unsigned long long>(l1SectorMisses),
                         static_cast<unsigned long long>(l2Hits),
                         static_cast<unsigned long long>(l2Misses),
                         static_cast<unsigned long long>(l2SectorMisses),
                         static_cast<unsigned long long>(mshrMerges),
                         static_cast<unsigned long long>(l2MshrMerges));
    }
    out << strprintf("stalls: %llu PRT, %llu interconnect\n",
                     static_cast<unsigned long long>(prtStallCycles),
                     static_cast<unsigned long long>(icnStallCycles));
    return out.str();
}

void
KernelStats::accumulate(const KernelStats &other)
{
    cycles += other.cycles;
    warpInstructions += other.warpInstructions;
    memInstructions += other.memInstructions;
    coalescedAccesses += other.coalescedAccesses;
    loadAccesses += other.loadAccesses;
    storeAccesses += other.storeAccesses;
    for (std::size_t i = 0; i < perTag.size(); ++i) {
        TagStats &mine = perTag[i];
        const TagStats &theirs = other.perTag[i];
        mine.accesses += theirs.accesses;
        mine.laneRequests += theirs.laneRequests;
        mine.firstIssue = std::min(mine.firstIssue, theirs.firstIssue);
        mine.lastComplete =
            std::max(mine.lastComplete, theirs.lastComplete);
    }
    dramRowHits += other.dramRowHits;
    dramRowMisses += other.dramRowMisses;
    dramActivates += other.dramActivates;
    dramPrecharges += other.dramPrecharges;
    dramRefreshes += other.dramRefreshes;
    l1Hits += other.l1Hits;
    l1Misses += other.l1Misses;
    l1SectorMisses += other.l1SectorMisses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    l2SectorMisses += other.l2SectorMisses;
    mshrMerges += other.mshrMerges;
    l2MshrMerges += other.l2MshrMerges;
    prtStallCycles += other.prtStallCycles;
    icnStallCycles += other.icnStallCycles;
}

} // namespace rcoal::sim
