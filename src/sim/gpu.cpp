/**
 * @file
 * Gpu implementation: the one-shot launch path over GpuMachine.
 */

#include "rcoal/sim/gpu.hpp"

#include "rcoal/sim/gpu_machine.hpp"

namespace rcoal::sim {

Gpu::Gpu(GpuConfig config) : cfg(std::move(config))
{
    cfg.validate();
}

KernelStats
Gpu::launch(const KernelSource &kernel)
{
    // Fresh machine per launch: cold caches, empty queues, and launch k
    // of a Gpu seeded s draws stream (s, k) regardless of any other RNG
    // activity, so identically configured GPUs replay identical launch
    // sequences.
    GpuMachine machine(cfg);
    const auto id = machine.launchStream(
        kernel, SmRange{0, cfg.numSms}, ++launches);
    machine.runUntilDone(id);
    KernelStats stats = machine.take(id);

    // Single-tenant machine: every DRAM event belongs to this launch,
    // so fold the machine-level memory counters into its statistics
    // (preserving the historical one-shot report shape).
    const KernelStats &mem = machine.memoryStats();
    stats.dramRowHits = mem.dramRowHits;
    stats.dramRowMisses = mem.dramRowMisses;
    stats.dramActivates = mem.dramActivates;
    stats.dramPrecharges = mem.dramPrecharges;
    stats.dramRefreshes = mem.dramRefreshes;
    return stats;
}

} // namespace rcoal::sim
