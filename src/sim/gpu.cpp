/**
 * @file
 * Gpu implementation: construction, clocking and the launch loop.
 */

#include "rcoal/sim/gpu.hpp"

#include <deque>

#include "rcoal/common/logging.hpp"
#include "rcoal/sim/cache.hpp"
#include "rcoal/sim/dram.hpp"
#include "rcoal/sim/interconnect.hpp"
#include "rcoal/sim/sm.hpp"

namespace rcoal::sim {

Gpu::Gpu(GpuConfig config)
    : cfg(std::move(config)), partitioner(cfg.policy, cfg.warpSize)
{
    cfg.validate();
}

namespace {

/** Per-partition L2 front-end state (only used when L2 is enabled). */
struct L2Frontend
{
    std::unique_ptr<Cache> cache;
    /** Hit responses waiting out the L2 latency (readyAt ascending). */
    std::deque<std::pair<Cycle, MemoryAccess>> pendingHits;
};

} // namespace

KernelStats
Gpu::launch(const KernelSource &kernel)
{
    KernelStats stats;
    std::uint64_t access_ids = 0;

    const AddressMapping mapping(cfg);
    Crossbar req_xbar(cfg.numSms, cfg.numPartitions, cfg.icnLatency,
                      cfg.icnQueueDepth);
    Crossbar resp_xbar(cfg.numPartitions, cfg.numSms, cfg.icnLatency,
                       cfg.icnQueueDepth);

    std::vector<StreamingMultiprocessor> sms;
    sms.reserve(cfg.numSms);
    for (unsigned s = 0; s < cfg.numSms; ++s)
        sms.emplace_back(cfg, s, &stats, &req_xbar, &mapping, &access_ids);

    std::vector<DramPartition> drams;
    drams.reserve(cfg.numPartitions);
    for (unsigned p = 0; p < cfg.numPartitions; ++p)
        drams.emplace_back(cfg, p, &stats);

    std::vector<L2Frontend> l2(cfg.l2Enabled ? cfg.numPartitions : 0);
    for (auto &front : l2)
        front.cache = std::make_unique<Cache>(cfg.l2);

    // Per-launch randomness: partitions are drawn once per warp at
    // launch time and stay fixed for the launch (Section IV-D).
    // Counter-based derivation: launch k of a Gpu seeded s draws the
    // same stream regardless of any other RNG activity, so identically
    // configured GPUs replay identical launch sequences.
    Rng launch_rng = Rng::stream(cfg.seed, ++launches);
    const unsigned num_warps = kernel.numWarps();
    RCOAL_ASSERT(num_warps > 0, "kernel has no warps");
    RCOAL_ASSERT(num_warps <= cfg.numSms * cfg.maxWarpsPerSm,
                 "kernel needs %u warps, GPU fits %u", num_warps,
                 cfg.numSms * cfg.maxWarpsPerSm);
    for (WarpId w = 0; w < num_warps; ++w) {
        sms[w % cfg.numSms].assignWarp(w, &kernel.trace(w),
                                       partitioner.draw(launch_rng));
    }

    // Responses the DRAM finished but the response crossbar could not
    // yet take (bounded injection ports).
    std::vector<std::deque<MemoryAccess>> resp_backlog(cfg.numPartitions);

    Cycle now = 0;
    Cycle mem_cycle = 0;
    double mem_accum = 0.0;

    const auto machine_idle = [&] {
        if (!req_xbar.idle() || !resp_xbar.idle())
            return false;
        for (const auto &dram : drams) {
            if (!dram.idle())
                return false;
        }
        for (const auto &backlog : resp_backlog) {
            if (!backlog.empty())
                return false;
        }
        for (const auto &front : l2) {
            if (!front.pendingHits.empty())
                return false;
        }
        for (const auto &sm : sms) {
            if (!sm.done(now))
                return false;
        }
        return true;
    };

    while (!machine_idle()) {
        ++now;
        RCOAL_ASSERT(now < kMaxCycles, "simulator deadlock suspected");

        // 1. Cores issue and inject.
        for (auto &sm : sms)
            sm.tick(now);

        // 2. Interconnect moves packets (core clock domain).
        req_xbar.tick(now);
        resp_xbar.tick(now);

        // 3. Request-crossbar ejection into L2/DRAM.
        for (unsigned p = 0; p < cfg.numPartitions; ++p) {
            while (req_xbar.outputReady(p)) {
                if (cfg.l2Enabled) {
                    // Peek is unnecessary: decide before popping via
                    // DRAM capacity, since misses and writes go there.
                    if (!drams[p].canAccept())
                        break;
                    MemoryAccess access = req_xbar.popOutput(p);
                    if (!access.isWrite &&
                        l2[p].cache->access(access.blockAddr)) {
                        ++stats.l2Hits;
                        l2[p].pendingHits.emplace_back(
                            now + cfg.l2.hitLatency, std::move(access));
                        continue;
                    }
                    if (!access.isWrite)
                        ++stats.l2Misses;
                    drams[p].enqueue(access,
                                     mapping.decode(access.blockAddr),
                                     mem_cycle);
                } else {
                    if (!drams[p].canAccept())
                        break;
                    MemoryAccess access = req_xbar.popOutput(p);
                    drams[p].enqueue(access,
                                     mapping.decode(access.blockAddr),
                                     mem_cycle);
                }
            }
        }

        // 4. Memory clock domain: tick DRAM whenever the memory clock
        // crosses a core-cycle boundary (a faster-than-core memory
        // clock ticks multiple times per core cycle).
        mem_accum += cfg.memClockMhz;
        while (mem_accum >= cfg.coreClockMhz) {
            mem_accum -= cfg.coreClockMhz;
            ++mem_cycle;
            for (auto &dram : drams)
                dram.tick(mem_cycle);
        }

        // 5. DRAM completions and L2 hit responses feed the response
        // crossbar (or retire immediately for writes).
        for (unsigned p = 0; p < cfg.numPartitions; ++p) {
            while (drams[p].hasCompleted(mem_cycle)) {
                MemoryAccess access = drams[p].popCompleted(mem_cycle);
                if (cfg.l2Enabled && !access.isWrite)
                    l2[p].cache->fill(access.blockAddr);
                if (access.isWrite) {
                    TagStats &tag_stats = stats.tagStats(access.tag);
                    tag_stats.lastComplete =
                        std::max(tag_stats.lastComplete, now);
                    continue;
                }
                resp_backlog[p].push_back(std::move(access));
            }
            if (cfg.l2Enabled) {
                auto &pending = l2[p].pendingHits;
                while (!pending.empty() && pending.front().first <= now) {
                    resp_backlog[p].push_back(
                        std::move(pending.front().second));
                    pending.pop_front();
                }
            }
            while (!resp_backlog[p].empty() && resp_xbar.canInject(p)) {
                MemoryAccess access = std::move(resp_backlog[p].front());
                resp_backlog[p].pop_front();
                const unsigned dest = access.smId;
                resp_xbar.inject(p, dest, std::move(access), now);
            }
        }

        // 6. Deliver responses to the SMs.
        for (unsigned s = 0; s < cfg.numSms; ++s) {
            while (resp_xbar.outputReady(s))
                sms[s].deliverResponse(resp_xbar.popOutput(s), now);
        }
    }

    stats.cycles = now;
    return stats;
}

} // namespace rcoal::sim
