/**
 * @file
 * Address mapping implementation.
 */

#include "rcoal/sim/address_mapping.hpp"

namespace rcoal::sim {

AddressMapping::AddressMapping(const GpuConfig &config)
    : interleave(config.partitionInterleaveBytes),
      partitions(config.numPartitions),
      banks(config.banksPerPartition),
      groups(config.bankGroups),
      rowBytes(config.rowBytes)
{
}

unsigned
AddressMapping::partitionOf(Addr addr) const
{
    return static_cast<unsigned>((addr / interleave) % partitions);
}

DramLocation
AddressMapping::decode(Addr addr) const
{
    DramLocation loc;
    const std::uint64_t chunk = addr / interleave;
    loc.partition = static_cast<unsigned>(chunk % partitions);

    // Partition-local chunk index: collapse the interleaving.
    const std::uint64_t local_chunk = chunk / partitions;

    // Spread consecutive chunks across banks, then fill rows: a row of
    // bank b holds chunksPerRow consecutive local chunks with stride
    // `banks` between them.
    const std::uint64_t chunks_per_row = rowBytes / interleave;
    loc.bank = static_cast<unsigned>(local_chunk % banks);
    loc.bankGroup = loc.bank % groups;
    const std::uint64_t bank_chunk = local_chunk / banks;
    loc.row = bank_chunk / chunks_per_row;
    loc.column = static_cast<std::uint32_t>(
        (bank_chunk % chunks_per_row) * interleave + (addr % interleave));
    return loc;
}

} // namespace rcoal::sim
