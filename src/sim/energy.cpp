/**
 * @file
 * Energy model implementation.
 */

#include "rcoal/sim/energy.hpp"

#include <sstream>

#include "rcoal/common/logging.hpp"

namespace rcoal::sim {

double
EnergyBreakdown::total() const
{
    return dramDynamic + dramActivate + interconnect + caches + core +
           leakage;
}

std::string
EnergyBreakdown::describe() const
{
    std::ostringstream out;
    const double t = total();
    const auto line = [&](const char *label, double pj) {
        out << strprintf("  %-14s %10.1f nJ (%5.1f%%)\n", label,
                         pj / 1000.0, t > 0.0 ? 100.0 * pj / t : 0.0);
    };
    out << strprintf("total energy: %.1f nJ\n", t / 1000.0);
    line("DRAM dynamic", dramDynamic);
    line("DRAM activate", dramActivate);
    line("interconnect", interconnect);
    line("caches", caches);
    line("core", core);
    line("leakage", leakage);
    return out.str();
}

EnergyBreakdown
estimateEnergy(const KernelStats &stats, const GpuConfig &config,
               const EnergyCoefficients &coefficients)
{
    EnergyBreakdown energy;

    // Every coalesced access that reached DRAM moves one block; with
    // caches on, hits stay on chip.
    const double dram_accesses =
        static_cast<double>(stats.dramRowHits + stats.dramRowMisses);
    energy.dramDynamic = dram_accesses * config.coalesceBlockBytes *
                         coefficients.dramPerByte;
    energy.dramActivate = static_cast<double>(stats.dramActivates) *
                          coefficients.dramActivate;

    // Request + response flit per DRAM-bound access (writes have no
    // response; approximate with 2 flits per access, the dominant
    // term either way).
    energy.interconnect = dram_accesses * 2.0 *
                          coefficients.interconnectPerFlit;

    energy.caches =
        static_cast<double>(stats.l1Hits + stats.l1Misses) *
            coefficients.l1PerAccess +
        static_cast<double>(stats.l2Hits + stats.l2Misses) *
            coefficients.l2PerAccess;

    energy.core = static_cast<double>(stats.warpInstructions) *
                  coefficients.smPerInstruction;

    energy.leakage = static_cast<double>(stats.cycles) *
                     config.numSms * coefficients.staticPerCycleSm;

    return energy;
}

} // namespace rcoal::sim
