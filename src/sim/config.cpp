/**
 * @file
 * GpuConfig implementation.
 */

#include "rcoal/sim/config.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "rcoal/common/logging.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::sim {

GpuConfig
GpuConfig::paperBaseline()
{
    return GpuConfig{};
}

void
GpuConfig::validate() const
{
    if (numSms == 0 || warpSize == 0 || numPartitions == 0) {
        fatal("numSms, warpSize and numPartitions must be positive "
              "(got %u, %u, %u)",
              numSms, warpSize, numPartitions);
    }
    if ((warpSize & (warpSize - 1)) != 0) {
        fatal("warpSize must be a power of two (got %u): the subwarp "
              "partitioners split warps into power-of-two lane groups",
              warpSize);
    }
    if (issueWidth == 0 || issueWidth > 8)
        fatal("issueWidth must be in [1, 8]");
    if ((coalesceBlockBytes & (coalesceBlockBytes - 1)) != 0)
        fatal("coalesceBlockBytes must be a power of two");
    if ((partitionInterleaveBytes & (partitionInterleaveBytes - 1)) != 0)
        fatal("partitionInterleaveBytes must be a power of two");
    if (partitionInterleaveBytes < coalesceBlockBytes)
        fatal("partition interleave must be >= coalescing block size");
    if (rowBytes < partitionInterleaveBytes)
        fatal("row size must be >= partition interleave chunk");
    if (banksPerPartition == 0 || bankGroups == 0 ||
        banksPerPartition % bankGroups != 0) {
        fatal("banksPerPartition must be a positive multiple of bankGroups");
    }
    if (banksPerPartition > 64) {
        fatal("at most 64 banks per partition supported");
    }
    if (coreClockMhz <= 0.0 || memClockMhz <= 0.0)
        fatal("clock frequencies must be positive");
    if (prtEntries < warpSize)
        fatal("PRT must hold at least one entry per warp lane");
    if (warpSize > PrtIndexList::kCapacity) {
        fatal("warpSize %u exceeds the inline PRT index capacity %zu "
              "(raise PrtIndexList::kCapacity)",
              warpSize, PrtIndexList::kCapacity);
    }
    policy.validate(warpSize);
}

namespace {

/// -1: no override; 0/1: forced off/on (set by --no-cycle-skipping etc).
std::atomic<int> cycleSkippingOverride{-1};

} // namespace

void
setCycleSkippingOverride(int forced)
{
    cycleSkippingOverride.store(forced < 0 ? -1 : (forced != 0 ? 1 : 0),
                                std::memory_order_relaxed);
}

bool
resolveCycleSkipping(bool config_flag)
{
    const int forced =
        cycleSkippingOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    if (const char *env = std::getenv("RCOAL_CYCLE_SKIPPING")) {
        if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "false") == 0) {
            return false;
        }
    }
    return config_flag;
}

std::string
GpuConfig::describe() const
{
    std::ostringstream out;
    out << strprintf("Core: %u SMs, warp size %u (SIMT 16x%u), "
                     "%.0f MHz core clock\n",
                     numSms, warpSize, issueWidth, coreClockMhz);
    out << strprintf("Resources/core: %zu-entry PRT, %u warps max, "
                     "ALU latency %u\n",
                     prtEntries, maxWarpsPerSm, aluLatency);
    out << strprintf("Coalescing: %u-byte blocks, policy %s\n",
                     coalesceBlockBytes, policy.name().c_str());
    out << strprintf("Interconnect: 1 crossbar/direction, %u-cycle "
                     "traversal, %zu-deep port queues, %.0f MHz\n",
                     icnLatency, icnQueueDepth, coreClockMhz);
    out << strprintf("Memory: %u GDDR5 MCs (FR-FCFS), %u banks x %u "
                     "bank-groups each, %.0f MHz, %u-byte interleave, "
                     "%u-byte rows\n",
                     numPartitions, banksPerPartition / bankGroups,
                     bankGroups, memClockMhz, partitionInterleaveBytes,
                     rowBytes);
    out << strprintf("GDDR5 timing: tCL=%u tRP=%u tRC=%u tRAS=%u tCCD=%u "
                     "tRCD=%u tRRD=%u\n",
                     timing.tCL, timing.tRP, timing.tRC, timing.tRAS,
                     timing.tCCD, timing.tRCD, timing.tRRD);
    out << strprintf("L1: %s, L2: %s, MSHR merging: %s "
                     "(paper disables all three)\n",
                     l1Enabled ? "on" : "off", l2Enabled ? "on" : "off",
                     mshrEnabled ? "on" : "off");
    return out.str();
}

} // namespace rcoal::sim
