/**
 * @file
 * GpuConfig implementation.
 */

#include "rcoal/sim/config.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "rcoal/common/logging.hpp"
#include "rcoal/sim/memory_access.hpp"

namespace rcoal::sim {

GpuConfig
GpuConfig::paperBaseline()
{
    return GpuConfig{};
}

namespace {

/**
 * Cache-geometry consistency, checked for both levels whether or not
 * the level is enabled (an ablation flips the enable bits at runtime;
 * the geometry must already be sound).
 */
void
validateCacheGeometry(const char *level, const CacheGeometry &geom,
                      std::uint32_t coalesce_block_bytes)
{
    if (geom.ways == 0) {
        fatal("%s associativity must be >= 1 (got %u ways)", level,
              geom.ways);
    }
    if (geom.sectorBytes == 0 || geom.lineBytes == 0 ||
        geom.lineBytes % geom.sectorBytes != 0) {
        fatal("%s lineBytes (%u) must be a positive multiple of "
              "sectorBytes (%u)",
              level, geom.lineBytes, geom.sectorBytes);
    }
    if (geom.lineBytes / geom.sectorBytes > 32) {
        fatal("%s has %u sectors per line; at most 32 supported "
              "(sector validity is a 32-bit mask)",
              level, geom.lineBytes / geom.sectorBytes);
    }
    if (geom.sizeBytes == 0 || geom.sizeBytes % geom.lineBytes != 0) {
        fatal("%s sizeBytes (%u) must be a positive multiple of "
              "lineBytes (%u)",
              level, geom.sizeBytes, geom.lineBytes);
    }
    if (geom.sizeBytes / geom.lineBytes < geom.ways) {
        fatal("%s too small for its associativity: %u lines < %u ways",
              level, geom.sizeBytes / geom.lineBytes, geom.ways);
    }
    if (geom.lineBytes % coalesce_block_bytes != 0) {
        fatal("%s lineBytes (%u) must be a multiple of "
              "coalesceBlockBytes (%u) so a coalesced access never "
              "straddles a line",
              level, geom.lineBytes, coalesce_block_bytes);
    }
    if (geom.hitLatency == 0)
        fatal("%s hitLatency must be >= 1 core cycle", level);
    if (geom.streamingReservations == 0) {
        fatal("%s streamingReservations must be >= 1 (bounds in-flight "
              "allocate-on-fill misses)",
              level);
    }
}

} // namespace

void
GpuConfig::validate() const
{
    if (numSms == 0 || warpSize == 0 || numPartitions == 0) {
        fatal("numSms, warpSize and numPartitions must be positive "
              "(got %u, %u, %u)",
              numSms, warpSize, numPartitions);
    }
    if ((warpSize & (warpSize - 1)) != 0) {
        fatal("warpSize must be a power of two (got %u): the subwarp "
              "partitioners split warps into power-of-two lane groups",
              warpSize);
    }
    if (issueWidth == 0 || issueWidth > 8)
        fatal("issueWidth must be in [1, 8]");
    if ((coalesceBlockBytes & (coalesceBlockBytes - 1)) != 0)
        fatal("coalesceBlockBytes must be a power of two");
    if ((partitionInterleaveBytes & (partitionInterleaveBytes - 1)) != 0)
        fatal("partitionInterleaveBytes must be a power of two");
    if (partitionInterleaveBytes < coalesceBlockBytes)
        fatal("partition interleave must be >= coalescing block size");
    if (rowBytes < partitionInterleaveBytes)
        fatal("row size must be >= partition interleave chunk");
    if (banksPerPartition == 0 || bankGroups == 0 ||
        banksPerPartition % bankGroups != 0) {
        fatal("banksPerPartition must be a positive multiple of bankGroups");
    }
    if (banksPerPartition > 64) {
        fatal("at most 64 banks per partition supported");
    }
    if (coreClockMhz <= 0.0 || memClockMhz <= 0.0)
        fatal("clock frequencies must be positive");
    if (prtEntries < warpSize)
        fatal("PRT must hold at least one entry per warp lane");
    if (warpSize > PrtIndexList::kCapacity) {
        fatal("warpSize %u exceeds the inline PRT index capacity %zu "
              "(raise PrtIndexList::kCapacity)",
              warpSize, PrtIndexList::kCapacity);
    }
    validateCacheGeometry("L1", l1, coalesceBlockBytes);
    validateCacheGeometry("L2", l2, coalesceBlockBytes);
    if (l2.sizeBytes < l1.sizeBytes) {
        fatal("L2 capacity (%u bytes) must be >= L1 capacity (%u bytes)",
              l2.sizeBytes, l1.sizeBytes);
    }
    if (mshrEntries == 0 || l2MshrEntries == 0)
        fatal("mshrEntries and l2MshrEntries must be positive");
    policy.validate(warpSize);
}

namespace {

/// -1: no override; 0/1: forced off/on (set by --no-cycle-skipping etc).
std::atomic<int> cycleSkippingOverride{-1};

} // namespace

void
setCycleSkippingOverride(int forced)
{
    cycleSkippingOverride.store(forced < 0 ? -1 : (forced != 0 ? 1 : 0),
                                std::memory_order_relaxed);
}

bool
resolveCycleSkipping(bool config_flag)
{
    const int forced =
        cycleSkippingOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    if (const char *env = std::getenv("RCOAL_CYCLE_SKIPPING")) {
        if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "false") == 0) {
            return false;
        }
    }
    return config_flag;
}

namespace {

/// Display name for a DRAM backend (see rcoal::mem::DramBackend).
const char *
backendDisplayName(DramBackendKind kind)
{
    switch (kind) {
      case DramBackendKind::Gddr5:
        return "GDDR5";
      case DramBackendKind::Gddr6:
        return "GDDR6";
      case DramBackendKind::Hbm2:
        return "HBM2";
    }
    return "unknown";
}

} // namespace

std::string
GpuConfig::describe() const
{
    std::ostringstream out;
    out << strprintf("Core: %u SMs, warp size %u (SIMT 16x%u), "
                     "%.0f MHz core clock\n",
                     numSms, warpSize, issueWidth, coreClockMhz);
    out << strprintf("Resources/core: %zu-entry PRT, %u warps max, "
                     "ALU latency %u\n",
                     prtEntries, maxWarpsPerSm, aluLatency);
    out << strprintf("Coalescing: %u-byte blocks, policy %s\n",
                     coalesceBlockBytes, policy.name().c_str());
    out << strprintf("Interconnect: 1 crossbar/direction, %u-cycle "
                     "traversal, %zu-deep port queues, %.0f MHz\n",
                     icnLatency, icnQueueDepth, coreClockMhz);
    const char *backend = backendDisplayName(dramBackend);
    out << strprintf("Memory: %u %s MCs (FR-FCFS), %u banks x %u "
                     "bank-groups each, %.0f MHz, %u-byte interleave, "
                     "%u-byte rows\n",
                     numPartitions, backend,
                     banksPerPartition / bankGroups, bankGroups,
                     memClockMhz, partitionInterleaveBytes, rowBytes);
    if (dramBackend == DramBackendKind::Gddr5) {
        out << strprintf("%s timing: tCL=%u tRP=%u tRC=%u tRAS=%u "
                         "tCCD=%u tRCD=%u tRRD=%u\n",
                         backend, timing.tCL, timing.tRP, timing.tRC,
                         timing.tRAS, timing.tCCD, timing.tRCD,
                         timing.tRRD);
    } else {
        out << strprintf("%s timing: backend-defined "
                         "(see rcoal::mem::DramBackend)\n",
                         backend);
    }
    out << strprintf("L1: %s (%u KiB, %u-byte lines, %u-byte sectors), "
                     "L2: %s (%u KiB), MSHR merging: %s "
                     "(paper disables all three)\n",
                     l1Enabled ? "on" : "off", l1.sizeBytes / 1024,
                     l1.lineBytes, l1.sectorBytes,
                     l2Enabled ? "on" : "off", l2.sizeBytes / 1024,
                     mshrEnabled ? "on" : "off");
    return out.str();
}

} // namespace rcoal::sim
