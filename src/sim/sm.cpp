/**
 * @file
 * StreamingMultiprocessor implementation.
 */

#include "rcoal/sim/sm.hpp"

#include <algorithm>
#include <bit>

#include "rcoal/common/logging.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/trace/sink.hpp"

namespace rcoal::sim {

StreamingMultiprocessor::StreamingMultiprocessor(
    const GpuConfig &config, unsigned sm_id, Crossbar *request_xbar,
    const AddressMapping *mapping, std::uint64_t *access_id_counter,
    AccessSlab *shared_slab)
    : cfg(config),
      id(sm_id),
      reqXbar(request_xbar),
      map(mapping),
      nextAccessId(access_id_counter),
      slab(shared_slab),
      coalescer(config.coalesceBlockBytes),
      prt(config.prtEntries),
      baselinePartition(core::SubwarpPartition::single(config.warpSize)),
      ldstQueue(4 * config.warpSize),
      ldstQueueCapacity(4 * config.warpSize),
      issuableMask(config.issueWidth, 0),
      useMasks((config.maxWarpsPerSm + config.issueWidth - 1) /
                   config.issueWidth <=
               64),
      rrPointer(config.issueWidth, 0)
{
    RCOAL_ASSERT(reqXbar && map && nextAccessId,
                 "SM wired without its collaborators");
    // A standalone SM owns a private slab; in a machine the shared slab
    // must be the same one the request crossbar uses, since the LD/ST
    // queue hands its slot indices straight to injectSlot().
    if (slab == nullptr) {
        ownSlab = std::make_unique<AccessSlab>(2 * ldstQueueCapacity);
        slab = ownSlab.get();
    }
    if (cfg.l1Enabled)
        l1 = std::make_unique<mem::SectoredCache>(cfg.l1);
    // The SM-side MSHR sits in front of the L1 (misses merge on the
    // block in flight); without an L1 every access travels to memory
    // individually and only the L2's own MSHR applies.
    if (cfg.mshrEnabled && cfg.l1Enabled)
        mshr = std::make_unique<mem::MshrTable>(cfg.mshrEntries);
    // One L1-hit push per tick and each entry retires after hitLatency
    // cycles, so at most hitLatency + 1 can ever be resident.
    localResponses.reset(l1 ? l1->hitLatency() + 2 : 1);
}

void
StreamingMultiprocessor::beginLaunch(KernelStats *launch_stats,
                                     std::uint32_t launch_slot,
                                     std::uint64_t *pending_writes)
{
    RCOAL_ASSERT(launch_stats != nullptr && pending_writes != nullptr,
                 "SM %u launch needs a stats sink and store counter", id);
    RCOAL_ASSERT(warpsCold.empty(),
                 "SM %u still hosts a previous launch", id);
    stats = launch_stats;
    launchSlot = launch_slot;
    pendingWrites = pending_writes;
}

void
StreamingMultiprocessor::reset()
{
    RCOAL_ASSERT(unfinishedWarps == 0 && ldstQueue.empty() &&
                     localResponses.empty() &&
                     (!mshr || mshr->occupancy() == 0) &&
                     (!l1 || l1->reservedFills() == 0),
                 "SM %u reset while work is in flight", id);
    l1LookupId = ~std::uint64_t{0};
    l1LookupOutcome = mem::AccessOutcome::Hit;
    warpsCold.clear();
    warpReadyAt.clear();
    warpPc.clear();
    warpTraceLen.clear();
    warpOutstanding.clear();
    warpIds.clear();
    pendingMem.clear();
    pendingLoad.clear();
    pendingCount.clear();
    pendingPrt.clear();
    std::fill(issuableMask.begin(), issuableMask.end(), 0);
    warpIndex.clear();
    std::fill(rrPointer.begin(), rrPointer.end(), 0);
    busyUntil = 0;
    scanGate = 0;
    scanWake = 0;
    tickChanged = false;
    responseSinceTick = false;
    // Per-tick state that used to leak across launches: tick() zeroes
    // the stall counters only after the warps-empty early-return, so
    // a skip window right after the next launch could replay the
    // previous launch's final-tick stalls into the new launch's stats.
    scanIssued = false;
    prtStallsTick = 0;
    icnStallsTick = 0;
    laneScratch.clear();
    // Canonicalize the PRT free-list: entry indices are pure IDs, so a
    // drained table is behaviorally identical to a fresh one — making
    // it byte-identical keeps quiescent snapshots canonical too.
    prt.reset();
    stats = nullptr;
    launchSlot = 0;
    pendingWrites = nullptr;
}

void
StreamingMultiprocessor::hardReset()
{
    RCOAL_ASSERT(warpsCold.empty(),
                 "SM %u hard reset while hosting a launch", id);
    // reset() (run at every launch retirement) already restored the
    // per-launch state; what survives it by design is the warm memory
    // hierarchy, which a machine-level reset must also discard.
    if (l1)
        l1->resetAll();
    if (mshr)
        mshr->reset();
}

void
StreamingMultiprocessor::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(warpsCold.empty() && ldstQueue.empty() &&
                     localResponses.empty(),
                 "SM %u snapshot while hosting a launch", id);
    prt.saveState(w);
    w.pod(l1LookupId);
    w.pod(static_cast<std::uint8_t>(l1LookupOutcome));
    w.pod(busyUntil);
    w.pod(scanGate);
    w.pod(scanWake);
    w.pod(static_cast<std::uint8_t>(tickChanged));
    w.pod(static_cast<std::uint8_t>(responseSinceTick));
    w.pod(static_cast<std::uint8_t>(scanIssued));
    w.pod(prtStallsTick);
    w.pod(icnStallsTick);
    w.pod(static_cast<std::uint64_t>(laneScratch.size()));
    w.pod(static_cast<std::uint8_t>(l1 != nullptr));
    if (l1)
        l1->saveState(w);
    w.pod(static_cast<std::uint8_t>(mshr != nullptr));
    if (mshr)
        mshr->saveState(w);
}

void
StreamingMultiprocessor::restoreState(common::ArenaReader &r)
{
    RCOAL_ASSERT(warpsCold.empty() && ldstQueue.empty() &&
                     localResponses.empty(),
                 "SM %u restore while hosting a launch", id);
    prt.restoreState(r);
    r.pod(l1LookupId);
    l1LookupOutcome = static_cast<mem::AccessOutcome>(r.take<std::uint8_t>());
    r.pod(busyUntil);
    r.pod(scanGate);
    r.pod(scanWake);
    tickChanged = r.take<std::uint8_t>() != 0;
    responseSinceTick = r.take<std::uint8_t>() != 0;
    scanIssued = r.take<std::uint8_t>() != 0;
    r.pod(prtStallsTick);
    r.pod(icnStallsTick);
    laneScratch.assign(static_cast<std::size_t>(r.take<std::uint64_t>()),
                       0);
    const bool had_l1 = r.take<std::uint8_t>() != 0;
    RCOAL_ASSERT(had_l1 == (l1 != nullptr),
                 "SM %u L1 presence mismatch on restore", id);
    if (l1)
        l1->restoreState(r);
    const bool had_mshr = r.take<std::uint8_t>() != 0;
    RCOAL_ASSERT(had_mshr == (mshr != nullptr),
                 "SM %u MSHR presence mismatch on restore", id);
    if (mshr)
        mshr->restoreState(r);
}

void
StreamingMultiprocessor::assignWarp(
    WarpId warp_id, const std::vector<WarpInstruction> *warp_trace,
    core::SubwarpPartition partition)
{
    RCOAL_ASSERT(stats != nullptr,
                 "SM %u assigned a warp before beginLaunch", id);
    RCOAL_ASSERT(warpsCold.size() < cfg.maxWarpsPerSm,
                 "SM %u over its warp limit", id);
    RCOAL_ASSERT(warp_trace->size() < kNoSlot,
                 "warp trace too long for the scoreboard");
    const std::size_t slot = warpsCold.size();
    if (warp_id >= warpIndex.size())
        warpIndex.resize(static_cast<std::size_t>(warp_id) + 1, kNoSlot);
    RCOAL_ASSERT(warpIndex[warp_id] == kNoSlot,
                 "warp %u assigned twice to SM %u", warp_id, id);
    warpIndex[warp_id] = static_cast<std::uint32_t>(slot);
    warpsCold.push_back(
        WarpCold{warp_id, warp_trace, std::move(partition), {},
                 ~std::size_t{0}, 0});
    warpReadyAt.push_back(0);
    warpPc.push_back(0);
    warpTraceLen.push_back(static_cast<std::uint32_t>(warp_trace->size()));
    warpOutstanding.push_back(0);
    warpIds.push_back(warp_id);
    pendingMem.push_back(0);
    pendingLoad.push_back(0);
    pendingCount.push_back(0);
    pendingPrt.push_back(0);
    if (!warp_trace->empty()) {
        ++unfinishedWarps;
        if (useMasks) {
            issuableMask[slot % cfg.issueWidth] |=
                std::uint64_t{1} << (slot / cfg.issueWidth);
        }
    }
    scanGate = 0; // New issue candidate: rescan next tick.
}

bool
StreamingMultiprocessor::issueMemory(std::size_t slot,
                                     const WarpInstruction &instr,
                                     Cycle now)
{
    const bool is_load = instr.op == WarpInstruction::Op::Load;
    WarpCold &warp = warpsCold[slot];
    if (warp.pendingPc != warpPc[slot]) {
        // Selective RCoal (Section VII): only instructions tagged as
        // vulnerable get the randomized partition.
        const bool protect =
            !cfg.selectiveRCoal ||
            (cfg.protectedTagMask &
             (1u << static_cast<unsigned>(instr.tag)));
        const core::SubwarpPartition &used =
            protect ? warp.partition : baselinePartition;
        coalescer.coalesceInto(instr.lanes, used, warp.pendingCoalesce);
        RCOAL_TRACE(traceSink, McuCoalesce, now, warp.id,
                    warp.pendingCoalesce.size(), used.numSubwarps());
        warp.pendingPc = warpPc[slot];
        warp.pendingActiveLanes = 0;
        for (const auto &lane : instr.lanes) {
            if (lane.active)
                ++warp.pendingActiveLanes;
        }
        // A lane straddling a block boundary lands in several accesses
        // and needs one PRT entry per touched block, so reserve by the
        // exact entry demand rather than the active-lane count. The
        // demand is mirrored into the hot arrays so stalled retries
        // are decided there (see tryIssue).
        std::size_t prt_entries = 0;
        for (const auto &coalesced : warp.pendingCoalesce)
            prt_entries += coalesced.threads.size();
        pendingMem[slot] = 1;
        pendingLoad[slot] = is_load ? 1 : 0;
        pendingCount[slot] =
            static_cast<std::uint32_t>(warp.pendingCoalesce.size());
        pendingPrt[slot] = static_cast<std::uint32_t>(prt_entries);
    }
    auto &accesses = warp.pendingCoalesce;
    if (accesses.empty()) {
        // All lanes inactive: the instruction is a no-op.
        warp.pendingPc = ~std::size_t{0};
        pendingMem[slot] = 0;
        return true;
    }
    // Cheap resource checks first: these run every stalled retry.
    if (ldstQueue.size() + accesses.size() > ldstQueueCapacity)
        return false;
    if (is_load && prt.freeEntries() < pendingPrt[slot]) {
        ++stats->prtStallCycles;
        ++prtStallsTick;
        RCOAL_TRACE(traceSink, SmStall, now, 0, warp.id, 0);
        return false;
    }

    const unsigned active_lanes = warp.pendingActiveLanes;
    laneScratch.assign(cfg.warpSize, -1);
    std::vector<int> &lane_of_tid = laneScratch;
    for (std::size_t i = 0; i < instr.lanes.size(); ++i) {
        const auto &lane = instr.lanes[i];
        RCOAL_ASSERT(lane.tid < cfg.warpSize, "lane tid %u out of range",
                     lane.tid);
        lane_of_tid[lane.tid] = static_cast<int>(i);
    }

    TagStats &tag_stats = stats->tagStats(instr.tag);
    tag_stats.firstIssue = std::min(tag_stats.firstIssue, now);
    tag_stats.laneRequests += active_lanes;
    tag_stats.accesses += accesses.size();
    stats->coalescedAccesses += accesses.size();
    if (is_load)
        stats->loadAccesses += accesses.size();
    else
        stats->storeAccesses += accesses.size();
    ++stats->memInstructions;

    for (auto &coalesced : accesses) {
        MemoryAccess access;
        access.id = (*nextAccessId)++;
        access.blockAddr = coalesced.blockAddr;
        access.bytes = cfg.coalesceBlockBytes;
        access.isWrite = !is_load;
        access.tag = instr.tag;
        access.smId = id;
        access.launchSlot = launchSlot;
        access.warpId = warp.id;
        access.sid = coalesced.sid;
        access.issueCycle = now;
        if (is_load) {
            for (ThreadId tid : coalesced.threads) {
                const int lane_idx = lane_of_tid[tid];
                RCOAL_ASSERT(lane_idx >= 0, "coalesced unknown tid %u",
                             tid);
                const auto &lane =
                    instr.lanes[static_cast<std::size_t>(lane_idx)];
                const Addr lane_block = coalescer.blockAlign(lane.addr);
                const std::uint32_t offset =
                    lane_block == coalesced.blockAddr
                        ? static_cast<std::uint32_t>(lane.addr -
                                                     coalesced.blockAddr)
                        : 0; // Lane straddles into this block.
                const auto entry =
                    prt.allocate(tid, coalesced.blockAddr, offset,
                                 lane.size, coalesced.sid);
                RCOAL_ASSERT(entry.has_value(),
                             "PRT full despite reservation check");
                access.prtIndices.push_back(*entry);
            }
            ++warpOutstanding[slot];
        } else {
            ++*pendingWrites;
        }
        ldstQueue.push_back(slab->allocate(std::move(access)));
    }
#if RCOAL_TRACE_ENABLED
    if (spanCollector != nullptr) {
        // Coalesce stage: the record's width is the coalesced access
        // count — the LD/ST serialization cost RCoal randomizes.
        spanCollector->stampWarp(
            spanNamespace, launchSlot, warp.id,
            spans::SpanStage::Coalesce, static_cast<std::uint16_t>(id),
            now, now + accesses.size(),
            static_cast<std::uint32_t>(accesses.size()),
            instr.tag == AccessTag::LastRoundLookup);
    }
#endif
    warp.pendingCoalesce.clear();
    warp.pendingPc = ~std::size_t{0};
    pendingMem[slot] = 0;
    return true;
}

bool
StreamingMultiprocessor::tryIssue(std::size_t slot, Cycle now)
{
    if (warpPc[slot] >= warpTraceLen[slot] || warpReadyAt[slot] > now)
        return false;
    if (pendingMem[slot] != 0) {
        // Stalled-retry fast path: the current memory instruction is
        // already coalesced and its resource demand mirrored in the
        // scoreboard arrays, so repeating yesterday's structural stall
        // never touches the cold warp state or the trace. The checks
        // (and their accounting) are exactly issueMemory's.
        if (ldstQueue.size() + pendingCount[slot] > ldstQueueCapacity)
            return false;
        if (pendingLoad[slot] != 0 &&
            prt.freeEntries() < pendingPrt[slot]) {
            ++stats->prtStallCycles;
            ++prtStallsTick;
            RCOAL_TRACE(traceSink, SmStall, now, 0, warpIds[slot], 0);
            return false;
        }
    }
    WarpCold &warp = warpsCold[slot];
    const WarpInstruction &instr = (*warp.trace)[warpPc[slot]];
    switch (instr.op) {
      case WarpInstruction::Op::Alu:
        if (instr.waitAllLoads && warpOutstanding[slot] > 0)
            return false;
        RCOAL_TRACE(traceSink, SmIssue, now, warp.id, warpPc[slot], 0);
        warpReadyAt[slot] = now + std::max(1u, instr.latency);
        busyUntil = std::max(busyUntil, warpReadyAt[slot]);
        ++warpPc[slot];
        ++stats->warpInstructions;
        if (warpPc[slot] >= warpTraceLen[slot]) {
            retireFromScan(slot);
            if (warpOutstanding[slot] == 0) {
                RCOAL_ASSERT(unfinishedWarps > 0,
                             "finished-warp underflow");
                --unfinishedWarps;
            }
        }
        scanIssued = true;
        tickChanged = true;
        return true;
      case WarpInstruction::Op::Load:
      case WarpInstruction::Op::Store:
        if (!issueMemory(slot, instr, now))
            return false;
        RCOAL_TRACE(traceSink, SmIssue, now, warp.id, warpPc[slot],
                    instr.op == WarpInstruction::Op::Load ? 1 : 2);
        warpReadyAt[slot] = now + 1;
        ++warpPc[slot];
        ++stats->warpInstructions;
        if (warpPc[slot] >= warpTraceLen[slot]) {
            retireFromScan(slot);
            if (warpOutstanding[slot] == 0) {
                RCOAL_ASSERT(unfinishedWarps > 0,
                             "finished-warp underflow");
                --unfinishedWarps;
            }
        }
        scanIssued = true;
        tickChanged = true;
        return true;
    }
    panic("invalid warp instruction opcode");
}

void
StreamingMultiprocessor::drainLdst(Cycle now)
{
    // Retire L1-hit responses whose latency elapsed.
    while (!localResponses.empty() && localResponses.front().ready <= now) {
        const std::uint32_t resp_slot = localResponses.front().slot;
        finalizeLoad(slab->at(resp_slot), now);
        slab->free(resp_slot);
        localResponses.pop_front();
        tickChanged = true;
    }

    if (ldstQueue.empty())
        return;
    const std::uint32_t head_slot = ldstQueue.front();
    MemoryAccess &head = slab->at(head_slot);

    // Loads may hit in the (optional) L1; writes are write-through,
    // no-allocate and always travel to memory.
    if (l1 && !head.isWrite) {
        if (head.id != l1LookupId) {
            l1LookupId = head.id;
            l1LookupOutcome = l1->access(head.blockAddr, head.bytes);
            RCOAL_TRACE(traceSink, CacheAccess, now, 1,
                        static_cast<unsigned>(l1LookupOutcome), head.id);
            if (l1LookupOutcome == mem::AccessOutcome::Hit) {
                ++stats->l1Hits;
            } else {
                ++stats->l1Misses;
                if (l1LookupOutcome == mem::AccessOutcome::SectorMiss)
                    ++stats->l1SectorMisses;
            }
        }
        if (l1LookupOutcome == mem::AccessOutcome::Hit) {
            localResponses.push_back(
                LocalResponse{now + l1->hitLatency(), head_slot});
            ldstQueue.pop_front();
            tickChanged = true;
            scanGate = 0; // Queue space freed: rescan.
            return;
        }
        if (mshr) {
            if (mshr->isPending(head.blockAddr)) {
                // The merged load rides the in-flight fill's
                // reservation; no extra one is taken.
                const Addr block = head.blockAddr;
                mshr->merge(block, slab->take(head_slot));
                ++stats->mshrMerges;
                ldstQueue.pop_front();
                tickChanged = true;
                scanGate = 0; // Queue space freed: rescan.
                return;
            }
            if (!mshr->canAllocate())
                return; // Structural stall; retry next cycle.
            if (!l1->canReserve())
                return; // Fill-buffer bound reached; retry next cycle.
            if (!reqXbar->canInject(id)) {
                ++stats->icnStallCycles;
                ++icnStallsTick;
                RCOAL_TRACE(traceSink, SmStall, now, 1, head.warpId, 0);
                return;
            }
            // The MSHR keeps a copy (with the PRT indices); the slab
            // record becomes the courier travelling to memory.
            mshr->allocate(head.blockAddr, head);
            l1->reserve();
            ldstQueue.pop_front();
            tickChanged = true;
            scanGate = 0; // Queue space freed: rescan.
            const unsigned dest = map->partitionOf(head.blockAddr);
            head.prtIndices.clear(); // PRT freed via the MSHR entry.
#if RCOAL_TRACE_ENABLED
            head.spanXbarInject = now;
#endif
            reqXbar->injectSlot(id, dest, head_slot, now);
            return;
        }
        if (!l1->canReserve())
            return; // Fill-buffer bound reached; retry next cycle.
    }

    if (!reqXbar->canInject(id)) {
        ++stats->icnStallCycles;
        ++icnStallsTick;
        RCOAL_TRACE(traceSink, SmStall, now, 1, head.warpId, 0);
        return;
    }
    // An L1 read miss travelling to memory holds a fill reservation
    // until its response returns (allocate-on-fill).
    if (l1 && !head.isWrite)
        l1->reserve();
    const unsigned dest = map->partitionOf(head.blockAddr);
#if RCOAL_TRACE_ENABLED
    head.spanXbarInject = now;
#endif
    reqXbar->injectSlot(id, dest, head_slot, now);
    ldstQueue.pop_front();
    tickChanged = true;
    scanGate = 0; // Queue space freed: rescan.
}

void
StreamingMultiprocessor::tick(Cycle now)
{
    tickChanged = false;
    responseSinceTick = false;
    scanIssued = false;
    if (warpsCold.empty())
        return;
    prtStallsTick = 0;
    icnStallsTick = 0;

    drainLdst(now);

    // The issue scan is pure when it fails: it either issues, bumps a
    // stall counter, or provably does nothing. scanGate tracks the next
    // cycle it could do otherwise, so quiet stretches skip the
    // per-scheduler warp walk entirely (and any event that could
    // unblock a silent failure resets the gate to 0).
    if (now >= scanGate)
        scanWarps(now);
}

void
StreamingMultiprocessor::scanWarps(Cycle now)
{
    const std::uint64_t prt_before = prtStallsTick;
    const std::size_t nwarps = warpsCold.size();

    // One issue slot per scheduler; warp slot w belongs to scheduler
    // w % issueWidth (the 16x2 SIMT organization of Table I).
    for (unsigned sched = 0; sched < cfg.issueWidth && sched < nwarps;
         ++sched) {
        // Slots sched, sched+issueWidth, ... belong to this scheduler.
        const std::size_t count =
            (nwarps - sched + cfg.issueWidth - 1) / cfg.issueWidth;
        if (cfg.scheduler == SchedulerPolicy::GreedyThenOldest) {
            // GTO: keep issuing from the last warp; when it cannot
            // issue, fall back to the oldest (lowest-slot) ready warp.
            const std::size_t greedy = rrPointer[sched] % count;
            if (tryIssue(sched + greedy * cfg.issueWidth, now))
                continue;
            if (useMasks) {
                // Finished warps fail tryIssue without side effects,
                // so walking only the issuable bits (in the same
                // ascending order) is exact.
                std::uint64_t m = issuableMask[sched];
                while (m != 0) {
                    const auto k = static_cast<std::size_t>(
                        std::countr_zero(m));
                    m &= m - 1;
                    if (k == greedy)
                        continue;
                    if (tryIssue(sched + k * cfg.issueWidth, now)) {
                        rrPointer[sched] = k;
                        break;
                    }
                }
            } else {
                for (std::size_t k = 0; k < count; ++k) {
                    if (k == greedy)
                        continue;
                    if (tryIssue(sched + k * cfg.issueWidth, now)) {
                        rrPointer[sched] = k;
                        break;
                    }
                }
            }
            continue;
        }
        // Loose round robin: positions rr, rr+1, ... wrapping, which
        // with the issuable mask is a find-first-set over the bits at
        // or above rr, then the bits below it.
        if (useMasks) {
            const std::size_t rr = rrPointer[sched] % count;
            const std::uint64_t m = issuableMask[sched];
            const std::uint64_t ge_rr = ~std::uint64_t{0} << rr;
            std::uint64_t passes[2] = {m & ge_rr, m & ~ge_rr};
            bool issued = false;
            for (std::uint64_t pass : passes) {
                while (pass != 0) {
                    const auto k = static_cast<std::size_t>(
                        std::countr_zero(pass));
                    pass &= pass - 1;
                    if (tryIssue(sched + k * cfg.issueWidth, now)) {
                        rrPointer[sched] = (k + 1) % count;
                        issued = true;
                        break;
                    }
                }
                if (issued)
                    break;
            }
        } else {
            for (std::size_t k = 0; k < count; ++k) {
                const std::size_t slot =
                    sched +
                    ((rrPointer[sched] + k) % count) * cfg.issueWidth;
                if (tryIssue(slot, now)) {
                    rrPointer[sched] = (rrPointer[sched] + k + 1) % count;
                    break;
                }
            }
        }
    }

    // Earliest wake-up among time-blocked warps. Warps blocked on
    // events (queue space, PRT entries, outstanding loads) do not
    // contribute: the events that free them reset scanGate themselves.
    Cycle wake = kInvalidCycle;
    for (std::size_t i = 0; i < nwarps; ++i) {
        if (warpPc[i] < warpTraceLen[i] && warpReadyAt[i] > now)
            wake = std::min(wake, warpReadyAt[i]);
    }
    const bool side_effects = scanIssued || prtStallsTick != prt_before;
    scanGate = side_effects ? now + 1 : wake;
    scanWake = wake;
}

Cycle
StreamingMultiprocessor::nextEventCycle(Cycle now) const
{
    if (warpsCold.empty())
        return kInvalidCycle;
    if (tickChanged || responseSinceTick)
        return now + 1;
#if RCOAL_TRACE_ENABLED
    // Stall counting emits one SmStall trace event per stalled cycle;
    // bulk-replaying the counters would drop those events, so a live
    // sink pins a stalling SM to per-cycle stepping.
    if (traceSink != nullptr &&
        (prtStallsTick != 0 || icnStallsTick != 0)) {
        return now + 1;
    }
#endif
    if (l1 && !ldstQueue.empty()) {
        // A stalled miss head (MSHR or fill-reservation exhaustion) has
        // no event wiring to re-arm it; pin per-cycle stepping.
        return now + 1;
    }
    if (!ldstQueue.empty() && reqXbar->canInject(id))
        return now + 1; // Head injects next cycle.
    Cycle bound = scanWake;
    if (!localResponses.empty())
        bound = std::min(bound, localResponses.front().ready);
    if (busyUntil > now) {
        // Trailing ALU latency: done() flips exactly at busyUntil, and
        // the machine must observe that cycle to stamp completion.
        bound = std::min(bound, busyUntil);
    }
    return std::max(bound, now + 1);
}

void
StreamingMultiprocessor::applySkippedCycles(Cycle cycles)
{
    if (warpsCold.empty() || cycles == 0)
        return;
    // A skipped window repeats this tick verbatim: the only side effect
    // a frozen SM produces per cycle is its stall counting.
    stats->prtStallCycles += prtStallsTick * cycles;
    stats->icnStallCycles += icnStallsTick * cycles;
}

void
StreamingMultiprocessor::finalizeLoad(const MemoryAccess &access, Cycle now)
{
    for (std::size_t idx : access.prtIndices)
        prt.release(idx);
    RCOAL_ASSERT(access.warpId < warpIndex.size() &&
                     warpIndex[access.warpId] != kNoSlot,
                 "response for unknown warp %u", access.warpId);
    const std::size_t slot = warpIndex[access.warpId];
    RCOAL_ASSERT(warpOutstanding[slot] > 0,
                 "warp %u has no outstanding loads", access.warpId);
    --warpOutstanding[slot];
    if (warpOutstanding[slot] == 0 && warpPc[slot] >= warpTraceLen[slot]) {
        RCOAL_ASSERT(unfinishedWarps > 0, "finished-warp underflow");
        --unfinishedWarps;
    }
    TagStats &tag_stats = stats->tagStats(access.tag);
    tag_stats.lastComplete = std::max(tag_stats.lastComplete, now);
#if RCOAL_TRACE_ENABLED
    if (spanCollector != nullptr) {
        // PRT residency: this logical access held its table entries
        // (and a warp-outstanding credit) from issue until now —
        // including MSHR-merged copies that never travelled.
        spanCollector->stampWarp(
            spanNamespace, access.launchSlot, access.warpId,
            spans::SpanStage::PrtResidency,
            static_cast<std::uint16_t>(id), access.issueCycle, now,
            static_cast<std::uint32_t>(access.prtIndices.size()),
            access.tag == AccessTag::LastRoundLookup);
    }
#endif
    scanGate = 0; // Freed PRT entries / woke a waiting warp: rescan.
}

void
StreamingMultiprocessor::deliverResponse(MemoryAccess access, Cycle now)
{
    deliverResponseSlot(slab->allocate(std::move(access)), now);
}

void
StreamingMultiprocessor::deliverResponseSlot(std::uint32_t slot, Cycle now)
{
    const MemoryAccess &access = slab->at(slot);
    RCOAL_ASSERT(!access.isWrite, "write response delivered to SM %u", id);
    responseSinceTick = true;
    scanGate = 0;
    if (l1) {
        l1->release();
        l1->fill(access.blockAddr, access.bytes);
    }
    if (mshr) {
        const Addr block = access.blockAddr;
        slab->free(slot);
        for (MemoryAccess &waiting : mshr->complete(block))
            finalizeLoad(waiting, now);
        return;
    }
    finalizeLoad(access, now);
    slab->free(slot);
}

bool
StreamingMultiprocessor::done(Cycle now) const
{
    if (unfinishedWarps > 0 || now < busyUntil)
        return false;
    if (!ldstQueue.empty() || !localResponses.empty())
        return false;
    if (mshr && mshr->occupancy() > 0)
        return false;
    return true;
}

} // namespace rcoal::sim
