/**
 * @file
 * StreamingMultiprocessor implementation.
 */

#include "rcoal/sim/sm.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"
#include "rcoal/trace/sink.hpp"

namespace rcoal::sim {

StreamingMultiprocessor::StreamingMultiprocessor(
    const GpuConfig &config, unsigned sm_id, Crossbar *request_xbar,
    const AddressMapping *mapping, std::uint64_t *access_id_counter)
    : cfg(config),
      id(sm_id),
      reqXbar(request_xbar),
      map(mapping),
      nextAccessId(access_id_counter),
      coalescer(config.coalesceBlockBytes),
      prt(config.prtEntries),
      baselinePartition(core::SubwarpPartition::single(config.warpSize)),
      ldstQueueCapacity(4 * config.warpSize),
      rrPointer(config.issueWidth, 0)
{
    RCOAL_ASSERT(reqXbar && map && nextAccessId,
                 "SM wired without its collaborators");
    if (cfg.l1Enabled)
        l1 = std::make_unique<mem::SectoredCache>(cfg.l1);
    // The SM-side MSHR sits in front of the L1 (misses merge on the
    // block in flight); without an L1 every access travels to memory
    // individually and only the L2's own MSHR applies.
    if (cfg.mshrEnabled && cfg.l1Enabled)
        mshr = std::make_unique<mem::MshrTable>(cfg.mshrEntries);
}

void
StreamingMultiprocessor::beginLaunch(KernelStats *launch_stats,
                                     std::uint32_t launch_slot,
                                     std::uint64_t *pending_writes)
{
    RCOAL_ASSERT(launch_stats != nullptr && pending_writes != nullptr,
                 "SM %u launch needs a stats sink and store counter", id);
    RCOAL_ASSERT(warps.empty(), "SM %u still hosts a previous launch", id);
    stats = launch_stats;
    launchSlot = launch_slot;
    pendingWrites = pending_writes;
}

void
StreamingMultiprocessor::reset()
{
    RCOAL_ASSERT(unfinishedWarps == 0 && ldstQueue.empty() &&
                     localResponses.empty() &&
                     (!mshr || mshr->occupancy() == 0) &&
                     (!l1 || l1->reservedFills() == 0),
                 "SM %u reset while work is in flight", id);
    l1LookupId = ~std::uint64_t{0};
    l1LookupOutcome = mem::AccessOutcome::Hit;
    warps.clear();
    warpIndex.clear();
    std::fill(rrPointer.begin(), rrPointer.end(), 0);
    busyUntil = 0;
    scanGate = 0;
    scanWake = 0;
    tickChanged = false;
    responseSinceTick = false;
    // Per-tick state that used to leak across launches: tick() zeroes
    // the stall counters only after the warps.empty() early-return, so
    // a skip window right after the next launch could replay the
    // previous launch's final-tick stalls into the new launch's stats.
    scanIssued = false;
    prtStallsTick = 0;
    icnStallsTick = 0;
    laneScratch.clear();
    // Canonicalize the PRT free-list: entry indices are pure IDs, so a
    // drained table is behaviorally identical to a fresh one — making
    // it byte-identical keeps quiescent snapshots canonical too.
    prt.reset();
    stats = nullptr;
    launchSlot = 0;
    pendingWrites = nullptr;
}

void
StreamingMultiprocessor::hardReset()
{
    RCOAL_ASSERT(warps.empty(),
                 "SM %u hard reset while hosting a launch", id);
    // reset() (run at every launch retirement) already restored the
    // per-launch state; what survives it by design is the warm memory
    // hierarchy, which a machine-level reset must also discard.
    if (l1)
        l1->resetAll();
    if (mshr)
        mshr->reset();
}

void
StreamingMultiprocessor::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(warps.empty() && ldstQueue.empty() &&
                     localResponses.empty(),
                 "SM %u snapshot while hosting a launch", id);
    prt.saveState(w);
    w.pod(l1LookupId);
    w.pod(static_cast<std::uint8_t>(l1LookupOutcome));
    w.pod(busyUntil);
    w.pod(scanGate);
    w.pod(scanWake);
    w.pod(static_cast<std::uint8_t>(tickChanged));
    w.pod(static_cast<std::uint8_t>(responseSinceTick));
    w.pod(static_cast<std::uint8_t>(scanIssued));
    w.pod(prtStallsTick);
    w.pod(icnStallsTick);
    w.pod(static_cast<std::uint64_t>(laneScratch.size()));
    w.pod(static_cast<std::uint8_t>(l1 != nullptr));
    if (l1)
        l1->saveState(w);
    w.pod(static_cast<std::uint8_t>(mshr != nullptr));
    if (mshr)
        mshr->saveState(w);
}

void
StreamingMultiprocessor::restoreState(common::ArenaReader &r)
{
    RCOAL_ASSERT(warps.empty() && ldstQueue.empty() &&
                     localResponses.empty(),
                 "SM %u restore while hosting a launch", id);
    prt.restoreState(r);
    r.pod(l1LookupId);
    l1LookupOutcome = static_cast<mem::AccessOutcome>(r.take<std::uint8_t>());
    r.pod(busyUntil);
    r.pod(scanGate);
    r.pod(scanWake);
    tickChanged = r.take<std::uint8_t>() != 0;
    responseSinceTick = r.take<std::uint8_t>() != 0;
    scanIssued = r.take<std::uint8_t>() != 0;
    r.pod(prtStallsTick);
    r.pod(icnStallsTick);
    laneScratch.assign(static_cast<std::size_t>(r.take<std::uint64_t>()),
                       0);
    const bool had_l1 = r.take<std::uint8_t>() != 0;
    RCOAL_ASSERT(had_l1 == (l1 != nullptr),
                 "SM %u L1 presence mismatch on restore", id);
    if (l1)
        l1->restoreState(r);
    const bool had_mshr = r.take<std::uint8_t>() != 0;
    RCOAL_ASSERT(had_mshr == (mshr != nullptr),
                 "SM %u MSHR presence mismatch on restore", id);
    if (mshr)
        mshr->restoreState(r);
}

void
StreamingMultiprocessor::assignWarp(
    WarpId warp_id, const std::vector<WarpInstruction> *warp_trace,
    core::SubwarpPartition partition)
{
    RCOAL_ASSERT(stats != nullptr,
                 "SM %u assigned a warp before beginLaunch", id);
    RCOAL_ASSERT(warps.size() < cfg.maxWarpsPerSm,
                 "SM %u over its warp limit", id);
    warpIndex[warp_id] = warps.size();
    warps.push_back(
        WarpContext{warp_id, warp_trace, std::move(partition), 0, 0, 0,
                    {}, ~std::size_t{0}, 0, 0});
    if (!warps.back().finished())
        ++unfinishedWarps;
    scanGate = 0; // New issue candidate: rescan next tick.
}

bool
StreamingMultiprocessor::issueMemory(WarpContext &warp,
                                     const WarpInstruction &instr,
                                     Cycle now)
{
    const bool is_load = instr.op == WarpInstruction::Op::Load;
    if (warp.pendingPc != warp.pc) {
        // Selective RCoal (Section VII): only instructions tagged as
        // vulnerable get the randomized partition.
        const bool protect =
            !cfg.selectiveRCoal ||
            (cfg.protectedTagMask &
             (1u << static_cast<unsigned>(instr.tag)));
        const core::SubwarpPartition &used =
            protect ? warp.partition : baselinePartition;
        warp.pendingCoalesce = coalescer.coalesce(instr.lanes, used);
        RCOAL_TRACE(traceSink, McuCoalesce, now, warp.id,
                    warp.pendingCoalesce.size(), used.numSubwarps());
        warp.pendingPc = warp.pc;
        warp.pendingActiveLanes = 0;
        for (const auto &lane : instr.lanes) {
            if (lane.active)
                ++warp.pendingActiveLanes;
        }
        // A lane straddling a block boundary lands in several accesses
        // and needs one PRT entry per touched block, so reserve by the
        // exact entry demand rather than the active-lane count.
        warp.pendingPrtEntries = 0;
        for (const auto &coalesced : warp.pendingCoalesce)
            warp.pendingPrtEntries += coalesced.threads.size();
    }
    auto &accesses = warp.pendingCoalesce;
    if (accesses.empty()) {
        // All lanes inactive: the instruction is a no-op.
        warp.pendingPc = ~std::size_t{0};
        return true;
    }
    // Cheap resource checks first: these run every stalled retry.
    if (ldstQueue.size() + accesses.size() > ldstQueueCapacity)
        return false;
    if (is_load && prt.freeEntries() < warp.pendingPrtEntries) {
        ++stats->prtStallCycles;
        ++prtStallsTick;
        RCOAL_TRACE(traceSink, SmStall, now, 0, warp.id, 0);
        return false;
    }

    const unsigned active_lanes = warp.pendingActiveLanes;
    laneScratch.assign(cfg.warpSize, -1);
    std::vector<int> &lane_of_tid = laneScratch;
    for (std::size_t i = 0; i < instr.lanes.size(); ++i) {
        const auto &lane = instr.lanes[i];
        RCOAL_ASSERT(lane.tid < cfg.warpSize, "lane tid %u out of range",
                     lane.tid);
        lane_of_tid[lane.tid] = static_cast<int>(i);
    }

    TagStats &tag_stats = stats->tagStats(instr.tag);
    tag_stats.firstIssue = std::min(tag_stats.firstIssue, now);
    tag_stats.laneRequests += active_lanes;
    tag_stats.accesses += accesses.size();
    stats->coalescedAccesses += accesses.size();
    if (is_load)
        stats->loadAccesses += accesses.size();
    else
        stats->storeAccesses += accesses.size();
    ++stats->memInstructions;

    for (auto &coalesced : accesses) {
        MemoryAccess access;
        access.id = (*nextAccessId)++;
        access.blockAddr = coalesced.blockAddr;
        access.bytes = cfg.coalesceBlockBytes;
        access.isWrite = !is_load;
        access.tag = instr.tag;
        access.smId = id;
        access.launchSlot = launchSlot;
        access.warpId = warp.id;
        access.sid = coalesced.sid;
        access.issueCycle = now;
        if (is_load) {
            for (ThreadId tid : coalesced.threads) {
                const int lane_idx = lane_of_tid[tid];
                RCOAL_ASSERT(lane_idx >= 0, "coalesced unknown tid %u",
                             tid);
                const auto &lane =
                    instr.lanes[static_cast<std::size_t>(lane_idx)];
                const Addr lane_block = coalescer.blockAlign(lane.addr);
                const std::uint32_t offset =
                    lane_block == coalesced.blockAddr
                        ? static_cast<std::uint32_t>(lane.addr -
                                                     coalesced.blockAddr)
                        : 0; // Lane straddles into this block.
                const auto entry =
                    prt.allocate(tid, coalesced.blockAddr, offset,
                                 lane.size, coalesced.sid);
                RCOAL_ASSERT(entry.has_value(),
                             "PRT full despite reservation check");
                access.prtIndices.push_back(*entry);
            }
            ++warp.outstandingLoads;
        } else {
            ++*pendingWrites;
        }
        ldstQueue.push_back(std::move(access));
    }
    warp.pendingCoalesce.clear();
    warp.pendingPc = ~std::size_t{0};
    return true;
}

bool
StreamingMultiprocessor::tryIssue(WarpContext &warp, Cycle now)
{
    if (warp.pc >= warp.trace->size() || warp.readyAt > now)
        return false;
    const WarpInstruction &instr = (*warp.trace)[warp.pc];
    switch (instr.op) {
      case WarpInstruction::Op::Alu:
        if (instr.waitAllLoads && warp.outstandingLoads > 0)
            return false;
        RCOAL_TRACE(traceSink, SmIssue, now, warp.id, warp.pc, 0);
        warp.readyAt = now + std::max(1u, instr.latency);
        busyUntil = std::max(busyUntil, warp.readyAt);
        ++warp.pc;
        ++stats->warpInstructions;
        if (warp.finished()) {
            RCOAL_ASSERT(unfinishedWarps > 0, "finished-warp underflow");
            --unfinishedWarps;
        }
        scanIssued = true;
        tickChanged = true;
        return true;
      case WarpInstruction::Op::Load:
      case WarpInstruction::Op::Store:
        if (!issueMemory(warp, instr, now))
            return false;
        RCOAL_TRACE(traceSink, SmIssue, now, warp.id, warp.pc,
                    instr.op == WarpInstruction::Op::Load ? 1 : 2);
        warp.readyAt = now + 1;
        ++warp.pc;
        ++stats->warpInstructions;
        if (warp.finished()) {
            RCOAL_ASSERT(unfinishedWarps > 0, "finished-warp underflow");
            --unfinishedWarps;
        }
        scanIssued = true;
        tickChanged = true;
        return true;
    }
    panic("invalid warp instruction opcode");
}

void
StreamingMultiprocessor::drainLdst(Cycle now)
{
    // Retire L1-hit responses whose latency elapsed.
    while (!localResponses.empty() && localResponses.front().first <= now) {
        finalizeLoad(localResponses.front().second, now);
        localResponses.pop_front();
        tickChanged = true;
    }

    if (ldstQueue.empty())
        return;
    MemoryAccess &head = ldstQueue.front();

    // Loads may hit in the (optional) L1; writes are write-through,
    // no-allocate and always travel to memory.
    if (l1 && !head.isWrite) {
        if (head.id != l1LookupId) {
            l1LookupId = head.id;
            l1LookupOutcome = l1->access(head.blockAddr, head.bytes);
            RCOAL_TRACE(traceSink, CacheAccess, now, 1,
                        static_cast<unsigned>(l1LookupOutcome), head.id);
            if (l1LookupOutcome == mem::AccessOutcome::Hit) {
                ++stats->l1Hits;
            } else {
                ++stats->l1Misses;
                if (l1LookupOutcome == mem::AccessOutcome::SectorMiss)
                    ++stats->l1SectorMisses;
            }
        }
        if (l1LookupOutcome == mem::AccessOutcome::Hit) {
            localResponses.emplace_back(now + l1->hitLatency(),
                                        std::move(head));
            ldstQueue.pop_front();
            tickChanged = true;
            scanGate = 0; // Queue space freed: rescan.
            return;
        }
        if (mshr) {
            if (mshr->isPending(head.blockAddr)) {
                // The merged load rides the in-flight fill's
                // reservation; no extra one is taken.
                mshr->merge(head.blockAddr, std::move(head));
                ++stats->mshrMerges;
                ldstQueue.pop_front();
                tickChanged = true;
                scanGate = 0; // Queue space freed: rescan.
                return;
            }
            if (!mshr->canAllocate())
                return; // Structural stall; retry next cycle.
            if (!l1->canReserve())
                return; // Fill-buffer bound reached; retry next cycle.
            if (!reqXbar->canInject(id)) {
                ++stats->icnStallCycles;
                ++icnStallsTick;
                RCOAL_TRACE(traceSink, SmStall, now, 1, head.warpId, 0);
                return;
            }
            MemoryAccess copy = head;
            mshr->allocate(head.blockAddr, std::move(head));
            l1->reserve();
            ldstQueue.pop_front();
            tickChanged = true;
            scanGate = 0; // Queue space freed: rescan.
            const unsigned dest = map->partitionOf(copy.blockAddr);
            copy.prtIndices.clear(); // PRT freed via the MSHR entry.
            reqXbar->inject(id, dest, std::move(copy), now);
            return;
        }
        if (!l1->canReserve())
            return; // Fill-buffer bound reached; retry next cycle.
    }

    if (!reqXbar->canInject(id)) {
        ++stats->icnStallCycles;
        ++icnStallsTick;
        RCOAL_TRACE(traceSink, SmStall, now, 1, head.warpId, 0);
        return;
    }
    // An L1 read miss travelling to memory holds a fill reservation
    // until its response returns (allocate-on-fill).
    if (l1 && !head.isWrite)
        l1->reserve();
    const unsigned dest = map->partitionOf(head.blockAddr);
    reqXbar->inject(id, dest, std::move(head), now);
    ldstQueue.pop_front();
    tickChanged = true;
    scanGate = 0; // Queue space freed: rescan.
}

void
StreamingMultiprocessor::tick(Cycle now)
{
    tickChanged = false;
    responseSinceTick = false;
    scanIssued = false;
    if (warps.empty())
        return;
    prtStallsTick = 0;
    icnStallsTick = 0;

    drainLdst(now);

    // The issue scan is pure when it fails: it either issues, bumps a
    // stall counter, or provably does nothing. scanGate tracks the next
    // cycle it could do otherwise, so quiet stretches skip the
    // per-scheduler warp walk entirely (and any event that could
    // unblock a silent failure resets the gate to 0).
    if (now >= scanGate)
        scanWarps(now);
}

void
StreamingMultiprocessor::scanWarps(Cycle now)
{
    const std::uint64_t prt_before = prtStallsTick;

    // One issue slot per scheduler; warp slot w belongs to scheduler
    // w % issueWidth (the 16x2 SIMT organization of Table I).
    for (unsigned sched = 0; sched < cfg.issueWidth && sched < warps.size();
         ++sched) {
        // Slots sched, sched+issueWidth, ... belong to this scheduler.
        const std::size_t count =
            (warps.size() - sched + cfg.issueWidth - 1) / cfg.issueWidth;
        if (cfg.scheduler == SchedulerPolicy::GreedyThenOldest) {
            // GTO: keep issuing from the last warp; when it cannot
            // issue, fall back to the oldest (lowest-slot) ready warp.
            const std::size_t greedy = rrPointer[sched] % count;
            if (tryIssue(warps[sched + greedy * cfg.issueWidth], now))
                continue;
            for (std::size_t k = 0; k < count; ++k) {
                if (k == greedy)
                    continue;
                if (tryIssue(warps[sched + k * cfg.issueWidth], now)) {
                    rrPointer[sched] = k;
                    break;
                }
            }
            continue;
        }
        // Loose round robin.
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t slot =
                sched + ((rrPointer[sched] + k) % count) * cfg.issueWidth;
            if (tryIssue(warps[slot], now)) {
                rrPointer[sched] = (rrPointer[sched] + k + 1) % count;
                break;
            }
        }
    }

    // Earliest wake-up among time-blocked warps. Warps blocked on
    // events (queue space, PRT entries, outstanding loads) do not
    // contribute: the events that free them reset scanGate themselves.
    Cycle wake = kInvalidCycle;
    for (const WarpContext &warp : warps) {
        if (warp.pc < warp.trace->size() && warp.readyAt > now)
            wake = std::min(wake, warp.readyAt);
    }
    const bool side_effects = scanIssued || prtStallsTick != prt_before;
    scanGate = side_effects ? now + 1 : wake;
    scanWake = wake;
}

Cycle
StreamingMultiprocessor::nextEventCycle(Cycle now) const
{
    if (warps.empty())
        return kInvalidCycle;
    if (tickChanged || responseSinceTick)
        return now + 1;
#if RCOAL_TRACE_ENABLED
    // Stall counting emits one SmStall trace event per stalled cycle;
    // bulk-replaying the counters would drop those events, so a live
    // sink pins a stalling SM to per-cycle stepping.
    if (traceSink != nullptr &&
        (prtStallsTick != 0 || icnStallsTick != 0)) {
        return now + 1;
    }
#endif
    if (l1 && !ldstQueue.empty()) {
        // A stalled miss head (MSHR or fill-reservation exhaustion) has
        // no event wiring to re-arm it; pin per-cycle stepping.
        return now + 1;
    }
    if (!ldstQueue.empty() && reqXbar->canInject(id))
        return now + 1; // Head injects next cycle.
    Cycle bound = scanWake;
    if (!localResponses.empty())
        bound = std::min(bound, localResponses.front().first);
    if (busyUntil > now) {
        // Trailing ALU latency: done() flips exactly at busyUntil, and
        // the machine must observe that cycle to stamp completion.
        bound = std::min(bound, busyUntil);
    }
    return std::max(bound, now + 1);
}

void
StreamingMultiprocessor::applySkippedCycles(Cycle cycles)
{
    if (warps.empty() || cycles == 0)
        return;
    // A skipped window repeats this tick verbatim: the only side effect
    // a frozen SM produces per cycle is its stall counting.
    stats->prtStallCycles += prtStallsTick * cycles;
    stats->icnStallCycles += icnStallsTick * cycles;
}

void
StreamingMultiprocessor::finalizeLoad(const MemoryAccess &access, Cycle now)
{
    for (std::size_t idx : access.prtIndices)
        prt.release(idx);
    const auto it = warpIndex.find(access.warpId);
    RCOAL_ASSERT(it != warpIndex.end(), "response for unknown warp %u",
                 access.warpId);
    WarpContext &warp = warps[it->second];
    RCOAL_ASSERT(warp.outstandingLoads > 0,
                 "warp %u has no outstanding loads", access.warpId);
    --warp.outstandingLoads;
    if (warp.finished()) {
        RCOAL_ASSERT(unfinishedWarps > 0, "finished-warp underflow");
        --unfinishedWarps;
    }
    TagStats &tag_stats = stats->tagStats(access.tag);
    tag_stats.lastComplete = std::max(tag_stats.lastComplete, now);
    scanGate = 0; // Freed PRT entries / woke a waiting warp: rescan.
}

void
StreamingMultiprocessor::deliverResponse(MemoryAccess access, Cycle now)
{
    RCOAL_ASSERT(!access.isWrite, "write response delivered to SM %u", id);
    responseSinceTick = true;
    scanGate = 0;
    if (l1) {
        l1->release();
        l1->fill(access.blockAddr, access.bytes);
    }
    if (mshr) {
        for (MemoryAccess &waiting : mshr->complete(access.blockAddr))
            finalizeLoad(waiting, now);
        return;
    }
    finalizeLoad(access, now);
}

bool
StreamingMultiprocessor::done(Cycle now) const
{
    if (unfinishedWarps > 0 || now < busyUntil)
        return false;
    if (!ldstQueue.empty() || !localResponses.empty())
        return false;
    if (mshr && mshr->occupancy() > 0)
        return false;
    return true;
}

} // namespace rcoal::sim
