/**
 * @file
 * GpuMachine implementation: persistent machine state, ranged launches
 * and the shared-memory-system cycle loop.
 */

#include "rcoal/sim/gpu_machine.hpp"

#include <algorithm>
#include <array>
#include <bit>

#include "rcoal/common/logging.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/telemetry/sampler.hpp"

namespace rcoal::sim {

namespace {

/** Run the config's own validation before any component consumes it. */
GpuConfig
validated(GpuConfig config)
{
    config.validate();
    return config;
}

// Snapshot arena region tags. The reader checks each against the
// writer's order, so a save/restore drift panics instead of misreading.
constexpr std::uint32_t kTagMachine = 0x6d636831; // 'mch1'
constexpr std::uint32_t kTagSm = 0x736d3032;      // 'sm02'
constexpr std::uint32_t kTagXbar = 0x78626172;    // 'xbar'
constexpr std::uint32_t kTagDram = 0x6472616d;    // 'dram'
constexpr std::uint32_t kTagL2 = 0x6c322e30;      // 'l2.0'
constexpr std::uint32_t kTagChecker = 0x63686b72; // 'chkr'
constexpr std::uint32_t kTagSpans = 0x73706e31;   // 'spn1'

} // namespace

SimCycleCounters &
simCycleCounters()
{
    static SimCycleCounters counters;
    return counters;
}

GpuMachine::GpuMachine(GpuConfig config)
    : cfg(validated(std::move(config))),
      partitioner(cfg.policy, cfg.warpSize),
      mapping(cfg),
      slab(cfg.numSms * 4 * cfg.warpSize +
           (cfg.numSms + cfg.numPartitions) * 2 * cfg.icnQueueDepth +
           cfg.numPartitions * 2 * cfg.dramQueueDepth),
      reqXbar(cfg.numSms, cfg.numPartitions, cfg.icnLatency,
              cfg.icnQueueDepth, &slab),
      respXbar(cfg.numPartitions, cfg.numSms, cfg.icnLatency,
               cfg.icnQueueDepth, &slab),
      respBacklog(cfg.numPartitions),
      smBusy(cfg.numSms, false)
{
    sms.reserve(cfg.numSms);
    for (unsigned s = 0; s < cfg.numSms; ++s) {
        sms.push_back(std::make_unique<StreamingMultiprocessor>(
            cfg, s, &reqXbar, &mapping, &accessIds, &slab));
    }
    drams.reserve(cfg.numPartitions);
    for (unsigned p = 0; p < cfg.numPartitions; ++p) {
        drams.push_back(
            std::make_unique<DramPartition>(cfg, p, &memStats, &slab));
    }
    if (cfg.l2Enabled) {
        l2.resize(cfg.numPartitions);
        for (auto &front : l2) {
            front.cache = std::make_unique<mem::SectoredCache>(cfg.l2);
            if (cfg.mshrEnabled) {
                front.mshr =
                    std::make_unique<mem::MshrTable>(cfg.l2MshrEntries);
            }
        }
    }
    skipEnabled = resolveCycleSkipping(cfg.cycleSkipping);
}

GpuMachine::~GpuMachine()
{
    simCycleCounters().simulated.fetch_add(nowCycle,
                                           std::memory_order_relaxed);
    simCycleCounters().skipped.fetch_add(skippedTotal,
                                         std::memory_order_relaxed);
}

void
GpuMachine::setTracer(trace::Tracer *t)
{
    if (t == nullptr) {
        for (auto &sm : sms)
            sm->setTraceSink(nullptr);
        reqXbar.setTraceSink(nullptr);
        respXbar.setTraceSink(nullptr);
        for (auto &dram : drams)
            dram->setTraceSink(nullptr);
        machineSink = nullptr;
        attachedSinks.clear();
        return;
    }
    t->setCoreCyclesPerMemCycle(cfg.coreClockMhz / cfg.memClockMhz);
    attachedSinks.clear();
    const auto attach = [this](trace::TraceSink &sink) {
        attachedSinks.push_back(&sink);
        return &sink;
    };
    for (unsigned s = 0; s < cfg.numSms; ++s) {
        sms[s]->setTraceSink(attach(t->sink(
            strprintf("sm%u", s), trace::ClockDomain::Core,
            static_cast<std::uint16_t>(s))));
    }
    reqXbar.setTraceSink(
        attach(t->sink("xbar.req", trace::ClockDomain::Core)));
    respXbar.setTraceSink(
        attach(t->sink("xbar.resp", trace::ClockDomain::Core)));
    for (unsigned p = 0; p < cfg.numPartitions; ++p) {
        drams[p]->setTraceSink(attach(t->sink(
            strprintf("dram%u", p), trace::ClockDomain::Memory,
            static_cast<std::uint16_t>(p))));
    }
    machineSink = attach(t->sink("machine", trace::ClockDomain::Core));
}

void
GpuMachine::setSpanCollector(spans::SpanCollector *c,
                             std::uint32_t span_namespace)
{
    spanCollector = c;
    spanNamespace = span_namespace;
    for (auto &sm : sms)
        sm->setSpanCollector(c, span_namespace);
}

void
GpuMachine::enableDramChecking(trace::DramProtocolChecker::Mode mode)
{
    // The backend resolves its own timing set; the checker enforces the
    // same numbers, including the bank-group/pseudo-channel rules of
    // the GDDR6/HBM2 personalities.
    const trace::DramProtocolChecker::Params params =
        mem::checkerParamsFor(cfg);
    checkerMode = mode;
    checkers.clear();
    checkers.reserve(drams.size());
    for (auto &dram : drams) {
        checkers.push_back(
            std::make_unique<trace::DramProtocolChecker>(params, mode));
        dram->setChecker(checkers.back().get());
    }
}

bool
GpuMachine::quiescent() const
{
    if (!active.empty())
        return false;
    if (!reqXbar.idle() || !respXbar.idle())
        return false;
    for (const auto &dram : drams) {
        if (!dram->idle())
            return false;
    }
    for (const auto &sm : sms) {
        if (sm->residentWarps() != 0)
            return false;
    }
    for (const auto &front : l2) {
        if (!front.pendingHits.empty())
            return false;
    }
    for (const auto &backlog : respBacklog) {
        if (!backlog.empty())
            return false;
    }
    return true;
}

MachineSnapshot
GpuMachine::snapshot() const
{
    RCOAL_ASSERT(quiescent(),
                 "snapshot requires a quiescent machine (no resident "
                 "kernels, all queues drained)");
    RCOAL_ASSERT(slab.empty(),
                 "quiescent machine leaked %zu slab slots",
                 slab.liveCount());
    static_assert(std::is_trivially_copyable_v<KernelStats>,
                  "KernelStats must stay memcpy-serializable");
    auto arena = std::make_shared<common::StateArena>();
    common::ArenaWriter w(*arena);

    w.beginRegion(kTagMachine);
    w.pod(memStats);
    w.pod(retiredTotals);
    w.pod(retiredLaunches);
    w.pod(launchCounter);
    w.pod(accessIds);
    w.pod(nowCycle);
    w.pod(memCycle);
    w.pod(memAccum);
    w.pod(skippedTotal);
    w.endRegion();

    for (const auto &sm : sms) {
        w.beginRegion(kTagSm);
        sm->saveState(w);
        w.endRegion();
    }

    w.beginRegion(kTagXbar);
    reqXbar.saveState(w);
    respXbar.saveState(w);
    w.endRegion();

    for (const auto &dram : drams) {
        w.beginRegion(kTagDram);
        dram->saveState(w);
        w.endRegion();
    }

    w.beginRegion(kTagL2);
    for (const auto &front : l2) {
        front.cache->saveState(w);
        w.pod(static_cast<std::uint8_t>(front.mshr != nullptr));
        if (front.mshr)
            front.mshr->saveState(w);
    }
    w.endRegion();

    w.beginRegion(kTagChecker);
    w.pod(static_cast<std::uint8_t>(!checkers.empty()));
    if (!checkers.empty()) {
        w.pod(static_cast<std::uint8_t>(checkerMode));
        for (const auto &checker : checkers)
            checker->saveState(w);
    }
    w.endRegion();

    w.beginRegion(kTagSpans);
    w.pod(static_cast<std::uint8_t>(spanCollector != nullptr));
    if (spanCollector != nullptr)
        spanCollector->saveState(w);
    w.endRegion();

    MachineSnapshot snap;
    snap.config = cfg;
    snap.arena = std::move(arena);
    return snap;
}

void
GpuMachine::restore(const MachineSnapshot &snap)
{
    RCOAL_ASSERT(snap.arena != nullptr, "restore from an empty snapshot");
    GpuConfig structural = snap.config;
    structural.seed = cfg.seed;
    RCOAL_ASSERT(structural == cfg,
                 "restore into a structurally different machine");
    RCOAL_ASSERT(quiescent(),
                 "restore requires a quiescent machine");
    RCOAL_ASSERT(telemetrySampler == nullptr,
                 "restore before attaching telemetry");

    // The cycles simulated so far would vanish from the process-wide
    // throughput counters when overwritten; fold them in first, exactly
    // as the destructor does.
    simCycleCounters().simulated.fetch_add(nowCycle,
                                           std::memory_order_relaxed);
    simCycleCounters().skipped.fetch_add(skippedTotal,
                                         std::memory_order_relaxed);

    cfg.seed = snap.config.seed;

    common::ArenaReader r(*snap.arena);

    r.beginRegion(kTagMachine);
    r.pod(memStats);
    r.pod(retiredTotals);
    r.pod(retiredLaunches);
    r.pod(launchCounter);
    r.pod(accessIds);
    r.pod(nowCycle);
    r.pod(memCycle);
    r.pod(memAccum);
    r.pod(skippedTotal);
    r.endRegion();

    for (auto &sm : sms) {
        r.beginRegion(kTagSm);
        sm->restoreState(r);
        r.endRegion();
    }

    r.beginRegion(kTagXbar);
    reqXbar.restoreState(r);
    respXbar.restoreState(r);
    r.endRegion();

    for (auto &dram : drams) {
        r.beginRegion(kTagDram);
        dram->restoreState(r);
        r.endRegion();
    }

    r.beginRegion(kTagL2);
    for (auto &front : l2) {
        front.cache->restoreState(r);
        const bool had_mshr = r.take<std::uint8_t>() != 0;
        RCOAL_ASSERT(had_mshr == (front.mshr != nullptr),
                     "L2 MSHR presence mismatch on restore");
        if (front.mshr)
            front.mshr->restoreState(r);
    }
    r.endRegion();

    r.beginRegion(kTagChecker);
    const bool checking = r.take<std::uint8_t>() != 0;
    if (checking) {
        const auto mode = static_cast<trace::DramProtocolChecker::Mode>(
            r.take<std::uint8_t>());
        if (checkers.empty() || mode != checkerMode)
            enableDramChecking(mode);
        for (auto &checker : checkers)
            checker->restoreState(r);
    } else if (!checkers.empty()) {
        for (auto &dram : drams)
            dram->setChecker(nullptr);
        checkers.clear();
    }
    r.endRegion();

    r.beginRegion(kTagSpans);
    const bool had_spans = r.take<std::uint8_t>() != 0;
    if (had_spans) {
        RCOAL_ASSERT(spanCollector != nullptr,
                     "snapshot carries span state but no collector "
                     "is attached");
        spanCollector->restoreState(r);
    } else if (spanCollector != nullptr) {
        spanCollector->clear();
    }
    r.endRegion();

    RCOAL_ASSERT(r.atEnd(), "snapshot arena has trailing bytes");
}

std::unique_ptr<GpuMachine>
GpuMachine::fork(const MachineSnapshot &snap)
{
    auto machine = std::make_unique<GpuMachine>(snap.config);
    machine->restore(snap);
    return machine;
}

void
GpuMachine::reseed(std::uint64_t seed)
{
    cfg.seed = seed;
}

void
GpuMachine::reset()
{
    RCOAL_ASSERT(quiescent(), "reset requires a quiescent machine");
    RCOAL_ASSERT(slab.empty(),
                 "quiescent machine leaked %zu slab slots",
                 slab.liveCount());
    simCycleCounters().simulated.fetch_add(nowCycle,
                                           std::memory_order_relaxed);
    simCycleCounters().skipped.fetch_add(skippedTotal,
                                         std::memory_order_relaxed);

    memStats = KernelStats{};
    retiredTotals = KernelStats{};
    retiredLaunches = 0;
    launchCounter = 0;
    accessIds = 0;
    nowCycle = 0;
    memCycle = 0;
    memAccum = 0.0;
    skippedTotal = 0;

    for (auto &sm : sms)
        sm->hardReset();
    reqXbar.reset();
    respXbar.reset();
    for (auto &dram : drams)
        dram->reset();
    for (auto &front : l2) {
        front.cache->resetAll();
        if (front.mshr)
            front.mshr->reset();
    }
    for (auto &checker : checkers)
        checker->reset();
    for (trace::TraceSink *sink : attachedSinks)
        sink->clear();
    if (spanCollector != nullptr)
        spanCollector->clear();
    if (telemetrySampler != nullptr)
        telemetrySampler->reset();
}

KernelStats
GpuMachine::cumulativeStats() const
{
    KernelStats totals = retiredTotals;
    // Iteration order over the hash map is irrelevant: the fold is a
    // plain commutative sum, so the result is deterministic.
    for (const auto &[slot, launch] : active)
        totals.accumulate(*launch.stats);
    return totals;
}

std::size_t
GpuMachine::prtOccupancy() const
{
    std::size_t fill = 0;
    for (const auto &sm : sms)
        fill += sm->prtOccupancy();
    return fill;
}

namespace {

/** Pre-resolved instrument pointers for the machine's pull collector. */
struct MachineCells
{
    telemetry::Counter *simCycles = nullptr;
    telemetry::Counter *kernelsLaunched = nullptr;
    telemetry::Counter *kernelsRetired = nullptr;
    telemetry::Counter *warpInstructions = nullptr;
    telemetry::Counter *memInstructions = nullptr;
    telemetry::Counter *coalescedAccesses = nullptr;
    telemetry::Counter *prtStalls = nullptr;
    telemetry::Counter *icnStalls = nullptr;
    telemetry::Gauge *busySms = nullptr;
    telemetry::Gauge *residentKernels = nullptr;
    telemetry::Gauge *prtFill = nullptr;
    telemetry::Counter *reqPackets = nullptr;
    telemetry::Counter *respPackets = nullptr;
    telemetry::Gauge *reqQueued = nullptr;
    telemetry::Gauge *respQueued = nullptr;
    telemetry::Counter *l1Hits = nullptr;
    telemetry::Counter *l1Misses = nullptr;
    telemetry::Counter *l1SectorMisses = nullptr;
    telemetry::Counter *l1MshrMerges = nullptr;
    telemetry::Counter *l2Hits = nullptr;
    telemetry::Counter *l2Misses = nullptr;
    telemetry::Counter *l2SectorMisses = nullptr;
    telemetry::Counter *l2MshrMerges = nullptr;

    struct Partition
    {
        telemetry::Gauge *queueDepth = nullptr;
        telemetry::Counter *refreshes = nullptr;
        telemetry::Counter *violations = nullptr; ///< Checker-gated.
        /** Per bank: row hits, row misses, activates, precharges. */
        std::vector<std::array<telemetry::Counter *, 4>> banks;
    };
    std::vector<Partition> partitions;
};

} // namespace

void
GpuMachine::setTelemetry(telemetry::TelemetrySampler *sampler)
{
    telemetrySampler = sampler;
    if (sampler == nullptr)
        return;
    sampler->alignAfter(nowCycle);

    telemetry::MetricRegistry &reg = sampler->registry();
    auto cells = std::make_shared<MachineCells>();
    cells->simCycles = &reg.counter("rcoal_sim_cycles_total",
                                    "Core cycles simulated");
    cells->kernelsLaunched = &reg.counter(
        "rcoal_kernels_launched_total", "Kernel launches started");
    cells->kernelsRetired = &reg.counter(
        "rcoal_kernels_retired_total",
        "Kernel launches completed and taken");
    cells->residentKernels = &reg.gauge(
        "rcoal_kernels_resident",
        "Launches currently resident (incl. completed-but-untaken)");
    cells->busySms = &reg.gauge(
        "rcoal_sm_busy", "SMs currently allocated to a launch");
    reg.gauge("rcoal_sm_total", "SMs in the machine")
        .set(static_cast<double>(cfg.numSms));
    cells->warpInstructions = &reg.counter(
        "rcoal_warp_instructions_total",
        "Warp instructions issued across all launches");
    cells->memInstructions = &reg.counter(
        "rcoal_mem_instructions_total",
        "Memory warp instructions issued across all launches");
    cells->coalescedAccesses = &reg.counter(
        "rcoal_coalesced_accesses_total",
        "Coalesced memory accesses generated (loads + stores)");
    cells->prtStalls = &reg.counter(
        "rcoal_sm_prt_stall_cycles_total",
        "Cycles memory issue stalled on a full PRT");
    cells->icnStalls = &reg.counter(
        "rcoal_sm_icn_stall_cycles_total",
        "Cycles the LD/ST head stalled on interconnect backpressure");
    cells->prtFill = &reg.gauge(
        "rcoal_prt_occupancy",
        "Live pending-request-table entries, summed over SMs");
    reg.gauge("rcoal_prt_capacity",
              "Pending-request-table entries, summed over SMs")
        .set(static_cast<double>(cfg.prtEntries) *
             static_cast<double>(cfg.numSms));

    const telemetry::MetricRegistry::Labels l1_labels{{"level", "l1"}};
    const telemetry::MetricRegistry::Labels l2_labels{{"level", "l2"}};
    cells->l1Hits = &reg.counter("rcoal_cache_hits_total",
                                 "Cache lookups that hit", l1_labels);
    cells->l1Misses = &reg.counter("rcoal_cache_misses_total",
                                   "Cache lookups that missed", l1_labels);
    cells->l1SectorMisses = &reg.counter(
        "rcoal_cache_sector_misses_total",
        "Misses with the line resident but a sector invalid", l1_labels);
    cells->l1MshrMerges = &reg.counter(
        "rcoal_mshr_merges_total",
        "Misses merged into an in-flight MSHR entry", l1_labels);
    cells->l2Hits = &reg.counter("rcoal_cache_hits_total",
                                 "Cache lookups that hit", l2_labels);
    cells->l2Misses = &reg.counter("rcoal_cache_misses_total",
                                   "Cache lookups that missed", l2_labels);
    cells->l2SectorMisses = &reg.counter(
        "rcoal_cache_sector_misses_total",
        "Misses with the line resident but a sector invalid", l2_labels);
    cells->l2MshrMerges = &reg.counter(
        "rcoal_mshr_merges_total",
        "Misses merged into an in-flight MSHR entry", l2_labels);
    reg.gauge("rcoal_dram_backend_info",
              "Active DRAM backend personality (value is always 1)",
              telemetry::MetricRegistry::Labels{
                  {"backend", mem::dramBackendKindName(cfg.dramBackend)}})
        .set(1.0);

    const telemetry::MetricRegistry::Labels req_labels{{"xbar", "req"}};
    const telemetry::MetricRegistry::Labels resp_labels{
        {"xbar", "resp"}};
    cells->reqPackets = &reg.counter(
        "rcoal_xbar_packets_total",
        "Packets transferred through a crossbar", req_labels);
    cells->respPackets = &reg.counter(
        "rcoal_xbar_packets_total",
        "Packets transferred through a crossbar", resp_labels);
    cells->reqQueued = &reg.gauge(
        "rcoal_xbar_queued_packets",
        "Packets resident in a crossbar's port queues", req_labels);
    cells->respQueued = &reg.gauge(
        "rcoal_xbar_queued_packets",
        "Packets resident in a crossbar's port queues", resp_labels);

    cells->partitions.resize(cfg.numPartitions);
    for (unsigned p = 0; p < cfg.numPartitions; ++p) {
        const std::string part = strprintf("%u", p);
        const telemetry::MetricRegistry::Labels part_labels{
            {"partition", part}};
        MachineCells::Partition &pc = cells->partitions[p];
        pc.queueDepth = &reg.gauge(
            "rcoal_dram_queue_depth",
            "Unserviced requests queued at a DRAM partition",
            part_labels);
        pc.refreshes = &reg.counter(
            "rcoal_dram_refreshes_total",
            "All-bank refreshes issued by a DRAM partition",
            part_labels);
        if (p < checkers.size() && checkers[p] != nullptr) {
            pc.violations = &reg.counter(
                "rcoal_dram_protocol_violations_total",
                "DRAM protocol violations collected by the checker",
                part_labels);
        }
        pc.banks.resize(cfg.banksPerPartition);
        for (unsigned b = 0; b < cfg.banksPerPartition; ++b) {
            const telemetry::MetricRegistry::Labels bank_labels{
                {"partition", part}, {"bank", strprintf("%u", b)}};
            pc.banks[b] = {
                &reg.counter("rcoal_dram_row_hits_total",
                             "Row-buffer hits per DRAM bank",
                             bank_labels),
                &reg.counter("rcoal_dram_row_misses_total",
                             "Row-buffer misses per DRAM bank",
                             bank_labels),
                &reg.counter("rcoal_dram_activates_total",
                             "ACT commands per DRAM bank", bank_labels),
                &reg.counter("rcoal_dram_precharges_total",
                             "PRE commands per DRAM bank", bank_labels),
            };
        }
    }

    sampler->addCollector([this, cells](Cycle) {
        cells->simCycles->set(nowCycle);
        cells->kernelsLaunched->set(launchCounter);
        cells->kernelsRetired->set(retiredLaunches);
        cells->residentKernels->set(
            static_cast<double>(active.size()));
        cells->busySms->set(static_cast<double>(busySms()));
        const KernelStats totals = cumulativeStats();
        cells->warpInstructions->set(totals.warpInstructions);
        cells->memInstructions->set(totals.memInstructions);
        cells->coalescedAccesses->set(totals.coalescedAccesses);
        cells->prtStalls->set(totals.prtStallCycles);
        cells->icnStalls->set(totals.icnStallCycles);
        cells->l1Hits->set(totals.l1Hits);
        cells->l1Misses->set(totals.l1Misses);
        cells->l1SectorMisses->set(totals.l1SectorMisses);
        cells->l1MshrMerges->set(totals.mshrMerges);
        cells->l2Hits->set(totals.l2Hits);
        cells->l2Misses->set(totals.l2Misses);
        cells->l2SectorMisses->set(totals.l2SectorMisses);
        cells->l2MshrMerges->set(totals.l2MshrMerges);
        cells->prtFill->set(static_cast<double>(prtOccupancy()));
        cells->reqPackets->set(reqXbar.packetsTransferred());
        cells->respPackets->set(respXbar.packetsTransferred());
        cells->reqQueued->set(
            static_cast<double>(reqXbar.queuedPackets()));
        cells->respQueued->set(
            static_cast<double>(respXbar.queuedPackets()));
        for (unsigned p = 0; p < cfg.numPartitions; ++p) {
            MachineCells::Partition &pc = cells->partitions[p];
            pc.queueDepth->set(
                static_cast<double>(drams[p]->queuedRequests()));
            pc.refreshes->set(drams[p]->refreshes());
            if (pc.violations != nullptr) {
                pc.violations->set(
                    checkers[p]->violations().size());
            }
            const auto &bank_counters = drams[p]->bankCounters();
            for (unsigned b = 0; b < cfg.banksPerPartition; ++b) {
                pc.banks[b][0]->set(bank_counters[b].rowHits);
                pc.banks[b][1]->set(bank_counters[b].rowMisses);
                pc.banks[b][2]->set(bank_counters[b].activates);
                pc.banks[b][3]->set(bank_counters[b].precharges);
            }
        }
    });
}

bool
GpuMachine::rangeFree(SmRange range) const
{
    if (range.count == 0 || range.first + range.count > cfg.numSms)
        return false;
    for (unsigned s = range.first; s < range.first + range.count; ++s) {
        if (smBusy[s])
            return false;
    }
    return true;
}

unsigned
GpuMachine::busySms() const
{
    unsigned busy = 0;
    for (bool b : smBusy)
        busy += b ? 1 : 0;
    return busy;
}

KernelStats *
GpuMachine::statsForSlot(std::uint32_t slot)
{
    const auto it = active.find(slot);
    return it == active.end() ? nullptr : it->second.stats.get();
}

GpuMachine::LaunchId
GpuMachine::launchStream(const KernelSource &kernel, SmRange range,
                         std::uint64_t rng_stream_index)
{
    RCOAL_ASSERT(rangeFree(range),
                 "launch range [%u, %u) invalid or occupied", range.first,
                 range.first + range.count);
    ++launchCounter;
    const LaunchId id = launchCounter;
    RCOAL_ASSERT(id <= ~std::uint32_t{0}, "launch slot space exhausted");
    const auto slot = static_cast<std::uint32_t>(id);

    LaunchState &launch = active[slot];
    launch.id = id;
    launch.range = range;
    launch.stats = std::make_unique<KernelStats>();
    launch.startCycle = nowCycle;

    for (unsigned s = range.first; s < range.first + range.count; ++s) {
        smBusy[s] = true;
        sms[s]->beginLaunch(launch.stats.get(), slot,
                            &launch.pendingWrites);
    }

    // Per-launch randomness: partitions are drawn once per warp at
    // launch time and stay fixed for the launch (Section IV-D).
    // Counter-based derivation: stream index k of a machine seeded s
    // draws the same partitions regardless of any other RNG activity,
    // so identically configured machines replay identical launches.
    Rng launch_rng = Rng::stream(cfg.seed, rng_stream_index);
    const unsigned num_warps = kernel.numWarps();
    RCOAL_ASSERT(num_warps > 0, "kernel has no warps");
    RCOAL_ASSERT(num_warps <= range.count * cfg.maxWarpsPerSm,
                 "kernel needs %u warps, its %u-SM range fits %u",
                 num_warps, range.count, range.count * cfg.maxWarpsPerSm);
    for (WarpId w = 0; w < num_warps; ++w) {
        sms[range.first + (w % range.count)]->assignWarp(
            w, &kernel.trace(w), partitioner.draw(launch_rng));
    }

    RCOAL_TRACE(machineSink, KernelLaunch, nowCycle, id, range.first,
                range.count);

    // Degenerate kernels (all-empty traces) retire immediately, matching
    // the old single-kernel loop that checked for idleness up front.
    checkCompletion(launch);
    return id;
}

GpuMachine::LaunchId
GpuMachine::launch(const KernelSource &kernel, SmRange range)
{
    return launchStream(kernel, range, launchCounter + 1);
}

void
GpuMachine::checkCompletion(LaunchState &launch)
{
    if (launch.completed)
        return;
    if (launch.pendingWrites > 0)
        return;
    for (unsigned s = launch.range.first;
         s < launch.range.first + launch.range.count; ++s) {
        if (!sms[s]->done(nowCycle))
            return;
    }
    launch.completed = true;
    launch.endCycle = nowCycle;
    launch.stats->cycles = nowCycle - launch.startCycle;
    RCOAL_TRACE(machineSink, KernelRetire, nowCycle, launch.id,
                launch.stats->cycles, 0);
}

void
GpuMachine::tick()
{
    ++nowCycle;
    RCOAL_ASSERT(nowCycle < kMaxCycles, "simulator deadlock suspected");

    // 1. Cores issue and inject.
    for (auto &sm : sms)
        sm->tick(nowCycle);

    // 2. Interconnect moves packets (core clock domain).
    reqXbar.tick(nowCycle);
    respXbar.tick(nowCycle);

    // 3. Request-crossbar ejection into L2/DRAM. Iterating the ready
    // mask's set bits skips the (typically many) empty output ports.
    for (std::uint64_t ready = reqXbar.outputsReadyMask(); ready != 0;
         ready &= ready - 1) {
        const auto p = static_cast<unsigned>(std::countr_zero(ready));
        while (reqXbar.outputReady(p)) {
            // Peek is unnecessary: decide before popping via DRAM
            // capacity, since misses and writes go there.
            if (!drams[p]->canAccept())
                break;
            // A full L2 MSHR stalls ejection wholesale (the packet kind
            // is unknown before popping); entries free as fills return.
            if (cfg.l2Enabled && l2[p].mshr != nullptr &&
                !l2[p].mshr->canAllocate()) {
                break;
            }
            const std::uint32_t pkt = reqXbar.popOutputSlot(p);
            MemoryAccess &access = slab.at(pkt);
#if RCOAL_TRACE_ENABLED
            if (spanCollector != nullptr) {
                // Request-leg crossbar traversal closes here
                // (detail 0 = request leg, 1 = response leg).
                spanCollector->stampWarp(
                    spanNamespace, access.launchSlot, access.warpId,
                    spans::SpanStage::Crossbar,
                    static_cast<std::uint16_t>(p),
                    access.spanXbarInject, nowCycle, 0,
                    access.tag == AccessTag::LastRoundLookup);
            }
            // Armed here, resolved by the partition at its first
            // command issue for this access (see MemoryAccess).
            access.spanDramStart = kInvalidCycle;
#endif
            if (cfg.l2Enabled && !access.isWrite) {
                KernelStats *owner = statsForSlot(access.launchSlot);
                const mem::AccessOutcome outcome =
                    l2[p].cache->access(access.blockAddr, access.bytes);
                RCOAL_TRACE(machineSink, CacheAccess, nowCycle, 2,
                            static_cast<unsigned>(outcome), access.id);
                if (outcome == mem::AccessOutcome::Hit) {
                    if (owner != nullptr)
                        ++owner->l2Hits;
                    l2[p].pendingHits.emplace_back(
                        nowCycle + cfg.l2.hitLatency, pkt);
                    continue;
                }
                if (owner != nullptr) {
                    ++owner->l2Misses;
                    if (outcome == mem::AccessOutcome::SectorMiss)
                        ++owner->l2SectorMisses;
                }
                if (l2[p].mshr != nullptr) {
                    if (l2[p].mshr->isPending(access.blockAddr)) {
                        if (owner != nullptr)
                            ++owner->l2MshrMerges;
                        const Addr block = access.blockAddr;
                        l2[p].mshr->merge(block, slab.take(pkt));
                        continue;
                    }
                    // Allocate a copy (space was checked before
                    // popping); the slab record stays the courier
                    // travelling to DRAM while the waiting requests
                    // ride the MSHR entry until the fill returns.
                    l2[p].mshr->allocate(access.blockAddr, access);
                    const DramLocation loc =
                        mapping.decode(access.blockAddr);
                    drams[p]->enqueueSlot(pkt, loc, memCycle);
                    continue;
                }
            }
            drams[p]->enqueueSlot(
                pkt, mapping.decode(access.blockAddr), memCycle);
        }
    }

    // 4. Memory clock domain: tick DRAM whenever the memory clock
    // crosses a core-cycle boundary (a faster-than-core memory clock
    // ticks multiple times per core cycle).
    memAccum += cfg.memClockMhz;
    while (memAccum >= cfg.coreClockMhz) {
        memAccum -= cfg.coreClockMhz;
        ++memCycle;
        for (auto &dram : drams)
            dram->tick(memCycle);
    }

    // 5. DRAM completions and L2 hit responses feed the response
    // crossbar (or retire immediately for writes).
    for (unsigned p = 0; p < cfg.numPartitions; ++p) {
        while (drams[p]->hasCompleted(memCycle)) {
            const std::uint32_t pkt = drams[p]->popCompletedSlot(memCycle);
            MemoryAccess &access = slab.at(pkt);
#if RCOAL_TRACE_ENABLED
            if (spanCollector != nullptr) {
                // DRAM device-service interval (first command issued
                // for the access -> data available), MEMORY clock
                // domain. The L2-MSHR courier attributes to the
                // primary request's span before dissolving below.
                spanCollector->stampWarp(
                    spanNamespace, access.launchSlot, access.warpId,
                    spans::SpanStage::DramService,
                    static_cast<std::uint16_t>(p),
                    access.spanDramStart, memCycle, 0,
                    access.tag == AccessTag::LastRoundLookup);
            }
#endif
            if (cfg.l2Enabled && !access.isWrite) {
                l2[p].cache->fill(access.blockAddr, access.bytes);
                if (l2[p].mshr != nullptr &&
                    l2[p].mshr->isPending(access.blockAddr)) {
                    // The courier dissolves; the MSHR entry holds the
                    // real requests (primary first).
                    const Addr block = access.blockAddr;
                    slab.free(pkt);
                    for (MemoryAccess &waiting :
                         l2[p].mshr->complete(block)) {
                        respBacklog[p].push_back(
                            slab.allocate(std::move(waiting)));
                    }
                    continue;
                }
            }
            if (access.isWrite) {
                const auto it = active.find(access.launchSlot);
                if (it != active.end()) {
                    LaunchState &launch = it->second;
                    RCOAL_ASSERT(launch.pendingWrites > 0,
                                 "store retired twice for launch %llu",
                                 static_cast<unsigned long long>(
                                     launch.id));
                    --launch.pendingWrites;
                    TagStats &tag_stats =
                        launch.stats->tagStats(access.tag);
                    tag_stats.lastComplete =
                        std::max(tag_stats.lastComplete, nowCycle);
                }
                slab.free(pkt);
                continue;
            }
            respBacklog[p].push_back(pkt);
        }
        if (cfg.l2Enabled) {
            auto &pending = l2[p].pendingHits;
            while (!pending.empty() && pending.front().first <= nowCycle) {
                respBacklog[p].push_back(pending.front().second);
                pending.pop_front();
            }
        }
        while (!respBacklog[p].empty() && respXbar.canInject(p)) {
            const std::uint32_t pkt = respBacklog[p].front();
            respBacklog[p].pop_front();
            MemoryAccess &resp = slab.at(pkt);
#if RCOAL_TRACE_ENABLED
            resp.spanXbarInject = nowCycle; // Response leg starts.
#endif
            respXbar.injectSlot(p, resp.smId, pkt, nowCycle);
        }
    }

    // 6. Deliver responses to the SMs (ready-mask iteration as above).
    for (std::uint64_t ready = respXbar.outputsReadyMask(); ready != 0;
         ready &= ready - 1) {
        const auto s = static_cast<unsigned>(std::countr_zero(ready));
        while (respXbar.outputReady(s)) {
            const std::uint32_t pkt = respXbar.popOutputSlot(s);
#if RCOAL_TRACE_ENABLED
            if (spanCollector != nullptr) {
                const MemoryAccess &resp = slab.at(pkt);
                spanCollector->stampWarp(
                    spanNamespace, resp.launchSlot, resp.warpId,
                    spans::SpanStage::Crossbar,
                    static_cast<std::uint16_t>(s),
                    resp.spanXbarInject, nowCycle, 1,
                    resp.tag == AccessTag::LastRoundLookup);
            }
#endif
            sms[s]->deliverResponseSlot(pkt, nowCycle);
        }
    }

    // 7. Retire launches whose work has fully drained.
    for (auto &[slot, launch] : active)
        checkCompletion(launch);

    // 8. Telemetry sampling, post-tick so a sample sees this cycle's
    // final state. nextEventCycle() never exceeds the sampler bound, so
    // stepped and skipping execution both arrive here with nowCycle
    // exactly equal to the due sample cycle (sampleAt asserts it).
    if (telemetrySampler != nullptr &&
        nowCycle >= telemetrySampler->nextSampleCycle()) {
        telemetrySampler->sampleAt(nowCycle);
    }
}

Cycle
GpuMachine::nextEventCycle() const
{
    // A busy machine is pinned to now + 1 by its first active
    // component; bail out of the sweep as soon as the bound cannot
    // drop further, so the per-tick cost of consulting the bound stays
    // negligible on event-dense stretches.
    const Cycle pinned = nowCycle + 1;
    Cycle bound = kInvalidCycle;
    // The sampler bound comes first: folding it in here is what makes
    // every skip path sample-safe without those paths knowing telemetry
    // exists.
    if (telemetrySampler != nullptr)
        bound = telemetrySampler->nextSampleCycle();
    if (bound <= pinned)
        return bound;
    for (const auto &sm : sms) {
        bound = std::min(bound, sm->nextEventCycle(nowCycle));
        if (bound <= pinned)
            return bound;
    }
    bound = std::min(bound, reqXbar.nextEventCycle(nowCycle));
    if (bound <= pinned)
        return bound;
    bound = std::min(bound, respXbar.nextEventCycle(nowCycle));
    if (bound <= pinned)
        return bound;
    for (unsigned p = 0; p < cfg.numPartitions; ++p) {
        // Pending machine-level movement next tick: a request-crossbar
        // ejection the DRAM can take, or a backlogged response the
        // response crossbar can take.
        if (reqXbar.outputReady(p) && drams[p]->canAccept())
            return nowCycle + 1;
        if (!respBacklog[p].empty() && respXbar.canInject(p))
            return nowCycle + 1;
        if (cfg.l2Enabled && !l2[p].pendingHits.empty()) {
            bound = std::min(bound,
                             std::max(l2[p].pendingHits.front().first,
                                      nowCycle + 1));
        }
    }
    return bound;
}

namespace {

/**
 * Replay of tick()'s clock-domain arithmetic: advance core cycles from
 * (@p now, @p mem, @p accum) toward @p target, stopping before the
 * first core cycle whose memory-clock crossing reaches @p mem_target.
 * Pure; both skipTo() and its const skipStopCycle() preview use it so
 * the two can never disagree on where a skip stops.
 */
struct ClockDomainSkip
{
    Cycle now;
    Cycle mem;
    double accum;
};

ClockDomainSkip
replaySkip(const GpuConfig &cfg, Cycle target, Cycle mem_target,
           Cycle now, Cycle mem, double accum)
{
    ClockDomainSkip state{now, mem, accum};
    while (state.now + 1 < target) {
        double acc = state.accum + cfg.memClockMhz;
        Cycle mc = state.mem;
        while (acc >= cfg.coreClockMhz) {
            acc -= cfg.coreClockMhz;
            ++mc;
        }
        if (mc >= mem_target)
            break; // This core cycle must really tick the DRAMs.
        ++state.now;
        state.mem = mc;
        state.accum = acc;
    }
    return state;
}

} // namespace

Cycle
GpuMachine::skipStopCycle(Cycle target) const
{
    Cycle mem_target = kInvalidCycle;
    for (const auto &dram : drams)
        mem_target = std::min(mem_target, dram->nextEventCycle(memCycle));
    return replaySkip(cfg, target, mem_target, nowCycle, memCycle,
                      memAccum)
        .now;
}

Cycle
GpuMachine::skipTo(Cycle target)
{
    // The DRAMs run in the memory-clock domain: find the first memory
    // cycle at which any partition could change state, then advance
    // core cycles only while their memory-clock crossings stay below
    // it. The accumulator arithmetic replays tick()'s exact per-cycle
    // operation sequence (peek, then commit) so the clock-domain state
    // is bit-identical to stepping.
    Cycle mem_target = kInvalidCycle;
    for (const auto &dram : drams)
        mem_target = std::min(mem_target, dram->nextEventCycle(memCycle));

    const ClockDomainSkip state = replaySkip(
        cfg, target, mem_target, nowCycle, memCycle, memAccum);
    const Cycle new_now = state.now;
    const Cycle new_mem = state.mem;
    const double new_accum = state.accum;

    const Cycle skipped = new_now - nowCycle;
    if (skipped == 0)
        return 0;
    nowCycle = new_now;
    memCycle = new_mem;
    memAccum = new_accum;
    for (auto &sm : sms)
        sm->applySkippedCycles(skipped);
    reqXbar.advanceIdleCycles(skipped);
    respXbar.advanceIdleCycles(skipped);
    skippedTotal += skipped;
    return skipped;
}

bool
GpuMachine::anyCompletedUntaken() const
{
    for (const auto &[slot, launch] : active) {
        if (launch.completed)
            return true;
    }
    return false;
}

bool
GpuMachine::done(LaunchId id) const
{
    const auto it = active.find(static_cast<std::uint32_t>(id));
    RCOAL_ASSERT(it != active.end(), "unknown launch %llu",
                 static_cast<unsigned long long>(id));
    return it->second.completed;
}

Cycle
GpuMachine::finishCycle(LaunchId id) const
{
    const auto it = active.find(static_cast<std::uint32_t>(id));
    RCOAL_ASSERT(it != active.end(), "unknown launch %llu",
                 static_cast<unsigned long long>(id));
    RCOAL_ASSERT(it->second.completed,
                 "finishCycle for still-running launch %llu",
                 static_cast<unsigned long long>(id));
    return it->second.endCycle;
}

void
GpuMachine::runUntilDone(LaunchId id)
{
    while (!done(id)) {
        tick();
        if (!skipEnabled || done(id))
            continue;
        // A kInvalidCycle core bound means only DRAM-side events remain;
        // clamp to the deadlock cap so skipTo()'s mem-domain cutoff (or,
        // on true deadlock, the tick() assertion) still binds.
        const Cycle target = std::min(nextEventCycle(), kMaxCycles);
        if (target > nowCycle + 1)
            skipTo(target);
    }
}

KernelStats
GpuMachine::take(LaunchId id)
{
    const auto it = active.find(static_cast<std::uint32_t>(id));
    RCOAL_ASSERT(it != active.end(), "unknown launch %llu",
                 static_cast<unsigned long long>(id));
    LaunchState &launch = it->second;
    RCOAL_ASSERT(launch.completed, "launch %llu taken before completion",
                 static_cast<unsigned long long>(id));
    KernelStats stats = *launch.stats;
    retiredTotals.accumulate(stats);
    ++retiredLaunches;
    for (unsigned s = launch.range.first;
         s < launch.range.first + launch.range.count; ++s) {
        sms[s]->reset();
        smBusy[s] = false;
    }
    active.erase(it);
    return stats;
}

} // namespace rcoal::sim
