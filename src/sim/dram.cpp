/**
 * @file
 * DramPartition implementation.
 */

#include "rcoal/sim/dram.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"
#include "rcoal/trace/dram_checker.hpp"
#include "rcoal/trace/sink.hpp"

namespace rcoal::sim {

DramPartition::DramPartition(const GpuConfig &config, unsigned partition_id,
                             KernelStats *kernel_stats)
    : id(partition_id),
      bt(mem::makeDramBackend(config.dramBackend)->timing(config)),
      queueDepth(config.dramQueueDepth),
      stats(kernel_stats),
      banks(config.banksPerPartition),
      bankStats(config.banksPerPartition),
      refreshEnabled(config.refreshEnabled),
      nextRefreshAt(bt.base.tREFI)
{
    RCOAL_ASSERT(stats != nullptr, "DramPartition requires a stats sink");
    RCOAL_ASSERT(bt.bankGroups > 0 && bt.pseudoChannels > 0,
                 "backend must report positive bankGroups/pseudoChannels");
    RCOAL_ASSERT(config.banksPerPartition % bt.pseudoChannels == 0,
                 "banks (%u) must split evenly across pseudo-channels (%u)",
                 config.banksPerPartition, bt.pseudoChannels);
    banksPerPc = config.banksPerPartition / bt.pseudoChannels;
    busFreeAt.assign(bt.pseudoChannels, 0);
    nextColumnGroup.assign(bt.bankGroups, 0);
    nextActivateGroup.assign(bt.bankGroups, 0);
    nextColumnAnyPc.assign(bt.pseudoChannels, 0);
}

bool
DramPartition::refreshDue(Cycle now) const
{
    return refreshEnabled && now >= nextRefreshAt;
}

void
DramPartition::maybeRefresh(Cycle now)
{
    if (!refreshDue(now))
        return;
    if (!legacyTiming) {
        // A due refresh waits until the partition is quiescent: every
        // data bus drained and every open bank past tRAS (closing a row
        // earlier would violate it). The wait is bounded because a due
        // refresh also blocks new ACT and column commands.
        for (Cycle busy : busFreeAt) {
            if (now < busy)
                return;
        }
        for (const Bank &bank : banks) {
            if (bank.openRow != -1 && now < bank.prechargeAllowed)
                return;
        }
    }
    if (checker != nullptr)
        checker->onRefresh(now);
    RCOAL_TRACE(traceSink, DramRefresh, now, bt.base.tRFC, 0, 0);
    // All-bank refresh: precharge everything and lock the banks for
    // tRFC memory cycles.
    for (Bank &bank : banks) {
        bank.openRow = -1;
        raiseTo(bank.nextActivate, now + bt.base.tRFC);
        raiseTo(bank.nextRead, now + bt.base.tRFC);
    }
    nextRefreshAt += bt.base.tREFI;
    ++stats->dramRefreshes;
    ++refreshCount;
}

void
DramPartition::enqueue(MemoryAccess access, const DramLocation &loc,
                       Cycle now)
{
    RCOAL_ASSERT(canAccept(), "enqueue on full DRAM queue (partition %u)",
                 id);
    RCOAL_ASSERT(loc.partition == id,
                 "access for partition %u routed to partition %u",
                 loc.partition, id);
    Request req;
    req.access = std::move(access);
    req.loc = loc;
    req.arrival = now;
    queue.push_back(std::move(req));
}

bool
DramPartition::tryIssueColumn(Cycle now)
{
    // A due refresh owns the command slot: no new column commands until
    // it has fired (the pre-fix model kept issuing and the refresh then
    // tore down in-flight state).
    if (!legacyTiming && refreshDue(now))
        return false;
    // FR-FCFS: the oldest request whose row is open and whose bank/bus
    // constraints are satisfied wins.
    for (Request &req : queue) {
        if (req.completion != kInvalidCycle)
            continue;
        Bank &bank = banks[req.loc.bank];
        if (bank.openRow != static_cast<std::int64_t>(req.loc.row))
            continue;
        if (now < bank.nextRead)
            continue;
        const unsigned group = groupOf(req.loc.bank);
        const unsigned pc = pcOf(req.loc.bank);
        // Bank-group windows (zero unless the backend is group-aware).
        if (now < nextColumnGroup[group] || now < nextColumnAnyPc[pc])
            continue;
        // Reserve the pseudo-channel's data bus: the burst begins after
        // CAS latency, or when the bus frees up, whichever is later.
        const Cycle burst_start =
            std::max(now + bt.base.tCL, busFreeAt[pc]);
        busFreeAt[pc] = burst_start + bt.burstCycles;
        req.completion = burst_start + bt.burstCycles;
        if (checker != nullptr) {
            checker->onRead(req.loc.bank, req.loc.row, now, burst_start,
                            bt.burstCycles);
        }
        RCOAL_TRACE(traceSink, DramRead, now, req.loc.bank, req.loc.row,
                    burst_start);
        if (legacyTiming) {
            // Pre-fix: plain assignment, nothing keeps the row open until
            // the burst drains, and the bank-group windows go untracked.
            bank.nextRead = now + bt.base.tCCD;
        } else {
            raiseTo(bank.nextRead, now + bt.base.tCCD);
            // Read-to-precharge: the row must stay open (and refresh
            // must hold off) until the data burst has drained.
            raiseTo(bank.prechargeAllowed, burst_start + bt.burstCycles);
            if (bt.bankGroupAware) {
                raiseTo(nextColumnGroup[group], now + bt.tCCDLong);
                raiseTo(nextColumnAnyPc[pc], now + bt.base.tCCD);
            }
        }
        if (req.neededActivate) {
            ++stats->dramRowMisses;
            ++bankStats[req.loc.bank].rowMisses;
        } else {
            ++stats->dramRowHits;
            ++bankStats[req.loc.bank].rowHits;
        }
        return true;
    }
    return false;
}

bool
DramPartition::tryIssueActivate(Cycle now)
{
    if (now < nextActivateAny)
        return false;
    // A due refresh is about to close every row; opening a new one now
    // would immediately violate tRAS when it fires.
    if (!legacyTiming && refreshDue(now))
        return false;
    for (Request &req : queue) {
        if (req.completion != kInvalidCycle)
            continue;
        Bank &bank = banks[req.loc.bank];
        if (bank.openRow != -1)
            continue;
        if (now < bank.nextActivate)
            continue;
        const unsigned group = groupOf(req.loc.bank);
        // Long same-group ACT window (zero unless group-aware).
        if (now < nextActivateGroup[group])
            continue;
        if (checker != nullptr)
            checker->onActivate(req.loc.bank, req.loc.row, now);
        RCOAL_TRACE(traceSink, DramActivate, now, req.loc.bank, req.loc.row,
                    0);
        bank.openRow = static_cast<std::int64_t>(req.loc.row);
        if (legacyTiming) {
            // Pre-fix: only nextRead was monotone.
            bank.nextRead = std::max(bank.nextRead, now + bt.base.tRCD);
            bank.prechargeAllowed = now + bt.base.tRAS;
            bank.nextActivate = now + bt.base.tRC;
            nextActivateAny = now + bt.base.tRRD;
        } else {
            raiseTo(bank.nextRead, now + bt.base.tRCD);
            raiseTo(bank.prechargeAllowed, now + bt.base.tRAS);
            raiseTo(bank.nextActivate, now + bt.base.tRC);
            raiseTo(nextActivateAny, now + bt.base.tRRD);
            if (bt.bankGroupAware)
                raiseTo(nextActivateGroup[group], now + bt.tRRDLong);
        }
        ++stats->dramActivates;
        ++bankStats[req.loc.bank].activates;
        // Row-hit accounting: only the request this ACT was issued for
        // counts as a miss; younger same-row requests will read from
        // the now-open row and count as hits.
        req.neededActivate = true;
        return true;
    }
    return false;
}

bool
DramPartition::tryIssuePrecharge(Cycle now)
{
    // One pass to find which banks still have pending work for their
    // open row (keeps the precharge scan linear in the queue length).
    std::uint64_t open_row_wanted = 0; // bit per bank
    for (const Request &req : queue) {
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow == static_cast<std::int64_t>(req.loc.row))
            open_row_wanted |= std::uint64_t{1} << req.loc.bank;
    }
    for (Request &req : queue) {
        if (req.completion != kInvalidCycle)
            continue;
        Bank &bank = banks[req.loc.bank];
        if (bank.openRow == -1 ||
            bank.openRow == static_cast<std::int64_t>(req.loc.row)) {
            continue;
        }
        if (now < bank.prechargeAllowed)
            continue;
        // Keep the row open while older work still wants it (FR-FCFS
        // services those first anyway).
        if (open_row_wanted & (std::uint64_t{1} << req.loc.bank))
            continue;
        if (checker != nullptr) {
            checker->onPrecharge(req.loc.bank,
                                 static_cast<std::uint64_t>(bank.openRow),
                                 now);
        }
        RCOAL_TRACE(traceSink, DramPrecharge, now, req.loc.bank,
                    bank.openRow, 0);
        bank.openRow = -1;
        raiseTo(bank.nextActivate, now + bt.base.tRP);
        ++stats->dramPrecharges;
        ++bankStats[req.loc.bank].precharges;
        return true;
    }
    return false;
}

void
DramPartition::tick(Cycle now)
{
    // Retire serviced requests whose burst finished.
    for (auto it = queue.begin(); it != queue.end();) {
        if (it->completion != kInvalidCycle && it->completion <= now) {
            completed.push_back(std::move(*it));
            it = queue.erase(it);
        } else {
            ++it;
        }
    }

    maybeRefresh(now);

    // One command of each class per cycle approximates the command bus.
    tryIssueColumn(now);
    tryIssueActivate(now);
    tryIssuePrecharge(now);
}

Cycle
DramPartition::nextEventCycle(Cycle now) const
{
    if (queue.empty() && completed.empty() && !refreshEnabled)
        return kInvalidCycle;
    if (legacyTiming)
        return now + 1; // Test seam: no skipping guarantees.

    Cycle bound = kInvalidCycle;
    const auto consider = [&](Cycle candidate) {
        bound = std::min(bound, std::max(candidate, now + 1));
    };

    if (refreshEnabled) {
        if (refreshDue(now)) {
            // A pending refresh fires once every data bus drains and
            // every open bank clears tRAS; both horizons are frozen
            // until then because a due refresh also blocks column/ACT
            // issue.
            Cycle fire = 0;
            for (Cycle busy : busFreeAt)
                fire = std::max(fire, busy);
            for (const Bank &bank : banks) {
                if (bank.openRow != -1)
                    fire = std::max(fire, bank.prechargeAllowed);
            }
            consider(fire);
        } else {
            // Becoming due is itself a state change: it starts blocking
            // column/ACT issue and may fire the refresh.
            consider(nextRefreshAt);
        }
    }

    // The machine drains `completed` on every one of its ticks, so a
    // non-empty backlog means externally visible state next cycle.
    if (!completed.empty())
        consider(now + 1);

    const bool commands_blocked = refreshDue(now);
    std::uint64_t open_row_wanted = 0; // Same mask tryIssuePrecharge uses.
    for (const Request &req : queue) {
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow == static_cast<std::int64_t>(req.loc.row))
            open_row_wanted |= std::uint64_t{1} << req.loc.bank;
    }
    for (const Request &req : queue) {
        if (req.completion != kInvalidCycle) {
            consider(req.completion); // Burst retirement.
            continue;
        }
        const Bank &bank = banks[req.loc.bank];
        const unsigned group = groupOf(req.loc.bank);
        if (bank.openRow == static_cast<std::int64_t>(req.loc.row)) {
            if (!commands_blocked) {
                consider(std::max({bank.nextRead, nextColumnGroup[group],
                                   nextColumnAnyPc[pcOf(req.loc.bank)]}));
            }
        } else if (bank.openRow == -1) {
            if (!commands_blocked) {
                consider(std::max({bank.nextActivate, nextActivateAny,
                                   nextActivateGroup[group]}));
            }
        } else if (!(open_row_wanted &
                     (std::uint64_t{1} << req.loc.bank))) {
            // Conflicting open row nobody still wants: a precharge (not
            // blocked by a due refresh) is this request's next step.
            // When the row IS still wanted, the wanting requests' column
            // candidates above bound the state change instead.
            consider(bank.prechargeAllowed);
        }
    }
    return bound;
}

bool
DramPartition::hasCompleted(Cycle now) const
{
    for (const Request &req : completed) {
        if (req.completion <= now)
            return true;
    }
    return false;
}

MemoryAccess
DramPartition::popCompleted(Cycle now)
{
    for (auto it = completed.begin(); it != completed.end(); ++it) {
        if (it->completion <= now) {
            MemoryAccess access = std::move(it->access);
            completed.erase(it);
            return access;
        }
    }
    panic("popCompleted with nothing completed (partition %u)", id);
}

void
DramPartition::reset()
{
    RCOAL_ASSERT(idle(), "DRAM reset with requests in flight");
    banks.assign(banks.size(), Bank{});
    for (BankCounters &c : bankStats)
        c = BankCounters{};
    refreshCount = 0;
    busFreeAt.assign(bt.pseudoChannels, 0);
    nextActivateAny = 0;
    nextColumnGroup.assign(bt.bankGroups, 0);
    nextActivateGroup.assign(bt.bankGroups, 0);
    nextColumnAnyPc.assign(bt.pseudoChannels, 0);
    nextRefreshAt = bt.base.tREFI;
}

void
DramPartition::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(idle(), "DRAM snapshot with requests in flight");
    w.pod(static_cast<std::uint64_t>(banks.size()));
    for (const Bank &bank : banks) {
        w.pod(bank.openRow);
        w.pod(bank.nextRead);
        w.pod(bank.nextActivate);
        w.pod(bank.prechargeAllowed);
    }
    for (const BankCounters &c : bankStats) {
        w.pod(c.rowHits);
        w.pod(c.rowMisses);
        w.pod(c.activates);
        w.pod(c.precharges);
    }
    w.pod(refreshCount);
    w.podVector(busFreeAt);
    w.pod(nextActivateAny);
    w.podVector(nextColumnGroup);
    w.podVector(nextActivateGroup);
    w.podVector(nextColumnAnyPc);
    w.pod(nextRefreshAt);
}

void
DramPartition::restoreState(common::ArenaReader &r)
{
    RCOAL_ASSERT(idle(), "DRAM restore with requests in flight");
    const auto count = r.take<std::uint64_t>();
    RCOAL_ASSERT(count == banks.size(),
                 "DRAM bank-count mismatch: snapshot has %llu, "
                 "partition has %zu",
                 static_cast<unsigned long long>(count), banks.size());
    for (Bank &bank : banks) {
        r.pod(bank.openRow);
        r.pod(bank.nextRead);
        r.pod(bank.nextActivate);
        r.pod(bank.prechargeAllowed);
    }
    for (BankCounters &c : bankStats) {
        r.pod(c.rowHits);
        r.pod(c.rowMisses);
        r.pod(c.activates);
        r.pod(c.precharges);
    }
    r.pod(refreshCount);
    r.podVector(busFreeAt);
    r.pod(nextActivateAny);
    r.podVector(nextColumnGroup);
    r.podVector(nextActivateGroup);
    r.podVector(nextColumnAnyPc);
    r.pod(nextRefreshAt);
    RCOAL_ASSERT(busFreeAt.size() == bt.pseudoChannels &&
                     nextColumnGroup.size() == bt.bankGroups,
                 "DRAM backend structure mismatch on restore");
}

} // namespace rcoal::sim
