/**
 * @file
 * DramPartition implementation.
 */

#include "rcoal/sim/dram.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"
#include "rcoal/trace/dram_checker.hpp"
#include "rcoal/trace/sink.hpp"

namespace rcoal::sim {

DramPartition::DramPartition(const GpuConfig &config, unsigned partition_id,
                             KernelStats *kernel_stats,
                             AccessSlab *shared_slab)
    : id(partition_id),
      bt(mem::makeDramBackend(config.dramBackend)->timing(config)),
      queueDepth(config.dramQueueDepth),
      stats(kernel_stats),
      slab(shared_slab),
      queue(config.dramQueueDepth),
      banks(config.banksPerPartition),
      bankStats(config.banksPerPartition),
      refreshEnabled(config.refreshEnabled),
      nextRefreshAt(bt.base.tREFI)
{
    if (slab == nullptr) {
        ownSlab = std::make_unique<AccessSlab>(2 * queueDepth);
        slab = ownSlab.get();
    }
    RCOAL_ASSERT(stats != nullptr, "DramPartition requires a stats sink");
    RCOAL_ASSERT(bt.bankGroups > 0 && bt.pseudoChannels > 0,
                 "backend must report positive bankGroups/pseudoChannels");
    RCOAL_ASSERT(config.banksPerPartition % bt.pseudoChannels == 0,
                 "banks (%u) must split evenly across pseudo-channels (%u)",
                 config.banksPerPartition, bt.pseudoChannels);
    banksPerPc = config.banksPerPartition / bt.pseudoChannels;
    busFreeAt.assign(bt.pseudoChannels, 0);
    nextColumnGroup.assign(bt.bankGroups, 0);
    nextActivateGroup.assign(bt.bankGroups, 0);
    nextColumnAnyPc.assign(bt.pseudoChannels, 0);
}

bool
DramPartition::refreshDue(Cycle now) const
{
    return refreshEnabled && now >= nextRefreshAt;
}

bool
DramPartition::maybeRefresh(Cycle now)
{
    if (!refreshDue(now))
        return false;
    if (!legacyTiming) {
        // A due refresh waits until the partition is quiescent: every
        // data bus drained and every open bank past tRAS (closing a row
        // earlier would violate it). The wait is bounded because a due
        // refresh also blocks new ACT and column commands.
        for (Cycle busy : busFreeAt) {
            if (now < busy)
                return false;
        }
        for (const Bank &bank : banks) {
            if (bank.openRow != -1 && now < bank.prechargeAllowed)
                return false;
        }
    }
    if (checker != nullptr)
        checker->onRefresh(now);
    RCOAL_TRACE(traceSink, DramRefresh, now, bt.base.tRFC, 0, 0);
    // All-bank refresh: precharge everything and lock the banks for
    // tRFC memory cycles.
    for (Bank &bank : banks) {
        bank.openRow = -1;
        raiseTo(bank.nextActivate, now + bt.base.tRFC);
        raiseTo(bank.nextRead, now + bt.base.tRFC);
    }
    nextRefreshAt += bt.base.tREFI;
    ++stats->dramRefreshes;
    ++refreshCount;
    return true;
}

void
DramPartition::enqueue(MemoryAccess access, const DramLocation &loc,
                       Cycle now)
{
    enqueueSlot(slab->allocate(std::move(access)), loc, now);
}

void
DramPartition::enqueueSlot(std::uint32_t slot, const DramLocation &loc,
                           Cycle now)
{
    RCOAL_ASSERT(canAccept(), "enqueue on full DRAM queue (partition %u)",
                 id);
    RCOAL_ASSERT(loc.partition == id,
                 "access for partition %u routed to partition %u",
                 loc.partition, id);
    Request req;
    req.slot = slot;
    req.loc = loc;
    req.arrival = now;
    queue.push_back(req);
    sleepUntil = 0; // New work: the no-op-tick proof no longer holds.
}

#if RCOAL_TRACE_ENABLED
namespace {

/**
 * Span bookkeeping: the DramService stage begins at the FIRST command
 * the controller issues on the access's behalf (precharge, activate,
 * or column) — queue wait ahead of that is cross-request contention,
 * not device service.
 */
void
markServiceStart(AccessSlab &slab, std::uint32_t slot, Cycle now)
{
    MemoryAccess &access = slab.at(slot);
    if (access.spanDramStart == kInvalidCycle)
        access.spanDramStart = now;
}

} // namespace
#endif

void
DramPartition::issueColumnAt(Request &req, Cycle now)
{
#if RCOAL_TRACE_ENABLED
    markServiceStart(*slab, req.slot, now);
#endif
    Bank &bank = banks[req.loc.bank];
    const unsigned group = groupOf(req.loc.bank);
    const unsigned pc = pcOf(req.loc.bank);
    // Reserve the pseudo-channel's data bus: the burst begins after
    // CAS latency, or when the bus frees up, whichever is later.
    const Cycle burst_start = std::max(now + bt.base.tCL, busFreeAt[pc]);
    busFreeAt[pc] = burst_start + bt.burstCycles;
    req.completion = burst_start + bt.burstCycles;
    earliestCompletion = std::min(earliestCompletion, req.completion);
    if (checker != nullptr) {
        checker->onRead(req.loc.bank, req.loc.row, now, burst_start,
                        bt.burstCycles);
    }
    RCOAL_TRACE(traceSink, DramRead, now, req.loc.bank, req.loc.row,
                burst_start);
    if (legacyTiming) {
        // Pre-fix: plain assignment, nothing keeps the row open until
        // the burst drains, and the bank-group windows go untracked.
        bank.nextRead = now + bt.base.tCCD;
    } else {
        raiseTo(bank.nextRead, now + bt.base.tCCD);
        // Read-to-precharge: the row must stay open (and refresh
        // must hold off) until the data burst has drained.
        raiseTo(bank.prechargeAllowed, burst_start + bt.burstCycles);
        if (bt.bankGroupAware) {
            raiseTo(nextColumnGroup[group], now + bt.tCCDLong);
            raiseTo(nextColumnAnyPc[pc], now + bt.base.tCCD);
        }
    }
    if (req.neededActivate) {
        ++stats->dramRowMisses;
        ++bankStats[req.loc.bank].rowMisses;
    } else {
        ++stats->dramRowHits;
        ++bankStats[req.loc.bank].rowHits;
    }
}

bool
DramPartition::tryIssueColumn(Cycle now)
{
    // A due refresh owns the command slot: no new column commands until
    // it has fired (the pre-fix model kept issuing and the refresh then
    // tore down in-flight state).
    if (!legacyTiming && refreshDue(now))
        return false;
    // FR-FCFS: the oldest request whose row is open and whose bank/bus
    // constraints are satisfied wins.
    for (std::size_t i = 0; i < queue.size(); ++i) {
        Request &req = queue[i];
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow != static_cast<std::int64_t>(req.loc.row))
            continue;
        if (now < bank.nextRead)
            continue;
        // Bank-group windows (zero unless the backend is group-aware).
        if (now < nextColumnGroup[groupOf(req.loc.bank)] ||
            now < nextColumnAnyPc[pcOf(req.loc.bank)]) {
            continue;
        }
        issueColumnAt(req, now);
        return true;
    }
    return false;
}

void
DramPartition::issueActivateAt(Request &req, Cycle now)
{
#if RCOAL_TRACE_ENABLED
    markServiceStart(*slab, req.slot, now);
#endif
    Bank &bank = banks[req.loc.bank];
    const unsigned group = groupOf(req.loc.bank);
    if (checker != nullptr)
        checker->onActivate(req.loc.bank, req.loc.row, now);
    RCOAL_TRACE(traceSink, DramActivate, now, req.loc.bank, req.loc.row,
                0);
    bank.openRow = static_cast<std::int64_t>(req.loc.row);
    if (legacyTiming) {
        // Pre-fix: only nextRead was monotone.
        bank.nextRead = std::max(bank.nextRead, now + bt.base.tRCD);
        bank.prechargeAllowed = now + bt.base.tRAS;
        bank.nextActivate = now + bt.base.tRC;
        nextActivateAny = now + bt.base.tRRD;
    } else {
        raiseTo(bank.nextRead, now + bt.base.tRCD);
        raiseTo(bank.prechargeAllowed, now + bt.base.tRAS);
        raiseTo(bank.nextActivate, now + bt.base.tRC);
        raiseTo(nextActivateAny, now + bt.base.tRRD);
        if (bt.bankGroupAware)
            raiseTo(nextActivateGroup[group], now + bt.tRRDLong);
    }
    ++stats->dramActivates;
    ++bankStats[req.loc.bank].activates;
    // Row-hit accounting: only the request this ACT was issued for
    // counts as a miss; younger same-row requests will read from
    // the now-open row and count as hits.
    req.neededActivate = true;
}

void
DramPartition::issuePrechargeAt(Request &req, Cycle now)
{
#if RCOAL_TRACE_ENABLED
    markServiceStart(*slab, req.slot, now);
#endif
    Bank &bank = banks[req.loc.bank];
    if (checker != nullptr) {
        checker->onPrecharge(req.loc.bank,
                             static_cast<std::uint64_t>(bank.openRow),
                             now);
    }
    RCOAL_TRACE(traceSink, DramPrecharge, now, req.loc.bank,
                bank.openRow, 0);
    bank.openRow = -1;
    raiseTo(bank.nextActivate, now + bt.base.tRP);
    ++stats->dramPrecharges;
    ++bankStats[req.loc.bank].precharges;
}

bool
DramPartition::tryIssueActivate(Cycle now)
{
    if (now < nextActivateAny)
        return false;
    // A due refresh is about to close every row; opening a new one now
    // would immediately violate tRAS when it fires.
    if (!legacyTiming && refreshDue(now))
        return false;
    for (std::size_t i = 0; i < queue.size(); ++i) {
        Request &req = queue[i];
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow != -1)
            continue;
        if (now < bank.nextActivate)
            continue;
        // Long same-group ACT window (zero unless group-aware).
        if (now < nextActivateGroup[groupOf(req.loc.bank)])
            continue;
        issueActivateAt(req, now);
        return true;
    }
    return false;
}

bool
DramPartition::tryIssuePrecharge(Cycle now)
{
    // One pass to find which banks still have pending work for their
    // open row (keeps the precharge scan linear in the queue length).
    std::uint64_t open_row_wanted = 0; // bit per bank
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow == static_cast<std::int64_t>(req.loc.row))
            open_row_wanted |= std::uint64_t{1} << req.loc.bank;
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
        Request &req = queue[i];
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow == -1 ||
            bank.openRow == static_cast<std::int64_t>(req.loc.row)) {
            continue;
        }
        if (now < bank.prechargeAllowed)
            continue;
        // Keep the row open while older work still wants it (FR-FCFS
        // services those first anyway).
        if (open_row_wanted & (std::uint64_t{1} << req.loc.bank))
            continue;
        issuePrechargeAt(req, now);
        return true;
    }
    return false;
}

bool
DramPartition::issueCommands(Cycle now)
{
    // Fused FR-FCFS pass (non-legacy only): one walk in age order picks
    // the same column and ACT winners as the per-class scans — proofs
    // that the fusion is exact:
    //   - The ACT winner is independent of the column issue: a column
    //     issue changes no field the ACT scan reads (openRow,
    //     nextActivate, the ACT windows), and the column winner itself
    //     can never be an ACT candidate (its bank has an open row).
    //   - No unserviced request older than a class's winner can target
    //     the winner's bank: it would pass the identical per-bank
    //     timing checks and have won instead.
    // The precharge step still needs the post-issue view (mask and
    // timing), reconstructed below without re-walking for it twice.
    const bool blocked = refreshDue(now); // Holds column + ACT, not PRE.
    const bool act_window_open = now >= nextActivateAny;
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t col_idx = npos;
    std::size_t act_idx = npos;
    std::size_t pre_first = npos; // First pre-issue precharge potential.
    unsigned col_bank = 0;
    unsigned act_bank = 0;
    unsigned col_bank_peers = 0; // Younger requests sharing the column
                                 // winner's (bank, open row).
    std::uint64_t open_row_wanted = 0; // Pre-issue, bit per bank.

    const std::size_t n = queue.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Request &req = queue[i];
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow == static_cast<std::int64_t>(req.loc.row)) {
            open_row_wanted |= std::uint64_t{1} << req.loc.bank;
            if (col_idx != npos) {
                col_bank_peers +=
                    static_cast<unsigned>(req.loc.bank == col_bank);
            } else if (!blocked && now >= bank.nextRead &&
                       now >= nextColumnGroup[groupOf(req.loc.bank)] &&
                       now >= nextColumnAnyPc[pcOf(req.loc.bank)]) {
                col_idx = i;
                col_bank = req.loc.bank;
            }
        } else if (bank.openRow == -1) {
            if (act_idx == npos && !blocked && act_window_open &&
                now >= bank.nextActivate &&
                now >= nextActivateGroup[groupOf(req.loc.bank)]) {
                act_idx = i;
                act_bank = req.loc.bank;
            }
        } else if (pre_first == npos && now >= bank.prechargeAllowed) {
            // Conflicting open row, timing already met pre-issue.
            pre_first = i;
        }
    }

    bool issued = false;
    if (col_idx != npos) {
        issueColumnAt(queue[col_idx], now);
        issued = true;
    }
    if (act_idx != npos) {
        issueActivateAt(queue[act_idx], now);
        issued = true;
    }

    if (pre_first != npos) {
        // Post-issue wanted mask, patched instead of re-walked: the
        // column winner left its bank's bit iff a younger request still
        // wants the row; the ACT'd bank's bit is always set (the ACT
        // winner itself now matches the row it just opened).
        std::uint64_t wanted = open_row_wanted;
        if (col_idx != npos && col_bank_peers == 0)
            wanted &= ~(std::uint64_t{1} << col_bank);
        if (act_idx != npos)
            wanted |= std::uint64_t{1} << act_bank;
        // No entry before pre_first can become a candidate post-issue:
        // the only bank whose row state changed is the ACT'd one, and
        // its fresh tRAS window blocks precharge this cycle (as does
        // the column winner's read-to-precharge raise, both checked
        // against live state below).
        for (std::size_t i = pre_first; i < n; ++i) {
            Request &req = queue[i];
            if (req.completion != kInvalidCycle)
                continue;
            const Bank &bank = banks[req.loc.bank];
            if (bank.openRow == -1 ||
                bank.openRow == static_cast<std::int64_t>(req.loc.row)) {
                continue;
            }
            if (now < bank.prechargeAllowed)
                continue;
            if (wanted & (std::uint64_t{1} << req.loc.bank))
                continue;
            issuePrechargeAt(req, now);
            issued = true;
            break;
        }
    }
    return issued;
}

void
DramPartition::tick(Cycle now)
{
    // Memo fast path: a previous no-op tick proved that nothing this
    // function does (retire, refresh, command issue) can happen before
    // sleepUntil, so the FR-FCFS queue scans can be skipped outright.
    // The memo is invalidated whenever new work arrives (enqueueSlot)
    // or the observable surface changes (restore, checker/sink attach).
    if (now < sleepUntil)
        return;

    bool worked = false;

    // Retire serviced requests whose burst finished. earliestCompletion
    // is exact (the min completion among serviced queued requests), so
    // the gate both skips the walk on no-retire ticks and guarantees at
    // least one retirement when taken.
    if (earliestCompletion <= now) {
        Cycle next_retire = kInvalidCycle;
        for (std::size_t i = 0; i < queue.size();) {
            if (queue[i].completion != kInvalidCycle) {
                if (queue[i].completion <= now) {
                    completed.push_back(queue[i]);
                    queue.removeAt(i);
                    continue;
                }
                next_retire = std::min(next_retire, queue[i].completion);
            }
            ++i;
        }
        earliestCompletion = next_retire;
        worked = true;
    }

    const bool refreshed = maybeRefresh(now);
    worked |= refreshed;

    if (legacyTiming) {
        // The legacy seam keeps the historical per-class scans (and
        // issues through a due refresh); no memo, no fusion.
        tryIssueColumn(now);
        tryIssueActivate(now);
        tryIssuePrecharge(now);
        return;
    }

    // One command of each class per cycle approximates the command bus.
    // A refresh that just fired closed every bank and pushed all their
    // deadlines past now, so no command can legally issue this cycle.
    if (!refreshed)
        worked |= issueCommands(now);

    // A tick that did nothing proves every tick before workBound() is a
    // no-op too: every action above is gated on a deadline that only
    // tick() itself advances.
    if (!worked)
        sleepUntil = workBound(now);
}

Cycle
DramPartition::nextEventCycle(Cycle now) const
{
    if (queue.empty() && completed.empty() && !refreshEnabled)
        return kInvalidCycle;
    if (legacyTiming)
        return now + 1; // Test seam: no skipping guarantees.

    Cycle bound = workBound(now);
    // The machine drains `completed` on every one of its ticks, so a
    // non-empty backlog means externally visible state next cycle. This
    // term is deliberately absent from workBound(): draining is the
    // machine's work, not tick()'s, so it must not shorten the memo.
    if (!completed.empty())
        bound = std::min(bound, now + 1);
    return bound;
}

Cycle
DramPartition::workBound(Cycle now) const
{
    Cycle bound = kInvalidCycle;
    const auto consider = [&](Cycle candidate) {
        bound = std::min(bound, std::max(candidate, now + 1));
    };

    if (refreshEnabled) {
        if (refreshDue(now)) {
            // A pending refresh fires once every data bus drains and
            // every open bank clears tRAS; both horizons are frozen
            // until then because a due refresh also blocks column/ACT
            // issue.
            Cycle fire = 0;
            for (Cycle busy : busFreeAt)
                fire = std::max(fire, busy);
            for (const Bank &bank : banks) {
                if (bank.openRow != -1)
                    fire = std::max(fire, bank.prechargeAllowed);
            }
            consider(fire);
        } else {
            // Becoming due is itself a state change: it starts blocking
            // column/ACT issue and may fire the refresh.
            consider(nextRefreshAt);
        }
    }

    const bool commands_blocked = refreshDue(now);
    std::uint64_t open_row_wanted = 0; // Same mask tryIssuePrecharge uses.
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        if (req.completion != kInvalidCycle)
            continue;
        const Bank &bank = banks[req.loc.bank];
        if (bank.openRow == static_cast<std::int64_t>(req.loc.row))
            open_row_wanted |= std::uint64_t{1} << req.loc.bank;
    }
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Request &req = queue[i];
        if (req.completion != kInvalidCycle) {
            consider(req.completion); // Burst retirement.
            continue;
        }
        const Bank &bank = banks[req.loc.bank];
        const unsigned group = groupOf(req.loc.bank);
        if (bank.openRow == static_cast<std::int64_t>(req.loc.row)) {
            if (!commands_blocked) {
                consider(std::max({bank.nextRead, nextColumnGroup[group],
                                   nextColumnAnyPc[pcOf(req.loc.bank)]}));
            }
        } else if (bank.openRow == -1) {
            if (!commands_blocked) {
                consider(std::max({bank.nextActivate, nextActivateAny,
                                   nextActivateGroup[group]}));
            }
        } else if (!(open_row_wanted &
                     (std::uint64_t{1} << req.loc.bank))) {
            // Conflicting open row nobody still wants: a precharge (not
            // blocked by a due refresh) is this request's next step.
            // When the row IS still wanted, the wanting requests' column
            // candidates above bound the state change instead.
            consider(bank.prechargeAllowed);
        }
    }
    return bound;
}

bool
DramPartition::hasCompleted(Cycle now) const
{
    for (const Request &req : completed) {
        if (req.completion <= now)
            return true;
    }
    return false;
}

MemoryAccess
DramPartition::popCompleted(Cycle now)
{
    return slab->take(popCompletedSlot(now));
}

std::uint32_t
DramPartition::popCompletedSlot(Cycle now)
{
    for (auto it = completed.begin(); it != completed.end(); ++it) {
        if (it->completion <= now) {
            const std::uint32_t slot = it->slot;
            completed.erase(it);
            return slot;
        }
    }
    panic("popCompleted with nothing completed (partition %u)", id);
}

void
DramPartition::reset()
{
    RCOAL_ASSERT(idle(), "DRAM reset with requests in flight");
    banks.assign(banks.size(), Bank{});
    for (BankCounters &c : bankStats)
        c = BankCounters{};
    refreshCount = 0;
    busFreeAt.assign(bt.pseudoChannels, 0);
    nextActivateAny = 0;
    nextColumnGroup.assign(bt.bankGroups, 0);
    nextActivateGroup.assign(bt.bankGroups, 0);
    nextColumnAnyPc.assign(bt.pseudoChannels, 0);
    nextRefreshAt = bt.base.tREFI;
    sleepUntil = 0;
    earliestCompletion = kInvalidCycle;
}

void
DramPartition::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(idle(), "DRAM snapshot with requests in flight");
    w.pod(static_cast<std::uint64_t>(banks.size()));
    for (const Bank &bank : banks) {
        w.pod(bank.openRow);
        w.pod(bank.nextRead);
        w.pod(bank.nextActivate);
        w.pod(bank.prechargeAllowed);
    }
    for (const BankCounters &c : bankStats) {
        w.pod(c.rowHits);
        w.pod(c.rowMisses);
        w.pod(c.activates);
        w.pod(c.precharges);
    }
    w.pod(refreshCount);
    w.podVector(busFreeAt);
    w.pod(nextActivateAny);
    w.podVector(nextColumnGroup);
    w.podVector(nextActivateGroup);
    w.podVector(nextColumnAnyPc);
    w.pod(nextRefreshAt);
}

void
DramPartition::restoreState(common::ArenaReader &r)
{
    RCOAL_ASSERT(idle(), "DRAM restore with requests in flight");
    const auto count = r.take<std::uint64_t>();
    RCOAL_ASSERT(count == banks.size(),
                 "DRAM bank-count mismatch: snapshot has %llu, "
                 "partition has %zu",
                 static_cast<unsigned long long>(count), banks.size());
    for (Bank &bank : banks) {
        r.pod(bank.openRow);
        r.pod(bank.nextRead);
        r.pod(bank.nextActivate);
        r.pod(bank.prechargeAllowed);
    }
    for (BankCounters &c : bankStats) {
        r.pod(c.rowHits);
        r.pod(c.rowMisses);
        r.pod(c.activates);
        r.pod(c.precharges);
    }
    r.pod(refreshCount);
    r.podVector(busFreeAt);
    r.pod(nextActivateAny);
    r.podVector(nextColumnGroup);
    r.podVector(nextActivateGroup);
    r.podVector(nextColumnAnyPc);
    r.pod(nextRefreshAt);
    sleepUntil = 0; // Derived memo; never part of a snapshot.
    earliestCompletion = kInvalidCycle; // Idle: nothing serviced.
    RCOAL_ASSERT(busFreeAt.size() == bt.pseudoChannels &&
                     nextColumnGroup.size() == bt.bankGroups,
                 "DRAM backend structure mismatch on restore");
}

} // namespace rcoal::sim
