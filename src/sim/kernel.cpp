/**
 * @file
 * Kernel trace helpers.
 */

#include "rcoal/sim/kernel.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::sim {

WarpInstruction
WarpInstruction::alu(unsigned alu_latency, bool wait_all_loads)
{
    WarpInstruction instr;
    instr.op = Op::Alu;
    instr.latency = alu_latency;
    instr.waitAllLoads = wait_all_loads;
    return instr;
}

WarpInstruction
WarpInstruction::load(std::vector<core::LaneRequest> lane_requests,
                      AccessTag tag)
{
    WarpInstruction instr;
    instr.op = Op::Load;
    instr.tag = tag;
    instr.lanes = std::move(lane_requests);
    return instr;
}

WarpInstruction
WarpInstruction::store(std::vector<core::LaneRequest> lane_requests,
                       AccessTag tag)
{
    WarpInstruction instr;
    instr.op = Op::Store;
    instr.tag = tag;
    instr.lanes = std::move(lane_requests);
    return instr;
}

VectorKernel::VectorKernel(
    std::vector<std::vector<WarpInstruction>> warp_traces,
    std::string kernel_name)
    : traces(std::move(warp_traces)), kernelName(std::move(kernel_name))
{
    RCOAL_ASSERT(!traces.empty(), "kernel needs at least one warp");
}

unsigned
VectorKernel::numWarps() const
{
    return static_cast<unsigned>(traces.size());
}

const std::vector<WarpInstruction> &
VectorKernel::trace(WarpId warp) const
{
    RCOAL_ASSERT(warp < traces.size(), "warp %u out of range", warp);
    return traces[warp];
}

} // namespace rcoal::sim
