/**
 * @file
 * Cache and MSHR implementation.
 */

#include "rcoal/sim/cache.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"

namespace rcoal::sim {

Cache::Cache(const CacheGeometry &geometry) : geom(geometry)
{
    RCOAL_ASSERT(geom.lineBytes > 0 && geom.ways > 0,
                 "cache geometry must be positive");
    const std::size_t lines = geom.sizeBytes / geom.lineBytes;
    RCOAL_ASSERT(lines >= geom.ways,
                 "cache too small for its associativity");
    numSets = lines / geom.ways;
    sets.resize(numSets);
}

bool
Cache::access(Addr addr)
{
    const std::uint64_t line = lineOf(addr);
    Set &set = sets[setOf(line)];
    const auto it = std::find(set.lines.begin(), set.lines.end(), line);
    if (it != set.lines.end()) {
        set.lines.splice(set.lines.begin(), set.lines, it);
        ++hitCount;
        return true;
    }
    ++missCount;
    return false;
}

void
Cache::fill(Addr addr)
{
    const std::uint64_t line = lineOf(addr);
    Set &set = sets[setOf(line)];
    const auto it = std::find(set.lines.begin(), set.lines.end(), line);
    if (it != set.lines.end()) {
        set.lines.splice(set.lines.begin(), set.lines, it);
        return;
    }
    if (set.lines.size() >= geom.ways)
        set.lines.pop_back();
    set.lines.push_front(line);
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t line = lineOf(addr);
    const Set &set = sets[setOf(line)];
    return std::find(set.lines.begin(), set.lines.end(), line) !=
           set.lines.end();
}

void
Cache::clear()
{
    for (Set &set : sets)
        set.lines.clear();
}

MshrTable::MshrTable(std::size_t entries) : capacity(entries)
{
    RCOAL_ASSERT(entries > 0, "MSHR table needs at least one entry");
}

bool
MshrTable::isPending(Addr block_addr) const
{
    return table.contains(block_addr);
}

bool
MshrTable::canAllocate() const
{
    return table.size() < capacity;
}

void
MshrTable::allocate(Addr block_addr, MemoryAccess access)
{
    RCOAL_ASSERT(!isPending(block_addr),
                 "MSHR double-allocate for block %llx",
                 static_cast<unsigned long long>(block_addr));
    RCOAL_ASSERT(canAllocate(), "MSHR table full");
    table[block_addr].push_back(std::move(access));
}

std::size_t
MshrTable::merge(Addr block_addr, MemoryAccess access)
{
    auto it = table.find(block_addr);
    RCOAL_ASSERT(it != table.end(), "MSHR merge without pending entry");
    it->second.push_back(std::move(access));
    ++mergeCount;
    return it->second.size();
}

std::vector<MemoryAccess>
MshrTable::complete(Addr block_addr)
{
    auto it = table.find(block_addr);
    RCOAL_ASSERT(it != table.end(), "MSHR complete without pending entry");
    std::vector<MemoryAccess> waiting = std::move(it->second);
    table.erase(it);
    return waiting;
}

} // namespace rcoal::sim
