/**
 * @file
 * SimtStack implementation.
 */

#include "rcoal/sim/simt_stack.hpp"

#include "rcoal/common/logging.hpp"

namespace rcoal::sim {

LaneMask
fullMask(unsigned lanes)
{
    RCOAL_ASSERT(lanes >= 1 && lanes <= 64,
                 "lane masks support 1..64 lanes, got %u", lanes);
    if (lanes == 64)
        return ~LaneMask{0};
    return (LaneMask{1} << lanes) - 1;
}

SimtStack::SimtStack(unsigned warp_size) : warpSize(warp_size)
{
    entries.push_back({fullMask(warp_size), kNoReconvergence, 0, 0});
}

LaneMask
SimtStack::activeMask() const
{
    return entries.back().mask;
}

std::uint64_t
SimtStack::reconvergencePc() const
{
    return entries.back().reconvPc;
}

bool
SimtStack::isActive(ThreadId lane) const
{
    RCOAL_ASSERT(lane < warpSize, "lane %u out of range", lane);
    return (activeMask() >> lane) & 1;
}

std::uint64_t
SimtStack::diverge(LaneMask taken_mask, std::uint64_t taken_pc,
                   std::uint64_t fallthrough_pc, std::uint64_t reconv_pc)
{
    const LaneMask active = activeMask();
    RCOAL_ASSERT((taken_mask & ~active) == 0,
                 "taken mask includes inactive lanes");
    const LaneMask fallthrough = active & ~taken_mask;
    if (taken_mask == 0)
        return fallthrough_pc; // uniformly not taken
    if (fallthrough == 0)
        return taken_pc; // uniformly taken
    // Execute the taken side first; the fall-through side is deferred
    // until the taken side reaches the reconvergence point.
    entries.push_back({taken_mask, reconv_pc, fallthrough,
                       fallthrough_pc});
    return taken_pc;
}

std::uint64_t
SimtStack::reconverge(std::uint64_t pc)
{
    while (entries.size() > 1 && entries.back().reconvPc == pc) {
        Entry &top = entries.back();
        if (top.pendingMask != 0) {
            // Switch to the deferred side; it still pops at the same
            // reconvergence point.
            top.mask = top.pendingMask;
            top.pendingMask = 0;
            const std::uint64_t resume = top.pendingPc;
            top.pendingPc = 0;
            return resume;
        }
        entries.pop_back();
    }
    return pc;
}

void
SimtStack::exitLanes(LaneMask lanes)
{
    for (Entry &entry : entries) {
        entry.mask &= ~lanes;
        entry.pendingMask &= ~lanes;
    }
    // Drop entries whose both sides died.
    while (entries.size() > 1 && entries.back().mask == 0 &&
           entries.back().pendingMask == 0) {
        entries.pop_back();
    }
}

} // namespace rcoal::sim
