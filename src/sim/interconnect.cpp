/**
 * @file
 * Crossbar implementation.
 */

#include "rcoal/sim/interconnect.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"
#include "rcoal/trace/sink.hpp"

namespace rcoal::sim {

Crossbar::Crossbar(unsigned num_inputs, unsigned num_outputs,
                   unsigned traversal_latency, std::size_t queue_depth)
    : numInputs(num_inputs),
      numOutputs(num_outputs),
      latency(traversal_latency),
      queueDepth(queue_depth),
      inputQueues(num_inputs),
      outputQueues(num_outputs)
{
    RCOAL_ASSERT(num_inputs > 0 && num_outputs > 0 && queue_depth > 0,
                 "crossbar needs ports and queue space");
    RCOAL_ASSERT(num_outputs <= 64, "at most 64 output ports supported");
}

bool
Crossbar::canInject(unsigned input) const
{
    RCOAL_ASSERT(input < numInputs, "input port %u out of range", input);
    return inputQueues[input].size() < queueDepth;
}

void
Crossbar::inject(unsigned input, unsigned output, MemoryAccess access,
                 Cycle now)
{
    RCOAL_ASSERT(canInject(input), "inject on full input port %u", input);
    RCOAL_ASSERT(output < numOutputs, "output port %u out of range",
                 output);
    RCOAL_TRACE(traceSink, XbarInject, now, input, output, access.id);
    inputQueues[input].push_back(
        {std::move(access), output, now + latency});
}

void
Crossbar::tick(Cycle now)
{
    // Input-major arbitration: scan inputs once in rotating priority
    // order and grant each output to at most one input per cycle
    // (O(inputs) instead of O(inputs x outputs); the rotating start
    // keeps arbitration fair).
    std::uint64_t granted_mask = 0;
    RCOAL_ASSERT(numOutputs <= 64, "grant mask limited to 64 outputs");
    unsigned moved = 0;
    for (unsigned k = 0; k < numInputs && moved < numOutputs; ++k) {
        const unsigned in = (rrPointer + k) % numInputs;
        auto &q = inputQueues[in];
        if (q.empty())
            continue;
        Packet &head = q.front();
        if (head.readyAt > now)
            continue;
        const unsigned out = head.dest;
        if (granted_mask & (std::uint64_t{1} << out))
            continue;
        if (outputQueues[out].size() >= queueDepth)
            continue;
        granted_mask |= std::uint64_t{1} << out;
        RCOAL_TRACE(traceSink, XbarGrant, now, in, out, head.access.id);
        outputQueues[out].push_back(std::move(head.access));
        q.pop_front();
        ++transferred;
        ++moved;
    }
    rrPointer = (rrPointer + 1) % numInputs;
}

Cycle
Crossbar::nextEventCycle(Cycle now) const
{
    Cycle bound = kInvalidCycle;
    for (const auto &q : inputQueues) {
        if (q.empty())
            continue;
        const Packet &head = q.front();
        if (outputQueues[head.dest].size() >= queueDepth)
            continue; // Backpressured; unblocking needs an ejection.
        const Cycle candidate = std::max(head.readyAt, now + 1);
        if (candidate <= now + 1)
            return candidate; // Pinned; no lower bound possible.
        bound = std::min(bound, candidate);
    }
    return bound;
}

void
Crossbar::advanceIdleCycles(Cycle cycles)
{
    rrPointer = static_cast<unsigned>(
        (rrPointer + cycles % numInputs) % numInputs);
}

bool
Crossbar::outputReady(unsigned output) const
{
    RCOAL_ASSERT(output < numOutputs, "output port %u out of range",
                 output);
    return !outputQueues[output].empty();
}

MemoryAccess
Crossbar::popOutput(unsigned output)
{
    RCOAL_ASSERT(outputReady(output), "popOutput on empty port %u",
                 output);
    MemoryAccess access = std::move(outputQueues[output].front());
    outputQueues[output].pop_front();
    return access;
}

std::size_t
Crossbar::queuedPackets() const
{
    std::size_t queued = 0;
    for (const auto &q : inputQueues)
        queued += q.size();
    for (const auto &q : outputQueues)
        queued += q.size();
    return queued;
}

bool
Crossbar::idle() const
{
    for (const auto &q : inputQueues) {
        if (!q.empty())
            return false;
    }
    for (const auto &q : outputQueues) {
        if (!q.empty())
            return false;
    }
    return true;
}

void
Crossbar::reset()
{
    RCOAL_ASSERT(idle(), "crossbar reset with packets in flight");
    rrPointer = 0;
    transferred = 0;
}

void
Crossbar::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(idle(), "crossbar snapshot with packets in flight");
    w.pod(rrPointer);
    w.pod(transferred);
}

void
Crossbar::restoreState(common::ArenaReader &r)
{
    RCOAL_ASSERT(idle(), "crossbar restore with packets in flight");
    r.pod(rrPointer);
    r.pod(transferred);
}

} // namespace rcoal::sim
