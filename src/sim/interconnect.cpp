/**
 * @file
 * Crossbar implementation.
 */

#include "rcoal/sim/interconnect.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#include "rcoal/common/logging.hpp"
#include "rcoal/trace/sink.hpp"

namespace rcoal::sim {

Crossbar::Crossbar(unsigned num_inputs, unsigned num_outputs,
                   unsigned traversal_latency, std::size_t queue_depth,
                   AccessSlab *shared_slab)
    : numInputs(num_inputs),
      numOutputs(num_outputs),
      latency(traversal_latency),
      queueDepth(queue_depth),
      slab(shared_slab),
      headTargets(num_outputs, 0)
{
    RCOAL_ASSERT(num_inputs > 0 && num_outputs > 0 && queue_depth > 0,
                 "crossbar needs ports and queue space");
    RCOAL_ASSERT(num_inputs <= 64 && num_outputs <= 64,
                 "at most 64 ports per side supported");
    if (slab == nullptr) {
        ownSlab = std::make_unique<AccessSlab>(
            num_inputs * queue_depth + num_outputs * queue_depth);
        slab = ownSlab.get();
    }
    inputQueues.resize(num_inputs);
    for (auto &q : inputQueues)
        q.reset(queue_depth);
    outputQueues.resize(num_outputs);
    for (auto &q : outputQueues)
        q.reset(queue_depth);
}

bool
Crossbar::canInject(unsigned input) const
{
    RCOAL_ASSERT(input < numInputs, "input port %u out of range", input);
    return !inputQueues[input].full();
}

void
Crossbar::refreshHead(unsigned in, unsigned freed_output)
{
    // Each input's bit lives in exactly one mask — its head's target —
    // so clearing the freed output's mask alone keeps the invariant
    // without sweeping every output.
    const std::uint64_t bit = std::uint64_t{1} << in;
    headTargets[freed_output] &= ~bit;
    if (headTargets[freed_output] == 0)
        headsNonEmpty &= ~(std::uint64_t{1} << freed_output);
    if (!inputQueues[in].empty()) {
        const unsigned dest = inputQueues[in].front().dest;
        headTargets[dest] |= bit;
        headsNonEmpty |= std::uint64_t{1} << dest;
    }
}

void
Crossbar::inject(unsigned input, unsigned output, MemoryAccess access,
                 Cycle now)
{
    injectSlot(input, output, slab->allocate(std::move(access)), now);
}

void
Crossbar::injectSlot(unsigned input, unsigned output, std::uint32_t slot,
                     Cycle now)
{
    RCOAL_ASSERT(canInject(input), "inject on full input port %u", input);
    RCOAL_ASSERT(output < numOutputs, "output port %u out of range",
                 output);
    RCOAL_TRACE(traceSink, XbarInject, now, input, output,
                slab->at(slot).id);
    inputQueues[input].push_back(Packet{slot, output, now + latency});
    ++resident;
    if (inputQueues[input].size() == 1) {
        headTargets[output] |= std::uint64_t{1} << input;
        headsNonEmpty |= std::uint64_t{1} << output;
    }
    // The new packet matures at now + latency; nothing it enables can
    // happen sooner, so clamping (rather than clearing) the memo keeps
    // saturated-injection phases from losing the no-grant fast path.
    sleepUntil = std::min(sleepUntil, now + latency);
}

void
Crossbar::tick(Cycle now)
{
    // Memo fast path: a previous grantless tick proved no grant can
    // happen before sleepUntil, so skip the arbitration scan. Only the
    // rotating pointer advances — exactly what a grantless full tick
    // would have done (with zero grantable heads the grant outcome is
    // rrPointer-independent), so the skip is byte-identical.
    if (now < sleepUntil) {
        if (++rrPointer == numInputs)
            rrPointer = 0;
        return;
    }

    // Output-major arbitration from the pre-tick head masks. Each input
    // contributes exactly its queue head, and a head targets exactly one
    // output, so the per-output candidate sets partition the non-empty
    // inputs: the winner for an output with queue space is the first
    // input in rotation order whose ready head targets it — the same
    // grants the historical input-major single-pass scan produced, found
    // by find-first-set over the masks instead of walking every port.
    // Grants are collected before any is applied so a popped input's
    // next packet cannot be considered in the same cycle.
    // Deliberately uninitialized: entries [0, grants) are written before
    // they are read, and zero-filling 128 bytes every core cycle showed
    // up in profiles.
    std::array<std::uint8_t, 64> grant_in;
    std::array<std::uint8_t, 64> grant_out;
    unsigned grants = 0;
    const std::uint64_t ge_rr = ~std::uint64_t{0} << rrPointer;
    for (std::uint64_t heads = headsNonEmpty; heads != 0;
         heads &= heads - 1) {
        const auto out = static_cast<unsigned>(std::countr_zero(heads));
        const std::uint64_t candidates = headTargets[out];
        if (outputQueues[out].full())
            continue;
        int winner = -1;
        for (std::uint64_t m : {candidates & ge_rr, candidates & ~ge_rr}) {
            while (m != 0) {
                const auto in = static_cast<unsigned>(std::countr_zero(m));
                if (inputQueues[in].front().readyAt <= now) {
                    winner = static_cast<int>(in);
                    break;
                }
                m &= m - 1;
            }
            if (winner >= 0)
                break;
        }
        if (winner < 0)
            continue;
        grant_in[grants] = static_cast<std::uint8_t>(winner);
        grant_out[grants] = static_cast<std::uint8_t>(out);
        ++grants;
    }
    for (unsigned g = 0; g < grants; ++g) {
        const unsigned in = grant_in[g];
        const unsigned out = grant_out[g];
        const std::uint32_t slot = inputQueues[in].front().slot;
        RCOAL_TRACE(traceSink, XbarGrant, now, in, out, slab->at(slot).id);
        outputQueues[out].push_back(slot);
        outputsNonEmpty |= std::uint64_t{1} << out;
        inputQueues[in].pop_front();
        refreshHead(in, out);
        ++transferred;
    }
    if (grants == 0) {
        // Every blocked head stays blocked until its readyAt matures or
        // an ejection clears backpressure (which resets the memo), so
        // the grantless verdict holds until nextEventCycle().
        sleepUntil = nextEventCycle(now);
    }
    // rrPointer stays < numInputs, so the rotation is a compare, not a
    // division — this runs every core cycle for every crossbar.
    if (++rrPointer == numInputs)
        rrPointer = 0;
}

Cycle
Crossbar::nextEventCycle(Cycle now) const
{
    Cycle bound = kInvalidCycle;
    for (std::uint64_t heads = headsNonEmpty; heads != 0;
         heads &= heads - 1) {
        const auto out = static_cast<unsigned>(std::countr_zero(heads));
        if (outputQueues[out].full())
            continue; // Backpressured; unblocking needs an ejection.
        std::uint64_t m = headTargets[out];
        while (m != 0) {
            const auto in = static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            const Cycle candidate =
                std::max(inputQueues[in].front().readyAt, now + 1);
            if (candidate <= now + 1)
                return candidate; // Pinned; no lower bound possible.
            bound = std::min(bound, candidate);
        }
    }
    return bound;
}

void
Crossbar::advanceIdleCycles(Cycle cycles)
{
    rrPointer = static_cast<unsigned>(
        (rrPointer + cycles % numInputs) % numInputs);
}

bool
Crossbar::outputReady(unsigned output) const
{
    RCOAL_ASSERT(output < numOutputs, "output port %u out of range",
                 output);
    return !outputQueues[output].empty();
}

MemoryAccess
Crossbar::popOutput(unsigned output)
{
    return slab->take(popOutputSlot(output));
}

std::uint32_t
Crossbar::popOutputSlot(unsigned output)
{
    RCOAL_ASSERT(outputReady(output), "popOutput on empty port %u",
                 output);
    const std::uint32_t slot = outputQueues[output].front();
    outputQueues[output].pop_front();
    if (outputQueues[output].empty())
        outputsNonEmpty &= ~(std::uint64_t{1} << output);
    RCOAL_ASSERT(resident > 0, "resident-packet counter underflow");
    --resident;
    sleepUntil = 0; // Ejection may unblock a backpressured head.
    return slot;
}

std::size_t
Crossbar::queuedPackets() const
{
#ifndef NDEBUG
    std::size_t queued = 0;
    for (const auto &q : inputQueues)
        queued += q.size();
    for (const auto &q : outputQueues)
        queued += q.size();
    assert(queued == resident && "resident-packet counter drifted");
#endif
    return resident;
}

bool
Crossbar::idle() const
{
    return queuedPackets() == 0;
}

void
Crossbar::reset()
{
    RCOAL_ASSERT(idle(), "crossbar reset with packets in flight");
    rrPointer = 0;
    transferred = 0;
    sleepUntil = 0;
    outputsNonEmpty = 0; // Idle: every output queue is empty.
    headsNonEmpty = 0;   // Idle: no input has a head.
}

void
Crossbar::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(idle(), "crossbar snapshot with packets in flight");
    w.pod(rrPointer);
    w.pod(transferred);
}

void
Crossbar::restoreState(common::ArenaReader &r)
{
    RCOAL_ASSERT(idle(), "crossbar restore with packets in flight");
    r.pod(rrPointer);
    r.pod(transferred);
    sleepUntil = 0;      // Derived memo; never part of a snapshot.
    outputsNonEmpty = 0; // Idle: every output queue is empty.
    headsNonEmpty = 0;   // Idle: no input has a head.
}

} // namespace rcoal::sim
