#include "rcoal/spans/span.hpp"

namespace rcoal::spans {

const char *
spanStageName(SpanStage stage)
{
    switch (stage) {
      case SpanStage::Route:
        return "route";
      case SpanStage::Queue:
        return "queue";
      case SpanStage::BatchSeal:
        return "batch_seal";
      case SpanStage::KernelExec:
        return "kernel_exec";
      case SpanStage::Coalesce:
        return "coalesce";
      case SpanStage::PrtResidency:
        return "prt_residency";
      case SpanStage::Crossbar:
        return "crossbar";
      case SpanStage::DramService:
        return "dram_service";
      case SpanStage::Response:
        return "response";
    }
    return "unknown";
}

} // namespace rcoal::spans
