/**
 * @file
 * SpanSlab: fixed-capacity, allocation-free ring of SpanRecords.
 *
 * Same overwrite-oldest discipline as trace::TraceSink and the same
 * slab idiom as sim::AccessSlab: capacity is fixed at construction,
 * append never allocates, and when full the oldest retained record is
 * overwritten and counted in dropped(). snapshot() returns records in
 * chronological append order regardless of wrap, so two runs that
 * appended the same sequence produce byte-identical snapshots.
 */

#ifndef RCOAL_SPANS_SPAN_SLAB_HPP
#define RCOAL_SPANS_SPAN_SLAB_HPP

#include <cstddef>
#include <vector>

#include "rcoal/spans/span.hpp"

namespace rcoal::common {
class ArenaReader;
class ArenaWriter;
} // namespace rcoal::common

namespace rcoal::spans {

class SpanSlab
{
  public:
    explicit SpanSlab(std::size_t capacity);

    /** Append one record, overwriting the oldest when full. */
    void append(const SpanRecord &record);

    /** Records currently retained (<= capacity). */
    std::size_t size() const;

    std::size_t capacity() const { return ring.size(); }

    /** Records ever appended, including overwritten ones. */
    std::uint64_t totalAppended() const { return appended; }

    /**
     * Records lost to overwrite-oldest. An explicit counter (not
     * derived from totalAppended - size) so clear() provably resets
     * it — the TraceSink drop-accounting audit in this PR exists
     * because the derived form hides reset bugs.
     */
    std::uint64_t dropped() const { return overwritten; }

    /** Retained records, oldest first. */
    std::vector<SpanRecord> snapshot() const;

    /** Forget everything; capacity is retained. */
    void clear();

    void saveState(common::ArenaWriter &w) const;
    void restoreState(common::ArenaReader &r);

  private:
    std::vector<SpanRecord> ring;
    std::size_t next = 0;        ///< Ring index of the next write.
    std::uint64_t appended = 0;  ///< Lifetime append count.
    std::uint64_t overwritten = 0; ///< Lifetime overwrite-drop count.
};

} // namespace rcoal::spans

#endif // RCOAL_SPANS_SPAN_SLAB_HPP
