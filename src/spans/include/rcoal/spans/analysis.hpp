/**
 * @file
 * Span analyses: the critical-path reducer and the Perfetto exporter.
 *
 * CriticalPathReducer folds finished spans' StageTotals into
 * `rcoal_span_stage_cycles{stage=...}` histograms plus running
 * per-stage totals and a per-request dominant-stage tally — "which
 * stage was this request's critical path". DRAM service runs on the
 * memory clock; the reducer scales it by the configured core-per-mem
 * ratio so the breakdown compares like with like.
 *
 * writeSpanTrace renders a collector's slab as Chrome/Perfetto track
 * events: one track per span (tid = span id), nested "X" complete
 * events per stamped stage, via the shared trace::ChromeTraceWriter.
 */

#ifndef RCOAL_SPANS_ANALYSIS_HPP
#define RCOAL_SPANS_ANALYSIS_HPP

#include <array>
#include <cstdint>
#include <string>

#include "rcoal/spans/span.hpp"
#include "rcoal/telemetry/registry.hpp"

namespace rcoal::spans {

class SpanCollector;

class CriticalPathReducer
{
  public:
    /**
     * Registers one `rcoal_span_stage_cycles` histogram per stage in
     * @p registry (labelled stage=<name> plus @p labels).
     * @param core_per_mem core cycles per memory cycle, used to bring
     *        DramService totals into the core-clock domain.
     */
    CriticalPathReducer(telemetry::MetricRegistry &registry,
                        double core_per_mem = 1.0,
                        const telemetry::MetricRegistry::Labels &labels = {});

    /** Fold one finished span. */
    void observe(const StageTotals &totals);

    std::uint64_t requests() const { return observedRequests; }

    /** Core-clock-normalized cycles accumulated per stage. */
    const std::array<std::uint64_t, kNumSpanStages> &stageCycles() const
    {
        return totalsByStage;
    }

    /** Requests whose largest stage was <stage>. */
    const std::array<std::uint64_t, kNumSpanStages> &criticalCounts() const
    {
        return criticalByStage;
    }

    /** Stage with the largest accumulated total (Route when empty). */
    SpanStage dominantStage() const;

  private:
    double corePerMem;
    std::uint64_t observedRequests = 0;
    std::array<std::uint64_t, kNumSpanStages> totalsByStage{};
    std::array<std::uint64_t, kNumSpanStages> criticalByStage{};
    std::array<telemetry::LogHistogram *, kNumSpanStages> histograms{};
};

/**
 * Write the collector's retained span records as a Chrome/Perfetto
 * trace (one track per span id, nested complete events per stage).
 * DramService timestamps are scaled by @p core_per_mem into the core
 * clock so stages nest correctly. fatal()s when the file cannot be
 * written.
 */
void writeSpanTrace(const std::string &path, const SpanCollector &collector,
                    double core_per_mem);

} // namespace rcoal::spans

#endif // RCOAL_SPANS_ANALYSIS_HPP
