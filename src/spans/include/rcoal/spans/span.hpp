/**
 * @file
 * Span vocabulary: the stage enum and the packed per-stamp record.
 *
 * A *span* is one served request's causal timeline, identified by a
 * 32-bit span id assigned at admission (router or serve queue) and
 * carried through to the response. Each instrumented stage boundary
 * appends one SpanRecord to the collector's slab; the per-request
 * stage totals accumulated alongside are what the critical-path
 * reducer and the leakage-attribution auditor consume.
 *
 * Stage semantics (and clock domains) are chosen so that every stage's
 * duration is meaningful to correlate against the request's predicted
 * baseline coalescing count:
 *
 *  - Route:        fleet router decision (arrival -> routed cycle).
 *  - Queue:        admission queue residency (arrival -> batch launch).
 *  - BatchSeal:    zero-width marker when the batcher seals the batch.
 *  - KernelExec:   kernel residency (launch -> finish); the lastRound
 *                  contribution is the kernel's measured last-round
 *                  time, the attacker-visible signal.
 *  - Coalesce:     one record per memory instruction; duration is the
 *                  coalesced access count (its LD/ST serialization
 *                  cost), the quantity RCoal randomizes.
 *  - PrtResidency: per coalesced access, PRT entry hold time
 *                  (issue -> response finalize), core clock.
 *  - Crossbar:     per network traversal, inject -> output pop, both
 *                  request and response legs, core clock.
 *  - DramService:  per DRAM transaction, device service: first
 *                  controller command issued for the access
 *                  (precharge/activate/column) -> data available,
 *                  MEMORY clock (scale by core/mem ratio when mixing
 *                  with core-clock stages for display; Pearson
 *                  correlation is scale-invariant so attribution
 *                  needs no conversion). FR-FCFS queue wait is
 *                  excluded on purpose: it is cross-request
 *                  contention, already visible upstream in
 *                  PrtResidency, and it drowns the count-proportional
 *                  service signal this stage exists to expose.
 *  - Response:     zero-width marker when the scheduler retires the
 *                  request.
 */

#ifndef RCOAL_SPANS_SPAN_HPP
#define RCOAL_SPANS_SPAN_HPP

#include <array>
#include <cstdint>
#include <type_traits>

#include "rcoal/common/types.hpp"

namespace rcoal::spans {

/** Instrumented stage boundaries, in pipeline order. */
enum class SpanStage : std::uint8_t
{
    Route = 0,
    Queue,
    BatchSeal,
    KernelExec,
    Coalesce,
    PrtResidency,
    Crossbar,
    DramService,
    Response,
};

inline constexpr std::size_t kNumSpanStages = 9;

/** Stable lowercase stage name for labels / JSON / traces. */
const char *spanStageName(SpanStage stage);

/**
 * One stamped stage interval. Packed to 32 bytes with explicit tail
 * padding so podVector serialization and byte-equality comparisons
 * see no indeterminate bytes.
 */
struct SpanRecord
{
    Cycle begin = 0;          ///< Stage entry cycle (stage's clock domain).
    Cycle end = 0;            ///< Stage exit cycle.
    std::uint32_t spanId = 0; ///< Owning request's span id.
    std::uint32_t detail = 0; ///< Stage-specific payload (counts, ids).
    std::uint16_t component = 0; ///< SM / partition / replica index.
    std::uint8_t stage = 0;      ///< SpanStage, stored raw.
    std::uint8_t lastRound = 0;  ///< 1 when attributable to the last round.
    std::uint32_t reserved = 0;  ///< Explicit padding; always 0.
};

static_assert(std::is_trivially_copyable_v<SpanRecord>);
static_assert(sizeof(SpanRecord) == 32, "SpanRecord must stay padding-free");

/**
 * Per-request cycle totals accumulated while the span is live and
 * returned when it finishes. `lastRoundCycles` is the slice of each
 * stage attributable to the AES last round — the per-stage Y series
 * the leakage-attribution auditor correlates against the predicted
 * baseline access count.
 */
struct StageTotals
{
    std::array<std::uint64_t, kNumSpanStages> cycles{};
    std::array<std::uint64_t, kNumSpanStages> lastRoundCycles{};
};

static_assert(std::is_trivially_copyable_v<StageTotals>);

} // namespace rcoal::spans

#endif // RCOAL_SPANS_SPAN_HPP
