/**
 * @file
 * SpanCollector: per-request span lifecycle + stamp routing.
 *
 * One collector serves a whole deployment: the serve frontend (or the
 * fleet router) opens a span per admitted request, the scheduler
 * registers each kernel launch's warp->span ownership map under a
 * (namespace, launch slot) key, and the simulator's stamp points
 * resolve their (smId, launchSlot, warpId) coordinates back to the
 * owning span without any per-access bookkeeping of their own. The
 * namespace is the replica index in fleet runs (each replica's
 * GpuMachine assigns launch slots independently) and 0 for solo serve.
 *
 * Determinism: span ids are assigned by a plain counter in admission
 * order, live spans are kept in a std::map (ordered serialization),
 * and all stamps happen at simulation-determined cycles — so the slab
 * contents are byte-identical across cycle skipping on/off,
 * RCOAL_THREADS, and fork-vs-replay collection, and the whole
 * collector state round-trips through StateArena with the machine
 * snapshot.
 *
 * Sampling: `Config::sampleRate = N` retains spans with
 * `spanId % N == 0` (deterministic, no RNG). Every request still
 * consumes a span id, so the id sequence — and therefore the sampled
 * subset — is identical between a full run and a sampled run.
 * Unsampled spans take no slab space and return zeroed StageTotals.
 */

#ifndef RCOAL_SPANS_COLLECTOR_HPP
#define RCOAL_SPANS_COLLECTOR_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "rcoal/spans/span_slab.hpp"

namespace rcoal::spans {

class SpanCollector
{
  public:
    struct Config {
        /** SpanSlab capacity (records; overwrite-oldest past this). */
        std::size_t slabCapacity = 1u << 16;
        /** Keep spans with spanId % sampleRate == 0; 1 = keep all. */
        std::uint32_t sampleRate = 1;
    };

    SpanCollector(); ///< Default Config.
    explicit SpanCollector(Config config);

    /**
     * Assign the next span id (first id is 1; 0 means "no span").
     * Creates live accounting when the id is sampled.
     */
    std::uint32_t openRequest();

    /** True when @p span_id is retained under the sample rate. */
    bool sampled(std::uint32_t span_id) const;

    /** Drop a span opened for a request that was then rejected. */
    void abandon(std::uint32_t span_id);

    /**
     * Stamp a request-level stage ([begin, end), the stage's clock
     * domain). @p last_round_cycles adds to the stage's last-round
     * slice (used by KernelExec, whose measured last-round time is
     * known to the scheduler, not to the stamp site).
     */
    void stampRequest(std::uint32_t span_id, SpanStage stage, Cycle begin,
                      Cycle end, std::uint32_t detail = 0,
                      std::uint16_t component = 0,
                      std::uint64_t last_round_cycles = 0);

    /**
     * Announce a kernel launch: warp w of launch @p slot (in machine
     * namespace @p ns) belongs to span @p warp_spans[w] (0 = none).
     */
    void registerLaunch(std::uint32_t ns, std::uint32_t slot,
                        std::vector<std::uint32_t> warp_spans);

    /** Retire a launch's warp->span map once its requests finished. */
    void releaseLaunch(std::uint32_t ns, std::uint32_t slot);

    /**
     * Stamp a warp-attributed stage from inside the simulator. When
     * @p last_round is set the whole duration also counts toward the
     * stage's last-round slice. Silently ignored for unregistered
     * launches, out-of-range warps, spanless warps and unsampled
     * spans.
     */
    void stampWarp(std::uint32_t ns, std::uint32_t slot, WarpId warp,
                   SpanStage stage, std::uint16_t component, Cycle begin,
                   Cycle end, std::uint32_t detail, bool last_round);

    /**
     * Close a span and return its accumulated totals (zeroed when the
     * span was unsampled or unknown).
     */
    StageTotals finishRequest(std::uint32_t span_id);

    const SpanSlab &slab() const { return slabStore; }
    std::uint32_t sampleRate() const { return cfg.sampleRate; }
    std::uint64_t spansOpened() const { return opened; }
    std::uint64_t spansFinished() const { return finished; }
    std::size_t liveSpans() const { return live.size(); }

    /** Forget all spans, launches and slab contents (ids restart). */
    void clear();

    /**
     * Serialize through StateArena. Launch registrations must be
     * empty (machine quiescent) — the serve loop only snapshots
     * between batches, when every launch has been released.
     */
    void saveState(common::ArenaWriter &w) const;
    void restoreState(common::ArenaReader &r);

  private:
    Config cfg;
    SpanSlab slabStore;
    std::uint32_t nextSpanId = 0; ///< Last id handed out.
    std::uint64_t opened = 0;
    std::uint64_t finished = 0;
    /** Ordered for deterministic serialization. */
    std::map<std::uint32_t, StageTotals> live;
    /** Keyed (ns << 32 | slot); never serialized (quiescent-empty). */
    std::map<std::uint64_t, std::vector<std::uint32_t>> launches;
};

} // namespace rcoal::spans

#endif // RCOAL_SPANS_COLLECTOR_HPP
