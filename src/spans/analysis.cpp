#include "rcoal/spans/analysis.hpp"

#include <algorithm>
#include <map>

#include "rcoal/common/logging.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/trace/chrome_trace.hpp"

namespace rcoal::spans {

CriticalPathReducer::CriticalPathReducer(
    telemetry::MetricRegistry &registry, double core_per_mem,
    const telemetry::MetricRegistry::Labels &labels)
    : corePerMem(core_per_mem)
{
    for (std::size_t s = 0; s < kNumSpanStages; ++s) {
        telemetry::MetricRegistry::Labels staged = labels;
        staged.emplace_back("stage",
                            spanStageName(static_cast<SpanStage>(s)));
        histograms[s] = &registry.histogram(
            "rcoal_span_stage_cycles",
            "per-request cycles spent in each span stage "
            "(core-clock-normalized)",
            staged);
    }
}

void
CriticalPathReducer::observe(const StageTotals &totals)
{
    ++observedRequests;
    std::size_t critical = 0;
    std::uint64_t critical_cycles = 0;
    for (std::size_t s = 0; s < kNumSpanStages; ++s) {
        std::uint64_t cycles = totals.cycles[s];
        if (static_cast<SpanStage>(s) == SpanStage::DramService)
            cycles = static_cast<std::uint64_t>(
                static_cast<double>(cycles) * corePerMem);
        histograms[s]->observe(cycles);
        totalsByStage[s] += cycles;
        if (cycles > critical_cycles) {
            critical_cycles = cycles;
            critical = s;
        }
    }
    // KernelExec envelops the in-kernel stages; only count it as the
    // request's critical stage when nothing inside it was larger —
    // which the > comparison above already guarantees for ties.
    ++criticalByStage[critical];
}

SpanStage
CriticalPathReducer::dominantStage() const
{
    const auto it =
        std::max_element(totalsByStage.begin(), totalsByStage.end());
    return static_cast<SpanStage>(it - totalsByStage.begin());
}

void
writeSpanTrace(const std::string &path, const SpanCollector &collector,
               double core_per_mem)
{
    const std::vector<SpanRecord> records = collector.slab().snapshot();
    trace::ChromeTraceWriter writer(path);

    // One trace thread per span, in first-appearance order; pid 2
    // keeps request tracks apart from the component-event pid.
    std::map<std::uint32_t, int> tids;
    for (const SpanRecord &r : records) {
        if (tids.contains(r.spanId))
            continue;
        const int tid = static_cast<int>(tids.size()) + 1;
        tids.emplace(r.spanId, tid);
        writer.threadName(2, tid, strprintf("span %u", r.spanId));
    }

    for (const SpanRecord &r : records) {
        const auto stage = static_cast<SpanStage>(r.stage);
        const bool memory_domain = stage == SpanStage::DramService;
        const double scale = memory_domain ? core_per_mem : 1.0;
        const double ts = static_cast<double>(r.begin) * scale;
        const double dur =
            static_cast<double>(r.end - r.begin) * scale;
        const std::string args = strprintf(
            "{\"span\": %u, \"detail\": %u, \"component\": %u, "
            "\"last_round\": %u}",
            r.spanId, r.detail, static_cast<unsigned>(r.component),
            static_cast<unsigned>(r.lastRound));
        const int tid = tids.at(r.spanId);
        if (r.end > r.begin)
            writer.complete(spanStageName(stage), 2, tid, ts, dur, args);
        else
            writer.instant(spanStageName(stage), 2, tid, ts, args);
    }

    writer.close();
}

} // namespace rcoal::spans
