#include "rcoal/spans/collector.hpp"

#include <utility>

#include "rcoal/common/logging.hpp"
#include "rcoal/common/state_arena.hpp"

namespace rcoal::spans {

namespace {

std::uint64_t
launchKey(std::uint32_t ns, std::uint32_t slot)
{
    return (static_cast<std::uint64_t>(ns) << 32) | slot;
}

} // namespace

SpanCollector::SpanCollector() : SpanCollector(Config{}) {}

SpanCollector::SpanCollector(Config config)
    : cfg(config), slabStore(config.slabCapacity)
{
    RCOAL_ASSERT(cfg.sampleRate > 0, "span sample rate must be positive");
}

std::uint32_t
SpanCollector::openRequest()
{
    const std::uint32_t id = ++nextSpanId;
    ++opened;
    if (sampled(id))
        live.emplace(id, StageTotals{});
    return id;
}

bool
SpanCollector::sampled(std::uint32_t span_id) const
{
    return span_id != 0 && span_id % cfg.sampleRate == 0;
}

void
SpanCollector::abandon(std::uint32_t span_id)
{
    live.erase(span_id);
}

void
SpanCollector::stampRequest(std::uint32_t span_id, SpanStage stage,
                            Cycle begin, Cycle end, std::uint32_t detail,
                            std::uint16_t component,
                            std::uint64_t last_round_cycles)
{
    const auto it = live.find(span_id);
    if (it == live.end())
        return; // Unsampled (or already finished) span.
    SpanRecord record;
    record.begin = begin;
    record.end = end;
    record.spanId = span_id;
    record.detail = detail;
    record.component = component;
    record.stage = static_cast<std::uint8_t>(stage);
    record.lastRound = last_round_cycles > 0 ? 1 : 0;
    slabStore.append(record);
    const auto s = static_cast<std::size_t>(stage);
    it->second.cycles[s] += end - begin;
    it->second.lastRoundCycles[s] += last_round_cycles;
}

void
SpanCollector::registerLaunch(std::uint32_t ns, std::uint32_t slot,
                              std::vector<std::uint32_t> warp_spans)
{
    launches[launchKey(ns, slot)] = std::move(warp_spans);
}

void
SpanCollector::releaseLaunch(std::uint32_t ns, std::uint32_t slot)
{
    launches.erase(launchKey(ns, slot));
}

void
SpanCollector::stampWarp(std::uint32_t ns, std::uint32_t slot, WarpId warp,
                         SpanStage stage, std::uint16_t component,
                         Cycle begin, Cycle end, std::uint32_t detail,
                         bool last_round)
{
    const auto launch = launches.find(launchKey(ns, slot));
    if (launch == launches.end() || warp >= launch->second.size())
        return;
    const std::uint32_t span_id = launch->second[warp];
    if (span_id == 0)
        return;
    const auto it = live.find(span_id);
    if (it == live.end())
        return; // Unsampled span: the warp map still names it.
    SpanRecord record;
    record.begin = begin;
    record.end = end;
    record.spanId = span_id;
    record.detail = detail;
    record.component = component;
    record.stage = static_cast<std::uint8_t>(stage);
    record.lastRound = last_round ? 1 : 0;
    slabStore.append(record);
    const auto s = static_cast<std::size_t>(stage);
    const std::uint64_t duration = end - begin;
    it->second.cycles[s] += duration;
    if (last_round)
        it->second.lastRoundCycles[s] += duration;
}

StageTotals
SpanCollector::finishRequest(std::uint32_t span_id)
{
    const auto it = live.find(span_id);
    if (it == live.end())
        return StageTotals{};
    const StageTotals totals = it->second;
    live.erase(it);
    ++finished;
    return totals;
}

void
SpanCollector::clear()
{
    slabStore.clear();
    nextSpanId = 0;
    opened = 0;
    finished = 0;
    live.clear();
    launches.clear();
}

void
SpanCollector::saveState(common::ArenaWriter &w) const
{
    RCOAL_ASSERT(launches.empty(),
                 "span snapshot requires a quiescent machine "
                 "(%zu launches still registered)",
                 launches.size());
    w.pod(cfg.sampleRate);
    w.pod(nextSpanId);
    w.pod(opened);
    w.pod(finished);
    slabStore.saveState(w);
    w.pod(static_cast<std::uint64_t>(live.size()));
    for (const auto &[id, totals] : live) {
        w.pod(id);
        w.pod(totals);
    }
}

void
SpanCollector::restoreState(common::ArenaReader &r)
{
    const auto rate = r.take<std::uint32_t>();
    RCOAL_ASSERT(rate == cfg.sampleRate,
                 "span restore: sample rate mismatch (%u vs %u)", rate,
                 cfg.sampleRate);
    RCOAL_ASSERT(launches.empty(),
                 "span restore requires a quiescent machine");
    nextSpanId = r.take<std::uint32_t>();
    opened = r.take<std::uint64_t>();
    finished = r.take<std::uint64_t>();
    slabStore.restoreState(r);
    const auto count = r.take<std::uint64_t>();
    live.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto id = r.take<std::uint32_t>();
        live.emplace(id, r.take<StageTotals>());
    }
}

} // namespace rcoal::spans
