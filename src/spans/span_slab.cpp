#include "rcoal/spans/span_slab.hpp"

#include <algorithm>

#include "rcoal/common/logging.hpp"
#include "rcoal/common/state_arena.hpp"

namespace rcoal::spans {

SpanSlab::SpanSlab(std::size_t capacity) : ring(capacity)
{
    RCOAL_ASSERT(capacity > 0, "SpanSlab capacity must be positive");
}

void
SpanSlab::append(const SpanRecord &record)
{
    if (appended >= ring.size())
        ++overwritten; // The slot being written still holds a live record.
    ring[next] = record;
    next = (next + 1) % ring.size();
    ++appended;
}

std::size_t
SpanSlab::size() const
{
    return appended < ring.size() ? static_cast<std::size_t>(appended)
                                  : ring.size();
}

std::vector<SpanRecord>
SpanSlab::snapshot() const
{
    std::vector<SpanRecord> out;
    out.reserve(size());
    const std::size_t start = appended > ring.size() ? next : 0;
    for (std::size_t i = 0; i < size(); ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

void
SpanSlab::clear()
{
    next = 0;
    appended = 0;
    overwritten = 0;
    // Ring contents are dead once the counters reset; re-zero them so
    // a cleared slab serializes byte-identically to a fresh one.
    std::fill(ring.begin(), ring.end(), SpanRecord{});
}

void
SpanSlab::saveState(common::ArenaWriter &w) const
{
    w.pod(static_cast<std::uint64_t>(ring.size()));
    w.pod(static_cast<std::uint64_t>(next));
    w.pod(appended);
    w.pod(overwritten);
    w.podVector(ring);
}

void
SpanSlab::restoreState(common::ArenaReader &r)
{
    const auto cap = r.take<std::uint64_t>();
    RCOAL_ASSERT(cap == ring.size(),
                 "SpanSlab restore: capacity mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(cap), ring.size());
    next = static_cast<std::size_t>(r.take<std::uint64_t>());
    appended = r.take<std::uint64_t>();
    overwritten = r.take<std::uint64_t>();
    r.podVector(ring);
}

} // namespace rcoal::spans
