/**
 * @file
 * xoshiro256** / SplitMix64 implementation.
 *
 * Reference algorithms by Blackman & Vigna (public domain).
 */

#include "rcoal/common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "rcoal/common/logging.hpp"

namespace rcoal {

namespace {

inline std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : state)
        word = sm.next();
}

std::uint64_t
Rng::deriveSeed(std::uint64_t root_seed, std::uint64_t stream_index)
{
    // Two chained SplitMix64 scrambles of (root, index). The first is
    // an O(1) jump to output `stream_index` of the SplitMix64 sequence
    // rooted at root_seed (its state advances by the golden-ratio gamma
    // per draw); the second decorrelates that value from the direct
    // SplitMix64 expansion Rng(root_seed) uses for its own state.
    SplitMix64 jump(root_seed +
                    stream_index * 0x9e3779b97f4a7c15ull);
    SplitMix64 scramble(jump.next() ^ 0xd1b54a32d192ed03ull);
    return scramble.next();
}

Rng
Rng::stream(std::uint64_t root_seed, std::uint64_t stream_index)
{
    return Rng(deriveSeed(root_seed, stream_index));
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl64(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl64(state[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    RCOAL_ASSERT(bound > 0, "below() requires a positive bound");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) % bound
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    RCOAL_ASSERT(lo <= hi, "range() requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next64());
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform01()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::normal(double mean, double stddev)
{
    // Box-Muller; draw u1 in (0, 1] to avoid log(0).
    double u1;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double z = mag * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
}

bool
Rng::chance(double p)
{
    return uniform01() < p;
}

std::vector<std::uint64_t>
Rng::sampleDistinctSorted(std::uint64_t k, std::uint64_t n)
{
    RCOAL_ASSERT(k <= n, "cannot sample %llu distinct values from %llu",
                 static_cast<unsigned long long>(k),
                 static_cast<unsigned long long>(n));
    // Floyd's algorithm: O(k) expected insertions.
    std::vector<std::uint64_t> chosen;
    chosen.reserve(k);
    for (std::uint64_t j = n - k; j < n; ++j) {
        const std::uint64_t t = below(j + 1);
        if (std::find(chosen.begin(), chosen.end(), t) == chosen.end())
            chosen.push_back(t);
        else
            chosen.push_back(j);
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

} // namespace rcoal
