/**
 * @file
 * Minimal CSV writer for exporting experiment series (RFC-4180-style
 * quoting). Lets downstream users plot observations and sweeps with
 * their own tooling.
 */

#ifndef RCOAL_COMMON_CSV_HPP
#define RCOAL_COMMON_CSV_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rcoal {

/**
 * Row-oriented CSV document builder.
 */
class CsvWriter
{
  public:
    /** Construct with column headers. */
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rowCount() const { return rows.size(); }

    /** Render the full document (headers first, "\n" line endings). */
    std::string render() const;

    /** Write to @p path; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

    /** Escape one cell per RFC 4180 (quote when needed). */
    static std::string escape(const std::string &cell);

    /** Format helpers mirroring TablePrinter. @{ */
    static std::string num(double v, int decimals = 6);
    static std::string num(std::uint64_t v);
    /** @} */

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace rcoal

#endif // RCOAL_COMMON_CSV_HPP
