/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * Severity model follows the gem5 convention:
 *  - inform(): normal operating message, no connotation of error.
 *  - warn():   something may be off; simulation continues.
 *  - fatal():  the simulation cannot continue due to a user error
 *              (bad configuration, invalid argument); exits cleanly.
 *  - panic():  an internal invariant was violated (a bug); aborts.
 */

#ifndef RCOAL_COMMON_LOGGING_HPP
#define RCOAL_COMMON_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace rcoal {

/** Print an informational message to stderr ("info: ..."). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr ("warn: ..."). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error and exit(1).
 * Use for bad configuration or invalid arguments, not internal bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a violated internal invariant and abort().
 * Use for conditions that indicate a bug in the simulator itself.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a printf-style string into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

/** Format a printf-style string into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Panic if @p cond is false. Unlike assert(), this is active in all build
 * types: simulator invariants guard statistics integrity, so violating one
 * must never silently corrupt results.
 */
#define RCOAL_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::rcoal::panic("assertion '%s' failed at %s:%d: %s", #cond,      \
                           __FILE__, __LINE__,                               \
                           ::rcoal::strprintf(__VA_ARGS__).c_str());         \
        }                                                                    \
    } while (0)

} // namespace rcoal

#endif // RCOAL_COMMON_LOGGING_HPP
