/**
 * @file
 * Statistics primitives: running moments, Pearson correlation, and the
 * sample-count estimator used by the correlation-attack analysis (Eq. 4 of
 * the RCoal paper).
 */

#ifndef RCOAL_COMMON_STATS_HPP
#define RCOAL_COMMON_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace rcoal {

/**
 * Numerically stable single-pass accumulator for mean/variance
 * (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void push(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Number of observations so far. */
    std::size_t count() const { return n; }

    /** Sample mean (0 when empty). */
    double mean() const { return n ? m : 0.0; }

    /** Population variance (divides by n; 0 when n < 1). */
    double variancePopulation() const;

    /** Sample variance (divides by n-1; 0 when n < 2). */
    double varianceSample() const;

    /** Population standard deviation. */
    double stddevPopulation() const;

    /** Sample standard deviation. */
    double stddevSample() const;

    /** Smallest observation (+inf when empty). */
    double min() const;

    /** Largest observation (-inf when empty). */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return total; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n = 0;
    double m = 0.0;   // running mean
    double m2 = 0.0;  // sum of squared deviations
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Pearson correlation coefficient of two equal-length series.
 *
 * Returns 0 when either series has zero variance or fewer than two
 * elements: for the attack analysis, "no variation" means "no exploitable
 * relationship", which the paper also treats as correlation 0 (e.g. FSS
 * with num-subwarp = 32, Section V-C).
 */
double pearsonCorrelation(std::span<const double> x,
                          std::span<const double> y);

/** Covariance (population) of two equal-length series. */
double covariancePopulation(std::span<const double> x,
                            std::span<const double> y);

/** Arithmetic mean of a series (0 when empty). */
double meanOf(std::span<const double> x);

/**
 * Population standard deviation of a series (divides by n, matching
 * RunningStats::stddevPopulation); 0 when empty. pearsonCorrelation
 * divides covariancePopulation by this, keeping both on the same
 * divide-by-n convention so the n's cancel exactly.
 */
double stddevPopulationOf(std::span<const double> x);

/**
 * Sample standard deviation (divides by n - 1, matching
 * RunningStats::stddevSample); 0 when fewer than two elements.
 */
double stddevSampleOf(std::span<const double> x);

/**
 * Historical alias for stddevPopulationOf(). It used to guard
 * `size() < 2` like a sample statistic while dividing by n like a
 * population one; the convention is now explicit in the name above.
 */
inline double
stddevOf(std::span<const double> x)
{
    return stddevPopulationOf(x);
}

/**
 * Expected number of samples for a successful correlation attack with
 * success rate @p alpha, given the correlation @p rho between the
 * measurement and estimation vectors (Eq. 4; Mangard's derivation).
 *
 * Returns +inf when |rho| is 0 (or numerically indistinguishable from 0)
 * or >= 1 with rho == 1 treated as needing the minimum 3 samples.
 */
double samplesForSuccessfulAttack(double rho, double alpha = 0.99);

/**
 * The approximate form of Eq. 4: S ~= 2 * Z_alpha^2 / rho^2.
 * Used for the normalized S column of Table II.
 */
double samplesForSuccessfulAttackApprox(double rho, double alpha = 0.99);

/**
 * Quantile (inverse CDF) of the standard normal distribution.
 * Acklam's rational approximation; |error| < 1.15e-9 over (0, 1).
 */
double normalQuantile(double p);

} // namespace rcoal

#endif // RCOAL_COMMON_STATS_HPP
