/**
 * @file
 * Integer-valued histogram used for subwarp-size distributions (Fig. 9)
 * and coalesced-access-count distributions.
 */

#ifndef RCOAL_COMMON_HISTOGRAM_HPP
#define RCOAL_COMMON_HISTOGRAM_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rcoal {

/**
 * Sparse histogram over signed 64-bit values.
 */
class Histogram
{
  public:
    /** Add @p weight observations of @p value. */
    void add(std::int64_t value, std::uint64_t weight = 1);

    /** Total number of observations. */
    std::uint64_t totalCount() const { return total; }

    /** Count of a specific value (0 if never seen). */
    std::uint64_t countOf(std::int64_t value) const;

    /** Fraction of observations equal to @p value. */
    double fractionOf(std::int64_t value) const;

    /** All (value, count) pairs in increasing value order. */
    std::vector<std::pair<std::int64_t, std::uint64_t>> sorted() const;

    /** Mean of the observations. */
    double mean() const;

    /** Population standard deviation of the observations. */
    double stddev() const;

    /** Smallest observed value; requires non-empty. */
    std::int64_t minValue() const;

    /** Largest observed value; requires non-empty. */
    std::int64_t maxValue() const;

    /** True when no observations have been added. */
    bool empty() const { return total == 0; }

    /** Reset to empty. */
    void reset();

    /**
     * Render an ASCII bar chart, one row per distinct value, bars scaled
     * so the mode occupies @p width characters.
     */
    std::string toAscii(int width = 50) const;

  private:
    std::map<std::int64_t, std::uint64_t> bins;
    std::uint64_t total = 0;
};

} // namespace rcoal

#endif // RCOAL_COMMON_HISTOGRAM_HPP
