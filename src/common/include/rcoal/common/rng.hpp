/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in RCoal (subwarp sizing, thread shuffling,
 * plaintext generation, attack-side randomization) flows through an
 * explicitly seeded Rng instance so that every experiment is exactly
 * reproducible. The generator is xoshiro256** seeded via SplitMix64,
 * implemented here rather than taken from <random> so that sequences are
 * stable across standard-library versions.
 */

#ifndef RCOAL_COMMON_RNG_HPP
#define RCOAL_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace rcoal {

/**
 * SplitMix64 generator, used to expand a single 64-bit seed into the
 * xoshiro256** state and occasionally as a cheap standalone stream.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Return the next 64-bit value. */
    std::uint64_t next();

  private:
    std::uint64_t state;
};

/**
 * Deterministic RNG used throughout RCoal (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used with
 * standard algorithms, but prefer the explicit helpers below, whose
 * sequences are fixed by this code base (standard distributions are not
 * reproducible across library implementations).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed'c0a1'e5ce'0001ull);

    /** Reseed in place, restarting the sequence. */
    void reseed(std::uint64_t seed);

    /**
     * Counter-based stream derivation: the RNG for sub-experiment
     * @p stream_index of the experiment rooted at @p root_seed.
     *
     * Pure function of its arguments — no parent state, no ordering.
     * Trial i receives the same stream whether trials run serially,
     * out of order, or on many threads, which is what makes parallel
     * sweeps bit-reproducible. Distinct (root_seed, stream_index)
     * pairs give statistically independent streams.
     */
    static Rng stream(std::uint64_t root_seed, std::uint64_t stream_index);

    /**
     * The 64-bit seed stream() would construct its Rng from; exposed
     * so nested experiments can re-root (e.g. derive a per-trial GPU
     * seed, then per-launch streams below it).
     */
    static std::uint64_t deriveSeed(std::uint64_t root_seed,
                                    std::uint64_t stream_index);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()() { return next64(); }

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound), bias-free; bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Standard normal variate (Box-Muller, no cached spare). */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a vector (deterministic given the state). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample @p k distinct values from [0, n) in increasing order
     * (Floyd's algorithm followed by a sort). Requires k <= n.
     */
    std::vector<std::uint64_t> sampleDistinctSorted(std::uint64_t k,
                                                    std::uint64_t n);

  private:
    std::array<std::uint64_t, 4> state;
};

} // namespace rcoal

#endif // RCOAL_COMMON_RNG_HPP
