/**
 * @file
 * StateArena: a relocatable, tagged byte buffer for machine snapshots.
 *
 * Snapshot/fork of the GPU machine works by serializing every mutable
 * component field into one contiguous arena at a quiescent point (no
 * resident kernels, every queue drained). A snapshot is then a single
 * allocation that can be shared read-only between threads, a fork is a
 * fresh machine restored from the arena, and byte equality of two
 * arenas is exactly state equality of the machines that produced them
 * (the reset-vs-fresh audit test relies on this).
 *
 * Layout is a flat sequence of regions, each framed as
 *
 *   [u32 tag][u64 payload size][payload bytes]
 *
 * with payloads written field-by-field (never whole structs with
 * padding, so arena bytes are deterministic). ArenaWriter appends and
 * back-patches region sizes; ArenaReader consumes with tag and size
 * checking, so any drift between save and restore order panics instead
 * of silently misreading.
 */

#ifndef RCOAL_COMMON_STATE_ARENA_HPP
#define RCOAL_COMMON_STATE_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "rcoal/common/logging.hpp"

namespace rcoal::common {

/**
 * The snapshot byte buffer. Immutable once written; share via
 * std::shared_ptr<const StateArena>.
 */
class StateArena
{
  public:
    std::size_t sizeBytes() const { return data.size(); }
    const std::vector<std::byte> &bytes() const { return data; }

    /** Exact byte equality (state equality of the saved machines). */
    bool byteEqual(const StateArena &other) const
    {
        return data == other.data;
    }

  private:
    friend class ArenaWriter;
    friend class ArenaReader;
    std::vector<std::byte> data;
};

/**
 * Sequential writer. Regions may not nest.
 */
class ArenaWriter
{
  public:
    explicit ArenaWriter(StateArena &arena);

    /** Open a region with @p tag; close it with endRegion(). */
    void beginRegion(std::uint32_t tag);

    /** Close the current region, back-patching its payload size. */
    void endRegion();

    /** Append one trivially-copyable, padding-free value. */
    template <typename T>
    void
    pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena pod() needs a trivially copyable type");
        append(&value, sizeof(T));
    }

    /** Append a vector of padding-free PODs as [u64 count][raw]. */
    template <typename T>
    void
    podVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena podVector() needs trivially copyable elements");
        pod(static_cast<std::uint64_t>(v.size()));
        if (!v.empty())
            append(v.data(), v.size() * sizeof(T));
    }

    /** Append a string as [u64 length][bytes]. */
    void string(const std::string &s);

  private:
    void append(const void *src, std::size_t n);

    StateArena &arena;
    std::size_t regionSizeAt; ///< Offset of the open region's size field.
    bool regionOpen = false;
};

/**
 * Sequential reader; mirrors the writer call-for-call.
 */
class ArenaReader
{
  public:
    explicit ArenaReader(const StateArena &arena);

    /** Open the next region, asserting its tag is @p tag. */
    void beginRegion(std::uint32_t tag);

    /** Close the region, asserting its payload was fully consumed. */
    void endRegion();

    template <typename T>
    void
    pod(T &out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena pod() needs a trivially copyable type");
        consume(&out, sizeof(T));
    }

    /** Read a pod() value by type (convenience for locals). */
    template <typename T>
    T
    take()
    {
        T value{};
        pod(value);
        return value;
    }

    template <typename T>
    void
    podVector(std::vector<T> &out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena podVector() needs trivially copyable elements");
        const auto count = take<std::uint64_t>();
        out.resize(static_cast<std::size_t>(count));
        if (count > 0)
            consume(out.data(), out.size() * sizeof(T));
    }

    void string(std::string &out);

    /** True when every byte of the arena has been consumed. */
    bool atEnd() const;

  private:
    void consume(void *dst, std::size_t n);

    const StateArena &arena;
    std::size_t cursor = 0;
    std::size_t regionEnd = 0; ///< One past the open region's payload.
    bool regionOpen = false;
};

} // namespace rcoal::common

#endif // RCOAL_COMMON_STATE_ARENA_HPP
