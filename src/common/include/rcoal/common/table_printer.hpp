/**
 * @file
 * ASCII table rendering for benchmark output.
 *
 * Every bench binary prints its paper table/figure as rows of a
 * TablePrinter so the output format stays consistent across experiments.
 */

#ifndef RCOAL_COMMON_TABLE_PRINTER_HPP
#define RCOAL_COMMON_TABLE_PRINTER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rcoal {

/**
 * Collects rows of string cells and renders them with aligned columns.
 */
class TablePrinter
{
  public:
    /** Construct with column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table (headers, separator, rows). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Helper: format a double with @p decimals places. */
    static std::string num(double v, int decimals = 2);

    /** Helper: format an integer. */
    static std::string num(std::uint64_t v);

    /** Helper: format an integer. */
    static std::string num(std::int64_t v);

    /** Helper: format an int. */
    static std::string num(int v);

    /** Helper: format an unsigned int. */
    static std::string num(unsigned v);

  private:
    std::vector<std::string> header;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows;
};

/** Print a section banner ("=== title ===") to stdout. */
void printBanner(const std::string &title);

} // namespace rcoal

#endif // RCOAL_COMMON_TABLE_PRINTER_HPP
