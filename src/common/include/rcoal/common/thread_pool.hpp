/**
 * @file
 * Parallel experiment engine: a small persistent thread pool with
 * parallelFor / parallelMap primitives.
 *
 * Every result in the paper is a Monte-Carlo sweep of independent
 * trials (thousands of simulated encryptions per defense config), so
 * the evaluation is embarrassingly parallel as long as each trial owns
 * its randomness. The pool provides the scheduling half of that
 * bargain; Rng::stream() provides the determinism half (trial i draws
 * the same stream no matter which worker runs it, so serial and
 * parallel runs are bit-identical).
 *
 * Sizing: an explicit worker count wins; otherwise the RCOAL_THREADS
 * environment variable; otherwise std::thread::hardware_concurrency().
 */

#ifndef RCOAL_COMMON_THREAD_POOL_HPP
#define RCOAL_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rcoal {

/**
 * Worker count used when a ThreadPool is built with `threads == 0`:
 * the RCOAL_THREADS environment variable when set to a positive
 * integer, else std::thread::hardware_concurrency(), never below 1.
 * Read on every call (not cached) so tests can vary the environment.
 */
unsigned defaultThreadCount();

/** Work done by one pool worker, for throughput reporting. */
struct WorkerStats
{
    std::uint64_t tasks = 0;   ///< parallelFor indices executed.
    double busySeconds = 0.0;  ///< Wall time spent inside task bodies.
};

/**
 * Fixed-size pool of persistent worker threads.
 *
 * Only the parallelFor / parallelMap entry points are exposed: all
 * known workloads are index-driven sweeps, and restricting the API
 * keeps the scheduling (and therefore the reproducibility story)
 * trivial to reason about. Exceptions thrown by a task body are
 * captured and the first one is rethrown on the calling thread once
 * the loop has drained. Calls from inside a worker (nested
 * parallelism) degrade to inline serial execution instead of
 * deadlocking the queue.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultThreadCount(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; outstanding loops must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Run body(i) for every i in [0, n), distributed over the workers,
     * and block until all iterations finished. The caller thread does
     * not execute iterations (except in the serial fallbacks below);
     * iteration-to-worker assignment is dynamic, so bodies must not
     * depend on which thread runs them.
     *
     * Serial fallbacks (body runs inline on the caller, in index
     * order): a single-worker pool, n <= 1, or a call from inside a
     * pool worker.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Parallel map: out[i] = fn(i) for i in [0, n), with the output
     * order fixed by the index regardless of scheduling. The result
     * type must be default-constructible.
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        std::vector<std::invoke_result_t<Fn &, std::size_t>> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Per-worker execution totals since construction. Snapshot is
     * consistent only while no loop is in flight.
     */
    std::vector<WorkerStats> workerStats() const;

    /** True when called from inside one of *any* pool's workers. */
    static bool insideWorker();

  private:
    struct Batch;

    void workerLoop(unsigned worker_id);

    std::vector<std::thread> workers;
    std::vector<WorkerStats> stats; // one slot per worker

    mutable std::mutex mtx;
    std::condition_variable workReady; ///< Workers wait here for a batch.
    std::condition_variable workDone;  ///< parallelFor waits here.
    Batch *active = nullptr;           ///< Currently running batch.
    std::uint64_t generation = 0;      ///< Bumped per batch; wakes workers.
    bool shutdown = false;
};

/**
 * Process-wide pool sized by defaultThreadCount() on first use; the
 * bench drivers and batch APIs share it so one RCOAL_THREADS setting
 * governs the whole binary.
 */
ThreadPool &globalThreadPool();

} // namespace rcoal

#endif // RCOAL_COMMON_THREAD_POOL_HPP
