/**
 * @file
 * Fundamental integral types shared across the RCoal code base.
 */

#ifndef RCOAL_COMMON_TYPES_HPP
#define RCOAL_COMMON_TYPES_HPP

#include <cstdint>

namespace rcoal {

/** A simulated clock cycle count (domain-specific; see sim::ClockDomain). */
using Cycle = std::uint64_t;

/** A global byte address in the simulated GPU address space. */
using Addr = std::uint64_t;

/** Thread index within a warp (0..warpSize-1). */
using ThreadId = std::uint32_t;

/** Warp index within a kernel launch. */
using WarpId = std::uint32_t;

/** Subwarp index within a warp (0..numSubwarps-1). */
using SubwarpId = std::uint32_t;

/** An invalid / "not yet scheduled" cycle marker. */
inline constexpr Cycle kInvalidCycle = ~Cycle{0};

/** An invalid address marker. */
inline constexpr Addr kInvalidAddr = ~Addr{0};

} // namespace rcoal

#endif // RCOAL_COMMON_TYPES_HPP
