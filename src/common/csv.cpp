/**
 * @file
 * CsvWriter implementation.
 */

#include "rcoal/common/csv.hpp"

#include <cinttypes>
#include <fstream>
#include <sstream>

#include "rcoal/common/logging.hpp"

namespace rcoal {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : header(std::move(headers))
{
    RCOAL_ASSERT(!header.empty(), "CSV needs at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    RCOAL_ASSERT(cells.size() == header.size(),
                 "row has %zu cells, CSV has %zu columns", cells.size(),
                 header.size());
    rows.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::render() const
{
    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                out << ',';
            out << escape(cells[i]);
        }
        out << '\n';
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
    return out.str();
}

void
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream file(path);
    if (!file)
        fatal("cannot open '%s' for writing", path.c_str());
    file << render();
    if (!file)
        fatal("write to '%s' failed", path.c_str());
}

std::string
CsvWriter::num(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
CsvWriter::num(std::uint64_t v)
{
    return strprintf("%" PRIu64, v);
}

} // namespace rcoal
