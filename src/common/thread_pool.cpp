/**
 * @file
 * ThreadPool implementation.
 *
 * One Batch at a time: parallelFor publishes a Batch under the pool
 * mutex, bumps the generation counter and wakes every worker. Workers
 * claim indices from a shared atomic cursor, so load-balancing is
 * dynamic while the set of executed indices is exact. A batch is
 * complete once every worker has checked in (even those that claimed
 * zero indices), which also guarantees the stack-allocated Batch
 * outlives all references to it.
 */

#include "rcoal/common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "rcoal/common/logging.hpp"

namespace rcoal {

namespace {

thread_local bool inside_worker = false;

} // namespace

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("RCOAL_THREADS")) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<unsigned>(parsed);
        warn("ignoring invalid RCOAL_THREADS value '%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

struct ThreadPool::Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<std::size_t> next{0};
    unsigned workersRemaining = 0;
    std::exception_ptr error; ///< First failure; guarded by pool mtx.
};

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned count = threads > 0 ? threads : defaultThreadCount();
    stats.resize(count);
    workers.reserve(count);
    for (unsigned id = 0; id < count; ++id)
        workers.emplace_back([this, id] { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mtx);
        shutdown = true;
    }
    workReady.notify_all();
    for (auto &worker : workers)
        worker.join();
}

bool
ThreadPool::insideWorker()
{
    return inside_worker;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // Serial fallbacks: trivial loops, single-worker pools (the queue
    // would only add latency), and nested calls from a worker (waiting
    // for the pool from inside the pool would deadlock it).
    if (n == 1 || size() <= 1 || inside_worker) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    Batch batch;
    batch.n = n;
    batch.body = &body;
    batch.workersRemaining = size();

    std::unique_lock lock(mtx);
    RCOAL_ASSERT(active == nullptr,
                 "concurrent parallelFor calls on one ThreadPool");
    active = &batch;
    ++generation;
    workReady.notify_all();
    workDone.wait(lock, [&] { return batch.workersRemaining == 0; });
    active = nullptr;
    if (batch.error)
        std::rethrow_exception(batch.error);
}

void
ThreadPool::workerLoop(unsigned worker_id)
{
    inside_worker = true;
    std::uint64_t seen_generation = 0;
    for (;;) {
        Batch *batch = nullptr;
        {
            std::unique_lock lock(mtx);
            workReady.wait(lock, [&] {
                return shutdown ||
                       (active != nullptr && generation != seen_generation);
            });
            if (shutdown)
                return;
            batch = active;
            seen_generation = generation;
        }

        std::uint64_t executed = 0;
        double busy = 0.0;
        for (;;) {
            const std::size_t i =
                batch->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= batch->n)
                break;
            const auto start = std::chrono::steady_clock::now();
            try {
                (*batch->body)(i);
            } catch (...) {
                std::lock_guard lock(mtx);
                if (!batch->error)
                    batch->error = std::current_exception();
                // Fail fast: park the cursor past the end so other
                // workers stop claiming new iterations.
                batch->next.store(batch->n, std::memory_order_relaxed);
            }
            busy += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
            ++executed;
        }

        bool last = false;
        {
            std::lock_guard lock(mtx);
            stats[worker_id].tasks += executed;
            stats[worker_id].busySeconds += busy;
            last = --batch->workersRemaining == 0;
        }
        if (last)
            workDone.notify_all();
    }
}

std::vector<WorkerStats>
ThreadPool::workerStats() const
{
    std::lock_guard lock(mtx);
    return stats;
}

ThreadPool &
globalThreadPool()
{
    static ThreadPool pool;
    return pool;
}

} // namespace rcoal
