/**
 * @file
 * Histogram implementation.
 */

#include "rcoal/common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "rcoal/common/logging.hpp"

namespace rcoal {

void
Histogram::add(std::int64_t value, std::uint64_t weight)
{
    bins[value] += weight;
    total += weight;
}

std::uint64_t
Histogram::countOf(std::int64_t value) const
{
    const auto it = bins.find(value);
    return it == bins.end() ? 0 : it->second;
}

double
Histogram::fractionOf(std::int64_t value) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(countOf(value)) / static_cast<double>(total);
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
Histogram::sorted() const
{
    return {bins.begin(), bins.end()};
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    double s = 0.0;
    for (const auto &[v, c] : bins)
        s += static_cast<double>(v) * static_cast<double>(c);
    return s / static_cast<double>(total);
}

double
Histogram::stddev() const
{
    if (total == 0)
        return 0.0;
    const double mu = mean();
    double s = 0.0;
    for (const auto &[v, c] : bins) {
        const double d = static_cast<double>(v) - mu;
        s += d * d * static_cast<double>(c);
    }
    return std::sqrt(s / static_cast<double>(total));
}

std::int64_t
Histogram::minValue() const
{
    RCOAL_ASSERT(!bins.empty(), "minValue() on empty histogram");
    return bins.begin()->first;
}

std::int64_t
Histogram::maxValue() const
{
    RCOAL_ASSERT(!bins.empty(), "maxValue() on empty histogram");
    return bins.rbegin()->first;
}

void
Histogram::reset()
{
    bins.clear();
    total = 0;
}

std::string
Histogram::toAscii(int width) const
{
    std::ostringstream out;
    if (bins.empty()) {
        out << "(empty histogram)\n";
        return out.str();
    }
    std::uint64_t mode = 0;
    for (const auto &[v, c] : bins)
        mode = std::max(mode, c);
    for (const auto &[v, c] : bins) {
        const int bar = mode == 0
            ? 0
            : static_cast<int>(static_cast<double>(c) /
                               static_cast<double>(mode) * width);
        out << strprintf("%6lld | %-*s %llu (%.1f%%)\n",
                         static_cast<long long>(v), width,
                         std::string(static_cast<std::size_t>(bar), '#')
                             .c_str(),
                         static_cast<unsigned long long>(c),
                         100.0 * fractionOf(v));
    }
    return out.str();
}

} // namespace rcoal
