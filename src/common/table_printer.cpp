/**
 * @file
 * TablePrinter implementation.
 */

#include "rcoal/common/table_printer.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "rcoal/common/logging.hpp"

namespace rcoal {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : header(std::move(headers))
{
    RCOAL_ASSERT(!header.empty(), "table must have at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    RCOAL_ASSERT(cells.size() == header.size(),
                 "row has %zu cells, table has %zu columns", cells.size(),
                 header.size());
    rows.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows.emplace_back();
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    const auto render_sep = [&] {
        std::string line = "+";
        for (std::size_t w : widths)
            line += std::string(w + 2, '-') + "+";
        return line + "\n";
    };
    const auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += " " + cells[c] +
                    std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        return line + "\n";
    };

    // Ignore trailing separators so a separator-after-each-group loop
    // does not produce a doubled bottom rule.
    std::size_t last = rows.size();
    while (last > 0 && rows[last - 1].empty())
        --last;

    std::ostringstream out;
    out << render_sep() << render_row(header) << render_sep();
    for (std::size_t i = 0; i < last; ++i) {
        if (rows[i].empty())
            out << render_sep();
        else
            out << render_row(rows[i]);
    }
    out << render_sep();
    return out.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TablePrinter::num(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
TablePrinter::num(std::uint64_t v)
{
    return strprintf("%" PRIu64, v);
}

std::string
TablePrinter::num(std::int64_t v)
{
    return strprintf("%" PRId64, v);
}

std::string
TablePrinter::num(int v)
{
    return strprintf("%d", v);
}

std::string
TablePrinter::num(unsigned v)
{
    return strprintf("%u", v);
}

void
printBanner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace rcoal
