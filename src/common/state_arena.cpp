/**
 * @file
 * StateArena writer/reader implementation.
 */

#include "rcoal/common/state_arena.hpp"

namespace rcoal::common {

ArenaWriter::ArenaWriter(StateArena &arena_) : arena(arena_), regionSizeAt(0)
{
    RCOAL_ASSERT(arena.data.empty(),
                 "an arena can be written exactly once");
}

void
ArenaWriter::beginRegion(std::uint32_t tag)
{
    RCOAL_ASSERT(!regionOpen, "arena regions do not nest");
    regionOpen = true;
    append(&tag, sizeof(tag));
    const std::uint64_t placeholder = 0;
    regionSizeAt = arena.data.size();
    append(&placeholder, sizeof(placeholder));
}

void
ArenaWriter::endRegion()
{
    RCOAL_ASSERT(regionOpen, "endRegion() without beginRegion()");
    regionOpen = false;
    const std::uint64_t payload = static_cast<std::uint64_t>(
        arena.data.size() - regionSizeAt - sizeof(std::uint64_t));
    std::memcpy(arena.data.data() + regionSizeAt, &payload, sizeof(payload));
}

void
ArenaWriter::string(const std::string &s)
{
    pod(static_cast<std::uint64_t>(s.size()));
    if (!s.empty())
        append(s.data(), s.size());
}

void
ArenaWriter::append(const void *src, std::size_t n)
{
    const std::size_t at = arena.data.size();
    arena.data.resize(at + n);
    std::memcpy(arena.data.data() + at, src, n);
}

ArenaReader::ArenaReader(const StateArena &arena_) : arena(arena_) {}

void
ArenaReader::beginRegion(std::uint32_t tag)
{
    RCOAL_ASSERT(!regionOpen, "arena regions do not nest");
    std::uint32_t found = 0;
    std::uint64_t payload = 0;
    // Frame fields live outside any region; read them raw.
    RCOAL_ASSERT(cursor + sizeof(found) + sizeof(payload) <=
                     arena.data.size(),
                 "arena truncated at region header");
    std::memcpy(&found, arena.data.data() + cursor, sizeof(found));
    cursor += sizeof(found);
    std::memcpy(&payload, arena.data.data() + cursor, sizeof(payload));
    cursor += sizeof(payload);
    RCOAL_ASSERT(found == tag,
                 "arena region tag mismatch: expected %u, found %u",
                 static_cast<unsigned>(tag), static_cast<unsigned>(found));
    regionEnd = cursor + static_cast<std::size_t>(payload);
    RCOAL_ASSERT(regionEnd <= arena.data.size(),
                 "arena region overruns the buffer");
    regionOpen = true;
}

void
ArenaReader::endRegion()
{
    RCOAL_ASSERT(regionOpen, "endRegion() without beginRegion()");
    RCOAL_ASSERT(cursor == regionEnd,
                 "arena region not fully consumed: %zu bytes left",
                 regionEnd - cursor);
    regionOpen = false;
}

void
ArenaReader::string(std::string &out)
{
    const auto len = take<std::uint64_t>();
    out.resize(static_cast<std::size_t>(len));
    if (len > 0)
        consume(out.data(), out.size());
}

bool
ArenaReader::atEnd() const
{
    return cursor == arena.data.size();
}

void
ArenaReader::consume(void *dst, std::size_t n)
{
    RCOAL_ASSERT(regionOpen, "arena reads must happen inside a region");
    RCOAL_ASSERT(cursor + n <= regionEnd,
                 "arena read of %zu bytes overruns its region", n);
    std::memcpy(dst, arena.data.data() + cursor, n);
    cursor += n;
}

} // namespace rcoal::common
