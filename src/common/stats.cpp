/**
 * @file
 * Implementation of statistics primitives.
 */

#include "rcoal/common/stats.hpp"

#include <cmath>
#include <limits>

#include "rcoal/common/logging.hpp"

namespace rcoal {

void
RunningStats::push(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.m - m;
    const auto na = static_cast<double>(n);
    const auto nb = static_cast<double>(other.n);
    const double nt = na + nb;
    m2 += other.m2 + delta * delta * na * nb / nt;
    m = (na * m + nb * other.m) / nt;
    n += other.n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

double
RunningStats::variancePopulation() const
{
    return n >= 1 ? m2 / static_cast<double>(n) : 0.0;
}

double
RunningStats::varianceSample() const
{
    return n >= 2 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStats::stddevPopulation() const
{
    return std::sqrt(variancePopulation());
}

double
RunningStats::stddevSample() const
{
    return std::sqrt(varianceSample());
}

double
RunningStats::min() const
{
    return n ? lo : std::numeric_limits<double>::infinity();
}

double
RunningStats::max() const
{
    return n ? hi : -std::numeric_limits<double>::infinity();
}

void
RunningStats::reset()
{
    *this = RunningStats{};
}

double
meanOf(std::span<const double> x)
{
    if (x.empty())
        return 0.0;
    double s = 0.0;
    for (double v : x)
        s += v;
    return s / static_cast<double>(x.size());
}

namespace {

/** Sum of squared deviations from the mean. */
double
sumSquaredDeviations(std::span<const double> x)
{
    const double mu = meanOf(x);
    double s = 0.0;
    for (double v : x)
        s += (v - mu) * (v - mu);
    return s;
}

} // namespace

double
stddevPopulationOf(std::span<const double> x)
{
    // Population statistic: defined for any non-empty series (a
    // single observation has zero spread), divisor n.
    if (x.empty())
        return 0.0;
    return std::sqrt(sumSquaredDeviations(x) /
                     static_cast<double>(x.size()));
}

double
stddevSampleOf(std::span<const double> x)
{
    // Sample statistic: needs at least two observations, divisor n-1.
    if (x.size() < 2)
        return 0.0;
    return std::sqrt(sumSquaredDeviations(x) /
                     static_cast<double>(x.size() - 1));
}

double
covariancePopulation(std::span<const double> x, std::span<const double> y)
{
    RCOAL_ASSERT(x.size() == y.size(),
                 "covariance requires equal-length series (%zu vs %zu)",
                 x.size(), y.size());
    if (x.size() < 2)
        return 0.0;
    const double mx = meanOf(x);
    const double my = meanOf(y);
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        s += (x[i] - mx) * (y[i] - my);
    return s / static_cast<double>(x.size());
}

double
pearsonCorrelation(std::span<const double> x, std::span<const double> y)
{
    RCOAL_ASSERT(x.size() == y.size(),
                 "correlation requires equal-length series (%zu vs %zu)",
                 x.size(), y.size());
    if (x.size() < 2)
        return 0.0;
    // Population moments throughout: cov_n / (sigma_n * sigma_n), so
    // the 1/n factors cancel and the ratio equals the textbook r for
    // any divisor convention. Mixing population covariance with sample
    // stddevs would shrink |r| by (n-1)/n.
    const double sx = stddevPopulationOf(x);
    const double sy = stddevPopulationOf(y);
    if (sx == 0.0 || sy == 0.0)
        return 0.0;
    return covariancePopulation(x, y) / (sx * sy);
}

double
normalQuantile(double p)
{
    RCOAL_ASSERT(p > 0.0 && p < 1.0, "normalQuantile requires p in (0,1)");

    // Acklam's algorithm.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;
    double q, r;

    if (p < p_low) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double
samplesForSuccessfulAttack(double rho, double alpha)
{
    const double r = std::abs(rho);
    if (r < 1e-12)
        return std::numeric_limits<double>::infinity();
    if (r >= 1.0)
        return 3.0;
    const double z = normalQuantile(alpha);
    const double fisher = std::log((1.0 + r) / (1.0 - r));
    return 3.0 + 8.0 * (z / fisher) * (z / fisher);
}

double
samplesForSuccessfulAttackApprox(double rho, double alpha)
{
    const double r = std::abs(rho);
    if (r < 1e-12)
        return std::numeric_limits<double>::infinity();
    const double z = normalQuantile(alpha);
    return 2.0 * z * z / (r * r);
}

} // namespace rcoal
