/**
 * @file
 * MetricRegistry implementation.
 */

#include "rcoal/telemetry/registry.hpp"

#include <cctype>

#include "rcoal/common/logging.hpp"

namespace rcoal::telemetry {

namespace {

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0 ||
               c == '_' || c == ':';
    };
    auto rest = [&head](char c) {
        return head(c) ||
               std::isdigit(static_cast<unsigned char>(c)) != 0;
    };
    if (!head(name.front()))
        return false;
    for (char c : name.substr(1)) {
        if (!rest(c))
            return false;
    }
    return true;
}

bool
validLabelName(std::string_view name)
{
    if (name.empty() || name.starts_with("__"))
        return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) != 0 ||
               c == '_';
    };
    if (!head(name.front()))
        return false;
    for (char c : name.substr(1)) {
        if (!head(c) &&
            std::isdigit(static_cast<unsigned char>(c)) == 0) {
            return false;
        }
    }
    return true;
}

void
appendEscaped(std::string &out, std::string_view value)
{
    for (char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
}

} // namespace

std::string
MetricRegistry::renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : labels) {
        if (!validLabelName(key))
            fatal("invalid metric label name '%s'", key.c_str());
        if (!first)
            out += ",";
        first = false;
        out += key;
        out += "=\"";
        appendEscaped(out, value);
        out += "\"";
    }
    out += "}";
    return out;
}

MetricRegistry::Family &
MetricRegistry::family(std::string_view name, std::string_view help,
                       MetricKind kind)
{
    const std::string key(name);
    if (auto it = index.find(key); it != index.end()) {
        Family &existing = fams[it->second];
        if (existing.kind != kind) {
            fatal("metric '%s' re-registered as %s (was %s)",
                  key.c_str(), metricKindName(kind),
                  metricKindName(existing.kind));
        }
        if (existing.help != help) {
            fatal("metric '%s' re-registered with different help text",
                  key.c_str());
        }
        return existing;
    }
    if (!validMetricName(name))
        fatal("invalid metric name '%s'", key.c_str());
    index.emplace(key, fams.size());
    fams.push_back(Family{key, std::string(help), kind, {}});
    return fams.back();
}

MetricRegistry::Cell &
MetricRegistry::cell(std::string_view name, std::string_view help,
                     MetricKind kind, const Labels &labels)
{
    Family &fam = family(name, help, kind);
    std::string rendered = renderLabels(labels);
    for (Cell &existing : fam.cells) {
        if (existing.labelText == rendered)
            return existing;
    }
    Cell fresh;
    fresh.labelText = std::move(rendered);
    fam.cells.push_back(std::move(fresh));
    return fam.cells.back();
}

Counter &
MetricRegistry::counter(std::string_view name, std::string_view help,
                        const Labels &labels)
{
    Cell &slot = cell(name, help, MetricKind::Counter, labels);
    if (slot.counter == nullptr)
        slot.counter = std::make_unique<Counter>();
    return *slot.counter;
}

Gauge &
MetricRegistry::gauge(std::string_view name, std::string_view help,
                      const Labels &labels)
{
    Cell &slot = cell(name, help, MetricKind::Gauge, labels);
    if (slot.gauge == nullptr)
        slot.gauge = std::make_unique<Gauge>();
    return *slot.gauge;
}

LogHistogram &
MetricRegistry::histogram(std::string_view name, std::string_view help,
                          const Labels &labels, unsigned value_bits)
{
    Cell &slot = cell(name, help, MetricKind::Histogram, labels);
    if (slot.histogram == nullptr)
        slot.histogram = std::make_unique<LogHistogram>(value_bits);
    return *slot.histogram;
}

const MetricRegistry::Cell *
MetricRegistry::findCell(std::string_view name, MetricKind kind,
                         const Labels &labels) const
{
    const auto it = index.find(std::string(name));
    if (it == index.end())
        return nullptr;
    const Family &fam = fams[it->second];
    if (fam.kind != kind)
        return nullptr;
    const std::string rendered = renderLabels(labels);
    for (const Cell &slot : fam.cells) {
        if (slot.labelText == rendered)
            return &slot;
    }
    return nullptr;
}

const Counter *
MetricRegistry::findCounter(std::string_view name,
                            const Labels &labels) const
{
    const Cell *slot = findCell(name, MetricKind::Counter, labels);
    return slot != nullptr ? slot->counter.get() : nullptr;
}

const Gauge *
MetricRegistry::findGauge(std::string_view name,
                          const Labels &labels) const
{
    const Cell *slot = findCell(name, MetricKind::Gauge, labels);
    return slot != nullptr ? slot->gauge.get() : nullptr;
}

const LogHistogram *
MetricRegistry::findHistogram(std::string_view name,
                              const Labels &labels) const
{
    const Cell *slot = findCell(name, MetricKind::Histogram, labels);
    return slot != nullptr ? slot->histogram.get() : nullptr;
}

double
MetricRegistry::readValue(std::string_view name,
                          const Labels &labels) const
{
    if (const Counter *c = findCounter(name, labels); c != nullptr)
        return static_cast<double>(c->value());
    if (const Gauge *g = findGauge(name, labels); g != nullptr)
        return g->value();
    fatal("no counter/gauge named '%s' with the given labels",
          std::string(name).c_str());
}

std::size_t
MetricRegistry::instrumentCount() const
{
    std::size_t n = 0;
    for (const Family &fam : fams)
        n += fam.cells.size();
    return n;
}

} // namespace rcoal::telemetry
