/**
 * @file
 * LogHistogram cold-path implementation.
 */

#include "rcoal/telemetry/metric.hpp"

#include <cmath>

namespace rcoal::telemetry {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter:
        return "counter";
    case MetricKind::Gauge:
        return "gauge";
    case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

LogHistogram::LogHistogram(unsigned value_bits)
    : valueBits(value_bits)
{
    RCOAL_ASSERT(value_bits > kSubBits && value_bits <= 64,
                 "log histogram needs value_bits in (%u, 64], got %u",
                 kSubBits, value_bits);
    buckets.assign(
        kSubBuckets +
            static_cast<std::size_t>(valueBits - kSubBits) * kSubBuckets,
        0);
}

std::uint64_t
LogHistogram::minValue() const
{
    RCOAL_ASSERT(total > 0, "min of empty histogram");
    return minV;
}

std::uint64_t
LogHistogram::maxValue() const
{
    RCOAL_ASSERT(total > 0, "max of empty histogram");
    return maxV;
}

double
LogHistogram::mean() const
{
    return total == 0 ? 0.0
                      : static_cast<double>(sumValues) /
                            static_cast<double>(total);
}

std::uint64_t
LogHistogram::bucketUpperBound(std::size_t i) const
{
    RCOAL_ASSERT(i < buckets.size(), "bucket index %zu out of range", i);
    if (i < kSubBuckets)
        return i;
    const std::size_t k = i - kSubBuckets;
    const unsigned e =
        static_cast<unsigned>(k / kSubBuckets) + kSubBits;
    const std::uint64_t sub = k % kSubBuckets;
    return ((kSubBuckets + sub + 1) << (e - kSubBits)) - 1;
}

std::uint64_t
LogHistogram::quantileValue(double p) const
{
    RCOAL_ASSERT(total > 0, "quantile of empty histogram");
    RCOAL_ASSERT(p >= 0.0 && p <= 1.0, "quantile %f out of [0,1]", p);
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= target)
            return std::clamp(bucketUpperBound(i), minV, maxV);
    }
    return maxV;
}

Histogram
LogHistogram::toHistogram() const
{
    Histogram dense;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] != 0) {
            dense.add(static_cast<std::int64_t>(bucketUpperBound(i)),
                      buckets[i]);
        }
    }
    return dense;
}

} // namespace rcoal::telemetry
