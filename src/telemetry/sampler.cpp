/**
 * @file
 * TelemetrySampler implementation.
 */

#include "rcoal/telemetry/sampler.hpp"

#include <cmath>

#include "rcoal/common/logging.hpp"
#include "rcoal/telemetry/prometheus.hpp"

namespace rcoal::telemetry {

TelemetrySampler::TelemetrySampler(MetricRegistry &registry,
                                   Cycle interval_cycles,
                                   std::size_t max_points)
    : reg(registry),
      interval(interval_cycles),
      next(interval_cycles),
      maxPoints(max_points)
{
    RCOAL_ASSERT(interval > 0, "telemetry interval must be positive");
    RCOAL_ASSERT(maxPoints >= 2, "telemetry needs >= 2 series points");
}

void
TelemetrySampler::alignAfter(Cycle now)
{
    RCOAL_ASSERT(cycles.empty(),
                 "cannot re-anchor a sampler that already recorded");
    next = ((now / (interval * stride)) + 1) * (interval * stride);
}

void
TelemetrySampler::addCollector(std::function<void(Cycle)> fn)
{
    collectors.push_back(std::move(fn));
}

void
TelemetrySampler::track(std::string key, std::function<double()> read)
{
    RCOAL_ASSERT(cycles.empty(),
                 "series '%s' tracked after sampling started",
                 key.c_str());
    tracks.push_back(Track{std::move(key), std::move(read)});
    seriesValues.emplace_back();
}

void
TelemetrySampler::collect(Cycle now)
{
    for (const auto &fn : collectors)
        fn(now);
}

void
TelemetrySampler::sampleAt(Cycle now)
{
    RCOAL_ASSERT(now == next,
                 "sample at cycle %llu but %llu was due — a skip path "
                 "ignored the sampler bound",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(next));
    collect(now);
    cycles.push_back(now);
    for (std::size_t i = 0; i < tracks.size(); ++i)
        seriesValues[i].push_back(tracks[i].read());
    ++sampleCount;

    // Bounded retention: on overflow, drop every other point and
    // double the sampling stride.  Purely cycle-driven, hence
    // deterministic and identical across skip modes.
    if (cycles.size() >= maxPoints) {
        auto thin = [](auto &v) {
            std::size_t kept = 0;
            for (std::size_t i = 0; i < v.size(); i += 2)
                v[kept++] = v[i];
            v.resize(kept);
        };
        thin(cycles);
        for (auto &series : seriesValues)
            thin(series);
        stride *= 2;
    }
    next = now + interval * stride;
}

void
TelemetrySampler::detachSources()
{
    collectors.clear();
    for (Track &t : tracks)
        t.read = nullptr;
    next = kInvalidCycle;
}

void
TelemetrySampler::reset()
{
    stride = 1;
    sampleCount = 0;
    cycles.clear();
    for (auto &series : seriesValues)
        series.clear();
    next = interval;
}

std::string
TelemetrySampler::seriesJson() const
{
    std::string out = "{";
    out += strprintf("\"interval_cycles\": %llu, \"stride\": %llu, "
                     "\"points\": %zu, \"cycles\": [",
                     static_cast<unsigned long long>(interval),
                     static_cast<unsigned long long>(stride),
                     cycles.size());
    for (std::size_t i = 0; i < cycles.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += strprintf("%llu",
                         static_cast<unsigned long long>(cycles[i]));
    }
    out += "], \"series\": {";
    for (std::size_t t = 0; t < tracks.size(); ++t) {
        if (t > 0)
            out += ", ";
        out += "\"" + tracks[t].key + "\": [";
        for (std::size_t i = 0; i < seriesValues[t].size(); ++i) {
            if (i > 0)
                out += ", ";
            const double v = seriesValues[t][i];
            // JSON has no Inf/NaN literals; clamp to null.
            if (std::isfinite(v))
                out += formatMetricValue(v);
            else
                out += "null";
        }
        out += "]";
    }
    out += "}}";
    return out;
}

} // namespace rcoal::telemetry
