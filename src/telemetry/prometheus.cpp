/**
 * @file
 * Prometheus text exposition: render / parse / lint.
 */

#include "rcoal/telemetry/prometheus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "rcoal/common/logging.hpp"

namespace rcoal::telemetry {

namespace {

/** Escape a HELP string (backslash and newline only, per the spec). */
std::string
escapeHelp(std::string_view help)
{
    std::string out;
    out.reserve(help.size());
    for (char c : help) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Insert an extra label into an already-rendered label block. */
std::string
labelsWith(const std::string &rendered, const std::string &key,
           const std::string &value)
{
    if (rendered.empty())
        return "{" + key + "=\"" + value + "\"}";
    std::string out = rendered.substr(0, rendered.size() - 1);
    out += "," + key + "=\"" + value + "\"}";
    return out;
}

std::string
u64Text(std::uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

void
renderHistogramCell(std::string &out, const std::string &name,
                    const MetricRegistry::Cell &cell)
{
    const LogHistogram &h = *cell.histogram;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucketCount(); ++i) {
        if (h.bucketCountAt(i) == 0)
            continue;
        cumulative += h.bucketCountAt(i);
        out += name + "_bucket" +
               labelsWith(cell.labelText, "le",
                          u64Text(h.bucketUpperBound(i))) +
               " " + u64Text(cumulative) + "\n";
    }
    out += name + "_bucket" +
           labelsWith(cell.labelText, "le", "+Inf") + " " +
           u64Text(h.count()) + "\n";
    out += name + "_sum" + cell.labelText + " " + u64Text(h.sum()) +
           "\n";
    out += name + "_count" + cell.labelText + " " +
           u64Text(h.count()) + "\n";
}

} // namespace

std::string
formatMetricValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (v == std::rint(v) && std::fabs(v) < 1e15)
        return strprintf("%.0f", v);
    return strprintf("%.17g", v);
}

std::string
renderPrometheus(const MetricRegistry &reg)
{
    std::string out;
    for (const MetricRegistry::Family &fam : reg.families()) {
        out += "# HELP " + fam.name + " " + escapeHelp(fam.help) +
               "\n";
        out += "# TYPE " + fam.name + " ";
        out += metricKindName(fam.kind);
        out += "\n";
        for (const MetricRegistry::Cell &cell : fam.cells) {
            switch (fam.kind) {
            case MetricKind::Counter:
                out += fam.name + cell.labelText + " " +
                       u64Text(cell.counter->value()) + "\n";
                break;
            case MetricKind::Gauge:
                out += fam.name + cell.labelText + " " +
                       formatMetricValue(cell.gauge->value()) + "\n";
                break;
            case MetricKind::Histogram:
                renderHistogramCell(out, fam.name, cell);
                break;
            }
        }
    }
    return out;
}

namespace {

/** Incremental cursor over one exposition line. */
struct LineParser {
    std::string_view line;
    std::size_t pos = 0;

    bool done() const { return pos >= line.size(); }
    char peek() const { return line[pos]; }

    void skipSpaces()
    {
        while (!done() && (peek() == ' ' || peek() == '\t'))
            ++pos;
    }

    std::string_view token()
    {
        const std::size_t start = pos;
        while (!done() && peek() != ' ' && peek() != '\t' &&
               peek() != '{') {
            ++pos;
        }
        return line.substr(start, pos - start);
    }
};

bool
isValidName(std::string_view name)
{
    if (name.empty())
        return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
        const char c = name[i];
        const bool alpha = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') || c == '_' ||
                           c == ':';
        const bool digit = c >= '0' && c <= '9';
        if (!(alpha || (digit && i > 0)))
            return false;
    }
    return true;
}

bool
parseLabels(LineParser &p, std::map<std::string, std::string> &labels,
            std::string *error)
{
    ++p.pos; // consume '{'
    while (true) {
        p.skipSpaces();
        if (p.done()) {
            *error = "unterminated label block";
            return false;
        }
        if (p.peek() == '}') {
            ++p.pos;
            return true;
        }
        std::size_t start = p.pos;
        while (!p.done() && p.peek() != '=')
            ++p.pos;
        if (p.done()) {
            *error = "label without '='";
            return false;
        }
        std::string key(p.line.substr(start, p.pos - start));
        ++p.pos; // '='
        if (p.done() || p.peek() != '"') {
            *error = "label value must be quoted";
            return false;
        }
        ++p.pos; // opening quote
        std::string value;
        bool closed = false;
        while (!p.done()) {
            char c = p.line[p.pos++];
            if (c == '\\') {
                if (p.done()) {
                    *error = "dangling escape in label value";
                    return false;
                }
                const char esc = p.line[p.pos++];
                if (esc == 'n')
                    value += '\n';
                else if (esc == '\\' || esc == '"')
                    value += esc;
                else {
                    *error = "bad escape in label value";
                    return false;
                }
            } else if (c == '"') {
                closed = true;
                break;
            } else {
                value += c;
            }
        }
        if (!closed) {
            *error = "unterminated label value";
            return false;
        }
        if (labels.contains(key)) {
            *error = "duplicate label '" + key + "'";
            return false;
        }
        labels.emplace(std::move(key), std::move(value));
        if (!p.done() && p.peek() == ',')
            ++p.pos;
    }
}

} // namespace

std::optional<PromExposition>
parsePrometheus(std::string_view text, std::string *error)
{
    std::string scratch;
    if (error == nullptr)
        error = &scratch;
    PromExposition doc;

    std::size_t line_no = 0;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find('\n', begin);
        std::string_view line =
            text.substr(begin,
                        end == std::string_view::npos ? std::string_view::npos
                                                      : end - begin);
        begin = end == std::string_view::npos ? text.size() + 1 : end + 1;
        ++line_no;
        if (line.empty())
            continue;

        auto fail = [&](const std::string &what) {
            *error = strprintf("line %zu: %s", line_no, what.c_str());
            return std::nullopt;
        };

        if (line.front() == '#') {
            LineParser p{line, 1};
            p.skipSpaces();
            const std::string_view keyword = p.token();
            if (keyword != "HELP" && keyword != "TYPE")
                continue; // free-form comment
            p.skipSpaces();
            const std::string name(p.token());
            if (!isValidName(name))
                return fail("invalid metric name in # " +
                            std::string(keyword));
            p.skipSpaces();
            const std::string rest(line.substr(p.pos));
            if (keyword == "HELP") {
                doc.help[name] = rest;
            } else {
                if (rest != "counter" && rest != "gauge" &&
                    rest != "histogram" && rest != "summary" &&
                    rest != "untyped") {
                    return fail("unknown TYPE '" + rest + "'");
                }
                if (doc.type.contains(name))
                    return fail("duplicate TYPE for '" + name + "'");
                doc.type[name] = rest;
            }
            continue;
        }

        LineParser p{line, 0};
        PromSample sample;
        sample.name = std::string(p.token());
        if (!isValidName(sample.name))
            return fail("invalid sample name");
        if (!p.done() && p.peek() == '{') {
            std::string label_error;
            if (!parseLabels(p, sample.labels, &label_error))
                return fail(label_error);
        }
        p.skipSpaces();
        if (p.done())
            return fail("sample without value");
        const std::string value_text(line.substr(p.pos));
        char *value_end = nullptr;
        sample.value = std::strtod(value_text.c_str(), &value_end);
        if (value_end == value_text.c_str())
            return fail("unparseable sample value '" + value_text +
                        "'");
        for (const char *c = value_end; *c != '\0'; ++c) {
            if (*c != ' ' && *c != '\t')
                return fail("trailing garbage after sample value");
        }
        doc.samples.push_back(std::move(sample));
    }
    return doc;
}

namespace {

/** Family a sample belongs to, honouring histogram suffixes. */
std::string
sampleFamily(const PromExposition &doc, const std::string &name)
{
    if (doc.type.contains(name))
        return name;
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        const std::string_view sv(suffix);
        if (name.size() > sv.size() && name.ends_with(sv)) {
            const std::string base =
                name.substr(0, name.size() - sv.size());
            const auto it = doc.type.find(base);
            if (it != doc.type.end() && it->second == "histogram")
                return base;
        }
    }
    return "";
}

std::string
labelKey(const std::map<std::string, std::string> &labels,
         bool drop_le)
{
    std::string key;
    for (const auto &[k, v] : labels) {
        if (drop_le && k == "le")
            continue;
        key += k + "=" + v + ";";
    }
    return key;
}

bool
isCountValue(double v)
{
    return v >= 0.0 && v == std::rint(v);
}

} // namespace

std::optional<std::string>
lintPrometheus(std::string_view text)
{
    std::string error;
    const auto doc = parsePrometheus(text, &error);
    if (!doc.has_value())
        return error;

    struct HistogramSeries {
        std::vector<std::pair<double, double>> buckets; ///< (le, cum)
        double sum = 0.0;
        double count = 0.0;
        bool hasSum = false, hasCount = false, hasInf = false;
    };
    std::map<std::string, HistogramSeries> histograms;
    std::set<std::string> seen;

    for (const PromSample &s : doc->samples) {
        const std::string family = sampleFamily(*doc, s.name);
        if (family.empty())
            return "sample '" + s.name + "' has no # TYPE declaration";
        const std::string &type = doc->type.at(family);

        const std::string dedup =
            s.name + "|" + labelKey(s.labels, /*drop_le=*/false);
        if (!seen.insert(dedup).second)
            return "duplicate sample '" + s.name + "'";

        if (type == "counter" && !isCountValue(s.value)) {
            return "counter '" + s.name +
                   "' has a negative or non-integral value";
        }
        if (type != "histogram")
            continue;

        const std::string series_key =
            family + "|" + labelKey(s.labels, /*drop_le=*/true);
        HistogramSeries &series = histograms[series_key];
        if (s.name == family + "_sum") {
            series.sum = s.value;
            series.hasSum = true;
        } else if (s.name == family + "_count") {
            if (!isCountValue(s.value))
                return "histogram count '" + s.name +
                       "' is not a count";
            series.count = s.value;
            series.hasCount = true;
        } else {
            const auto le = s.labels.find("le");
            if (le == s.labels.end())
                return "histogram bucket of '" + family +
                       "' lacks an 'le' label";
            if (!isCountValue(s.value))
                return "histogram bucket of '" + family +
                       "' is not a count";
            double bound = 0.0;
            if (le->second == "+Inf") {
                bound = std::numeric_limits<double>::infinity();
                series.hasInf = true;
            } else {
                char *end = nullptr;
                bound = std::strtod(le->second.c_str(), &end);
                if (end == le->second.c_str() || *end != '\0')
                    return "histogram 'le' bound '" + le->second +
                           "' is not a number";
            }
            series.buckets.emplace_back(bound, s.value);
        }
    }

    for (const auto &[key, series] : histograms) {
        const std::string family = key.substr(0, key.find('|'));
        if (!series.hasSum || !series.hasCount || !series.hasInf) {
            return "histogram '" + family +
                   "' is missing _sum, _count, or a +Inf bucket";
        }
        auto sorted = series.buckets;
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        double prev = -1.0;
        for (const auto &[bound, cum] : sorted) {
            if (cum < prev) {
                return "histogram '" + family +
                       "' has non-cumulative bucket counts";
            }
            prev = cum;
        }
        if (!sorted.empty() &&
            sorted.back().second != series.count) {
            return "histogram '" + family +
                   "' +Inf bucket disagrees with _count";
        }
    }
    return std::nullopt;
}

} // namespace rcoal::telemetry
