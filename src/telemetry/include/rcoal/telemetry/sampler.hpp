/**
 * @file
 * TelemetrySampler: periodic, skip-safe metric collection.
 *
 * The sampler is driven from the GpuMachine's cycle loop.  Skip-safety
 * works by contract, not by polling: nextSampleCycle() is folded into
 * GpuMachine::nextEventCycle(), so no cycle-skip fast-forward can ever
 * jump over a sample point, and samples land on exactly the same
 * cycles whether skipping is enabled or not.  That makes the recorded
 * time series — and the final exposition snapshot — byte-identical
 * across the two modes, which CI enforces.
 *
 * Collection is pull-based: components register collector callbacks
 * that refresh registry instruments from live component state, so the
 * simulation hot path pays nothing between samples.  Push-style
 * instruments (event histograms, the leakage auditor) bypass the
 * sampler and update their cells directly.
 */

#ifndef RCOAL_TELEMETRY_SAMPLER_HPP
#define RCOAL_TELEMETRY_SAMPLER_HPP

#include <functional>
#include <string>
#include <vector>

#include "rcoal/common/types.hpp"
#include "rcoal/telemetry/registry.hpp"

namespace rcoal::telemetry {

class TelemetrySampler
{
  public:
    static constexpr Cycle kDefaultIntervalCycles = 5000;
    static constexpr std::size_t kDefaultMaxPoints = 512;

    explicit TelemetrySampler(MetricRegistry &registry,
                              Cycle interval_cycles =
                                  kDefaultIntervalCycles,
                              std::size_t max_points =
                                  kDefaultMaxPoints);

    MetricRegistry &registry() { return reg; }
    Cycle intervalCycles() const { return interval; }

    /** The next cycle a sample must land on (a nextEventCycle bound). */
    Cycle nextSampleCycle() const { return next; }

    /** Re-anchor after attaching to a machine already past cycle 0. */
    void alignAfter(Cycle now);

    /** Register a pull collector; runs on every sample and collect(). */
    void addCollector(std::function<void(Cycle)> fn);

    /**
     * Record @p key as a time series: @p read is evaluated at every
     * sample point (after collectors run) and the values are kept for
     * seriesJson().  Keys appear in registration order.
     */
    void track(std::string key, std::function<double()> read);

    /**
     * Take the sample due at @p now.  Asserts now == nextSampleCycle()
     * — a violation means some skip path ignored the sampler bound.
     */
    void sampleAt(Cycle now);

    /** Refresh instruments without recording a series point. */
    void collect(Cycle now);

    /**
     * Drop collector and track callbacks (which usually capture
     * run-local state) while keeping every recorded series point and
     * all registry values.  Call before the sampled objects die.
     */
    void detachSources();

    /**
     * Drop every recorded point and re-arm as freshly constructed
     * (stride, retention, and the next-sample anchor included) while
     * keeping registered collectors and tracks. The machine-reset
     * path: before the reset audit, stride decay and recorded points
     * survived into the next run and skewed its sample cadence.
     */
    void reset();

    std::uint64_t samplesTaken() const { return sampleCount; }
    std::size_t pointCount() const { return cycles.size(); }

    /**
     * The recorded series as a JSON object literal:
     * {"interval_cycles":..,"stride":..,"cycles":[..],"series":{..}}.
     */
    std::string seriesJson() const;

  private:
    struct Track {
        std::string key;
        std::function<double()> read;
    };

    MetricRegistry &reg;
    Cycle interval;
    Cycle next;
    std::uint64_t stride = 1;
    std::size_t maxPoints;
    std::uint64_t sampleCount = 0;
    std::vector<std::function<void(Cycle)>> collectors;
    std::vector<Track> tracks;
    std::vector<Cycle> cycles;
    std::vector<std::vector<double>> seriesValues; ///< Parallel to tracks.
};

} // namespace rcoal::telemetry

#endif // RCOAL_TELEMETRY_SAMPLER_HPP
