/**
 * @file
 * LeakageAuditor: the paper's leakage statistic as a live SLO gauge.
 *
 * RCoal's security argument reduces to one number: the correlation
 * between the number of coalesced accesses a request's data *should*
 * produce under baseline coalescing and the time the kernel's last
 * AES round actually took.  Under BASE the two agree and the
 * correlation approaches 1 (the attacker's signal); under RSS/RTS the
 * subwarp randomization decouples them and the correlation collapses
 * toward 0 (paper §6, Fig. 5).
 *
 * The auditor computes that statistic online with Welford-style
 * streaming co-moments — O(1) state, no retained samples — and
 * publishes it as gauges plus an alert bit, so a serving deployment
 * watches information leakage the same way it watches p99.
 *
 * The X series must be the *model-predicted baseline* access count
 * (a pure function of request data), NOT the count the hardware
 * actually performed: actual accesses correlate with time under every
 * policy, predicted ones only when the policy leaks.
 */

#ifndef RCOAL_TELEMETRY_LEAKAGE_AUDITOR_HPP
#define RCOAL_TELEMETRY_LEAKAGE_AUDITOR_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "rcoal/telemetry/registry.hpp"

namespace rcoal::telemetry {

class LeakageAuditor
{
  public:
    struct Config {
        /** |correlation| at or above this raises the alert. */
        double alertThreshold = 0.35;
        /** Observations needed before the alert may assert. */
        std::size_t minSamples = 8;
    };

    /**
     * Registers the auditor's instruments in @p registry under the
     * given label set (benches label per coalescing policy).
     */
    LeakageAuditor(MetricRegistry &registry, const Config &config,
                   const MetricRegistry::Labels &labels = {});

    /**
     * Feed one completed request: @p predicted_accesses is the
     * baseline-coalescing access count predicted from the request
     * data; @p measured_time is the attacker-visible last-round
     * duration (memory-clock cycles).
     */
    void observe(double predicted_accesses, double measured_time);

    /** Streaming Pearson correlation; 0 when degenerate or n < 2. */
    double correlation() const;

    /** True when |correlation| >= threshold with enough samples. */
    bool alerting() const;

    std::size_t samples() const { return n; }
    double alertThreshold() const { return cfg.alertThreshold; }

  private:
    void publish();

    Config cfg;
    std::size_t n = 0;
    double meanX = 0.0, meanY = 0.0;
    double m2x = 0.0, m2y = 0.0, cxy = 0.0;
    bool alertState = false;

    Counter &observations;
    Counter &alertTransitions;
    Gauge &correlationGauge;
    Gauge &alertGauge;
    Gauge &thresholdGauge;
};

/**
 * Leakage auditing for a replicated deployment: one LeakageAuditor per
 * replica (labelled replica="<i>") plus a fleet-wide aggregate
 * (replica="fleet") that sees every observation.
 *
 * The split matters for the attack surface: an attacker pinned to one
 * replica concentrates signal where that replica's auditor watches,
 * while spraying probes across the fleet dilutes each per-replica
 * series — but the aggregate still accumulates the full sample. A
 * deployment alerts on either.
 */
class FleetLeakageAuditor
{
  public:
    FleetLeakageAuditor(MetricRegistry &registry,
                        const LeakageAuditor::Config &config,
                        unsigned num_replicas);

    /** Feed one completed probe served by @p replica. */
    void observe(unsigned replica, double predicted_accesses,
                 double measured_time);

    /** Per-replica streaming correlation. */
    double correlation(unsigned replica) const;

    /** Correlation over every observation fleet-wide. */
    double fleetCorrelation() const { return aggregate.correlation(); }

    /** True when any per-replica or the aggregate auditor alerts. */
    bool alerting() const;

    std::size_t samples(unsigned replica) const;
    std::size_t fleetSamples() const { return aggregate.samples(); }
    unsigned replicas() const
    {
        return static_cast<unsigned>(perReplica.size());
    }

  private:
    /** Auditors are not movable (reference members); box them. */
    std::vector<std::unique_ptr<LeakageAuditor>> perReplica;
    LeakageAuditor aggregate;
};

/**
 * Leakage *attribution*: the paper's Pearson statistic per pipeline
 * stage. One LeakageAuditor per named stage (labelled stage="<name>")
 * correlates the predicted baseline access count against that stage's
 * per-request last-round duration, so a run reports WHERE the
 * key-dependent time lives, not just that it exists. Paper
 * prediction: under BASE the coalescer/DRAM stages carry the signal;
 * RSS/RTS push every per-stage correlation into the noise floor.
 *
 * Pearson correlation is scale- and offset-invariant, so stages in
 * different clock domains (DRAM service runs on the memory clock)
 * attribute correctly without conversion.
 */
class StageLeakageAuditor
{
  public:
    /**
     * @param stage_names label values, indexed by the stage argument
     *        of observe(); typically rcoal::spans stage names.
     */
    StageLeakageAuditor(MetricRegistry &registry,
                        const LeakageAuditor::Config &config,
                        std::vector<std::string> stage_names,
                        const MetricRegistry::Labels &labels = {});

    /** Feed one completed request's X and stage-duration Y. */
    void observe(std::size_t stage, double predicted_accesses,
                 double stage_duration);

    double correlation(std::size_t stage) const;
    bool alerting(std::size_t stage) const;

    /** True when any stage's auditor alerts. */
    bool anyAlerting() const;

    std::size_t samples(std::size_t stage) const;
    std::size_t stages() const { return perStage.size(); }
    const std::string &stageName(std::size_t stage) const;

  private:
    std::vector<std::string> names;
    /** Auditors are not movable (reference members); box them. */
    std::vector<std::unique_ptr<LeakageAuditor>> perStage;
};

} // namespace rcoal::telemetry

#endif // RCOAL_TELEMETRY_LEAKAGE_AUDITOR_HPP
