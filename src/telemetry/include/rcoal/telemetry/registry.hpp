/**
 * @file
 * MetricRegistry: named, labelled instrument storage.
 *
 * A registry is single-threaded by design — the serving loop and the
 * simulator are single-threaded, and parallel benches give each
 * scenario its own registry so exposition output is independent of
 * RCOAL_THREADS.  Registration order is preserved and is the
 * exposition order, which keeps rendered output byte-stable.
 */

#ifndef RCOAL_TELEMETRY_REGISTRY_HPP
#define RCOAL_TELEMETRY_REGISTRY_HPP

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rcoal/telemetry/metric.hpp"

namespace rcoal::telemetry {

class MetricRegistry
{
  public:
    /** Label set in caller-chosen (stable) order. */
    using Labels = std::vector<std::pair<std::string, std::string>>;

    /**
     * One instrument within a family.  Exactly one of the three
     * pointers is non-null, matching the family kind.
     */
    struct Cell {
        std::string labelText; ///< Rendered `{k="v",...}`, "" if unlabelled.
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LogHistogram> histogram;
    };

    /** All instruments sharing a metric name. */
    struct Family {
        std::string name;
        std::string help;
        MetricKind kind;
        std::vector<Cell> cells; ///< In registration order.
    };

    /**
     * Register (or look up) an instrument.  Re-registering the same
     * (name, labels) returns the existing instrument; a kind or help
     * mismatch on the same name is a fatal configuration error.
     */
    Counter &counter(std::string_view name, std::string_view help,
                     const Labels &labels = {});
    Gauge &gauge(std::string_view name, std::string_view help,
                 const Labels &labels = {});
    LogHistogram &
    histogram(std::string_view name, std::string_view help,
              const Labels &labels = {},
              unsigned value_bits = LogHistogram::kDefaultValueBits);

    /** Families in registration order (exposition order). */
    const std::deque<Family> &families() const { return fams; }

    /** Lookup helpers for tests and report code; null when absent. */
    const Counter *findCounter(std::string_view name,
                               const Labels &labels = {}) const;
    const Gauge *findGauge(std::string_view name,
                           const Labels &labels = {}) const;
    const LogHistogram *findHistogram(std::string_view name,
                                      const Labels &labels = {}) const;

    /** Counter or gauge value; fatal when the instrument is absent. */
    double readValue(std::string_view name,
                     const Labels &labels = {}) const;

    /** Total instrument count across all families. */
    std::size_t instrumentCount() const;

    /** Render labels as `{k="v",...}` with Prometheus escaping. */
    static std::string renderLabels(const Labels &labels);

  private:
    Family &family(std::string_view name, std::string_view help,
                   MetricKind kind);
    Cell &cell(std::string_view name, std::string_view help,
               MetricKind kind, const Labels &labels);
    const Cell *findCell(std::string_view name, MetricKind kind,
                         const Labels &labels) const;

    std::deque<Family> fams;
    std::unordered_map<std::string, std::size_t> index;
};

} // namespace rcoal::telemetry

#endif // RCOAL_TELEMETRY_REGISTRY_HPP
