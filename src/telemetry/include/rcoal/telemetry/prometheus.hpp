/**
 * @file
 * Prometheus text-exposition rendering, parsing, and linting.
 *
 * renderPrometheus() emits format version 0.0.4 text; the output is a
 * pure function of registry contents, so it is byte-identical across
 * runs that produce the same metric values (the telemetry determinism
 * guarantee).  parsePrometheus()/lintPrometheus() close the loop: CI
 * round-trips every exposition file the benches write, so a format
 * regression fails a test instead of a scrape.
 */

#ifndef RCOAL_TELEMETRY_PROMETHEUS_HPP
#define RCOAL_TELEMETRY_PROMETHEUS_HPP

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rcoal/telemetry/registry.hpp"

namespace rcoal::telemetry {

/** Render the whole registry as Prometheus text exposition. */
std::string renderPrometheus(const MetricRegistry &reg);

/**
 * Format a sample value the way renderPrometheus does: integers
 * exactly, everything else via %.17g (round-trippable through strtod).
 */
std::string formatMetricValue(double v);

/** One parsed sample line. */
struct PromSample {
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

/** A parsed exposition document. */
struct PromExposition {
    std::vector<PromSample> samples;
    std::map<std::string, std::string> type; ///< family -> TYPE
    std::map<std::string, std::string> help; ///< family -> HELP
};

/**
 * Parse exposition text.  Returns std::nullopt and fills @p error on
 * any syntax error (bad name, malformed labels, trailing garbage).
 */
std::optional<PromExposition>
parsePrometheus(std::string_view text, std::string *error = nullptr);

/**
 * Parse plus semantic validation: every sample's family must carry a
 * TYPE, histogram series must be complete (_bucket/_sum/_count, `le`
 * labels, cumulative bucket counts, +Inf == _count), counters must be
 * non-negative integers, and no duplicate samples may appear.
 * Returns std::nullopt when the document is clean, else the first
 * problem found.
 */
std::optional<std::string> lintPrometheus(std::string_view text);

} // namespace rcoal::telemetry

#endif // RCOAL_TELEMETRY_PROMETHEUS_HPP
